//! `rwdom` — command-line interface for random-walk domination.
//!
//! ```text
//! rwdom gen      --model ba --nodes 1000 --degree 10 --seed 42 --out g.edges
//! rwdom stats    g.edges
//! rwdom select   g.edges --algo approx-f2 --k 30 --l 6 --r 100 [--eval]
//! rwdom eval     g.edges --nodes 5,17,99 --l 6 --r 500
//! rwdom cover    g.edges --alpha 0.9 --l 6 --r 100
//! rwdom stream   --model ba --nodes 2000 --batches 10 --batch-edits 20 --k 10
//! rwdom serve    --model ba --nodes 2000 --batches 5 --queries-per-batch 8
//! rwdom demo
//! ```
//!
//! Every subcommand is a thin veneer over the library crates; the CLI holds
//! no algorithmic logic of its own.

use std::collections::HashMap;
use std::process::ExitCode;

use rwd_core::algo::{ApproxGreedy, DpGreedy, SamplingGreedy};
use rwd_core::baselines;
use rwd_core::coverage::{min_nodes_for_coverage, CoverageParams};
use rwd_core::metrics::{self, MetricParams};
use rwd_core::problem::{Params, Problem, Selection};
use rwd_core::report::{fmt_f, fmt_secs, Table};
use rwd_graph::edgelist;
use rwd_graph::generators;
use rwd_graph::{CsrGraph, NodeId};

const USAGE: &str = "\
rwdom — random-walk domination in large graphs (ICDE 2014 reproduction)

USAGE:
  rwdom gen    --model <ba|gnm|gnp|ws|regular|powerlaw> --nodes <n> [model args] --out <file>
  rwdom stats  <edge-list>
  rwdom select <edge-list> --algo <algo> --k <k> [--l <L>] [--r <R>] [--seed <s>] [--eval]
  rwdom eval   <edge-list> --nodes <id,id,...> [--l <L>] [--r <R>]
  rwdom cover  <edge-list> --alpha <0..1] [--l <L>] [--r <R>] [--max-k <k>]
  rwdom stream --model <ba|er> --nodes <n> [--degree <d>] [--batches <B>]
               [--batch-edits <E>] [--delete-frac <f>] [--k <k>] [--l <L>]
               [--r <R>] [--seed <s>] [--problem <f1|f2>] [--shards <S>]
               [--weighted] [--verify] [--data-dir <dir>] [--snapshot-every <N>]
               [--metrics-every <N>] [--mmap]
  rwdom serve  --model <ba|er> --nodes <n> [stream flags] [--workers <W>]
               [--queries-per-batch <Q>] [--script <file>] [--shards <S>]
               [--data-dir <dir>] [--snapshot-every <N>] [--mmap]
  rwdom recover <data-dir> [--verify] [--mmap]
  rwdom index  info <path>
  rwdom demo

MODELS (gen):
  ba        --degree <m_attach>            Barabási–Albert
  gnm       --edges <m>                    uniform G(n, m)
  gnp       --p <prob>                     G(n, p)
  ws        --degree <k even> --beta <b>   Watts–Strogatz
  regular   --degree <d>                   random d-regular
  powerlaw  --edges <m> --gamma <g>        Chung–Lu power law

ALGORITHMS (select):
  approx-f1 approx-f2       Algorithm 6 (linear time; the paper's ApproxF1/F2)
  dp-f1 dp-f2               exact DP greedy (small graphs; DPF1/DPF2)
  sampling-f1 sampling-f2   §3.1 sampling greedy (medium graphs)
  degree dominate random pagerank          baselines

STREAM: drives a deterministic temporal edge trace through the evolving
  pipeline — per batch: graph edit, incremental walk-index refresh (only
  touched (src, layer) groups resampled), seed repair — and prints churn
  stats. --shards <S> tiles the R walk layers across S per-shard engines
  behind the scatter-gather coordinator (identical results, per-shard
  breakdown in the output; needs 1 <= S <= R). --verify additionally
  rebuilds each shard's layer range from scratch every epoch and asserts
  the maintained index is bit-identical.

DURABILITY: --data-dir attaches a fresh data directory to the evolving
  engine — every batch is write-ahead journaled (fsync'd before any shard
  commits) and the whole engine is snapshotted every --snapshot-every
  non-empty batches (0 = journal only), compacting the journal. `rwdom
  recover <dir>` reloads the latest snapshot, replays the journal suffix
  (truncating a torn tail), and prints a recovery report; --verify
  additionally rebuilds the pipeline from scratch on the recovered graph
  and asserts the recovered state is bit-identical.

SERVE: starts the online query server over the evolving engine and drives
  a request trace through it, printing one row per request with its epoch
  provenance, queue wait, and service time. The trace comes from --script
  (lines: `batch`, `hit_time <v>`, `hit_prob <v>`, `coverage`, `top <m>`,
  `seeds`, `metrics`; `#` comments) or is generated: each churn batch
  followed by --queries-per-batch point queries. Queries are answered from
  pinned snapshots in O(postings), never a full sweep. `metrics` returns a
  point-in-time Prometheus-text snapshot of the server's per-endpoint
  histograms plus the process-wide engine metrics (printed after the
  request table).

STORAGE: snapshots write the 8-byte-aligned RWDIDX4 format, whose posting
  columns can be served zero-copy straight from an mmap'd file. `rwdom
  recover --mmap` (and `serve`/`stream` with --data-dir and --mmap) opens
  shard indexes mapped: a header walk plus one CRC pass, no per-posting
  deserialize — bitwise identical answers either way. `rwdom index info
  <path>` prints a file's format version, dimensions, layer range, posting
  count, section alignment, and CRC status without constructing the index.

OBSERVABILITY: rwdom stream --metrics-every <N> prints the process-wide
  metrics registry (per-phase batch timings, churn counters, durability
  I/O) as a table every N batches, plus an end-of-trace seed-stability
  report (per-epoch Jaccard overlap, seeds swapped, objective drift).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Splits `args` into positional arguments and `--flag value` pairs.
fn parse(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // Boolean flags take no value; detect by peeking.
            let is_bool = matches!(name, "eval" | "connected" | "weighted" | "verify" | "mmap");
            if is_bool {
                flags.insert(name.to_string(), "true".to_string());
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name.to_string(), v.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: Option<T>,
) -> Result<T, String> {
    match flags.get(name) {
        Some(v) => v
            .parse::<T>()
            .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        None => default.ok_or_else(|| format!("missing required flag --{name}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("no subcommand given".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "select" => cmd_select(rest),
        "eval" => cmd_eval(rest),
        "cover" => cmd_cover(rest),
        "stream" => cmd_stream(rest),
        "serve" => cmd_serve(rest),
        "recover" => cmd_recover(rest),
        "index" => cmd_index(rest),
        "demo" => cmd_demo(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn load(path: &str) -> Result<CsrGraph, String> {
    let loaded = edgelist::read_edge_list(path).map_err(|e| e.to_string())?;
    Ok(loaded.graph)
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse(args)?;
    let model: String = get(&flags, "model", None)?;
    let n: usize = get(&flags, "nodes", None)?;
    let seed: u64 = get(&flags, "seed", Some(42))?;
    let out: String = get(&flags, "out", None)?;

    let g = match model.as_str() {
        "ba" => {
            let d: usize = get(&flags, "degree", Some(4))?;
            generators::barabasi_albert(n, d, seed)
        }
        "gnm" => {
            let m: usize = get(&flags, "edges", None)?;
            generators::erdos_renyi_gnm(n, m, seed)
        }
        "gnp" => {
            let p: f64 = get(&flags, "p", None)?;
            generators::erdos_renyi_gnp(n, p, seed)
        }
        "ws" => {
            let d: usize = get(&flags, "degree", Some(4))?;
            let beta: f64 = get(&flags, "beta", Some(0.2))?;
            generators::watts_strogatz(n, d, beta, seed)
        }
        "regular" => {
            let d: usize = get(&flags, "degree", Some(4))?;
            generators::random_regular(n, d, seed)
        }
        "powerlaw" => {
            let m: usize = get(&flags, "edges", None)?;
            let gamma: f64 = get(&flags, "gamma", Some(2.3))?;
            generators::power_law_cl(n, m, gamma, seed)
        }
        other => return Err(format!("unknown model `{other}`")),
    }
    .map_err(|e| e.to_string())?;

    edgelist::write_edge_list(&g, &out).map_err(|e| e.to_string())?;
    println!("wrote {} (n = {}, m = {})", out, g.n(), g.m());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, _) = parse(args)?;
    let path = pos.first().ok_or("stats needs an edge-list path")?;
    let g = load(path)?;
    let s = rwd_graph::stats::degree_stats(&g);
    let comps = rwd_graph::traversal::connected_components(&g);
    let mut t = Table::new(["property", "value"]);
    t.row(["nodes", &g.n().to_string()]);
    t.row(["edges", &g.m().to_string()]);
    t.row(["min degree", &s.min.to_string()]);
    t.row(["median degree", &s.median.to_string()]);
    t.row(["mean degree", &fmt_f(s.mean, 2)]);
    t.row(["max degree", &s.max.to_string()]);
    t.row(["components", &comps.count.to_string()]);
    t.row([
        "largest component",
        &comps.sizes.iter().max().copied().unwrap_or(0).to_string(),
    ]);
    if g.n() <= 100_000 {
        t.row([
            "clustering",
            &fmt_f(rwd_graph::stats::global_clustering(&g), 4),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn cmd_select(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse(args)?;
    let path = pos.first().ok_or("select needs an edge-list path")?;
    let g = load(path)?;
    let algo: String = get(&flags, "algo", None)?;
    let params = Params {
        k: get(&flags, "k", None)?,
        l: get(&flags, "l", Some(6))?,
        r: get(&flags, "r", Some(100))?,
        seed: get(&flags, "seed", Some(0))?,
        ..Params::default()
    };

    let sel: Selection = match algo.as_str() {
        "approx-f1" => ApproxGreedy::new(Problem::MinHittingTime, params).run(&g),
        "approx-f2" => ApproxGreedy::new(Problem::MaxCoverage, params).run(&g),
        "dp-f1" => DpGreedy::new(Problem::MinHittingTime, params).run(&g),
        "dp-f2" => DpGreedy::new(Problem::MaxCoverage, params).run(&g),
        "sampling-f1" => SamplingGreedy::new(Problem::MinHittingTime, params).run(&g),
        "sampling-f2" => SamplingGreedy::new(Problem::MaxCoverage, params).run(&g),
        "degree" => baselines::degree_top_k(&g, params.k),
        "dominate" => baselines::dominate_greedy(&g, params.k),
        "random" => baselines::random_k(&g, params.k, params.seed),
        "pagerank" => baselines::pagerank_top_k(&g, params.k),
        other => return Err(format!("unknown algorithm `{other}`")),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "# {} selected {} nodes in {}s",
        sel.algorithm,
        sel.nodes.len(),
        fmt_secs(sel.elapsed)
    );
    let ids: Vec<String> = sel.nodes.iter().map(|u| u.to_string()).collect();
    println!("{}", ids.join(","));

    if flags.contains_key("eval") {
        let m = metrics::evaluate(
            &g,
            &sel.nodes,
            MetricParams {
                l: params.l,
                r: 500,
                seed: params.seed ^ 0xE7A1,
            },
        );
        println!("# AHT = {} EHN = {}", fmt_f(m.aht, 4), fmt_f(m.ehn, 2));
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse(args)?;
    let path = pos.first().ok_or("eval needs an edge-list path")?;
    let g = load(path)?;
    let nodes_arg: String = get(&flags, "nodes", None)?;
    let nodes: Vec<NodeId> = nodes_arg
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map(NodeId)
                .map_err(|_| format!("bad node id `{tok}`"))
        })
        .collect::<Result<_, _>>()?;
    for u in &nodes {
        g.check_node(*u).map_err(|e| e.to_string())?;
    }
    let l: u32 = get(&flags, "l", Some(6))?;
    let r: usize = get(&flags, "r", Some(500))?;
    let m = metrics::evaluate(&g, &nodes, MetricParams { l, r, seed: 0xE7A1 });
    println!("AHT = {} (lower better)", fmt_f(m.aht, 4));
    println!(
        "EHN = {} of {} nodes (higher better)",
        fmt_f(m.ehn, 2),
        g.n()
    );
    Ok(())
}

fn cmd_cover(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse(args)?;
    let path = pos.first().ok_or("cover needs an edge-list path")?;
    let g = load(path)?;
    let p = CoverageParams {
        alpha: get(&flags, "alpha", Some(0.9))?,
        l: get(&flags, "l", Some(6))?,
        r: get(&flags, "r", Some(100))?,
        seed: get(&flags, "seed", Some(0))?,
        max_k: get(&flags, "max-k", Some(0))?,
        threads: 0,
    };
    let res = min_nodes_for_coverage(&g, p).map_err(|e| e.to_string())?;
    println!(
        "target {} nodes ({}% of {}): {} — {} selections, achieved {}",
        fmt_f(res.target, 1),
        fmt_f(p.alpha * 100.0, 0),
        g.n(),
        if res.reached {
            "REACHED"
        } else {
            "NOT reached"
        },
        res.k(),
        fmt_f(res.achieved(), 1)
    );
    let ids: Vec<String> = res.nodes.iter().map(|u| u.to_string()).collect();
    println!("{}", ids.join(","));
    Ok(())
}

/// The evolving-pipeline setup shared by `stream` and `serve`: a temporal
/// trace spec plus an engine configuration, parsed from the same flags.
struct StreamSetup {
    model_name: String,
    spec: rwd_datasets::temporal::TemporalTraceSpec,
    cfg: rwd_stream::StreamConfig,
    problem: String,
    weighted: bool,
    shards: usize,
    /// `--data-dir`: attach a durability data directory (write-ahead
    /// journal + snapshots) to the engine.
    data_dir: Option<String>,
    dcfg: rwd_stream::DurabilityConfig,
}

fn parse_stream_setup(
    cmd: &str,
    pos: &[String],
    flags: &HashMap<String, String>,
) -> Result<StreamSetup, String> {
    use rwd_core::greedy::approx::GainRule;
    use rwd_datasets::temporal::{TemporalTraceSpec, TraceModel};
    use rwd_stream::StreamConfig;

    if let Some(extra) = pos.first() {
        return Err(format!(
            "{cmd} takes no positional arguments (got `{extra}`); it \
             generates its own temporal trace — use --model/--nodes/--seed"
        ));
    }
    let model_name: String = get(flags, "model", Some("ba".to_string()))?;
    let nodes: usize = get(flags, "nodes", Some(2_000))?;
    let model = match model_name.as_str() {
        "ba" => TraceModel::BarabasiAlbert {
            mdeg: get(flags, "degree", Some(4))?,
        },
        "er" => TraceModel::ErdosRenyi {
            mean_degree: get(flags, "degree", Some(8.0))?,
        },
        other => return Err(format!("unknown {cmd} model `{other}` (ba|er)")),
    };
    let seed: u64 = get(flags, "seed", Some(42))?;
    let spec = TemporalTraceSpec {
        model,
        nodes,
        batches: get(flags, "batches", Some(10))?,
        batch_edits: get(flags, "batch-edits", Some(20))?,
        delete_fraction: get(flags, "delete-frac", Some(0.5))?,
        seed,
    };
    let problem: String = get(flags, "problem", Some("f1".to_string()))?;
    let rule = match problem.as_str() {
        "f1" => GainRule::HittingTime,
        "f2" => GainRule::Coverage,
        other => return Err(format!("unknown problem `{other}` (f1|f2)")),
    };
    let cfg = StreamConfig {
        l: get(flags, "l", Some(6))?,
        r: get(flags, "r", Some(16))?,
        k: get(flags, "k", Some(10))?,
        seed: seed ^ 0x5EED,
        rule,
        threads: 0,
    };
    // Validated by the engine constructors, which reject 0 and > R with a
    // named `InvalidShardCount` error — never clamped here.
    let shards: usize = get(flags, "shards", Some(1))?;
    let data_dir = flags.get("data-dir").cloned();
    let snapshot_every: u64 = get(flags, "snapshot-every", Some(4))?;
    if data_dir.is_none() && flags.contains_key("snapshot-every") {
        return Err("--snapshot-every needs --data-dir".into());
    }
    Ok(StreamSetup {
        model_name,
        spec,
        cfg,
        problem,
        weighted: flags.contains_key("weighted"),
        shards,
        data_dir,
        dcfg: rwd_stream::DurabilityConfig { snapshot_every },
    })
}

/// Renders the process-wide metrics registry as a table: one row per
/// counter/gauge sample with its value, one row per histogram series with
/// count and log-bucket percentiles. Built by parsing the registry's own
/// Prometheus exposition — the table shows exactly what a scraper sees.
fn metrics_table() -> String {
    use rwd_obs::text;
    let rendered = rwd_obs::global().render();
    let samples = match text::parse(&rendered) {
        Ok(s) => s,
        Err(e) => return format!("# unparseable metrics exposition: {e}"),
    };
    let mut t = Table::new(["metric", "count", "p50", "p99", "value/sum"]);
    let series = |s: &text::Sample| -> String {
        let labels: Vec<String> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if labels.is_empty() {
            s.name.clone()
        } else {
            format!("{}{{{}}}", s.name, labels.join(","))
        }
    };
    for s in &samples {
        if s.name.ends_with("_bucket") || s.name.ends_with("_sum") {
            continue;
        }
        if let Some(hist) = s.name.strip_suffix("_count") {
            let labels: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let snap = text::histogram_snapshot(&samples, hist, &labels)
                .expect("count row implies a decodable histogram");
            t.row([
                series(s).replacen("_count", "", 1),
                snap.count().to_string(),
                fmt_f(snap.quantile(0.50), 0),
                fmt_f(snap.quantile(0.99), 0),
                snap.sum.to_string(),
            ]);
        } else {
            t.row([
                series(s),
                String::new(),
                String::new(),
                String::new(),
                fmt_f(s.value, 0),
            ]);
        }
    }
    t.render()
}

/// The engine a `stream` run drives: bare, or bound to a `--data-dir`
/// (write-ahead journal + periodic snapshots).
enum StreamDriver {
    Plain(Box<rwd_stream::StreamEngine>),
    Durable(Box<rwd_stream::DurableEngine>),
}

impl StreamDriver {
    fn apply(&mut self, batch: &rwd_stream::EdgeBatch) -> Result<rwd_stream::BatchReport, String> {
        match self {
            StreamDriver::Plain(e) => e.apply(batch),
            StreamDriver::Durable(d) => d.apply(batch),
        }
        .map_err(|e| e.to_string())
    }

    fn engine(&self) -> &rwd_stream::StreamEngine {
        match self {
            StreamDriver::Plain(e) => e,
            StreamDriver::Durable(d) => d.engine(),
        }
    }
}

/// Drives a deterministic temporal edge trace through the evolving
/// pipeline and prints per-batch churn statistics.
fn cmd_stream(args: &[String]) -> Result<(), String> {
    use rwd_datasets::temporal::temporal_trace;
    use rwd_stream::StreamEngine;
    use rwd_walks::WalkIndex;

    let (pos, flags) = parse(args)?;
    let StreamSetup {
        model_name,
        spec,
        cfg,
        problem,
        weighted,
        shards,
        data_dir,
        dcfg,
    } = parse_stream_setup("stream", &pos, &flags)?;
    let verify = flags.contains_key("verify");
    let metrics_every: u64 = get(&flags, "metrics-every", Some(0))?;

    let trace = temporal_trace(&spec).map_err(|e| e.to_string())?;
    println!(
        "# stream: model={model_name} n={} m0={} batches={} edits/batch={} \
         problem={problem} k={} l={} r={} shards={shards}{}",
        trace.base.n(),
        trace.base.m(),
        spec.batches,
        spec.batch_edits,
        cfg.k,
        cfg.l,
        cfg.r,
        if weighted { " weighted" } else { "" },
    );

    let engine = if weighted {
        let wbase = rwd_graph::weighted::weighted_twin(&trace.base, spec.seed)
            .map_err(|e| e.to_string())?;
        StreamEngine::with_shards_weighted(wbase, cfg, shards)
    } else {
        StreamEngine::with_shards(trace.base.clone(), cfg, shards)
    }
    .map_err(|e| e.to_string())?;
    let mut engine = match &data_dir {
        Some(dir) => StreamDriver::Durable(Box::new(
            rwd_stream::DurableEngine::create(engine, dir, dcfg).map_err(|e| e.to_string())?,
        )),
        None => StreamDriver::Plain(Box::new(engine)),
    };

    let groups_total = trace.base.n() * cfg.r;
    let mut t = Table::new([
        "epoch",
        "+e",
        "-e",
        "touched",
        "groups",
        "groups%",
        "postings",
        "swaps",
        "kept",
        "objective",
        "refresh ms",
        "maint ms",
        "warm",
        "replayed",
    ]);
    // Per-shard refresh breakdown, one row per (epoch, shard); rendered
    // after the churn table when running more than one shard.
    let mut st = Table::new([
        "epoch",
        "shard",
        "layers",
        "groups",
        "postings",
        "refresh ms",
    ]);
    // End-of-trace stability accounting (the ROADMAP "answer-stability"
    // metrics), accumulated from each batch's MaintainReport.
    let mut kept_hist: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut total_swapped = 0usize;
    let mut warm_batches = 0usize;
    let mut replayed_total = 0usize;
    let (mut refresh_ms_total, mut maintain_ms_total) = (0.0f64, 0.0f64);
    let initial_objective = engine.engine().objective();
    let mut prev_objective = initial_objective;
    let mut max_step = 0.0f64;
    let mut tracker = (metrics_every > 0).then(|| {
        let mut tr = rwd_obs::EpochStabilityTracker::new();
        let seeds: Vec<u32> = engine.engine().seeds().iter().map(|s| s.raw()).collect();
        tr.observe(0, &seeds, initial_objective, None);
        tr
    });
    for (bi, batch) in trace.batches.iter().enumerate() {
        let rep = engine.apply(batch)?;
        if let Some(tr) = &mut tracker {
            let seeds: Vec<u32> = engine.engine().seeds().iter().map(|s| s.raw()).collect();
            tr.observe(rep.epoch, &seeds, rep.maintain.objective, None);
        }
        if metrics_every > 0 && (bi as u64 + 1).is_multiple_of(metrics_every) {
            println!("# metrics after batch {}", bi + 1);
            println!("{}", metrics_table());
        }
        *kept_hist.entry(rep.maintain.rounds_kept).or_insert(0) += 1;
        total_swapped += rep.maintain.seeds_swapped;
        warm_batches += rep.maintain.warm as usize;
        replayed_total += rep.maintain.replayed_rounds;
        refresh_ms_total += rep.refresh_ms();
        maintain_ms_total += rep.maintain_ms;
        max_step = max_step.max((rep.maintain.objective - prev_objective).abs());
        prev_objective = rep.maintain.objective;
        t.row([
            rep.epoch.to_string(),
            rep.insertions.to_string(),
            rep.deletions.to_string(),
            rep.touched_nodes.to_string(),
            rep.refresh.groups_resampled.to_string(),
            fmt_f(rep.resampled_fraction() * 100.0, 2),
            rep.refresh.postings_rewritten().to_string(),
            rep.maintain.seeds_swapped.to_string(),
            rep.maintain.rounds_kept.to_string(),
            fmt_f(rep.maintain.objective, 2),
            fmt_f(rep.refresh_ms(), 2),
            fmt_f(rep.maintain_ms, 2),
            if rep.maintain.warm { "yes" } else { "cold" }.to_string(),
            rep.maintain.replayed_rounds.to_string(),
        ]);
        for row in &rep.shards {
            st.row([
                rep.epoch.to_string(),
                row.shard.to_string(),
                format!("[{}, {})", row.layers.start(), row.layers.end()),
                row.refresh.groups_resampled.to_string(),
                row.refresh.postings_rewritten().to_string(),
                fmt_f(row.refresh_ms, 2),
            ]);
        }
        if verify {
            // Rebuild each shard's layer range from scratch on the current
            // graph; the maintained partial indexes must match bitwise.
            // (With shards = 1 this is the historical full-index check.)
            let inner = engine.engine();
            let same = inner
                .shard_indexes()
                .iter()
                .zip(inner.shard_ranges())
                .all(|(idx, rg)| {
                    if weighted {
                        let g = inner.weighted_graph().expect("weighted engine");
                        **idx == WalkIndex::build_weighted_layer_range(g, cfg.l, rg, cfg.seed, 0)
                    } else {
                        let g = inner.graph().expect("unweighted engine");
                        **idx == WalkIndex::build_layer_range(g, cfg.l, rg, cfg.seed, 0)
                    }
                });
            if !same {
                return Err(format!(
                    "epoch {}: maintained index diverged from a rebuild",
                    rep.epoch
                ));
            }
        }
    }
    println!("{}", t.render());
    if shards > 1 {
        println!("# per-shard refresh breakdown");
        println!("{}", st.render());
    }
    if let StreamDriver::Durable(d) = &engine {
        println!(
            "# durability: journaled {} batches to {} (snapshot every {} batches)",
            spec.batches,
            d.dir().display(),
            d.durability_config().snapshot_every,
        );
    }
    let life = engine.engine().lifetime_stats();
    println!(
        "# lifetime: {} of {} group-epochs resampled ({}%), {} postings rewritten{}",
        life.groups_resampled,
        groups_total * spec.batches,
        fmt_f(
            100.0 * life.groups_resampled as f64 / (groups_total * spec.batches).max(1) as f64,
            2
        ),
        life.postings_rewritten(),
        if verify {
            " — every epoch verified bit-identical to a rebuild"
        } else {
            ""
        },
    );
    println!(
        "# time split: refresh {} ms, maintain {} ms over {} batches ({}/{} warm, {} rounds replayed from logs)",
        fmt_f(refresh_ms_total, 2),
        fmt_f(maintain_ms_total, 2),
        spec.batches,
        warm_batches,
        spec.batches,
        replayed_total,
    );
    let hist: Vec<String> = kept_hist
        .iter()
        .rev()
        .map(|(kept, batches)| format!("{kept}:{batches}"))
        .collect();
    println!(
        "# stability: kept-prefix histogram [{}] (kept:batches, k = {}), {} seeds swapped in total, \
         objective drift {} (bootstrap {} -> final {}, max batch step {})",
        hist.join(" "),
        cfg.k,
        total_swapped,
        fmt_f(prev_objective - initial_objective, 2),
        fmt_f(initial_objective, 2),
        fmt_f(prev_objective, 2),
        fmt_f(max_step, 2),
    );
    if let Some(tr) = &tracker {
        let mut st = Table::new(["epoch", "jaccard", "swapped", "objective", "drift"]);
        for rec in tr.history().iter().skip(1) {
            st.row([
                rec.epoch.to_string(),
                fmt_f(rec.jaccard, 3),
                rec.seeds_swapped.to_string(),
                fmt_f(rec.objective, 2),
                fmt_f(rec.objective_drift, 3),
            ]);
        }
        println!("# per-epoch answer stability (seed-set Jaccard vs previous epoch)");
        println!("{}", st.render());
        let sum = tr.summary();
        println!(
            "# stability summary: {} epochs, Jaccard mean {} min {}, {} seeds swapped, \
             |objective drift| mean {} max {}",
            sum.epochs,
            fmt_f(sum.mean_jaccard, 3),
            fmt_f(sum.min_jaccard, 3),
            sum.total_swapped,
            fmt_f(sum.mean_abs_objective_drift, 3),
            fmt_f(sum.max_abs_objective_drift, 3),
        );
    }
    let ids: Vec<String> = engine
        .engine()
        .seeds()
        .iter()
        .map(|u| u.to_string())
        .collect();
    println!("# final seeds: {}", ids.join(","));

    if flags.contains_key("mmap") {
        // Snapshot the final state, drop the live engine, and reopen the
        // data dir zero-copy: the mapped engine must answer identically.
        use rwd_stream::{DurableEngine, OpenMode};
        let Some(dir) = &data_dir else {
            return Err(
                "--mmap needs --data-dir (it reopens the written snapshot zero-copy)".into(),
            );
        };
        let StreamDriver::Durable(mut d) = engine else {
            unreachable!("--data-dir always builds a durable driver");
        };
        let snap_epoch = d.snapshot_now().map_err(|e| e.to_string())?;
        let live_seeds: Vec<NodeId> = d.engine().seeds().to_vec();
        let live_objective = d.engine().objective();
        drop(d);
        let started = std::time::Instant::now();
        let (reopened, report) =
            DurableEngine::open_with(dir, dcfg, OpenMode::Mapped).map_err(|e| e.to_string())?;
        let open_ms = started.elapsed().as_secs_f64() * 1e3;
        if reopened.engine().seeds() != live_seeds
            || reopened.engine().objective().to_bits() != live_objective.to_bits()
        {
            return Err("mmap reopen diverged from the live engine".into());
        }
        println!(
            "# mmap reopen: snapshot epoch {snap_epoch} back in {} ms — {} bytes served \
             from the mapped file, {} on heap; seeds and objective bit-identical",
            fmt_f(open_ms, 2),
            report.mapped_bytes,
            report.heap_bytes,
        );
    }
    Ok(())
}

/// Recovers an engine from a `--data-dir` and prints the recovery report;
/// `--verify` additionally rebuilds the whole pipeline from scratch on the
/// recovered graph and asserts the recovered state is bit-identical.
fn cmd_recover(args: &[String]) -> Result<(), String> {
    use rwd_stream::{DurabilityConfig, DurableEngine, OpenMode, StreamEngine};

    let (pos, flags) = parse(args)?;
    let dir = pos.first().ok_or("recover needs a data-dir path")?;
    let verify = flags.contains_key("verify");
    let mode = if flags.contains_key("mmap") {
        OpenMode::Mapped
    } else {
        OpenMode::Deserialize
    };

    let (durable, report) = DurableEngine::open_with(dir, DurabilityConfig::default(), mode)
        .map_err(|e| e.to_string())?;
    let engine = durable.engine();
    let recovery_ms = report.snapshot_load_ms + report.replay_ms;

    let mut t = Table::new(["property", "value"]);
    t.row(["data dir", dir]);
    t.row([
        "open mode",
        match mode {
            OpenMode::Mapped => "mmap (zero-copy shard indexes)",
            OpenMode::Deserialize => "deserialize (heap-owned shard indexes)",
        },
    ]);
    t.row(["snapshot epoch", &report.snapshot_epoch.to_string()]);
    t.row(["epochs replayed", &report.epochs_replayed.to_string()]);
    t.row(["recovered epoch", &report.recovered_epoch.to_string()]);
    t.row([
        "torn tail",
        report
            .torn_tail
            .as_deref()
            .unwrap_or("none (clean boundary)"),
    ]);
    t.row(["snapshot load ms", &fmt_f(report.snapshot_load_ms, 2)]);
    t.row(["journal replay ms", &fmt_f(report.replay_ms, 2)]);
    t.row(["recovery ms", &fmt_f(recovery_ms, 2)]);
    t.row(["index heap bytes", &report.heap_bytes.to_string()]);
    t.row(["index mapped bytes", &report.mapped_bytes.to_string()]);
    let n = engine
        .graph()
        .map(|g| g.n())
        .or_else(|| engine.weighted_graph().map(|g| g.n()))
        .expect("engine holds a graph");
    t.row(["nodes", &n.to_string()]);
    t.row(["seeds", &engine.seeds().len().to_string()]);
    t.row(["objective", &fmt_f(engine.objective(), 4)]);
    println!("{}", t.render());

    if verify {
        // From-scratch rebuild on the recovered graph: by the determinism
        // contract the cold pipeline must land on the recovered state bit
        // for bit — index columns, seeds, and objective alike.
        let cfg = *engine.config();
        let shards = engine.shard_ranges().len();
        let started = std::time::Instant::now();
        let cold = if let Some(g) = engine.graph() {
            StreamEngine::with_shards(g.clone(), cfg, shards)
        } else {
            let g = engine.weighted_graph().expect("weighted engine");
            StreamEngine::with_shards_weighted(g.clone(), cfg, shards)
        }
        .map_err(|e| e.to_string())?;
        let rebuild_ms = started.elapsed().as_secs_f64() * 1e3;

        if engine.seeds() != cold.seeds() {
            return Err("verify failed: recovered seeds differ from a from-scratch rebuild".into());
        }
        if engine.objective().to_bits() != cold.objective().to_bits() {
            return Err(
                "verify failed: recovered objective differs from a from-scratch rebuild".into(),
            );
        }
        let same_indexes = engine
            .shard_indexes()
            .iter()
            .zip(cold.shard_indexes())
            .all(|(a, b)| **a == *b);
        if !same_indexes {
            return Err(
                "verify failed: a recovered shard index differs from a from-scratch rebuild".into(),
            );
        }
        println!(
            "# verify: recovered state is bit-identical to a from-scratch rebuild \
             (recovery {} ms vs rebuild {} ms, {}x)",
            fmt_f(recovery_ms, 2),
            fmt_f(rebuild_ms, 2),
            fmt_f(rebuild_ms / recovery_ms.max(1e-9), 1),
        );
    }
    Ok(())
}

/// `rwdom index info <path>`: report an index file's header and section
/// facts (format version, dimensions, layer range, postings, alignment,
/// CRC status) without constructing the index — a header/section walk
/// plus one streamed checksum pass, O(R) memory.
fn cmd_index(args: &[String]) -> Result<(), String> {
    let (pos, _) = parse(args)?;
    match pos.first().map(String::as_str) {
        Some("info") => {}
        Some(other) => return Err(format!("unknown index subcommand `{other}` (try `info`)")),
        None => return Err("index needs a subcommand: rwdom index info <path>".into()),
    }
    let path = pos.get(1).ok_or("index info needs an index-file path")?;
    let info = rwd_walks::inspect_index_file(path).map_err(|e| e.to_string())?;
    let mut t = Table::new(["property", "value"]);
    t.row(["file", path]);
    t.row(["format", &format!("RWDIDX{}", info.version)]);
    t.row(["nodes (n)", &info.n.to_string()]);
    t.row(["walk length (L)", &info.l.to_string()]);
    t.row(["layers (R)", &info.layer_count.to_string()]);
    t.row([
        "layer range",
        &format!(
            "[{}, {}){}",
            info.layer_base,
            info.layer_base + info.layer_count,
            if info.layer_base == 0 {
                " (monolithic)"
            } else {
                " (shard)"
            }
        ),
    ]);
    t.row(["seed", &info.seed.to_string()]);
    t.row(["postings", &info.total_postings.to_string()]);
    t.row([
        "section align",
        &info
            .section_align
            .map_or("none (packed V2/V3 layout)".to_string(), |a| {
                format!("{a} bytes (zero-copy openable)")
            }),
    ]);
    t.row(["file bytes", &info.file_bytes.to_string()]);
    t.row([
        "crc",
        if info.crc_ok {
            "ok"
        } else {
            "MISMATCH (content is damaged)"
        },
    ]);
    println!("{}", t.render());
    Ok(())
}

/// One parsed request of a serve script.
enum ServeRequest {
    Batch,
    Query(rwd_serve::Query),
}

/// Parses a request script: one request per line (`#` comments, blank
/// lines ignored).
fn parse_serve_script(text: &str, n: usize) -> Result<Vec<ServeRequest>, String> {
    let node = |tok: Option<&str>, line: &str| -> Result<NodeId, String> {
        let raw: u32 = tok
            .ok_or_else(|| format!("`{line}`: missing node id"))?
            .parse()
            .map_err(|_| format!("`{line}`: bad node id"))?;
        if raw as usize >= n {
            return Err(format!("`{line}`: node {raw} outside universe {n}"));
        }
        Ok(NodeId(raw))
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let req = match it.next().unwrap_or_default() {
            "batch" => ServeRequest::Batch,
            "hit_time" => ServeRequest::Query(rwd_serve::Query::HitTime(node(it.next(), line)?)),
            "hit_prob" => ServeRequest::Query(rwd_serve::Query::HitProb(node(it.next(), line)?)),
            "coverage" => ServeRequest::Query(rwd_serve::Query::Coverage),
            "top" => {
                let m: usize = it
                    .next()
                    .ok_or_else(|| format!("`{line}`: missing m"))?
                    .parse()
                    .map_err(|_| format!("`{line}`: bad m"))?;
                ServeRequest::Query(rwd_serve::Query::TopUncovered(m))
            }
            "seeds" => ServeRequest::Query(rwd_serve::Query::Seeds),
            "metrics" => ServeRequest::Query(rwd_serve::Query::Metrics),
            other => return Err(format!("unknown serve request `{other}` in `{line}`")),
        };
        out.push(req);
    }
    Ok(out)
}

/// The default request trace: every churn batch followed by a round-robin
/// mix of point queries over deterministic targets.
fn default_serve_script(batches: usize, queries_per_batch: usize, n: usize) -> Vec<ServeRequest> {
    use rwd_serve::Query;
    let mut out = Vec::new();
    let mut q = 0usize;
    for _ in 0..batches {
        out.push(ServeRequest::Batch);
        for _ in 0..queries_per_batch {
            q += 1;
            out.push(ServeRequest::Query(match q % 5 {
                0 => Query::Coverage,
                1 => Query::HitTime(NodeId((q * 131 % n) as u32)),
                2 => Query::HitProb(NodeId((q * 197 % n) as u32)),
                3 => Query::TopUncovered(3),
                _ => Query::Seeds,
            }));
        }
    }
    out
}

fn fmt_query(q: &rwd_serve::Query) -> String {
    use rwd_serve::Query;
    match q {
        Query::HitTime(v) => format!("hit_time {v}"),
        Query::HitProb(v) => format!("hit_prob {v}"),
        Query::Coverage => "coverage".into(),
        Query::TopUncovered(m) => format!("top {m}"),
        Query::Seeds => "seeds".into(),
        Query::Metrics => "metrics".into(),
    }
}

fn fmt_answer(value: &rwd_serve::QueryValue) -> String {
    use rwd_serve::QueryValue;
    match value {
        QueryValue::Scalar(x) => fmt_f(*x, 4),
        QueryValue::Ranked(nodes) => {
            let head: Vec<String> = nodes
                .iter()
                .take(4)
                .map(|(v, p)| format!("{v}@{}", fmt_f(*p, 3)))
                .collect();
            let ellipsis = if nodes.len() > 4 { ",…" } else { "" };
            format!("[{}{}]", head.join(","), ellipsis)
        }
        QueryValue::Seeds { seeds, objective } => {
            let ids: Vec<String> = seeds.iter().map(|u| u.to_string()).collect();
            format!("{{{}}} F̂={}", ids.join(","), fmt_f(*objective, 2))
        }
        QueryValue::Metrics(text) => format!("snapshot ({} samples)", count_samples(text)),
        QueryValue::Invalid(msg) => format!("invalid: {msg}"),
    }
}

/// Sample lines in a Prometheus exposition (non-comment, non-blank).
fn count_samples(text: &str) -> usize {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count()
}

/// Starts the online query server over the evolving engine and replays a
/// request trace through it, printing per-request epoch provenance and
/// latency.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use rwd_datasets::temporal::temporal_trace;
    use rwd_serve::{ServeEngine, Server};
    use rwd_stream::StreamEngine;

    let (pos, flags) = parse(args)?;
    let StreamSetup {
        model_name,
        spec,
        cfg,
        problem,
        weighted,
        shards,
        data_dir,
        dcfg,
    } = parse_stream_setup("serve", &pos, &flags)?;
    let workers: usize = get(&flags, "workers", Some(2))?;
    let queries_per_batch: usize = get(&flags, "queries-per-batch", Some(6))?;

    let trace = temporal_trace(&spec).map_err(|e| e.to_string())?;
    let requests = match flags.get("script") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --script {path}: {e}"))?;
            parse_serve_script(&text, trace.base.n())?
        }
        None => default_serve_script(spec.batches, queries_per_batch, trace.base.n()),
    };

    let stream = if weighted {
        let wbase = rwd_graph::weighted::weighted_twin(&trace.base, spec.seed)
            .map_err(|e| e.to_string())?;
        StreamEngine::with_shards_weighted(wbase, cfg, shards)
    } else {
        StreamEngine::with_shards(trace.base.clone(), cfg, shards)
    }
    .map_err(|e| e.to_string())?;
    let engine = match &data_dir {
        Some(dir) => ServeEngine::create_durable(stream, dir, dcfg).map_err(|e| e.to_string())?,
        None => ServeEngine::from_stream(stream),
    };
    if let Some(dir) = &data_dir {
        println!(
            "# durability: journaling batches to {dir} (snapshot every {} batches)",
            dcfg.snapshot_every,
        );
    }
    println!(
        "# serve: model={model_name} n={} m0={} problem={problem} k={} l={} r={} \
         shards={shards} workers={workers}{} — {} requests",
        trace.base.n(),
        trace.base.m(),
        cfg.k,
        cfg.l,
        cfg.r,
        if weighted { " weighted" } else { "" },
        requests.len(),
    );

    let server = Server::start(engine, workers);
    let handle = server.handle();
    let mut batches = trace.batches.iter();
    let mut t = Table::new([
        "#",
        "request",
        "epoch",
        "queue µs",
        "service µs",
        "latency µs",
        "answer",
    ]);
    // Summary percentiles come from the same log-bucketed histogram the
    // server itself exposes (not an ad-hoc sort), recorded in nanoseconds.
    let query_service_ns = rwd_obs::Histogram::new();
    let mut max_service_us = 0.0f64;
    let mut queries = 0usize;
    let mut last_metrics: Option<String> = None;
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    for (i, req) in requests.iter().enumerate() {
        match req {
            ServeRequest::Batch => {
                let Some(batch) = batches.next() else {
                    return Err(format!(
                        "request {} asks for a batch but the trace has only {}",
                        i + 1,
                        spec.batches
                    ));
                };
                let outcome = handle
                    .apply(batch.clone())
                    .map_err(|e| e.to_string())?
                    .wait();
                match outcome.report {
                    Ok(rep) => {
                        t.row([
                            (i + 1).to_string(),
                            format!("batch +{} -{}", rep.insertions, rep.deletions),
                            rep.epoch.to_string(),
                            fmt_f(us(outcome.queue), 0),
                            fmt_f(us(outcome.service), 0),
                            fmt_f(us(outcome.latency), 0),
                            format!(
                                "touched {} groups {} swaps {}",
                                rep.touched_nodes,
                                rep.refresh.groups_resampled,
                                rep.maintain.seeds_swapped
                            ),
                        ]);
                    }
                    Err(e) => return Err(format!("batch {} rejected: {e}", i + 1)),
                }
            }
            ServeRequest::Query(q) => {
                let answer = handle.query(q.clone()).map_err(|e| e.to_string())?.wait();
                query_service_ns.record_duration(answer.service);
                max_service_us = max_service_us.max(us(answer.service));
                queries += 1;
                if let rwd_serve::QueryValue::Metrics(ref text) = answer.value {
                    last_metrics = Some(text.clone());
                }
                t.row([
                    (i + 1).to_string(),
                    fmt_query(q),
                    answer.epoch.to_string(),
                    fmt_f(us(answer.queue), 0),
                    fmt_f(us(answer.service), 0),
                    fmt_f(us(answer.latency), 0),
                    fmt_answer(&answer.value),
                ]);
            }
        }
    }
    println!("{}", t.render());
    server.shutdown();

    if queries > 0 {
        println!(
            "# {} point queries: service p50 = {} µs, p99 = {} µs, max = {} µs",
            queries,
            fmt_f(query_service_ns.quantile(0.50) / 1e3, 0),
            fmt_f(query_service_ns.quantile(0.99) / 1e3, 0),
            fmt_f(max_service_us, 0),
        );
    }
    if let Some(text) = last_metrics {
        println!("# metrics snapshot (last `metrics` request)");
        print!("{text}");
    }

    if flags.contains_key("mmap") {
        // Restart drill: reopen the data dir zero-copy and time the first
        // served answer — the restarted server's state (snapshot + journal
        // suffix) is bit-identical to the one that just shut down.
        use rwd_stream::OpenMode;
        let Some(dir) = &data_dir else {
            return Err(
                "--mmap needs --data-dir (it reopens the written snapshot zero-copy)".into(),
            );
        };
        let started = std::time::Instant::now();
        let (reopened, report) = ServeEngine::open_durable_with(dir, dcfg, OpenMode::Mapped)
            .map_err(|e| e.to_string())?;
        let open_ms = started.elapsed().as_secs_f64() * 1e3;
        let snap = reopened.snapshot();
        let q0 = std::time::Instant::now();
        let h = snap.hit_time(NodeId(0));
        let query_us = q0.elapsed().as_secs_f64() * 1e6;
        println!(
            "# mmap reopen: epoch {} back in {} ms ({} bytes mapped, {} journal epochs \
             replayed); first point query answered in {} µs (hit_time(0) = {})",
            report.recovered_epoch,
            fmt_f(open_ms, 2),
            report.mapped_bytes,
            report.epochs_replayed,
            fmt_f(query_us, 0),
            fmt_f(h, 4),
        );
    }
    Ok(())
}

/// Walks through the paper's Example 3.1 with full intermediate output.
fn cmd_demo() -> Result<(), String> {
    use rwd_core::greedy::approx::{GainEngine, GainRule};
    use rwd_graph::generators::paper_example::{figure1, v};
    use rwd_walks::WalkIndex;

    println!("Example 3.1 of the paper: R = 1, L = 2, k = 2 on Figure 1\n");
    let g = figure1();
    println!("graph: n = {}, m = {} (v1..v8 = ids 0..7)\n", g.n(), g.m());

    let walks: Vec<Vec<NodeId>> = [
        [1usize, 2, 3],
        [2, 3, 5],
        [3, 2, 5],
        [4, 7, 5],
        [5, 2, 6],
        [6, 7, 5],
        [7, 5, 7],
        [8, 7, 4],
    ]
    .iter()
    .map(|w| w.iter().map(|&x| v(x)).collect())
    .collect();
    let idx = WalkIndex::from_walks(8, 2, &walks);

    println!("Table 1 — inverted index:");
    for owner in 1..=8 {
        let entries: Vec<String> = idx
            .postings(0, v(owner))
            .iter()
            .map(|p| format!("<v{}, {}>", p.id.index() + 1, p.weight))
            .collect();
        println!("  v{owner}: {}", entries.join(", "));
    }

    let mut engine = GainEngine::new(&idx, GainRule::HittingTime);
    let gains = engine.gains_all();
    println!("\nfirst-round marginal gains σ_u(∅):");
    let pretty: Vec<String> = (1..=8)
        .map(|i| format!("v{i}={}", gains[v(i).index()]))
        .collect();
    println!("  {}", pretty.join("  "));

    engine.update(v(2));
    println!("\nselected v2 (ties break to the smaller id, as in the paper);");
    let d = engine.hit_times();
    let pretty: Vec<String> = (1..=8)
        .map(|i| format!("D[v{i}]={}", d[v(i).index()]))
        .collect();
    println!("updated D: {}", pretty.join("  "));

    let gains = engine.gains_all();
    let best = (0..8)
        .filter(|&u| !engine.selected().contains(NodeId(u)))
        .max_by(|&a, &b| {
            gains[a as usize]
                .total_cmp(&gains[b as usize])
                .then(b.cmp(&a))
        })
        .unwrap();
    println!(
        "\nsecond round selects v{} — final S = {{v2, v7}}",
        best + 1
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_splits_positional_and_flags() {
        let (pos, flags) = parse(&argv(&["file.edges", "--k", "10", "--algo", "degree"])).unwrap();
        assert_eq!(pos, vec!["file.edges"]);
        assert_eq!(flags.get("k").unwrap(), "10");
        assert_eq!(flags.get("algo").unwrap(), "degree");
    }

    #[test]
    fn parse_boolean_flags_take_no_value() {
        let (pos, flags) = parse(&argv(&["f", "--eval", "--k", "3"])).unwrap();
        assert_eq!(pos, vec!["f"]);
        assert_eq!(flags.get("eval").unwrap(), "true");
        assert_eq!(flags.get("k").unwrap(), "3");
    }

    #[test]
    fn parse_rejects_dangling_flag() {
        assert!(parse(&argv(&["--k"])).is_err());
    }

    #[test]
    fn get_applies_defaults_and_validates() {
        let (_, flags) = parse(&argv(&["--k", "7"])).unwrap();
        assert_eq!(get::<usize>(&flags, "k", None).unwrap(), 7);
        assert_eq!(get::<u32>(&flags, "l", Some(6)).unwrap(), 6);
        assert!(get::<usize>(&flags, "missing", None).is_err());
        let (_, flags) = parse(&argv(&["--k", "notanumber"])).unwrap();
        assert!(get::<usize>(&flags, "k", None).is_err());
    }

    #[test]
    fn run_rejects_unknown_subcommand() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&[])).is_err());
    }

    #[test]
    fn demo_runs_clean() {
        assert!(cmd_demo().is_ok());
    }

    #[test]
    fn gen_stats_select_round_trip() {
        let dir = std::env::temp_dir().join("rwdom_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let path_s = path.to_str().unwrap();
        run(&argv(&[
            "gen", "--model", "ba", "--nodes", "200", "--degree", "3", "--seed", "5", "--out",
            path_s,
        ]))
        .unwrap();
        run(&argv(&["stats", path_s])).unwrap();
        run(&argv(&[
            "select",
            path_s,
            "--algo",
            "approx-f2",
            "--k",
            "5",
            "--l",
            "4",
            "--r",
            "25",
        ]))
        .unwrap();
        run(&argv(&[
            "eval", path_s, "--nodes", "0,1,2", "--l", "4", "--r", "50",
        ]))
        .unwrap();
        run(&argv(&[
            "cover", path_s, "--alpha", "0.5", "--l", "4", "--r", "25",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn select_rejects_unknown_algorithm() {
        let dir = std::env::temp_dir().join("rwdom_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let path_s = path.to_str().unwrap();
        run(&argv(&[
            "gen", "--model", "gnm", "--nodes", "50", "--edges", "100", "--out", path_s,
        ]))
        .unwrap();
        assert!(run(&argv(&["select", path_s, "--algo", "magic", "--k", "3"])).is_err());
        assert!(run(&argv(&["eval", path_s, "--nodes", "999", "--l", "3"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_runs_verified_on_small_trace() {
        run(&argv(&[
            "stream",
            "--model",
            "er",
            "--nodes",
            "200",
            "--degree",
            "8",
            "--batches",
            "3",
            "--batch-edits",
            "6",
            "--k",
            "4",
            "--l",
            "4",
            "--r",
            "6",
            "--verify",
            "--metrics-every",
            "2",
        ]))
        .unwrap();
        // Weighted path, coverage objective.
        run(&argv(&[
            "stream",
            "--model",
            "ba",
            "--nodes",
            "150",
            "--degree",
            "3",
            "--batches",
            "2",
            "--batch-edits",
            "4",
            "--k",
            "3",
            "--l",
            "4",
            "--r",
            "4",
            "--problem",
            "f2",
            "--weighted",
            "--verify",
        ]))
        .unwrap();
    }

    #[test]
    fn stream_runs_sharded_and_verified() {
        // 3 shards over r = 6 layers, verified bit-identical per epoch;
        // exercises the per-shard breakdown rendering too.
        run(&argv(&[
            "stream",
            "--model",
            "er",
            "--nodes",
            "150",
            "--degree",
            "8",
            "--batches",
            "2",
            "--batch-edits",
            "5",
            "--k",
            "3",
            "--l",
            "4",
            "--r",
            "6",
            "--shards",
            "3",
            "--verify",
        ]))
        .unwrap();
    }

    #[test]
    fn shard_count_is_rejected_by_name() {
        let base = |shards: &str| {
            argv(&[
                "stream",
                "--model",
                "er",
                "--nodes",
                "60",
                "--batches",
                "1",
                "--batch-edits",
                "2",
                "--k",
                "2",
                "--l",
                "3",
                "--r",
                "4",
                "--shards",
                shards,
            ])
        };
        let err = run(&base("0")).unwrap_err();
        assert!(err.contains("invalid shard count"), "{err}");
        let err = run(&base("5")).unwrap_err();
        assert!(err.contains("invalid shard count"), "{err}");
        assert!(err.contains("5 shards"), "{err}");
        // Serve shares the same setup parsing and engine validation.
        let err = run(&argv(&[
            "serve",
            "--model",
            "er",
            "--nodes",
            "60",
            "--batches",
            "1",
            "--k",
            "2",
            "--l",
            "3",
            "--r",
            "4",
            "--shards",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("invalid shard count"), "{err}");
    }

    #[test]
    fn serve_replays_default_and_scripted_traces() {
        // Default generated request trace, unweighted.
        run(&argv(&[
            "serve",
            "--model",
            "er",
            "--nodes",
            "150",
            "--degree",
            "8",
            "--batches",
            "2",
            "--batch-edits",
            "5",
            "--k",
            "3",
            "--l",
            "4",
            "--r",
            "5",
            "--queries-per-batch",
            "4",
            "--workers",
            "2",
            "--shards",
            "2",
        ]))
        .unwrap();
        // Scripted trace, weighted pipeline.
        let dir = std::env::temp_dir().join("rwdom_cli_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("requests.txt");
        std::fs::write(
            &script,
            "# warm-up queries on epoch 0\nseeds\nhit_time 3\nbatch\ncoverage\ntop 4\nhit_prob 7\nmetrics\n",
        )
        .unwrap();
        run(&argv(&[
            "serve",
            "--model",
            "ba",
            "--nodes",
            "120",
            "--degree",
            "3",
            "--batches",
            "1",
            "--batch-edits",
            "4",
            "--k",
            "3",
            "--l",
            "4",
            "--r",
            "4",
            "--weighted",
            "--script",
            script.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_rejects_bad_scripts() {
        let dir = std::env::temp_dir().join("rwdom_cli_serve_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, content: &str| {
            let p = dir.join(name);
            std::fs::write(&p, content).unwrap();
            p.to_str().unwrap().to_string()
        };
        let base = [
            "serve",
            "--model",
            "er",
            "--nodes",
            "50",
            "--batches",
            "1",
            "--batch-edits",
            "2",
            "--k",
            "2",
            "--l",
            "3",
            "--r",
            "3",
            "--script",
        ];
        let with_script = |p: String| {
            let mut v = argv(&base);
            v.push(p);
            v
        };
        // Unknown verb, out-of-range node, more `batch` lines than the trace.
        assert!(run(&with_script(mk("verb.txt", "frobnicate 3\n"))).is_err());
        assert!(run(&with_script(mk("range.txt", "hit_time 99\n"))).is_err());
        assert!(run(&with_script(mk("batches.txt", "batch\nbatch\n"))).is_err());
        // Missing script file.
        assert!(run(&with_script(dir.join("nope.txt").to_str().unwrap().into())).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_journals_and_recover_verifies() {
        let dir = std::env::temp_dir().join("rwdom_cli_durable");
        std::fs::remove_dir_all(&dir).ok();
        let data = dir.join("data");
        let data_s = data.to_str().unwrap();
        run(&argv(&[
            "stream",
            "--model",
            "er",
            "--nodes",
            "120",
            "--degree",
            "8",
            "--batches",
            "5",
            "--batch-edits",
            "4",
            "--k",
            "3",
            "--l",
            "4",
            "--r",
            "5",
            "--data-dir",
            data_s,
            "--snapshot-every",
            "2",
        ]))
        .unwrap();
        // The dir now holds artifacts: a second stream run must refuse it
        // (recovery is `rwdom recover`'s job, not a silent overwrite).
        let err = run(&argv(&[
            "stream",
            "--model",
            "er",
            "--nodes",
            "120",
            "--degree",
            "8",
            "--batches",
            "1",
            "--batch-edits",
            "4",
            "--k",
            "3",
            "--l",
            "4",
            "--r",
            "5",
            "--data-dir",
            data_s,
        ]))
        .unwrap_err();
        assert!(err.contains("already holds durability artifacts"), "{err}");
        // Recovery replays the journal and the from-scratch rebuild check
        // passes bit-identically.
        run(&argv(&["recover", data_s, "--verify"])).unwrap();
        // Serve writes its batches durably too (fresh dir), weighted.
        let data2 = dir.join("data2");
        run(&argv(&[
            "serve",
            "--model",
            "ba",
            "--nodes",
            "100",
            "--degree",
            "3",
            "--batches",
            "2",
            "--batch-edits",
            "4",
            "--k",
            "3",
            "--l",
            "4",
            "--r",
            "4",
            "--queries-per-batch",
            "2",
            "--weighted",
            "--data-dir",
            data2.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&["recover", data2.to_str().unwrap(), "--verify"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_bad_inputs() {
        // No data dir at all.
        assert!(run(&argv(&["recover"])).is_err());
        // A dir with no snapshot.
        let dir = std::env::temp_dir().join("rwdom_cli_recover_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run(&argv(&["recover", dir.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("no loadable snapshot"), "{err}");
        // --snapshot-every without --data-dir is rejected up front.
        let err = run(&argv(&[
            "stream",
            "--model",
            "er",
            "--nodes",
            "60",
            "--batches",
            "1",
            "--snapshot-every",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("--snapshot-every needs --data-dir"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_rejects_bad_flags() {
        assert!(run(&argv(&["stream", "--model", "nope"])).is_err());
        // Positional args (e.g. an edge-list path by analogy with select)
        // are rejected, not silently ignored.
        assert!(run(&argv(&["stream", "g.edges", "--nodes", "50"])).is_err());
        assert!(run(&argv(&[
            "stream",
            "--model",
            "er",
            "--nodes",
            "50",
            "--problem",
            "f9"
        ]))
        .is_err());
    }

    #[test]
    fn gen_rejects_unknown_model() {
        assert!(run(&argv(&[
            "gen",
            "--model",
            "nope",
            "--nodes",
            "10",
            "--out",
            "/tmp/never.edges"
        ]))
        .is_err());
    }
}
