//! Per-shard engines and the scatter-gather coordinator.
//!
//! A [`ShardSet`] splits the `R` walk layers into contiguous
//! [`LayerRange`]s and gives each range to a [`ShardEngine`] that owns its
//! own graph replica and partial walk index. Every [`EdgeBatch`] is
//! broadcast to all shards in two phases:
//!
//! 1. **Stage** — each shard applies the batch *functionally* to its graph
//!    replica, producing (but not committing) the next-epoch graph and
//!    touched set. Any validation error aborts here with every shard's
//!    state untouched, so the epoch advances all-or-nothing.
//! 2. **Commit** — each shard swaps in its staged graph and refreshes the
//!    walk groups the touched set can have changed, reporting per-shard
//!    [`RefreshStats`] and wall time ([`ShardBatchStats`]).
//!
//! Exactness is structural, not approximate: walk layers derive from
//! counter-based `(seed, node, absolute-layer)` RNG streams, so a shard's
//! layers are bitwise the monolith's layers; seed maintenance runs a
//! [`DeltaGainEngine`](rwd_core::greedy::delta::DeltaGainEngine) over the
//! shard tiling that merges staged integer gain deltas in absolute layer
//! order, so every pick, gain, and objective is bit-identical to the
//! single-process [`StreamEngine`](crate::StreamEngine) on the same trace.

use std::sync::Arc;
use std::time::Instant;

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::{LayerRange, PostingDelta, RefreshStats, WalkIndex};

use crate::batch::{EdgeBatch, GraphDelta, WeightedGraphDelta};
use crate::engine::{BatchReport, StreamConfig};
use crate::index::IncrementalIndex;
use crate::maintain::{MaintainReport, SeedMaintainer};
use crate::{Result, StreamError};

/// The current graph epoch, unweighted or weighted. Graph epochs are
/// [`Arc`]'d: batch application is functional (it builds the next graph and
/// swaps it in), so a snapshot holding the previous epoch's handle stays
/// valid and untouched for as long as it likes.
#[derive(Clone, Debug)]
pub(crate) enum EvolvingGraph {
    Unweighted(Arc<CsrGraph>),
    Weighted(Arc<WeightedCsrGraph>),
}

/// A batch delta staged by phase 1 of [`ShardSet::apply`], not yet
/// committed to any shard.
enum StagedDelta {
    Unweighted(GraphDelta),
    Weighted(WeightedGraphDelta),
}

/// What one shard spent on one committed batch — the per-shard rows of
/// [`BatchReport::shards`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardBatchStats {
    /// Shard ordinal (position in the layer tiling).
    pub shard: usize,
    /// The contiguous layer range the shard owns.
    pub layers: LayerRange,
    /// Walk groups resampled / postings rewritten inside that range.
    pub refresh: RefreshStats,
    /// Wall time of the shard's commit (graph swap + index refresh).
    pub refresh_ms: f64,
}

/// One shard of the engine: a contiguous [`LayerRange`] of the walk index
/// plus its own replica of the evolving graph. The shard's layers are
/// bitwise identical to the same layers of the monolithic index at every
/// epoch (absolute-layer RNG streams), which is what makes the coordinator
/// exact rather than approximate.
#[derive(Clone, Debug)]
pub struct ShardEngine {
    shard: usize,
    range: LayerRange,
    graph: EvolvingGraph,
    index: IncrementalIndex,
}

impl ShardEngine {
    /// Shard ordinal in the tiling.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The contiguous layer range this shard owns.
    pub fn range(&self) -> LayerRange {
        self.range
    }

    /// The shard's partial walk index (layers `range`, bitwise the
    /// monolith's slice).
    pub fn index(&self) -> &WalkIndex {
        self.index.index()
    }

    /// Shared handle to the shard's current-epoch partial index; holding it
    /// pins the epoch (the next commit copies-on-write).
    pub fn index_shared(&self) -> Arc<WalkIndex> {
        self.index.share()
    }

    /// Accumulated churn this shard has absorbed over every batch.
    pub fn lifetime_stats(&self) -> RefreshStats {
        self.index.lifetime_stats()
    }

    /// Phase 1: applies the batch functionally to the shard's graph
    /// replica. No shard state changes; an error leaves everything as-is.
    fn stage(&self, batch: &EdgeBatch) -> Result<StagedDelta> {
        Ok(match &self.graph {
            EvolvingGraph::Unweighted(g) => StagedDelta::Unweighted(batch.apply(g)?),
            EvolvingGraph::Weighted(g) => StagedDelta::Weighted(batch.apply_weighted(g)?),
        })
    }

    /// Phase 2: swaps in the staged graph and refreshes the shard's layer
    /// range. Returns the shard's stats, the refresh's posting edit script
    /// (absolute layers — the warm-start input for seed maintenance), plus
    /// the (shard-independent) touched-node and edge counts.
    fn commit(&mut self, staged: StagedDelta) -> (ShardBatchStats, PostingDelta, usize, usize) {
        let start = Instant::now();
        let (refresh, posting_delta, touched, edges) = match (&mut self.graph, staged) {
            (EvolvingGraph::Unweighted(g), StagedDelta::Unweighted(delta)) => {
                let (stats, edits) = self.index.apply_collecting(&delta);
                let touched = delta.touched.len();
                let edges = delta.graph.m();
                *g = Arc::new(delta.graph);
                (stats, edits, touched, edges)
            }
            (EvolvingGraph::Weighted(g), StagedDelta::Weighted(delta)) => {
                let (stats, edits) = self.index.apply_weighted_collecting(&delta);
                let touched = delta.touched.len();
                let edges = delta.graph.m();
                *g = Arc::new(delta.graph);
                (stats, edits, touched, edges)
            }
            _ => unreachable!("staged delta kind always matches the shard's graph kind"),
        };
        let refresh_ms = start.elapsed().as_secs_f64() * 1e3;
        (
            ShardBatchStats {
                shard: self.shard,
                layers: self.range,
                refresh,
                refresh_ms,
            },
            posting_delta,
            touched,
            edges,
        )
    }

    /// Reassembles a shard from recovered parts (snapshot load path). The
    /// caller is responsible for `index` actually covering `range` of the
    /// monolithic index over `graph` — the recovery proptests hold the
    /// result to bitwise equality with a live engine.
    pub(crate) fn from_parts(
        shard: usize,
        range: LayerRange,
        graph: EvolvingGraph,
        index: IncrementalIndex,
    ) -> Self {
        ShardEngine {
            shard,
            range,
            graph,
            index,
        }
    }
}

/// A durability hook [`ShardSet::apply_hooked`] invokes after phase 1 has
/// staged a batch on every shard (so validation has passed and the commit
/// is certain to succeed) and before phase 2 commits anything: arguments
/// are the batch and the epoch the commit will publish. An `Err` aborts
/// the apply with no shard changed — the write-ahead contract.
pub(crate) type ApplyHook<'a> = &'a mut dyn FnMut(&EdgeBatch, u64) -> std::io::Result<()>;

/// Validates the engine configuration against the graph size. Shared by
/// every constructor path.
pub(crate) fn validate_config(cfg: &StreamConfig, n: usize) -> Result<()> {
    if cfg.k == 0 || cfg.k > n {
        return Err(StreamError::InvalidConfig(format!(
            "k = {} outside [1, n = {n}]",
            cfg.k
        )));
    }
    if cfg.r == 0 {
        return Err(StreamError::InvalidConfig("r must be >= 1".into()));
    }
    if cfg.l == 0 || cfg.l > u16::MAX as u32 {
        return Err(StreamError::InvalidConfig(format!(
            "l = {} outside [1, {}]",
            cfg.l,
            u16::MAX
        )));
    }
    if let rwd_core::greedy::approx::GainRule::Combined { lambda } = cfg.rule {
        if !(0.0..=1.0).contains(&lambda) {
            return Err(StreamError::InvalidConfig(format!(
                "lambda = {lambda} outside [0, 1]"
            )));
        }
    }
    Ok(())
}

/// Rejects shard counts the layer tiling cannot satisfy: `0` shards, or
/// more shards than there are walk layers (some shard would own no layers).
/// Named error instead of the panic `LayerRange::partition` would raise.
pub(crate) fn validate_shards(shards: usize, layers: usize) -> Result<()> {
    if shards == 0 || shards > layers {
        return Err(StreamError::InvalidShardCount { shards, layers });
    }
    Ok(())
}

/// The scatter-gather coordinator: a tiling of [`ShardEngine`]s plus the
/// shared [`SeedMaintainer`]. See the module docs for the two-phase batch
/// protocol and the exactness argument.
#[derive(Clone, Debug)]
pub struct ShardSet {
    cfg: StreamConfig,
    shards: Vec<ShardEngine>,
    maintainer: SeedMaintainer,
    epoch: u64,
}

impl ShardSet {
    /// Cold-starts `shard_count` shards over an unweighted graph: balanced
    /// contiguous layer ranges, one graph replica and partial index each,
    /// then a bootstrap seed selection over the tiling.
    pub fn new(graph: CsrGraph, cfg: StreamConfig, shard_count: usize) -> Result<Self> {
        validate_config(&cfg, graph.n())?;
        validate_shards(shard_count, cfg.r)?;
        let ranges = LayerRange::partition(cfg.r, shard_count);
        let shards: Vec<ShardEngine> = ranges
            .iter()
            .enumerate()
            .map(|(s, &range)| ShardEngine {
                shard: s,
                range,
                graph: EvolvingGraph::Unweighted(Arc::new(graph.clone())),
                index: IncrementalIndex::build_layer_range(
                    &graph,
                    cfg.l,
                    range,
                    cfg.seed,
                    cfg.threads,
                ),
            })
            .collect();
        Ok(Self::bootstrap(cfg, shards))
    }

    /// Weighted twin of [`ShardSet::new`].
    pub fn new_weighted(
        graph: WeightedCsrGraph,
        cfg: StreamConfig,
        shard_count: usize,
    ) -> Result<Self> {
        validate_config(&cfg, graph.n())?;
        validate_shards(shard_count, cfg.r)?;
        let ranges = LayerRange::partition(cfg.r, shard_count);
        let shards: Vec<ShardEngine> = ranges
            .iter()
            .enumerate()
            .map(|(s, &range)| ShardEngine {
                shard: s,
                range,
                graph: EvolvingGraph::Weighted(Arc::new(graph.clone())),
                index: IncrementalIndex::build_weighted_layer_range(
                    &graph,
                    cfg.l,
                    range,
                    cfg.seed,
                    cfg.threads,
                ),
            })
            .collect();
        Ok(Self::bootstrap(cfg, shards))
    }

    fn bootstrap(cfg: StreamConfig, shards: Vec<ShardEngine>) -> Self {
        let mut maintainer = SeedMaintainer::new(cfg.rule, cfg.k, cfg.threads);
        let refs: Vec<&WalkIndex> = shards.iter().map(|s| s.index.index()).collect();
        maintainer.maintain_sharded(&refs);
        ShardSet {
            cfg,
            shards,
            maintainer,
            epoch: 0,
        }
    }

    /// Reassembles a coordinator from recovered shards at `epoch`. Seed
    /// maintenance bootstraps cold over the loaded tiling — bit-identical
    /// to the warm state the live engine carried, because warm ≡ cold is
    /// the maintainer's proptested invariant.
    pub(crate) fn from_recovered(cfg: StreamConfig, shards: Vec<ShardEngine>, epoch: u64) -> Self {
        let mut set = Self::bootstrap(cfg, shards);
        set.epoch = epoch;
        set
    }

    /// Applies one churn batch across every shard, all-or-nothing: phase 1
    /// stages the batch functionally on every shard (any rejection returns
    /// an error with no shard changed and the epoch not advanced); phase 2
    /// commits shard by shard, then one seed-maintenance pass runs over the
    /// refreshed tiling and the epoch advances. Readers therefore never
    /// observe a partially-landed batch: the epoch stamp moves only after
    /// the last shard has committed.
    ///
    /// No-op batches short-circuit exactly like the single-process engine:
    /// no refresh, no replay, no epoch bump, per-shard rows empty.
    pub fn apply(&mut self, batch: &EdgeBatch) -> Result<BatchReport> {
        self.apply_hooked(batch, None)
    }

    /// [`ShardSet::apply`] with an optional durability hook threaded
    /// between phase 1 (stage) and phase 2 (commit) — the write-ahead
    /// point: validation has passed, nothing has changed yet, and the
    /// commit that follows is infallible. No-op batches never reach the
    /// hook (they don't advance the epoch, so there is nothing to log).
    pub(crate) fn apply_hooked(
        &mut self,
        batch: &EdgeBatch,
        hook: Option<ApplyHook<'_>>,
    ) -> Result<BatchReport> {
        if batch.is_empty() {
            return Ok(BatchReport {
                epoch: self.epoch,
                timestamp: batch.timestamp,
                insertions: 0,
                deletions: 0,
                edges: self.edges(),
                touched_nodes: 0,
                refresh: RefreshStats {
                    groups_total: self.n() * self.cfg.r,
                    ..RefreshStats::default()
                },
                maintain: MaintainReport {
                    seeds_swapped: 0,
                    rounds_kept: self.maintainer.seeds().len(),
                    objective: self.maintainer.objective(),
                    touched_postings: 0,
                    first_invalid_round: None,
                    warm: false,
                    absorbed_postings: 0,
                    replayed_rounds: 0,
                },
                maintain_ms: 0.0,
                shards: Vec::new(),
            });
        }
        let metrics = crate::obs::stream_metrics();
        // Phase 1 — stage on every shard before touching any state.
        let stage_start = Instant::now();
        let staged: Vec<StagedDelta> = self
            .shards
            .iter()
            .map(|s| s.stage(batch))
            .collect::<Result<_>>()?;
        metrics.stage_ns.record_duration(stage_start.elapsed());
        // Write-ahead point: the batch is valid on every shard and the
        // epoch it will publish is known; journal it before any state
        // changes so a crash either loses the whole batch or none of it.
        if let Some(hook) = hook {
            let journal_timer = metrics.journal_ns.time();
            hook(batch, self.epoch + 1).map_err(|e| StreamError::Durability {
                context: "write-ahead journal append".into(),
                source: e,
            })?;
            journal_timer.stop();
        }
        // Phase 2 — commit every shard, gathering per-shard stats and the
        // per-shard posting edit scripts (absolute layers, so the
        // maintainer consumes them without translation).
        let mut shard_stats = Vec::with_capacity(self.shards.len());
        let mut edits = Vec::with_capacity(self.shards.len());
        let (mut touched_nodes, mut edges) = (0usize, 0usize);
        for (shard, delta) in self.shards.iter_mut().zip(staged) {
            let (stats, posting_delta, touched, m) = shard.commit(delta);
            metrics.refresh_ns.record((stats.refresh_ms * 1e6) as u64);
            shard_stats.push(stats);
            edits.push(posting_delta);
            (touched_nodes, edges) = (touched, m);
        }
        let refresh = Self::merge_refresh(shard_stats.iter().map(|s| s.refresh));
        let refs: Vec<&WalkIndex> = self.shards.iter().map(|s| s.index.index()).collect();
        let maintain_start = Instant::now();
        let maintain = self.maintainer.maintain_sharded_warm(&refs, &edits);
        let maintain_elapsed = maintain_start.elapsed();
        let maintain_ms = maintain_elapsed.as_secs_f64() * 1e3;
        if maintain.warm {
            metrics.maintain_warm_ns.record_duration(maintain_elapsed);
        } else {
            metrics.maintain_cold_ns.record_duration(maintain_elapsed);
        }
        let publish_start = Instant::now();
        self.epoch += 1;
        let report = BatchReport {
            epoch: self.epoch,
            timestamp: batch.timestamp,
            insertions: batch.insertions.len(),
            deletions: batch.deletions.len(),
            edges,
            touched_nodes,
            refresh,
            maintain,
            maintain_ms,
            shards: shard_stats,
        };
        // Churn counters folded out of the report, then the publish stamp.
        metrics.batches.inc();
        metrics.insertions.add(report.insertions as u64);
        metrics.deletions.add(report.deletions as u64);
        metrics.touched_nodes.add(report.touched_nodes as u64);
        metrics
            .groups_resampled
            .add(report.refresh.groups_resampled as u64);
        metrics
            .postings_added
            .add(report.refresh.postings_added as u64);
        metrics
            .postings_removed
            .add(report.refresh.postings_removed as u64);
        metrics
            .seeds_swapped
            .add(report.maintain.seeds_swapped as u64);
        metrics
            .replayed_rounds
            .add(report.maintain.replayed_rounds as u64);
        metrics.epoch.set(self.epoch as i64);
        metrics.publish_ns.record_duration(publish_start.elapsed());
        Ok(report)
    }

    /// Sums per-shard refresh stats into the whole-index view: every
    /// counter adds, including `groups_total` (the per-shard totals
    /// `n · |range|` tile `n · R` exactly).
    fn merge_refresh(stats: impl Iterator<Item = RefreshStats>) -> RefreshStats {
        stats.fold(RefreshStats::default(), |mut acc, s| {
            acc.groups_resampled += s.groups_resampled;
            acc.groups_total += s.groups_total;
            acc.postings_removed += s.postings_removed;
            acc.postings_added += s.postings_added;
            acc
        })
    }

    /// Node count of the (shared) node universe.
    pub fn n(&self) -> usize {
        self.shards[0].index.index().n()
    }

    /// Edges in the current graph epoch.
    pub fn edges(&self) -> usize {
        match &self.shards[0].graph {
            EvolvingGraph::Unweighted(g) => g.m(),
            EvolvingGraph::Weighted(g) => g.m(),
        }
    }

    /// Sets the seed maintainer's warm-start crossover (see
    /// [`SeedMaintainer::set_crossover`]): `0.0` forces every batch's
    /// maintenance pass cold, `1.0` warms unconditionally. Results never
    /// change — warmth only moves wall time.
    pub fn set_maintain_crossover(&mut self, crossover: f64) {
        self.maintainer.set_crossover(crossover);
    }

    /// The maintained seed set in selection order.
    pub fn seeds(&self) -> &[NodeId] {
        self.maintainer.seeds()
    }

    /// Marginal gain of each maintained seed at its selection round.
    pub fn gain_trace(&self) -> &[f64] {
        self.maintainer.gain_trace()
    }

    /// Estimated objective of the maintained seed set.
    pub fn objective(&self) -> f64 {
        self.maintainer.objective()
    }

    /// The shards in layer order.
    pub fn shards(&self) -> &[ShardEngine] {
        &self.shards
    }

    /// Number of shards in the tiling.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The layer ranges of the tiling, in order.
    pub fn ranges(&self) -> Vec<LayerRange> {
        self.shards.iter().map(|s| s.range).collect()
    }

    /// Borrowed handles to every shard's partial index, in layer order —
    /// the tiling [`SeedMaintainer::maintain_sharded`] and the serving
    /// layer's scatter-gather queries consume.
    pub fn shard_indexes(&self) -> Vec<&WalkIndex> {
        self.shards.iter().map(|s| s.index.index()).collect()
    }

    /// Shared handles to every shard's current-epoch partial index; holding
    /// them pins the epoch shard by shard (each next commit
    /// copies-on-write).
    pub fn shard_indexes_shared(&self) -> Vec<Arc<WalkIndex>> {
        self.shards.iter().map(|s| s.index.share()).collect()
    }

    /// The current unweighted graph (`None` when running weighted). All
    /// replicas are equal; shard 0's is returned.
    pub fn graph(&self) -> Option<&CsrGraph> {
        match &self.shards[0].graph {
            EvolvingGraph::Unweighted(g) => Some(g),
            EvolvingGraph::Weighted(_) => None,
        }
    }

    /// The current weighted graph (`None` when running unweighted).
    pub fn weighted_graph(&self) -> Option<&WeightedCsrGraph> {
        match &self.shards[0].graph {
            EvolvingGraph::Unweighted(_) => None,
            EvolvingGraph::Weighted(g) => Some(g),
        }
    }

    /// Shared handle to the current unweighted graph epoch (`None` when
    /// running weighted).
    pub fn graph_shared(&self) -> Option<Arc<CsrGraph>> {
        match &self.shards[0].graph {
            EvolvingGraph::Unweighted(g) => Some(Arc::clone(g)),
            EvolvingGraph::Weighted(_) => None,
        }
    }

    /// Shared handle to the current weighted graph epoch (`None` when
    /// running unweighted).
    pub fn weighted_graph_shared(&self) -> Option<Arc<WeightedCsrGraph>> {
        match &self.shards[0].graph {
            EvolvingGraph::Unweighted(_) => None,
            EvolvingGraph::Weighted(g) => Some(Arc::clone(g)),
        }
    }

    /// Number of batches applied since the cold start.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Accumulated index-churn statistics over every applied batch, summed
    /// across shards (so the totals describe the whole `n · R`-group
    /// index).
    pub fn lifetime_stats(&self) -> RefreshStats {
        Self::merge_refresh(self.shards.iter().map(|s| s.index.lifetime_stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::greedy::approx::GainRule;
    use rwd_graph::generators::erdos_renyi_gnp;

    fn cfg() -> StreamConfig {
        StreamConfig {
            l: 5,
            r: 6,
            k: 4,
            seed: 13,
            rule: GainRule::HittingTime,
            threads: 0,
        }
    }

    #[test]
    fn shard_count_is_validated_by_name() {
        let g = erdos_renyi_gnp(40, 0.1, 2).unwrap();
        let err = ShardSet::new(g.clone(), cfg(), 0).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::InvalidShardCount {
                    shards: 0,
                    layers: 6
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("shard count"), "{err}");
        let err = ShardSet::new(g.clone(), cfg(), 7).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::InvalidShardCount {
                    shards: 7,
                    layers: 6
                }
            ),
            "{err}"
        );
        assert!(ShardSet::new(g, cfg(), 6).is_ok());
    }

    #[test]
    fn failed_batch_leaves_every_shard_unchanged() {
        let g = erdos_renyi_gnp(40, 0.1, 2).unwrap();
        let mut set = ShardSet::new(g, cfg(), 3).unwrap();
        let seeds = set.seeds().to_vec();
        let before: Vec<WalkIndex> = set.shard_indexes().into_iter().cloned().collect();
        let mut bad = EdgeBatch::new(1);
        bad.insertions.push((0, 1, 1.0));
        bad.deletions.push((0, 0)); // self-loop: rejected in phase 1
        assert!(set.apply(&bad).is_err());
        assert_eq!(set.epoch(), 0, "failed batch must not advance the epoch");
        assert_eq!(set.seeds(), &seeds[..]);
        for (idx, want) in set.shard_indexes().into_iter().zip(&before) {
            assert!(*idx == *want, "shard index changed by a rejected batch");
        }
    }

    #[test]
    fn per_shard_rows_tile_the_merged_report() {
        let g = erdos_renyi_gnp(60, 0.08, 9).unwrap();
        let mut set = ShardSet::new(g.clone(), cfg(), 4).unwrap();
        let mut batch = EdgeBatch::new(5);
        let (u, v) = (0..60u32)
            .flat_map(|u| ((u + 1)..60).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        batch.insertions.push((u, v, 1.0));
        let report = set.apply(&batch).unwrap();
        assert_eq!(report.shards.len(), 4);
        assert_eq!(
            report.shards.iter().map(|s| s.layers.len()).sum::<usize>(),
            6,
            "shard rows must tile all R layers"
        );
        let summed: usize = report
            .shards
            .iter()
            .map(|s| s.refresh.groups_resampled)
            .sum();
        assert_eq!(report.refresh.groups_resampled, summed);
        assert_eq!(report.refresh.groups_total, 60 * 6);
        let lifetime = set.lifetime_stats();
        assert_eq!(lifetime.groups_resampled, summed);
        assert_eq!(lifetime.groups_total, 60 * 6);
    }
}
