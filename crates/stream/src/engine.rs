//! The end-to-end evolving pipeline: graph → index → seeds, per batch.

use std::sync::Arc;

use rwd_core::greedy::approx::GainRule;
use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::{LayerRange, RefreshStats, WalkIndex};

use crate::batch::EdgeBatch;
use crate::maintain::MaintainReport;
use crate::shard::{ShardBatchStats, ShardSet};
use crate::Result;

/// Configuration of a [`StreamEngine`].
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Walk-length bound `L`.
    pub l: u32,
    /// Walks per node `R`.
    pub r: usize,
    /// Seed-set budget `k`.
    pub k: usize,
    /// Walk RNG seed (the counter-based streams that make maintenance
    /// exact all derive from it).
    pub seed: u64,
    /// Gain rule the maintained seed set optimizes.
    pub rule: GainRule,
    /// Worker threads (`0` = all cores). Changing this never changes any
    /// result, only wall time.
    pub threads: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        // The paper's real-data defaults (L = 6, R = 100, k = 10).
        StreamConfig {
            l: 6,
            r: 100,
            k: 10,
            seed: 0,
            rule: GainRule::HittingTime,
            threads: 0,
        }
    }
}

/// Per-batch churn report — the observability surface of the subsystem.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Epoch number after this batch (epoch 0 is the cold start).
    pub epoch: u64,
    /// The batch's event timestamp, echoed back.
    pub timestamp: u64,
    /// Edge insertions applied.
    pub insertions: usize,
    /// Edge deletions applied.
    pub deletions: usize,
    /// Edges in the post-batch graph.
    pub edges: usize,
    /// Nodes whose adjacency changed.
    pub touched_nodes: usize,
    /// Index-maintenance accounting summed across shards (groups
    /// resampled, postings rewritten, over the whole `n · R`-group index).
    pub refresh: RefreshStats,
    /// Seed-maintenance accounting (swaps, kept prefix, objective, warm
    /// path).
    pub maintain: MaintainReport,
    /// Wall time of the seed-maintenance pass — the refresh half of the
    /// batch is timed per shard in [`BatchReport::shards`]; together the
    /// two tell where a batch's latency went (0 for no-op batches).
    pub maintain_ms: f64,
    /// Per-shard breakdown of the refresh, in layer order (one row per
    /// shard; empty for short-circuited no-op batches).
    pub shards: Vec<ShardBatchStats>,
}

impl BatchReport {
    /// Fraction of walk groups the batch forced to resample.
    pub fn resampled_fraction(&self) -> f64 {
        if self.refresh.groups_total == 0 {
            0.0
        } else {
            self.refresh.groups_resampled as f64 / self.refresh.groups_total as f64
        }
    }

    /// First greedy round this batch invalidated (`None` when the whole
    /// seed prefix survived) — the maintain-side stability signal.
    pub fn first_invalid_round(&self) -> Option<usize> {
        self.maintain.first_invalid_round
    }

    /// Total refresh wall time summed across shards (each shard row also
    /// carries its own `refresh_ms`).
    pub fn refresh_ms(&self) -> f64 {
        self.shards.iter().map(|s| s.refresh_ms).sum()
    }
}

/// The evolving random-walk domination system: applies [`EdgeBatch`]es to
/// the graph, maintains the walk index incrementally, and repairs the seed
/// set — reporting what each batch actually cost.
///
/// Since the sharding refactor this is a facade over the scatter-gather
/// [`ShardSet`] coordinator: [`StreamEngine::new`] runs the 1-shard special
/// case (identical behavior and API to the historical monolith), and
/// [`StreamEngine::with_shards`] tiles the `R` walk layers across `N`
/// per-shard engines. The shard count is **never observable in any
/// result** — only in wall time and in the per-shard rows of
/// [`BatchReport::shards`].
///
/// Invariant (asserted by the equivalence suites): after any sequence of
/// batches, the maintained index (concatenated across shards) is
/// bit-identical to a cold `WalkIndex::build`/`build_weighted` on the
/// current graph, and `engine.seeds()` equals the static `Strategy::Delta`
/// selection on that index — the evolving system never drifts from what a
/// from-scratch run would compute.
#[derive(Clone, Debug)]
pub struct StreamEngine {
    inner: ShardSet,
}

impl StreamEngine {
    /// Cold-starts the system on an unweighted graph: builds the epoch-0
    /// index and bootstraps the seed set. Single-shard (the historical
    /// monolithic engine).
    pub fn new(graph: CsrGraph, cfg: StreamConfig) -> Result<Self> {
        Self::with_shards(graph, cfg, 1)
    }

    /// Cold-starts the system on a weighted graph. Single-shard.
    pub fn new_weighted(graph: WeightedCsrGraph, cfg: StreamConfig) -> Result<Self> {
        Self::with_shards_weighted(graph, cfg, 1)
    }

    /// Cold-starts a sharded engine: the `R` walk layers are tiled across
    /// `shards` per-shard engines behind a scatter-gather coordinator.
    /// Every result (seeds, gains, objectives, index bits) is identical to
    /// the 1-shard engine; only wall time and the per-shard report rows
    /// differ. Rejects `shards == 0` and `shards > cfg.r` with
    /// [`crate::StreamError::InvalidShardCount`].
    pub fn with_shards(graph: CsrGraph, cfg: StreamConfig, shards: usize) -> Result<Self> {
        Ok(StreamEngine {
            inner: ShardSet::new(graph, cfg, shards)?,
        })
    }

    /// Weighted twin of [`StreamEngine::with_shards`].
    pub fn with_shards_weighted(
        graph: WeightedCsrGraph,
        cfg: StreamConfig,
        shards: usize,
    ) -> Result<Self> {
        Ok(StreamEngine {
            inner: ShardSet::new_weighted(graph, cfg, shards)?,
        })
    }

    /// Applies one churn batch end to end: graph edit → incremental index
    /// refresh on every shard → seed repair. On a batch validation error
    /// the engine state is unchanged (phase 1 stages the edit functionally
    /// on every shard before anything commits, so a rejected batch is
    /// all-or-nothing even under sharding).
    ///
    /// **No-op batches.** A batch with no edits short-circuits: nothing is
    /// refreshed, no greedy round is replayed, and — deliberately — the
    /// epoch does **not** advance. The epoch stamps *state*, not batch
    /// arrivals: readers cache per-epoch answers, so identical state must
    /// keep an identical stamp. The returned report carries the current
    /// epoch with all churn counters at zero.
    pub fn apply(&mut self, batch: &EdgeBatch) -> Result<BatchReport> {
        self.inner.apply(batch)
    }

    /// Wraps a recovered [`ShardSet`] (the durable layer's snapshot-load
    /// path) in the public facade.
    pub(crate) fn from_shard_set(inner: ShardSet) -> Self {
        StreamEngine { inner }
    }

    /// [`StreamEngine::apply`] with the durability hook threaded through
    /// (see [`ShardSet::apply_hooked`]): the hook runs after validation
    /// and before any state changes — the write-ahead point.
    pub(crate) fn apply_hooked(
        &mut self,
        batch: &EdgeBatch,
        hook: Option<crate::shard::ApplyHook<'_>>,
    ) -> Result<BatchReport> {
        self.inner.apply_hooked(batch, hook)
    }

    /// Sets the seed maintainer's warm-start crossover (see
    /// [`crate::SeedMaintainer::set_crossover`]): `0.0` forces every
    /// batch's maintenance pass cold, `1.0` warms unconditionally. Results
    /// never change — warmth only moves wall time.
    pub fn set_maintain_crossover(&mut self, crossover: f64) {
        self.inner.set_maintain_crossover(crossover);
    }

    /// The maintained seed set in selection order.
    pub fn seeds(&self) -> &[NodeId] {
        self.inner.seeds()
    }

    /// Marginal gain of each maintained seed at its selection round.
    pub fn gain_trace(&self) -> &[f64] {
        self.inner.gain_trace()
    }

    /// Estimated objective of the maintained seed set (the gain-trace sum
    /// every [`BatchReport`] also carries).
    pub fn objective(&self) -> f64 {
        self.inner.objective()
    }

    /// The maintained walk index.
    ///
    /// # Panics
    /// Panics on a multi-shard engine — there is no single monolithic
    /// index there; use [`StreamEngine::shard_indexes`] /
    /// [`StreamEngine::shard_indexes_shared`] instead.
    pub fn index(&self) -> &WalkIndex {
        assert_eq!(
            self.inner.shard_count(),
            1,
            "index() needs the single-shard engine; a sharded engine exposes shard_indexes()"
        );
        self.inner.shards()[0].index()
    }

    /// A shared handle to the current epoch's index; holding it pins this
    /// epoch (the next batch copies-on-write instead of mutating what the
    /// holder observes). This — together with
    /// [`StreamEngine::graph_shared`] /
    /// [`StreamEngine::weighted_graph_shared`] — is the snapshot
    /// publication surface the serving layer builds on.
    ///
    /// # Panics
    /// Panics on a multi-shard engine (see [`StreamEngine::index`]).
    pub fn index_shared(&self) -> Arc<WalkIndex> {
        assert_eq!(
            self.inner.shard_count(),
            1,
            "index_shared() needs the single-shard engine; use shard_indexes_shared()"
        );
        self.inner.shards()[0].index_shared()
    }

    /// Number of shards the engine runs (1 for [`StreamEngine::new`]).
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// The contiguous layer ranges of the shard tiling, in order.
    pub fn shard_ranges(&self) -> Vec<LayerRange> {
        self.inner.ranges()
    }

    /// Borrowed handles to every shard's partial index, in layer order.
    /// On a 1-shard engine this is `[self.index()]`.
    pub fn shard_indexes(&self) -> Vec<&WalkIndex> {
        self.inner.shard_indexes()
    }

    /// Shared handles to every shard's current-epoch partial index;
    /// holding them pins the epoch on every shard. The scatter half of the
    /// serving layer's scatter-gather queries.
    pub fn shard_indexes_shared(&self) -> Vec<Arc<WalkIndex>> {
        self.inner.shard_indexes_shared()
    }

    /// The current unweighted graph (`None` when running weighted).
    pub fn graph(&self) -> Option<&CsrGraph> {
        self.inner.graph()
    }

    /// The current weighted graph (`None` when running unweighted).
    pub fn weighted_graph(&self) -> Option<&WeightedCsrGraph> {
        self.inner.weighted_graph()
    }

    /// Shared handle to the current unweighted graph epoch (`None` when
    /// running weighted). Graph epochs are immutable once published, so the
    /// handle stays valid across later batches.
    pub fn graph_shared(&self) -> Option<Arc<CsrGraph>> {
        self.inner.graph_shared()
    }

    /// Shared handle to the current weighted graph epoch (`None` when
    /// running unweighted).
    pub fn weighted_graph_shared(&self) -> Option<Arc<WeightedCsrGraph>> {
        self.inner.weighted_graph_shared()
    }

    /// Number of batches applied since the cold start.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// The engine configuration.
    pub fn config(&self) -> &StreamConfig {
        self.inner.config()
    }

    /// Accumulated index-churn statistics over every applied batch, summed
    /// across shards.
    pub fn lifetime_stats(&self) -> RefreshStats {
        self.inner.lifetime_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamError;
    use rwd_core::algo::select_from_index;
    use rwd_core::Strategy;
    use rwd_graph::generators::erdos_renyi_gnp;

    fn cfg(k: usize) -> StreamConfig {
        StreamConfig {
            l: 5,
            r: 6,
            k,
            seed: 13,
            rule: GainRule::HittingTime,
            threads: 0,
        }
    }

    #[test]
    fn engine_never_drifts_from_cold_start() {
        let g0 = erdos_renyi_gnp(90, 0.06, 21).unwrap();
        let mut engine = StreamEngine::new(g0.clone(), cfg(5)).unwrap();

        let mut batch = EdgeBatch::new(100);
        'outer: for u in 0..90u32 {
            for v in (u + 1)..90 {
                if !g0.has_edge(NodeId(u), NodeId(v)) {
                    batch.insertions.push((u, v, 1.0));
                    if batch.insertions.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.timestamp, 100);
        assert!(report.touched_nodes >= 2);
        assert!(report.refresh.groups_resampled > 0);
        assert!(report.resampled_fraction() > 0.0);
        assert_eq!(report.shards.len(), 1, "1-shard engine, one report row");

        // Cold-start comparison on the evolved graph.
        let g1 = engine.graph().unwrap().clone();
        let fresh = WalkIndex::build(&g1, 5, 6, 13);
        assert!(*engine.index() == fresh, "index drifted from cold start");
        let sel = select_from_index(&fresh, GainRule::HittingTime, 5, Strategy::Delta, 0).unwrap();
        assert_eq!(engine.seeds(), &sel.nodes[..], "seeds drifted");
    }

    #[test]
    fn weighted_engine_round_trips() {
        let g0 = erdos_renyi_gnp(60, 0.08, 4).unwrap();
        let w0 = rwd_graph::weighted::weighted_twin(&g0, 7).unwrap();
        let mut engine = StreamEngine::new_weighted(w0.clone(), cfg(4)).unwrap();
        assert!(engine.graph().is_none());
        let del = g0.edges().next().map(|(u, v)| (u.raw(), v.raw())).unwrap();
        let mut batch = EdgeBatch::new(7);
        batch.deletions.push(del);
        batch.insertions.push((del.0, del.1, 2.5)); // weight update
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.touched_nodes, 2);
        let w1 = engine.weighted_graph().unwrap().clone();
        let fresh = WalkIndex::build_weighted(&w1, 5, 6, 13);
        assert!(*engine.index() == fresh);
    }

    #[test]
    fn empty_batch_is_a_true_noop() {
        // Regression: an empty batch used to pay the full pipeline — a
        // zero-touched refresh plus a complete k-round maintain replay —
        // and still bumped the epoch. It must now short-circuit: same
        // epoch, untouched index and seeds, all-zero churn counters, and
        // the objective echoed from the last real pass.
        let g0 = erdos_renyi_gnp(60, 0.08, 9).unwrap();
        let mut engine = StreamEngine::new(g0, cfg(4)).unwrap();
        let seeds = engine.seeds().to_vec();
        let objective = engine.objective();
        let index_before = engine.index().clone();

        let report = engine.apply(&EdgeBatch::new(77)).unwrap();
        assert_eq!(engine.epoch(), 0, "no-op batch must not bump the epoch");
        assert_eq!(report.epoch, 0);
        assert_eq!(report.timestamp, 77);
        assert_eq!((report.insertions, report.deletions), (0, 0));
        assert_eq!(report.touched_nodes, 0);
        assert_eq!(report.refresh.groups_resampled, 0);
        assert_eq!(report.refresh.postings_rewritten(), 0);
        assert_eq!(report.refresh.groups_total, 60 * 6);
        assert!(report.shards.is_empty(), "no-op batch refreshes no shard");
        assert_eq!(report.maintain.seeds_swapped, 0);
        assert_eq!(report.maintain.rounds_kept, 4);
        assert_eq!(report.maintain.touched_postings, 0);
        assert_eq!(report.maintain.objective.to_bits(), objective.to_bits());
        assert_eq!(engine.seeds(), &seeds[..]);
        assert!(*engine.index() == index_before);
        assert_eq!(engine.lifetime_stats(), RefreshStats::default());

        // A later real batch then advances to epoch 1 as usual.
        let mut batch = EdgeBatch::new(78);
        let g = engine.graph().unwrap();
        let (u, v) = (0..60u32)
            .flat_map(|u| ((u + 1)..60).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        batch.insertions.push((u, v, 1.0));
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.epoch, 1);
    }

    #[test]
    fn shared_handles_pin_the_published_epoch() {
        let g0 = erdos_renyi_gnp(50, 0.1, 3).unwrap();
        let mut engine = StreamEngine::new(g0, cfg(3)).unwrap();
        let idx0 = engine.index_shared();
        let g0_shared = engine.graph_shared().unwrap();
        assert!(engine.weighted_graph_shared().is_none());
        let before = (*idx0).clone();

        let mut batch = EdgeBatch::new(1);
        let (u, v) = (0..50u32)
            .flat_map(|u| ((u + 1)..50).map(move |v| (u, v)))
            .find(|&(u, v)| !g0_shared.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        batch.insertions.push((u, v, 1.0));
        engine.apply(&batch).unwrap();

        // The pinned epoch is untouched; the engine moved on.
        assert!(*idx0 == before);
        assert!(!g0_shared.has_edge(NodeId(u), NodeId(v)));
        assert!(engine.graph().unwrap().has_edge(NodeId(u), NodeId(v)));
        assert!(*engine.index() != *idx0);
    }

    #[test]
    fn failed_batch_leaves_state_unchanged() {
        let g0 = erdos_renyi_gnp(40, 0.1, 2).unwrap();
        let mut engine = StreamEngine::new(g0, cfg(3)).unwrap();
        let seeds = engine.seeds().to_vec();
        let mut bad = EdgeBatch::new(1);
        bad.deletions.push((0, 0)); // self-loop: rejected
        assert!(engine.apply(&bad).is_err());
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.seeds(), &seeds[..]);
    }

    #[test]
    fn invalid_config_rejected() {
        let g = erdos_renyi_gnp(10, 0.3, 1).unwrap();
        assert!(StreamEngine::new(g.clone(), cfg(0)).is_err());
        assert!(StreamEngine::new(g.clone(), cfg(11)).is_err());
        let mut c = cfg(2);
        c.r = 0;
        assert!(StreamEngine::new(g.clone(), c).is_err());
        let mut c = cfg(2);
        c.rule = GainRule::Combined { lambda: 2.0 };
        assert!(StreamEngine::new(g, c).is_err());
    }

    #[test]
    fn sharded_engine_tracks_the_monolith_bitwise() {
        let g0 = erdos_renyi_gnp(70, 0.08, 31).unwrap();
        let mut mono = StreamEngine::new(g0.clone(), cfg(4)).unwrap();
        let mut sharded = StreamEngine::with_shards(g0.clone(), cfg(4), 3).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(
            sharded
                .shard_ranges()
                .iter()
                .map(|rg| rg.len())
                .sum::<usize>(),
            6
        );
        assert_eq!(sharded.seeds(), mono.seeds());

        let mut batch = EdgeBatch::new(1);
        let (u, v) = (0..70u32)
            .flat_map(|u| ((u + 1)..70).map(move |v| (u, v)))
            .find(|&(u, v)| !g0.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        batch.insertions.push((u, v, 1.0));
        let rm = mono.apply(&batch).unwrap();
        let rs = sharded.apply(&batch).unwrap();
        assert_eq!(rs.epoch, rm.epoch);
        assert_eq!(rs.refresh, rm.refresh, "merged refresh must match");
        assert_eq!(rs.maintain, rm.maintain);
        assert_eq!(rs.shards.len(), 3);
        assert_eq!(sharded.seeds(), mono.seeds());
        let bits = |t: &[f64]| t.iter().map(|g| g.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(sharded.gain_trace()), bits(mono.gain_trace()));

        // Each shard's post-churn index is the monolith's slice, bitwise.
        let full = mono.index();
        for (idx, rg) in sharded.shard_indexes().iter().zip(sharded.shard_ranges()) {
            let slice = WalkIndex::build_layer_range(mono.graph().unwrap(), 5, rg, 13, 0);
            assert!(**idx == slice, "shard {rg:?} drifted from the monolith");
        }
        assert_eq!(full.n(), 70);
    }

    #[test]
    fn shard_count_errors_are_named() {
        let g = erdos_renyi_gnp(20, 0.2, 1).unwrap();
        let err = StreamEngine::with_shards(g.clone(), cfg(3), 0).unwrap_err();
        assert!(matches!(
            err,
            StreamError::InvalidShardCount {
                shards: 0,
                layers: 6
            }
        ));
        let err = StreamEngine::with_shards(g, cfg(3), 9).unwrap_err();
        assert!(err.to_string().contains("9 shards"), "{err}");
    }
}
