//! The end-to-end evolving pipeline: graph → index → seeds, per batch.

use std::sync::Arc;

use rwd_core::greedy::approx::GainRule;
use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::{RefreshStats, WalkIndex};

use crate::batch::EdgeBatch;
use crate::index::IncrementalIndex;
use crate::maintain::{MaintainReport, SeedMaintainer};
use crate::{Result, StreamError};

/// Configuration of a [`StreamEngine`].
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Walk-length bound `L`.
    pub l: u32,
    /// Walks per node `R`.
    pub r: usize,
    /// Seed-set budget `k`.
    pub k: usize,
    /// Walk RNG seed (the counter-based streams that make maintenance
    /// exact all derive from it).
    pub seed: u64,
    /// Gain rule the maintained seed set optimizes.
    pub rule: GainRule,
    /// Worker threads (`0` = all cores). Changing this never changes any
    /// result, only wall time.
    pub threads: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        // The paper's real-data defaults (L = 6, R = 100, k = 10).
        StreamConfig {
            l: 6,
            r: 100,
            k: 10,
            seed: 0,
            rule: GainRule::HittingTime,
            threads: 0,
        }
    }
}

/// The current graph epoch, unweighted or weighted. Graph epochs are
/// [`Arc`]'d: batch application is functional (it builds the next graph and
/// swaps it in), so a snapshot holding the previous epoch's handle stays
/// valid and untouched for as long as it likes.
#[derive(Clone, Debug)]
enum EvolvingGraph {
    Unweighted(Arc<CsrGraph>),
    Weighted(Arc<WeightedCsrGraph>),
}

/// Per-batch churn report — the observability surface of the subsystem.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Epoch number after this batch (epoch 0 is the cold start).
    pub epoch: u64,
    /// The batch's event timestamp, echoed back.
    pub timestamp: u64,
    /// Edge insertions applied.
    pub insertions: usize,
    /// Edge deletions applied.
    pub deletions: usize,
    /// Edges in the post-batch graph.
    pub edges: usize,
    /// Nodes whose adjacency changed.
    pub touched_nodes: usize,
    /// Index-maintenance accounting (groups resampled, postings rewritten).
    pub refresh: RefreshStats,
    /// Seed-maintenance accounting (swaps, kept prefix, objective).
    pub maintain: MaintainReport,
}

impl BatchReport {
    /// Fraction of walk groups the batch forced to resample.
    pub fn resampled_fraction(&self) -> f64 {
        if self.refresh.groups_total == 0 {
            0.0
        } else {
            self.refresh.groups_resampled as f64 / self.refresh.groups_total as f64
        }
    }
}

/// The evolving random-walk domination system: applies [`EdgeBatch`]es to
/// the graph, maintains the walk index incrementally, and repairs the seed
/// set — reporting what each batch actually cost.
///
/// Invariant (asserted by the equivalence suite): after any sequence of
/// batches, `engine.index()` is bit-identical to a cold
/// `WalkIndex::build`/`build_weighted` on `engine`'s current graph, and
/// `engine.seeds()` equals the static `Strategy::Delta` selection on that
/// index — the evolving system never drifts from what a from-scratch run
/// would compute.
#[derive(Clone, Debug)]
pub struct StreamEngine {
    cfg: StreamConfig,
    graph: EvolvingGraph,
    index: IncrementalIndex,
    maintainer: SeedMaintainer,
    epoch: u64,
}

impl StreamEngine {
    fn validate(cfg: &StreamConfig, n: usize) -> Result<()> {
        if cfg.k == 0 || cfg.k > n {
            return Err(StreamError::InvalidConfig(format!(
                "k = {} outside [1, n = {n}]",
                cfg.k
            )));
        }
        if cfg.r == 0 {
            return Err(StreamError::InvalidConfig("r must be >= 1".into()));
        }
        if cfg.l == 0 || cfg.l > u16::MAX as u32 {
            return Err(StreamError::InvalidConfig(format!(
                "l = {} outside [1, {}]",
                cfg.l,
                u16::MAX
            )));
        }
        if let GainRule::Combined { lambda } = cfg.rule {
            if !(0.0..=1.0).contains(&lambda) {
                return Err(StreamError::InvalidConfig(format!(
                    "lambda = {lambda} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Cold-starts the system on an unweighted graph: builds the epoch-0
    /// index and bootstraps the seed set.
    pub fn new(graph: CsrGraph, cfg: StreamConfig) -> Result<Self> {
        Self::validate(&cfg, graph.n())?;
        let index = IncrementalIndex::build(&graph, cfg.l, cfg.r, cfg.seed, cfg.threads);
        let mut maintainer = SeedMaintainer::new(cfg.rule, cfg.k, cfg.threads);
        maintainer.maintain(index.index());
        Ok(StreamEngine {
            cfg,
            graph: EvolvingGraph::Unweighted(Arc::new(graph)),
            index,
            maintainer,
            epoch: 0,
        })
    }

    /// Cold-starts the system on a weighted graph.
    pub fn new_weighted(graph: WeightedCsrGraph, cfg: StreamConfig) -> Result<Self> {
        Self::validate(&cfg, graph.n())?;
        let index = IncrementalIndex::build_weighted(&graph, cfg.l, cfg.r, cfg.seed, cfg.threads);
        let mut maintainer = SeedMaintainer::new(cfg.rule, cfg.k, cfg.threads);
        maintainer.maintain(index.index());
        Ok(StreamEngine {
            cfg,
            graph: EvolvingGraph::Weighted(Arc::new(graph)),
            index,
            maintainer,
            epoch: 0,
        })
    }

    /// Applies one churn batch end to end: graph edit → incremental index
    /// refresh → seed repair. On a batch validation error the engine state
    /// is unchanged (the graph edit is applied functionally first).
    ///
    /// **No-op batches.** A batch with no edits short-circuits: nothing is
    /// refreshed, no greedy round is replayed, and — deliberately — the
    /// epoch does **not** advance. The epoch stamps *state*, not batch
    /// arrivals: readers cache per-epoch answers, so identical state must
    /// keep an identical stamp. The returned report carries the current
    /// epoch with all churn counters at zero.
    pub fn apply(&mut self, batch: &EdgeBatch) -> Result<BatchReport> {
        if batch.is_empty() {
            return Ok(BatchReport {
                epoch: self.epoch,
                timestamp: batch.timestamp,
                insertions: 0,
                deletions: 0,
                edges: self.edges(),
                touched_nodes: 0,
                refresh: RefreshStats {
                    groups_total: self.index.index().n() * self.index.index().r(),
                    ..RefreshStats::default()
                },
                maintain: MaintainReport {
                    seeds_swapped: 0,
                    rounds_kept: self.maintainer.seeds().len(),
                    objective: self.maintainer.objective(),
                    touched_postings: 0,
                },
            });
        }
        let (touched_nodes, refresh, edges) = match &mut self.graph {
            EvolvingGraph::Unweighted(g) => {
                let delta = batch.apply(g)?;
                let stats = self.index.apply(&delta);
                let touched = delta.touched.len();
                let edges = delta.graph.m();
                *g = Arc::new(delta.graph);
                (touched, stats, edges)
            }
            EvolvingGraph::Weighted(g) => {
                let delta = batch.apply_weighted(g)?;
                let stats = self.index.apply_weighted(&delta);
                let touched = delta.touched.len();
                let edges = delta.graph.m();
                *g = Arc::new(delta.graph);
                (touched, stats, edges)
            }
        };
        let maintain = self.maintainer.maintain(self.index.index());
        self.epoch += 1;
        Ok(BatchReport {
            epoch: self.epoch,
            timestamp: batch.timestamp,
            insertions: batch.insertions.len(),
            deletions: batch.deletions.len(),
            edges,
            touched_nodes,
            refresh,
            maintain,
        })
    }

    /// Edges in the current graph epoch.
    fn edges(&self) -> usize {
        match &self.graph {
            EvolvingGraph::Unweighted(g) => g.m(),
            EvolvingGraph::Weighted(g) => g.m(),
        }
    }

    /// The maintained seed set in selection order.
    pub fn seeds(&self) -> &[NodeId] {
        self.maintainer.seeds()
    }

    /// Marginal gain of each maintained seed at its selection round.
    pub fn gain_trace(&self) -> &[f64] {
        self.maintainer.gain_trace()
    }

    /// Estimated objective of the maintained seed set (the gain-trace sum
    /// every [`BatchReport`] also carries).
    pub fn objective(&self) -> f64 {
        self.maintainer.objective()
    }

    /// The maintained walk index.
    pub fn index(&self) -> &WalkIndex {
        self.index.index()
    }

    /// A shared handle to the current epoch's index; holding it pins this
    /// epoch (the next batch copies-on-write instead of mutating what the
    /// holder observes). This — together with
    /// [`StreamEngine::graph_shared`] /
    /// [`StreamEngine::weighted_graph_shared`] — is the snapshot
    /// publication surface the serving layer builds on.
    pub fn index_shared(&self) -> Arc<WalkIndex> {
        self.index.share()
    }

    /// The current unweighted graph (`None` when running weighted).
    pub fn graph(&self) -> Option<&CsrGraph> {
        match &self.graph {
            EvolvingGraph::Unweighted(g) => Some(g),
            EvolvingGraph::Weighted(_) => None,
        }
    }

    /// The current weighted graph (`None` when running unweighted).
    pub fn weighted_graph(&self) -> Option<&WeightedCsrGraph> {
        match &self.graph {
            EvolvingGraph::Unweighted(_) => None,
            EvolvingGraph::Weighted(g) => Some(g),
        }
    }

    /// Shared handle to the current unweighted graph epoch (`None` when
    /// running weighted). Graph epochs are immutable once published, so the
    /// handle stays valid across later batches.
    pub fn graph_shared(&self) -> Option<Arc<CsrGraph>> {
        match &self.graph {
            EvolvingGraph::Unweighted(g) => Some(Arc::clone(g)),
            EvolvingGraph::Weighted(_) => None,
        }
    }

    /// Shared handle to the current weighted graph epoch (`None` when
    /// running unweighted).
    pub fn weighted_graph_shared(&self) -> Option<Arc<WeightedCsrGraph>> {
        match &self.graph {
            EvolvingGraph::Unweighted(_) => None,
            EvolvingGraph::Weighted(g) => Some(Arc::clone(g)),
        }
    }

    /// Number of batches applied since the cold start.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Accumulated index-churn statistics over every applied batch.
    pub fn lifetime_stats(&self) -> RefreshStats {
        self.index.lifetime_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::algo::select_from_index;
    use rwd_core::Strategy;
    use rwd_graph::generators::erdos_renyi_gnp;

    fn cfg(k: usize) -> StreamConfig {
        StreamConfig {
            l: 5,
            r: 6,
            k,
            seed: 13,
            rule: GainRule::HittingTime,
            threads: 0,
        }
    }

    #[test]
    fn engine_never_drifts_from_cold_start() {
        let g0 = erdos_renyi_gnp(90, 0.06, 21).unwrap();
        let mut engine = StreamEngine::new(g0.clone(), cfg(5)).unwrap();

        let mut batch = EdgeBatch::new(100);
        'outer: for u in 0..90u32 {
            for v in (u + 1)..90 {
                if !g0.has_edge(NodeId(u), NodeId(v)) {
                    batch.insertions.push((u, v, 1.0));
                    if batch.insertions.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.timestamp, 100);
        assert!(report.touched_nodes >= 2);
        assert!(report.refresh.groups_resampled > 0);
        assert!(report.resampled_fraction() > 0.0);

        // Cold-start comparison on the evolved graph.
        let g1 = engine.graph().unwrap().clone();
        let fresh = WalkIndex::build(&g1, 5, 6, 13);
        assert!(*engine.index() == fresh, "index drifted from cold start");
        let sel = select_from_index(&fresh, GainRule::HittingTime, 5, Strategy::Delta, 0).unwrap();
        assert_eq!(engine.seeds(), &sel.nodes[..], "seeds drifted");
    }

    #[test]
    fn weighted_engine_round_trips() {
        let g0 = erdos_renyi_gnp(60, 0.08, 4).unwrap();
        let w0 = rwd_graph::weighted::weighted_twin(&g0, 7).unwrap();
        let mut engine = StreamEngine::new_weighted(w0.clone(), cfg(4)).unwrap();
        assert!(engine.graph().is_none());
        let del = g0.edges().next().map(|(u, v)| (u.raw(), v.raw())).unwrap();
        let mut batch = EdgeBatch::new(7);
        batch.deletions.push(del);
        batch.insertions.push((del.0, del.1, 2.5)); // weight update
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.touched_nodes, 2);
        let w1 = engine.weighted_graph().unwrap().clone();
        let fresh = WalkIndex::build_weighted(&w1, 5, 6, 13);
        assert!(*engine.index() == fresh);
    }

    #[test]
    fn empty_batch_is_a_true_noop() {
        // Regression: an empty batch used to pay the full pipeline — a
        // zero-touched refresh plus a complete k-round maintain replay —
        // and still bumped the epoch. It must now short-circuit: same
        // epoch, untouched index and seeds, all-zero churn counters, and
        // the objective echoed from the last real pass.
        let g0 = erdos_renyi_gnp(60, 0.08, 9).unwrap();
        let mut engine = StreamEngine::new(g0, cfg(4)).unwrap();
        let seeds = engine.seeds().to_vec();
        let objective = engine.objective();
        let index_before = engine.index().clone();

        let report = engine.apply(&EdgeBatch::new(77)).unwrap();
        assert_eq!(engine.epoch(), 0, "no-op batch must not bump the epoch");
        assert_eq!(report.epoch, 0);
        assert_eq!(report.timestamp, 77);
        assert_eq!((report.insertions, report.deletions), (0, 0));
        assert_eq!(report.touched_nodes, 0);
        assert_eq!(report.refresh.groups_resampled, 0);
        assert_eq!(report.refresh.postings_rewritten(), 0);
        assert_eq!(report.refresh.groups_total, 60 * 6);
        assert_eq!(report.maintain.seeds_swapped, 0);
        assert_eq!(report.maintain.rounds_kept, 4);
        assert_eq!(report.maintain.touched_postings, 0);
        assert_eq!(report.maintain.objective.to_bits(), objective.to_bits());
        assert_eq!(engine.seeds(), &seeds[..]);
        assert!(*engine.index() == index_before);
        assert_eq!(engine.lifetime_stats(), RefreshStats::default());

        // A later real batch then advances to epoch 1 as usual.
        let mut batch = EdgeBatch::new(78);
        let g = engine.graph().unwrap();
        let (u, v) = (0..60u32)
            .flat_map(|u| ((u + 1)..60).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        batch.insertions.push((u, v, 1.0));
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.epoch, 1);
    }

    #[test]
    fn shared_handles_pin_the_published_epoch() {
        let g0 = erdos_renyi_gnp(50, 0.1, 3).unwrap();
        let mut engine = StreamEngine::new(g0, cfg(3)).unwrap();
        let idx0 = engine.index_shared();
        let g0_shared = engine.graph_shared().unwrap();
        assert!(engine.weighted_graph_shared().is_none());
        let before = (*idx0).clone();

        let mut batch = EdgeBatch::new(1);
        let (u, v) = (0..50u32)
            .flat_map(|u| ((u + 1)..50).map(move |v| (u, v)))
            .find(|&(u, v)| !g0_shared.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        batch.insertions.push((u, v, 1.0));
        engine.apply(&batch).unwrap();

        // The pinned epoch is untouched; the engine moved on.
        assert!(*idx0 == before);
        assert!(!g0_shared.has_edge(NodeId(u), NodeId(v)));
        assert!(engine.graph().unwrap().has_edge(NodeId(u), NodeId(v)));
        assert!(*engine.index() != *idx0);
    }

    #[test]
    fn failed_batch_leaves_state_unchanged() {
        let g0 = erdos_renyi_gnp(40, 0.1, 2).unwrap();
        let mut engine = StreamEngine::new(g0, cfg(3)).unwrap();
        let seeds = engine.seeds().to_vec();
        let mut bad = EdgeBatch::new(1);
        bad.deletions.push((0, 0)); // self-loop: rejected
        assert!(engine.apply(&bad).is_err());
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.seeds(), &seeds[..]);
    }

    #[test]
    fn invalid_config_rejected() {
        let g = erdos_renyi_gnp(10, 0.3, 1).unwrap();
        assert!(StreamEngine::new(g.clone(), cfg(0)).is_err());
        assert!(StreamEngine::new(g.clone(), cfg(11)).is_err());
        let mut c = cfg(2);
        c.r = 0;
        assert!(StreamEngine::new(g.clone(), c).is_err());
        let mut c = cfg(2);
        c.rule = GainRule::Combined { lambda: 2.0 };
        assert!(StreamEngine::new(g, c).is_err());
    }
}
