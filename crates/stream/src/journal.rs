//! The epoch-stamped write-ahead batch journal.
//!
//! A journal file is the durable prefix of the engine's batch history
//! since its base snapshot:
//!
//! ```text
//! header  := magic "RWDJNL1\0" · base_epoch u64            (16 bytes)
//! record  := len u32 · crc32 u32 · payload                 (8 + len bytes)
//! payload := epoch u64 · timestamp u64 · n_ins u32 · n_del u32
//!            · n_ins × (u u32 · v u32 · weight_bits u64)
//!            · n_del × (u u32 · v u32)
//! ```
//!
//! Everything is little-endian; `crc32` covers exactly the payload;
//! `epoch` is the epoch the batch **published** (so a journal with base
//! epoch `B` carries records `B+1, B+2, …` — strictly contiguous);
//! insertion weights are stored as `f64::to_bits` so the replayed batch is
//! bit-identical to the journaled one. Records hold the canonicalized
//! (post-[`EdgeBatch::dedup_edits`]) edits; canonicalization is
//! idempotent, so replaying a canonical batch through the normal apply
//! path stages exactly the same delta the original apply did.
//!
//! **Torn-tail rule** (what a crash mid-append leaves behind): while
//! scanning, a record whose header is incomplete, whose length points past
//! end-of-file, or whose CRC fails *with the record ending at end-of-file*
//! is a torn tail — the scan reports it, recovery truncates the file back
//! to the last valid boundary, warns, and continues. A CRC or structural
//! failure on a record **followed by more bytes** cannot be a torn append;
//! it is mid-journal corruption of committed history and is rejected with
//! a named error instead of silently dropping the suffix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use rwd_walks::crc::crc32;

use crate::batch::EdgeBatch;

/// Magic prefix of a journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"RWDJNL1\0";

/// Fixed bytes of a record payload before the edit arrays.
const PAYLOAD_FIXED: usize = 8 + 8 + 4 + 4;

/// An append-only handle on a journal file. Every append is fsync'd
/// before it returns, so a batch whose apply reported success has its
/// record on stable storage.
#[derive(Debug)]
pub struct BatchJournal {
    file: File,
    path: PathBuf,
    base_epoch: u64,
}

impl BatchJournal {
    /// Creates a fresh journal at `path` with the given base epoch (the
    /// epoch of the snapshot it extends), fsync'ing the header.
    pub fn create(path: impl AsRef<Path>, base_epoch: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&base_epoch.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(BatchJournal {
            file,
            path,
            base_epoch,
        })
    }

    /// Reopens an existing journal for appending at `valid_len` — the byte
    /// length a [`JournalScan`] validated. Any torn tail past that offset
    /// is truncated away first, so the next append lands on a clean record
    /// boundary.
    pub fn open_append(path: impl AsRef<Path>, valid_len: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut header = [0u8; 16];
        file.read_exact_at_start(&mut header)?;
        if &header[..8] != JOURNAL_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a batch-journal file (bad magic)",
            ));
        }
        let base_epoch = u64::from_le_bytes(header[8..16].try_into().unwrap());
        if file.metadata()?.len() != valid_len {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(BatchJournal {
            file,
            path,
            base_epoch,
        })
    }

    /// Appends one record and fsyncs. `epoch` is the epoch the batch
    /// publishes; the caller passes the canonicalized edits (see the
    /// module docs).
    pub fn append(
        &mut self,
        epoch: u64,
        timestamp: u64,
        insertions: &[(u32, u32, f64)],
        deletions: &[(u32, u32)],
    ) -> std::io::Result<()> {
        let payload = encode_payload(epoch, timestamp, insertions, deletions);
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let metrics = crate::obs::durable_metrics();
        let timer = metrics.journal_append_ns.time();
        self.file.write_all(&record)?;
        self.file.sync_all()?;
        timer.stop();
        metrics.journal_bytes.add(record.len() as u64);
        metrics.journal_appends.inc();
        Ok(())
    }

    /// The journal's base epoch (its records start at `base_epoch + 1`).
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Small extension: positioned read of the header without moving an
/// externally visible cursor (std has no stable `read_at` on all
/// platforms; a fresh handle at offset 0 is equivalent here).
trait ReadExactAtStart {
    fn read_exact_at_start(&self, buf: &mut [u8]) -> std::io::Result<()>;
}

impl ReadExactAtStart for File {
    fn read_exact_at_start(&self, buf: &mut [u8]) -> std::io::Result<()> {
        use std::io::Seek;
        let mut f = self.try_clone()?;
        f.seek(std::io::SeekFrom::Start(0))?;
        f.read_exact(buf)
    }
}

fn encode_payload(
    epoch: u64,
    timestamp: u64,
    insertions: &[(u32, u32, f64)],
    deletions: &[(u32, u32)],
) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(PAYLOAD_FIXED + insertions.len() * 16 + deletions.len() * 8);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&timestamp.to_le_bytes());
    payload.extend_from_slice(&(insertions.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(deletions.len() as u32).to_le_bytes());
    for &(u, v, w) in insertions {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
        payload.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    for &(u, v) in deletions {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload
}

/// One valid journal record, decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    /// The epoch this batch published.
    pub epoch: u64,
    /// The journaled batch (canonical edits, original timestamp).
    pub batch: EdgeBatch,
}

/// The result of scanning a journal file.
#[derive(Clone, Debug)]
pub struct JournalScan {
    /// The file's base epoch (records are `base + 1, base + 2, …`).
    pub base_epoch: u64,
    /// Every valid record, in order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header + whole records); a torn
    /// tail starts here.
    pub valid_len: u64,
    /// Why the tail was classified torn, when it was (`None` = the file
    /// ends cleanly on a record boundary).
    pub torn_tail: Option<String>,
}

/// Scans a journal file, validating every record. Returns the valid
/// records plus the torn-tail classification; mid-journal corruption is a
/// [`crate::StreamError::CorruptJournal`].
pub fn scan(path: impl AsRef<Path>) -> crate::Result<JournalScan> {
    let path = path.as_ref();
    let io_err = |context: &str, source: std::io::Error| crate::StreamError::Durability {
        context: format!("{context} ({})", path.display()),
        source,
    };
    let bytes = std::fs::read(path).map_err(|e| io_err("journal read", e))?;
    if bytes.len() < 16 || &bytes[..8] != JOURNAL_MAGIC {
        return Err(crate::StreamError::CorruptJournal(format!(
            "{} is not a batch-journal file (bad or truncated header)",
            path.display()
        )));
    }
    let base_epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut offset = 16usize;
    let mut torn_tail = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 8 {
            torn_tail = Some(format!(
                "incomplete record header at byte {offset} ({remaining} of 8 bytes)"
            ));
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > remaining - 8 {
            torn_tail = Some(format!(
                "record at byte {offset} claims {len} payload bytes with only {} in the file",
                remaining - 8
            ));
            break;
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        let at_eof = offset + 8 + len == bytes.len();
        if crc32(payload) != stored_crc {
            if at_eof {
                torn_tail = Some(format!(
                    "checksum mismatch on the final record at byte {offset}"
                ));
                break;
            }
            return Err(crate::StreamError::CorruptJournal(format!(
                "record at byte {offset} of {} fails its checksum but is not the final \
                 record — committed history is damaged (not a torn append)",
                path.display()
            )));
        }
        // CRC passed: structural damage past this point cannot be a torn
        // write, so every decode failure is named corruption.
        let record = decode_payload(payload).map_err(|why| {
            crate::StreamError::CorruptJournal(format!(
                "record at byte {offset} of {}: {why}",
                path.display()
            ))
        })?;
        let expected = base_epoch + records.len() as u64 + 1;
        if record.epoch != expected {
            return Err(crate::StreamError::CorruptJournal(format!(
                "record at byte {offset} of {} publishes epoch {} where {expected} was \
                 expected (journal epochs must be contiguous from the base)",
                path.display(),
                record.epoch
            )));
        }
        records.push(record);
        offset += 8 + len;
    }
    let valid_len = offset as u64;
    Ok(JournalScan {
        base_epoch,
        records,
        valid_len,
        torn_tail,
    })
}

fn decode_payload(payload: &[u8]) -> Result<JournalRecord, String> {
    if payload.len() < PAYLOAD_FIXED {
        return Err(format!(
            "payload holds {} bytes, fewer than the {PAYLOAD_FIXED}-byte fixed part",
            payload.len()
        ));
    }
    let epoch = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let timestamp = u64::from_le_bytes(payload[8..16].try_into().unwrap());
    let n_ins = u32::from_le_bytes(payload[16..20].try_into().unwrap()) as usize;
    let n_del = u32::from_le_bytes(payload[20..24].try_into().unwrap()) as usize;
    let want = PAYLOAD_FIXED + n_ins * 16 + n_del * 8;
    if payload.len() != want {
        return Err(format!(
            "payload length {} disagrees with its edit counts ({n_ins} insertions, \
             {n_del} deletions need {want} bytes)",
            payload.len()
        ));
    }
    let mut at = PAYLOAD_FIXED;
    let mut insertions = Vec::with_capacity(n_ins);
    for _ in 0..n_ins {
        let u = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
        let v = u32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap());
        let w = f64::from_bits(u64::from_le_bytes(
            payload[at + 8..at + 16].try_into().unwrap(),
        ));
        insertions.push((u, v, w));
        at += 16;
    }
    let mut deletions = Vec::with_capacity(n_del);
    for _ in 0..n_del {
        let u = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
        let v = u32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap());
        deletions.push((u, v));
        at += 8;
    }
    Ok(JournalRecord {
        epoch,
        batch: EdgeBatch {
            timestamp,
            insertions,
            deletions,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamError;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rwd_journal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_batches() -> Vec<EdgeBatch> {
        vec![
            EdgeBatch {
                timestamp: 10,
                insertions: vec![(0, 1, 1.0), (2, 3, 0.25)],
                deletions: vec![(4, 5)],
            },
            EdgeBatch {
                timestamp: 11,
                insertions: vec![],
                deletions: vec![(0, 1)],
            },
            EdgeBatch {
                timestamp: 12,
                insertions: vec![(6, 7, f64::MIN_POSITIVE)],
                deletions: vec![],
            },
        ]
    }

    fn write_journal(path: &Path, base: u64, batches: &[EdgeBatch]) {
        let mut j = BatchJournal::create(path, base).unwrap();
        for (i, b) in batches.iter().enumerate() {
            j.append(
                base + 1 + i as u64,
                b.timestamp,
                &b.insertions,
                &b.deletions,
            )
            .unwrap();
        }
    }

    #[test]
    fn round_trips_records_bitwise() {
        let path = tmp("round_trip.wal");
        let batches = sample_batches();
        write_journal(&path, 5, &batches);
        let scan = scan(&path).unwrap();
        assert_eq!(scan.base_epoch, 5);
        assert!(scan.torn_tail.is_none());
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
        assert_eq!(scan.records.len(), 3);
        for (i, (rec, orig)) in scan.records.iter().zip(&batches).enumerate() {
            assert_eq!(rec.epoch, 6 + i as u64);
            assert_eq!(&rec.batch, orig);
            // Weight identity must be bitwise, not approximate.
            for (a, b) in rec.batch.insertions.iter().zip(&orig.insertions) {
                assert_eq!(a.2.to_bits(), b.2.to_bits());
            }
        }
    }

    #[test]
    fn every_truncation_point_is_a_clean_prefix_or_torn_tail() {
        let path = tmp("trunc_master.wal");
        let batches = sample_batches();
        write_journal(&path, 0, &batches);
        let full = std::fs::read(&path).unwrap();
        // Record boundaries, for classifying each cut.
        let clean = scan(&path).unwrap();
        assert_eq!(clean.records.len(), 3);
        let mut boundaries = vec![16u64];
        let mut off = 16usize;
        while off < full.len() {
            let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
            boundaries.push(off as u64);
        }
        for cut in 16..=full.len() {
            let p = tmp("trunc_case.wal");
            std::fs::write(&p, &full[..cut]).unwrap();
            let s = scan(&p).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(s.records.len(), whole, "cut at {cut}");
            assert_eq!(
                s.torn_tail.is_some(),
                !boundaries.contains(&(cut as u64)),
                "cut at {cut}"
            );
            assert_eq!(s.valid_len, boundaries[whole], "cut at {cut}");
        }
    }

    #[test]
    fn tail_bit_flip_is_torn_but_interior_flip_is_corruption() {
        let path = tmp("flips.wal");
        write_journal(&path, 0, &sample_batches());
        let full = std::fs::read(&path).unwrap();

        // Flip a payload bit in the FINAL record: torn tail, records before
        // it survive.
        let mut t = full.clone();
        let last = t.len() - 3;
        t[last] ^= 0x40;
        let p = tmp("flip_tail.wal");
        std::fs::write(&p, &t).unwrap();
        let s = scan(&p).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(s.torn_tail.unwrap().contains("checksum"), "tail flip");

        // Flip a payload bit in the FIRST record: committed history is
        // damaged — named error, not a silent truncation to zero records.
        let mut c = full.clone();
        c[30] ^= 0x01; // inside record 0's payload
        let p = tmp("flip_mid.wal");
        std::fs::write(&p, &c).unwrap();
        let err = scan(&p).unwrap_err();
        assert!(
            matches!(&err, StreamError::CorruptJournal(m) if m.contains("not a torn append")),
            "{err}"
        );
    }

    #[test]
    fn epoch_gaps_are_rejected_by_name() {
        let path = tmp("gap.wal");
        let mut j = BatchJournal::create(&path, 3).unwrap();
        j.append(4, 1, &[(0, 1, 1.0)], &[]).unwrap();
        j.append(6, 2, &[(1, 2, 1.0)], &[]).unwrap(); // skips epoch 5
        let err = scan(&path).unwrap_err();
        assert!(
            matches!(&err, StreamError::CorruptJournal(m) if m.contains("contiguous")),
            "{err}"
        );
    }

    #[test]
    fn open_append_truncates_the_torn_tail_and_continues() {
        let path = tmp("reopen.wal");
        let batches = sample_batches();
        write_journal(&path, 0, &batches);
        let full = std::fs::read(&path).unwrap();
        // Tear mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(s.torn_tail.is_some());
        let mut j = BatchJournal::open_append(&path, s.valid_len).unwrap();
        assert_eq!(j.base_epoch(), 0);
        j.append(3, 99, &[(8, 9, 2.0)], &[]).unwrap();
        let s2 = scan(&path).unwrap();
        assert!(s2.torn_tail.is_none());
        assert_eq!(s2.records.len(), 3);
        assert_eq!(s2.records[2].epoch, 3);
        assert_eq!(s2.records[2].batch.timestamp, 99);
    }

    #[test]
    fn non_journal_files_are_rejected() {
        let path = tmp("not_a_journal.wal");
        std::fs::write(&path, b"hello").unwrap();
        assert!(matches!(
            scan(&path).unwrap_err(),
            StreamError::CorruptJournal(_)
        ));
    }
}
