//! Seed-set repair after edge churn.

use std::collections::HashSet;

use rwd_core::greedy::approx::GainRule;
use rwd_core::greedy::delta::{DeltaGainEngine, EngineCore};
use rwd_graph::NodeId;
use rwd_walks::{PostingDelta, WalkIndex};

/// Warm-start crossover default: absorb-and-replay wins while the batch's
/// posting edits stay under this fraction of the index; past it the engine
/// state is mostly invalidated anyway and a cold rebuild streams less.
const DEFAULT_CROSSOVER: f64 = 0.25;

/// Maintains a size-`k` greedy seed set across index epochs.
///
/// After every batch the maintainer replays the greedy rounds over a
/// [`DeltaGainEngine`] and compares each round's argmax to the seed the
/// previous epoch held at that position: a seed is **kept** while the
/// marginal-gain ordering still selects it, and **evicted/replaced**
/// exactly when the ordering changed. The maintained sequence is therefore
/// always *the* canonical greedy sequence on the current index (ties break
/// to the smaller id, matching every static solver), so churn robustness
/// comes for free: the reported [`MaintainReport::seeds_swapped`] measures
/// how much of the solution a batch actually invalidated — frequently
/// zero, since most batches never disturb the gain ordering near the top.
///
/// # Warm starts
///
/// The maintainer keeps the engine's owned state ([`EngineCore`]) alive
/// between batches. When the caller supplies the refresh's posting edit
/// script ([`SeedMaintainer::maintain_warm`] /
/// [`SeedMaintainer::maintain_sharded_warm`]), the pass resumes the
/// previous epoch's tables, absorbs the delta in `O(|delta|)`, and
/// replays each still-valid recorded round from its log without touching
/// the index — only the suffix from the first invalidated round pays for
/// cold engine updates. The result (seeds, gain trace, objective, touched
/// counts) is bit-identical to a cold fresh-engine replay at any shard
/// and thread count; warmth only changes *when* the answer arrives. A
/// crossover guard ([`SeedMaintainer::set_crossover`]) falls back to the
/// cold path when a batch's edit script is so large that absorbing it
/// would cost more than rebuilding.
#[derive(Clone, Debug)]
pub struct SeedMaintainer {
    rule: GainRule,
    k: usize,
    threads: usize,
    seeds: Vec<NodeId>,
    gain_trace: Vec<f64>,
    /// Cached gain-trace sum, so no-op batches echo the objective in O(1).
    objective: f64,
    /// The previous pass's engine state, resumable onto the next epoch.
    core: Option<EngineCore>,
    crossover: f64,
}

/// What one maintenance pass changed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MaintainReport {
    /// Seeds in the new set that were not in the previous set (0 on the
    /// bootstrap pass).
    pub seeds_swapped: usize,
    /// Leading rounds whose previous seed was still the argmax.
    pub rounds_kept: usize,
    /// Estimated objective of the maintained set (sum of the gain trace —
    /// the same `F̂` the static solvers report).
    pub objective: f64,
    /// Postings streamed (or re-accounted by warm replays) across the
    /// pass's engine rounds (the engine-side output-sensitivity measure).
    pub touched_postings: usize,
    /// First round whose previous seed was no longer the argmax — `None`
    /// when the whole prefix survived (`rounds_kept == k`); `Some(0)` on
    /// the bootstrap pass.
    pub first_invalid_round: Option<usize>,
    /// Whether the pass resumed the previous epoch's engine state instead
    /// of rebuilding from scratch.
    pub warm: bool,
    /// Posting edits absorbed from the refresh's edit script (0 on a cold
    /// pass).
    pub absorbed_postings: usize,
    /// Rounds committed by replaying their recorded logs — zero index
    /// traffic (0 on a cold pass).
    pub replayed_rounds: usize,
}

impl SeedMaintainer {
    /// Creates a maintainer with no seeds yet; the first
    /// [`SeedMaintainer::maintain`] call bootstraps the selection.
    pub fn new(rule: GainRule, k: usize, threads: usize) -> Self {
        SeedMaintainer {
            rule,
            k,
            threads,
            seeds: Vec::new(),
            gain_trace: Vec::new(),
            objective: 0.0,
            core: None,
            crossover: DEFAULT_CROSSOVER,
        }
    }

    /// Current seed set in selection order (empty before the first pass).
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// Marginal gain of each seed at its selection round.
    pub fn gain_trace(&self) -> &[f64] {
        &self.gain_trace
    }

    /// Estimated objective of the current seed set — the gain-trace sum the
    /// last [`SeedMaintainer::maintain`] pass reported (0 before the first
    /// pass). Cached, so no-op batches echo it without an O(k) re-sum.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Cardinality budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sets the warm-start crossover: a batch goes warm only while its
    /// posting edits stay at or under `crossover × total postings`. `0.0`
    /// forces every pass cold (the fallback path under test), `1.0` warms
    /// unconditionally.
    pub fn set_crossover(&mut self, crossover: f64) {
        assert!(
            (0.0..=1.0).contains(&crossover) && crossover.is_finite(),
            "crossover must lie in [0, 1]"
        );
        self.crossover = crossover;
    }

    /// Re-validates the seed set against a (refreshed) index: keeps every
    /// leading seed that is still its round's argmax, replaces the rest.
    /// Always runs the engine cold — use [`SeedMaintainer::maintain_warm`]
    /// when the refresh's edit script is available.
    ///
    /// # Panics
    /// Panics if `k > idx.n()` (the engine runs out of candidates).
    pub fn maintain(&mut self, idx: &WalkIndex) -> MaintainReport {
        self.maintain_sharded(&[idx])
    }

    /// [`SeedMaintainer::maintain`] resuming the previous pass's engine
    /// state: `delta` must be the edit script of the refresh that took the
    /// index from that pass's epoch to this one (see
    /// [`IncrementalIndex::apply_collecting`](crate::IncrementalIndex)).
    pub fn maintain_warm(&mut self, idx: &WalkIndex, delta: &PostingDelta) -> MaintainReport {
        self.maintain_sharded_warm(&[idx], std::slice::from_ref(delta))
    }

    /// Sharded twin of [`SeedMaintainer::maintain`]: replays the greedy
    /// rounds over a [`DeltaGainEngine`] that gathers per-layer integer
    /// contributions from a contiguous tiling of layer-range shards
    /// (see [`DeltaGainEngine::over_shards`]). Because the engine merges
    /// staged integer gain deltas in absolute layer order, the replay —
    /// picks, gain trace, kept prefix — is bit-identical to maintaining
    /// over the equivalent monolithic index.
    ///
    /// # Panics
    /// Panics if the shards do not tile a contiguous layer range from 0, or
    /// if `k > n`.
    pub fn maintain_sharded(&mut self, shards: &[&WalkIndex]) -> MaintainReport {
        self.run(shards, None)
    }

    /// Warm twin of [`SeedMaintainer::maintain_sharded`]: `deltas` holds
    /// the per-shard edit scripts of the refreshes separating the previous
    /// pass's epoch from `shards` (any order — delta layers are absolute).
    /// Falls back to a cold rebuild when no resumable state exists, the
    /// tiling changed shape, or the edit volume exceeds the crossover.
    pub fn maintain_sharded_warm(
        &mut self,
        shards: &[&WalkIndex],
        deltas: &[PostingDelta],
    ) -> MaintainReport {
        self.run(shards, Some(deltas))
    }

    /// The single maintenance pass behind every entry point. `deltas:
    /// None` forces a cold rebuild; `Some` attempts the warm path first.
    fn run(&mut self, shards: &[&WalkIndex], deltas: Option<&[PostingDelta]>) -> MaintainReport {
        let bootstrap = self.seeds.is_empty();
        let edits: usize = deltas
            .map(|ds| ds.iter().map(|d| d.postings_changed()).sum())
            .unwrap_or(0);
        let warm = match (&self.core, deltas) {
            (Some(core), Some(_)) => {
                let total: usize = shards.iter().map(|s| s.total_postings()).sum();
                core.matches(shards) && edits as f64 <= self.crossover * total as f64
            }
            _ => false,
        };
        let mut absorbed_postings = 0usize;
        let mut engine = if warm {
            let core = self.core.take().expect("warm implies a resumable core");
            let mut engine = DeltaGainEngine::resume(shards, core);
            absorbed_postings = engine.absorb(deltas.expect("warm implies deltas"));
            engine
        } else {
            self.core = None; // stale state, if any, is now meaningless
            let mut engine = DeltaGainEngine::over_shards(shards, self.rule, self.threads);
            engine.enable_round_logging();
            engine
        };

        let mut new_seeds = Vec::with_capacity(self.k);
        let mut gain_trace = Vec::with_capacity(self.k);
        let mut rounds_kept = 0usize;
        let mut prefix_intact = true;
        let mut touched_postings = 0usize;
        let mut replayed_rounds = 0usize;
        for round in 0..self.k {
            let (pick, gain) = engine
                .best_candidate()
                .expect("k <= n leaves candidates every round");
            if prefix_intact && self.seeds.get(round) == Some(&pick) {
                rounds_kept += 1;
            } else {
                prefix_intact = false;
            }
            if warm && engine.try_replay_recorded(pick) {
                replayed_rounds += 1;
            } else {
                engine.update(pick);
            }
            touched_postings += engine.last_update_touched();
            new_seeds.push(pick);
            gain_trace.push(gain);
        }
        self.core = Some(engine.into_core());

        let seeds_swapped = if bootstrap {
            0
        } else {
            let prev: HashSet<NodeId> = self.seeds.iter().copied().collect();
            new_seeds.iter().filter(|s| !prev.contains(s)).count()
        };
        let objective = gain_trace.iter().sum();
        self.seeds = new_seeds;
        self.gain_trace = gain_trace;
        self.objective = objective;
        MaintainReport {
            seeds_swapped,
            rounds_kept,
            objective,
            touched_postings,
            first_invalid_round: (rounds_kept < self.k).then_some(rounds_kept),
            warm,
            absorbed_postings,
            replayed_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::EdgeBatch;
    use crate::IncrementalIndex;
    use rwd_core::algo::select_from_index;
    use rwd_core::Strategy;
    use rwd_graph::generators::barabasi_albert;

    #[test]
    fn bootstrap_matches_static_delta_solver() {
        let g = barabasi_albert(200, 3, 7).unwrap();
        let idx = WalkIndex::build(&g, 5, 8, 11);
        let mut m = SeedMaintainer::new(GainRule::HittingTime, 6, 0);
        let rep = m.maintain(&idx);
        let sel = select_from_index(&idx, GainRule::HittingTime, 6, Strategy::Delta, 0).unwrap();
        assert_eq!(m.seeds(), &sel.nodes[..]);
        assert_eq!(m.gain_trace(), &sel.gain_trace[..]);
        assert_eq!(rep.seeds_swapped, 0, "bootstrap reports no swaps");
        assert_eq!(rep.rounds_kept, 0);
        assert_eq!(rep.first_invalid_round, Some(0));
        assert!(!rep.warm, "bootstrap is necessarily cold");
        let sum: f64 = sel.gain_trace.iter().sum();
        assert_eq!(rep.objective.to_bits(), sum.to_bits());
        assert_eq!(m.objective().to_bits(), sum.to_bits());
    }

    #[test]
    fn sharded_maintenance_matches_monolithic() {
        let g = barabasi_albert(150, 3, 5).unwrap();
        let full = WalkIndex::build(&g, 4, 8, 21);
        let mut mono = SeedMaintainer::new(GainRule::HittingTime, 5, 0);
        let rep_mono = mono.maintain(&full);
        for shards in [2usize, 3, 8] {
            let parts: Vec<WalkIndex> = rwd_walks::LayerRange::partition(8, shards)
                .into_iter()
                .map(|rg| WalkIndex::build_layer_range(&g, 4, rg, 21, 0))
                .collect();
            let refs: Vec<&WalkIndex> = parts.iter().collect();
            let mut m = SeedMaintainer::new(GainRule::HittingTime, 5, 0);
            let rep = m.maintain_sharded(&refs);
            assert_eq!(m.seeds(), mono.seeds(), "{shards} shards");
            let bits = |t: &[f64]| t.iter().map(|g| g.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(m.gain_trace()), bits(mono.gain_trace()));
            assert_eq!(rep, rep_mono);
        }
    }

    #[test]
    fn unchanged_index_keeps_every_seed() {
        let g = barabasi_albert(150, 3, 2).unwrap();
        let idx = WalkIndex::build(&g, 4, 6, 9);
        let mut m = SeedMaintainer::new(GainRule::Coverage, 5, 0);
        m.maintain(&idx);
        let before = m.seeds().to_vec();
        let rep = m.maintain(&idx);
        assert_eq!(m.seeds(), &before[..]);
        assert_eq!(rep.seeds_swapped, 0);
        assert_eq!(rep.rounds_kept, 5, "every round's argmax is unchanged");
        assert_eq!(rep.first_invalid_round, None);
    }

    /// One churn batch, maintained warm vs cold: identical seeds, traces,
    /// objectives and touched counts, and the warm pass replays rounds.
    #[test]
    fn warm_pass_is_bitwise_cold_and_replays() {
        let g0 = barabasi_albert(200, 3, 13).unwrap();
        let (l, r, seed, k) = (4u32, 6usize, 31u64, 5usize);
        let mut warm_idx = IncrementalIndex::build(&g0, l, r, seed, 0);
        let mut warm = SeedMaintainer::new(GainRule::HittingTime, k, 0);
        // One churned edge still invalidates every walk *visiting* its
        // endpoints — on this small fixture that is ~28% of all postings,
        // so widen the crossover to keep the pass warm.
        warm.set_crossover(0.5);
        warm.maintain_warm(warm_idx.index(), &PostingDelta::default());

        let mut batch = EdgeBatch::new(1);
        let nbr = g0.neighbors(NodeId(150))[0].raw();
        batch.deletions.push((150, nbr));
        let delta = batch.apply(&g0).unwrap();
        let (_, edits) = warm_idx.apply_collecting(&delta);
        assert!(!edits.is_empty());

        let rep = warm.maintain_warm(warm_idx.index(), &edits);
        assert!(rep.warm, "small batch must take the warm path");
        assert!(rep.absorbed_postings <= edits.postings_changed());
        assert!(rep.absorbed_postings > 0, "churn must leave net edits");

        let mut cold = SeedMaintainer::new(GainRule::HittingTime, k, 0);
        cold.maintain(warm_idx.index());
        let rep_cold = cold.maintain(warm_idx.index());
        assert_eq!(warm.seeds(), cold.seeds());
        let bits = |t: &[f64]| t.iter().map(|g| g.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(warm.gain_trace()), bits(cold.gain_trace()));
        assert_eq!(warm.objective().to_bits(), cold.objective().to_bits());
        assert_eq!(rep.touched_postings, rep_cold.touched_postings);
    }

    #[test]
    fn zero_crossover_forces_cold() {
        let g = barabasi_albert(120, 3, 4).unwrap();
        let idx = WalkIndex::build(&g, 4, 4, 6);
        let mut m = SeedMaintainer::new(GainRule::Coverage, 4, 0);
        m.set_crossover(0.0);
        m.maintain_warm(&idx, &PostingDelta::default());
        let rep = m.maintain_warm(&idx, &PostingDelta::default());
        // An empty delta squeaks under any crossover (0 <= 0): still warm.
        assert!(rep.warm, "empty delta is within a zero crossover");
        let delta = PostingDelta {
            layers: vec![rwd_walks::LayerDelta {
                layer: 0,
                resampled: vec![0],
                removed: vec![(1, 0, 1)],
                added: vec![(1, 0, 1)],
            }],
        };
        // Any non-empty delta now exceeds the zero crossover: cold.
        let rep = m.maintain_warm(&idx, &delta);
        assert!(!rep.warm);
        assert_eq!(rep.replayed_rounds, 0);
    }

    #[test]
    #[should_panic(expected = "crossover must lie in [0, 1]")]
    fn crossover_out_of_range_panics() {
        SeedMaintainer::new(GainRule::Coverage, 3, 0).set_crossover(1.5);
    }
}
