//! Seed-set repair after edge churn.

use rwd_core::greedy::approx::GainRule;
use rwd_core::greedy::delta::DeltaGainEngine;
use rwd_graph::NodeId;
use rwd_walks::WalkIndex;

/// Maintains a size-`k` greedy seed set across index epochs.
///
/// After every batch the maintainer replays the greedy rounds over a fresh
/// [`DeltaGainEngine`] (closed-form `O(n)` startup, output-sensitive
/// rounds) and compares each round's argmax to the seed the previous epoch
/// held at that position: a seed is **kept** while the marginal-gain
/// ordering still selects it, and **evicted/replaced** exactly when the
/// ordering changed. The maintained sequence is therefore always *the*
/// canonical greedy sequence on the current index (ties break to the
/// smaller id, matching every static solver), so churn robustness comes
/// for free: the reported [`MaintainReport::seeds_swapped`] measures how
/// much of the solution a batch actually invalidated — frequently zero,
/// since most batches never disturb the gain ordering near the top.
#[derive(Clone, Debug)]
pub struct SeedMaintainer {
    rule: GainRule,
    k: usize,
    threads: usize,
    seeds: Vec<NodeId>,
    gain_trace: Vec<f64>,
}

/// What one maintenance pass changed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MaintainReport {
    /// Seeds in the new set that were not in the previous set (0 on the
    /// bootstrap pass).
    pub seeds_swapped: usize,
    /// Leading rounds whose previous seed was still the argmax.
    pub rounds_kept: usize,
    /// Estimated objective of the maintained set (sum of the gain trace —
    /// the same `F̂` the static solvers report).
    pub objective: f64,
    /// Postings streamed by the replay's engine updates (the engine-side
    /// output-sensitivity measure).
    pub touched_postings: usize,
}

impl SeedMaintainer {
    /// Creates a maintainer with no seeds yet; the first
    /// [`SeedMaintainer::maintain`] call bootstraps the selection.
    pub fn new(rule: GainRule, k: usize, threads: usize) -> Self {
        SeedMaintainer {
            rule,
            k,
            threads,
            seeds: Vec::new(),
            gain_trace: Vec::new(),
        }
    }

    /// Current seed set in selection order (empty before the first pass).
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// Marginal gain of each seed at its selection round.
    pub fn gain_trace(&self) -> &[f64] {
        &self.gain_trace
    }

    /// Estimated objective of the current seed set — the gain-trace sum the
    /// last [`SeedMaintainer::maintain`] pass reported (0 before the first
    /// pass). Lets no-op batches echo the objective without a replay.
    pub fn objective(&self) -> f64 {
        self.gain_trace.iter().sum()
    }

    /// Cardinality budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Re-validates the seed set against a (refreshed) index: keeps every
    /// leading seed that is still its round's argmax, replaces the rest.
    ///
    /// # Panics
    /// Panics if `k > idx.n()` (the engine runs out of candidates).
    pub fn maintain(&mut self, idx: &WalkIndex) -> MaintainReport {
        self.maintain_sharded(&[idx])
    }

    /// Sharded twin of [`SeedMaintainer::maintain`]: replays the greedy
    /// rounds over a [`DeltaGainEngine`] that gathers per-layer integer
    /// contributions from a contiguous tiling of layer-range shards
    /// (see [`DeltaGainEngine::over_shards`]). Because the engine merges
    /// staged integer gain deltas in absolute layer order, the replay —
    /// picks, gain trace, kept prefix — is bit-identical to maintaining
    /// over the equivalent monolithic index.
    ///
    /// # Panics
    /// Panics if the shards do not tile a contiguous layer range from 0, or
    /// if `k > n`.
    pub fn maintain_sharded(&mut self, shards: &[&WalkIndex]) -> MaintainReport {
        let bootstrap = self.seeds.is_empty();
        let mut engine = DeltaGainEngine::over_shards(shards, self.rule, self.threads);
        let mut new_seeds = Vec::with_capacity(self.k);
        let mut gain_trace = Vec::with_capacity(self.k);
        let mut rounds_kept = 0usize;
        let mut prefix_intact = true;
        let mut touched_postings = 0usize;
        for round in 0..self.k {
            let (pick, gain) = engine
                .best_candidate()
                .expect("k <= n leaves candidates every round");
            if prefix_intact && self.seeds.get(round) == Some(&pick) {
                rounds_kept += 1;
            } else {
                prefix_intact = false;
            }
            engine.update(pick);
            touched_postings += engine.last_update_touched();
            new_seeds.push(pick);
            gain_trace.push(gain);
        }
        let seeds_swapped = if bootstrap {
            0
        } else {
            new_seeds.iter().filter(|s| !self.seeds.contains(s)).count()
        };
        let objective = gain_trace.iter().sum();
        self.seeds = new_seeds;
        self.gain_trace = gain_trace;
        MaintainReport {
            seeds_swapped,
            rounds_kept,
            objective,
            touched_postings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::algo::select_from_index;
    use rwd_core::Strategy;
    use rwd_graph::generators::barabasi_albert;

    #[test]
    fn bootstrap_matches_static_delta_solver() {
        let g = barabasi_albert(200, 3, 7).unwrap();
        let idx = WalkIndex::build(&g, 5, 8, 11);
        let mut m = SeedMaintainer::new(GainRule::HittingTime, 6, 0);
        let rep = m.maintain(&idx);
        let sel = select_from_index(&idx, GainRule::HittingTime, 6, Strategy::Delta, 0).unwrap();
        assert_eq!(m.seeds(), &sel.nodes[..]);
        assert_eq!(m.gain_trace(), &sel.gain_trace[..]);
        assert_eq!(rep.seeds_swapped, 0, "bootstrap reports no swaps");
        assert_eq!(rep.rounds_kept, 0);
        let sum: f64 = sel.gain_trace.iter().sum();
        assert_eq!(rep.objective.to_bits(), sum.to_bits());
    }

    #[test]
    fn sharded_maintenance_matches_monolithic() {
        let g = barabasi_albert(150, 3, 5).unwrap();
        let full = WalkIndex::build(&g, 4, 8, 21);
        let mut mono = SeedMaintainer::new(GainRule::HittingTime, 5, 0);
        let rep_mono = mono.maintain(&full);
        for shards in [2usize, 3, 8] {
            let parts: Vec<WalkIndex> = rwd_walks::LayerRange::partition(8, shards)
                .into_iter()
                .map(|rg| WalkIndex::build_layer_range(&g, 4, rg, 21, 0))
                .collect();
            let refs: Vec<&WalkIndex> = parts.iter().collect();
            let mut m = SeedMaintainer::new(GainRule::HittingTime, 5, 0);
            let rep = m.maintain_sharded(&refs);
            assert_eq!(m.seeds(), mono.seeds(), "{shards} shards");
            let bits = |t: &[f64]| t.iter().map(|g| g.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(m.gain_trace()), bits(mono.gain_trace()));
            assert_eq!(rep, rep_mono);
        }
    }

    #[test]
    fn unchanged_index_keeps_every_seed() {
        let g = barabasi_albert(150, 3, 2).unwrap();
        let idx = WalkIndex::build(&g, 4, 6, 9);
        let mut m = SeedMaintainer::new(GainRule::Coverage, 5, 0);
        m.maintain(&idx);
        let before = m.seeds().to_vec();
        let rep = m.maintain(&idx);
        assert_eq!(m.seeds(), &before[..]);
        assert_eq!(rep.seeds_swapped, 0);
        assert_eq!(rep.rounds_kept, 5, "every round's argmax is unchanged");
    }
}
