//! Pre-registered handles into the process-wide metrics registry
//! ([`rwd_obs::global`]) for the streaming engine and the durability
//! layer. Registration happens once on first use; every batch thereafter
//! only touches lock-free atomics, so instrumentation adds a handful of
//! relaxed `fetch_add`s per phase to the apply path.

use std::sync::OnceLock;

use rwd_obs::{Counter, Gauge, Histogram};

/// Per-batch phase timings and churn counters for [`crate::ShardSet`].
pub(crate) struct StreamMetrics {
    /// Phase 1: batch validation + functional staging on every shard.
    pub stage_ns: Histogram,
    /// Write-ahead hook (journal append + fsync when durable).
    pub journal_ns: Histogram,
    /// One per-shard selective refresh (phase-2 commit).
    pub refresh_ns: Histogram,
    /// Warm-path seed maintenance (absorb + replay).
    pub maintain_warm_ns: Histogram,
    /// Cold-path seed maintenance (full re-selection).
    pub maintain_cold_ns: Histogram,
    /// Epoch advance + report assembly after the last shard commits.
    pub publish_ns: Histogram,
    /// Non-empty batches committed.
    pub batches: Counter,
    /// Edge insertions committed.
    pub insertions: Counter,
    /// Edge deletions committed.
    pub deletions: Counter,
    /// Touched endpoint nodes across committed batches.
    pub touched_nodes: Counter,
    /// Walk groups re-sampled (summed over shards).
    pub groups_resampled: Counter,
    /// Inverted postings added by refreshes.
    pub postings_added: Counter,
    /// Inverted postings removed by refreshes.
    pub postings_removed: Counter,
    /// Seeds evicted by maintenance across all batches.
    pub seeds_swapped: Counter,
    /// Greedy rounds replayed from recorded logs (warm path).
    pub replayed_rounds: Counter,
    /// Current committed epoch.
    pub epoch: Gauge,
}

pub(crate) fn stream_metrics() -> &'static StreamMetrics {
    static METRICS: OnceLock<StreamMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rwd_obs::global();
        let phase =
            |p: &str, help: &str| reg.histogram_with("rwd_stream_phase_ns", help, &[("phase", p)]);
        let phase_help = "Wall time of one batch-apply phase (nanoseconds)";
        StreamMetrics {
            stage_ns: phase("stage", phase_help),
            journal_ns: phase("journal", phase_help),
            refresh_ns: phase("refresh", phase_help),
            maintain_warm_ns: phase("maintain_warm", phase_help),
            maintain_cold_ns: phase("maintain_cold", phase_help),
            publish_ns: phase("publish", phase_help),
            batches: reg.counter("rwd_stream_batches_total", "Non-empty batches committed"),
            insertions: reg.counter("rwd_stream_insertions_total", "Edge insertions committed"),
            deletions: reg.counter("rwd_stream_deletions_total", "Edge deletions committed"),
            touched_nodes: reg.counter(
                "rwd_stream_touched_nodes_total",
                "Touched endpoint nodes across committed batches",
            ),
            groups_resampled: reg.counter(
                "rwd_stream_groups_resampled_total",
                "Walk groups re-sampled across committed batches (all shards)",
            ),
            postings_added: reg.counter(
                "rwd_stream_postings_added_total",
                "Inverted postings added by refreshes",
            ),
            postings_removed: reg.counter(
                "rwd_stream_postings_removed_total",
                "Inverted postings removed by refreshes",
            ),
            seeds_swapped: reg.counter(
                "rwd_stream_seeds_swapped_total",
                "Seeds evicted by maintenance across all batches",
            ),
            replayed_rounds: reg.counter(
                "rwd_stream_replayed_rounds_total",
                "Greedy rounds replayed from recorded logs (warm maintenance)",
            ),
            epoch: reg.gauge("rwd_stream_epoch", "Current committed engine epoch"),
        }
    })
}

/// Journal, snapshot, and recovery metrics for [`crate::DurableEngine`].
pub(crate) struct DurableMetrics {
    /// Bytes appended to the write-ahead journal (record framing included).
    pub journal_bytes: Counter,
    /// Journal records appended (one per committed non-empty batch).
    pub journal_appends: Counter,
    /// Wall time of one journal append including its fsync.
    pub journal_append_ns: Histogram,
    /// Wall time of one full engine snapshot write (all files + fsyncs).
    pub snapshot_write_ns: Histogram,
    /// Engine snapshots written.
    pub snapshots_written: Counter,
    /// Crash recoveries performed by `DurableEngine::open`.
    pub recoveries: Counter,
    /// Journaled batches replayed during recoveries.
    pub recovery_replayed_batches: Counter,
    /// Wall time of one full recovery (snapshot load + journal replay).
    pub recovery_ns: Histogram,
}

pub(crate) fn durable_metrics() -> &'static DurableMetrics {
    static METRICS: OnceLock<DurableMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rwd_obs::global();
        DurableMetrics {
            journal_bytes: reg.counter(
                "rwd_durable_journal_bytes_total",
                "Bytes appended to the write-ahead journal",
            ),
            journal_appends: reg.counter(
                "rwd_durable_journal_appends_total",
                "Write-ahead journal records appended",
            ),
            journal_append_ns: reg.histogram(
                "rwd_durable_journal_append_ns",
                "Wall time of one journal append including fsync (nanoseconds)",
            ),
            snapshot_write_ns: reg.histogram(
                "rwd_durable_snapshot_write_ns",
                "Wall time of one full engine snapshot write (nanoseconds)",
            ),
            snapshots_written: reg.counter(
                "rwd_durable_snapshots_written_total",
                "Engine snapshots written",
            ),
            recoveries: reg.counter(
                "rwd_durable_recoveries_total",
                "Crash recoveries performed by DurableEngine::open",
            ),
            recovery_replayed_batches: reg.counter(
                "rwd_durable_recovery_replayed_batches_total",
                "Journaled batches replayed during recoveries",
            ),
            recovery_ns: reg.histogram(
                "rwd_durable_recovery_ns",
                "Wall time of one full recovery, snapshot load plus replay (nanoseconds)",
            ),
        }
    })
}
