//! Durable engine: write-ahead journal + periodic snapshots + crash-exact
//! recovery.
//!
//! A [`DurableEngine`] owns a data directory with two kinds of artifact:
//!
//! * `journal-<E>.wal` — the write-ahead batch journal based at snapshot
//!   epoch `E` (see [`crate::journal`] for the record format and the
//!   torn-tail rule). Every batch is appended and fsync'd **after** phase-1
//!   validation and **before** any shard commits, so the journal is always
//!   a durable prefix of the engine's committed history — a crash loses a
//!   batch entirely or not at all, never half of one.
//! * `snap-<E>/` — a full engine snapshot at epoch `E`: `graph.bin` (the
//!   canonical edge list, whose from-scratch rebuild is proven bitwise
//!   identical to the live CSR by the graph crate's own tests), one
//!   RWDIDX2/3 file per shard (reusing [`WalkIndex::save`], CRC-trailed),
//!   and `manifest.bin` written **last** — a snapshot without a valid
//!   manifest never existed. After a snapshot the journal rotates to the
//!   new base and older artifacts are compacted away.
//!
//! [`DurableEngine::open`] recovers: newest loadable snapshot + journal
//! suffix replayed through the normal apply path (incremental refresh and
//! warm seed maintenance included). Because every transformation in the
//! pipeline is bit-deterministic, the recovered engine is **bitwise
//! identical** to the live engine that wrote the surviving prefix — the
//! property `tests/recovery_equivalence.rs` fault-injects at every record
//! boundary, mid-record truncation, and bit-flip. Seed-maintainer state is
//! deliberately *not* serialized: a cold bootstrap over the loaded tiling
//! is bitwise equal to the warm state (the maintainer's own proptested
//! invariant), which keeps the snapshot format small and honest.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use rwd_core::greedy::approx::GainRule;
use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{GraphBuilder, GraphKind, NodeId};
use rwd_walks::crc::crc32;
use rwd_walks::{LayerRange, WalkIndex};

use crate::batch::EdgeBatch;
use crate::engine::{BatchReport, StreamConfig, StreamEngine};
use crate::index::IncrementalIndex;
use crate::journal::{self, BatchJournal};
use crate::shard::{EvolvingGraph, ShardEngine, ShardSet};
use crate::{Result, StreamError};

const MANIFEST_MAGIC: &[u8; 8] = b"RWDSNP1\0";
const GRAPH_MAGIC: &[u8; 8] = b"RWDGRF1\0";

/// Durability policy for a [`DurableEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Take a snapshot (and compact the journal) every this many applied
    /// non-empty batches; `0` disables periodic snapshots (journal-only —
    /// recovery then replays from the creation-time snapshot).
    pub snapshot_every: u64,
}

/// How [`DurableEngine::open`] brings shard indexes back from a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpenMode {
    /// Zero-copy: RWDIDX4 shard files are `mmap(2)`-mapped in place
    /// ([`WalkIndex::open_mapped`]) — the first point query is answerable
    /// after a header walk and one CRC pass, no per-posting deserialize.
    /// Older (V2/V3) shard files, and hosts without the mapped path, fall
    /// back to [`OpenMode::Deserialize`] per shard. Journal replay then
    /// promotes exactly the layers it touches to the heap; recovered
    /// state stays bitwise equal to the deserializing open.
    #[default]
    Mapped,
    /// Parse every shard index into heap-owned columns
    /// ([`WalkIndex::load`]); higher open cost, no pinned file mappings.
    Deserialize,
}

/// What [`DurableEngine::open`] did to get back to the live state.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Journal records replayed on top of the snapshot.
    pub epochs_replayed: u64,
    /// The epoch the recovered engine resumed at.
    pub recovered_epoch: u64,
    /// Why the journal tail was truncated, when it was (`None` = the
    /// journal ended cleanly on a record boundary).
    pub torn_tail: Option<String>,
    /// Wall time of the snapshot load (graph + shard indexes + bootstrap
    /// seed maintenance).
    pub snapshot_load_ms: f64,
    /// Wall time of the journal suffix replay.
    pub replay_ms: f64,
    /// Heap-owned walk-index column bytes after recovery (replay included).
    pub heap_bytes: usize,
    /// Still-mapped (zero-copy) walk-index column bytes after recovery —
    /// nonzero only for [`OpenMode::Mapped`] opens of RWDIDX4 snapshots,
    /// and shrunk by whatever layers the journal replay promoted.
    pub mapped_bytes: usize,
}

/// A [`StreamEngine`] bound to a data directory: every applied batch is
/// write-ahead journaled, snapshots land at a configurable cadence, and
/// [`DurableEngine::open`] reconstructs the exact live state after a crash.
#[derive(Debug)]
pub struct DurableEngine {
    engine: StreamEngine,
    dir: PathBuf,
    journal: BatchJournal,
    dcfg: DurabilityConfig,
    since_snapshot: u64,
    undirected: bool,
}

impl DurableEngine {
    /// Binds a freshly built engine to `dir`: writes the base snapshot at
    /// the engine's current epoch and opens the journal. Rejects a
    /// directory that already holds durability artifacts — recover those
    /// with [`DurableEngine::open`] instead of overwriting history.
    pub fn create(
        engine: StreamEngine,
        dir: impl AsRef<Path>,
        dcfg: DurabilityConfig,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        dio("data dir create", std::fs::create_dir_all(&dir))?;
        if !find_numbered(&dir, "snap-")?.is_empty() || !find_numbered(&dir, "journal-")?.is_empty()
        {
            return Err(StreamError::InvalidConfig(format!(
                "data dir {} already holds durability artifacts; open() recovers them",
                dir.display()
            )));
        }
        let epoch = engine.epoch();
        save_snapshot(&engine, &dir.join(format!("snap-{epoch}")))?;
        let journal = dio(
            "journal create",
            BatchJournal::create(dir.join(format!("journal-{epoch}.wal")), epoch),
        )?;
        let undirected = is_undirected(&engine);
        publish_footprint(&engine);
        Ok(DurableEngine {
            engine,
            dir,
            journal,
            dcfg,
            since_snapshot: 0,
            undirected,
        })
    }

    /// Recovers the engine from `dir`: loads the newest loadable snapshot
    /// (zero-copy by default — see [`OpenMode::Mapped`]), replays the
    /// journal suffix through the normal apply path, truncates a torn tail
    /// (reported, never fatal), and resumes journaling where the surviving
    /// history ends. Mid-journal corruption and unloadable snapshots fail
    /// with named errors instead of serving drifted state.
    pub fn open(dir: impl AsRef<Path>, dcfg: DurabilityConfig) -> Result<(Self, RecoveryReport)> {
        Self::open_with(dir, dcfg, OpenMode::default())
    }

    /// [`DurableEngine::open`] with an explicit shard-index
    /// [`OpenMode`]. Both modes recover the exact same state — the mode
    /// only chooses where the posting columns live (mapped file vs heap).
    pub fn open_with(
        dir: impl AsRef<Path>,
        dcfg: DurabilityConfig,
        mode: OpenMode,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        let snaps = find_numbered(&dir, "snap-")?;
        if snaps.is_empty() {
            return Err(StreamError::NoSnapshot(dir));
        }
        // Newest loadable snapshot wins; a torn or rotted one falls back
        // to its predecessor (compaction keeps at most a crash-window's
        // worth of extras around).
        let load_start = Instant::now();
        let mut last_err = None;
        let mut loaded = None;
        for (epoch, path) in snaps.iter().rev() {
            match load_snapshot(path, mode) {
                Ok(engine) => {
                    loaded = Some((*epoch, engine));
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (snapshot_epoch, mut engine) = match loaded {
            Some(ok) => ok,
            None => return Err(last_err.expect("at least one snapshot was tried")),
        };
        let snapshot_load_ms = load_start.elapsed().as_secs_f64() * 1e3;

        let journals = find_numbered(&dir, "journal-")?;
        let replay_start = Instant::now();
        let (journal, epochs_replayed, torn_tail) = match journals.last() {
            None => {
                // Crash between base-snapshot write and journal creation:
                // the snapshot alone is the whole history.
                let j = dio(
                    "journal create",
                    BatchJournal::create(
                        dir.join(format!("journal-{snapshot_epoch}.wal")),
                        snapshot_epoch,
                    ),
                )?;
                (j, 0u64, None)
            }
            Some((base, path)) => {
                if *base > snapshot_epoch {
                    return Err(StreamError::CorruptJournal(format!(
                        "journal base epoch {base} is newer than the newest loadable \
                         snapshot (epoch {snapshot_epoch}); the intervening history is gone"
                    )));
                }
                let scan = journal::scan(path)?;
                let mut replayed = 0u64;
                for rec in &scan.records {
                    if rec.epoch <= snapshot_epoch {
                        continue;
                    }
                    let report = engine.apply(&rec.batch).map_err(|e| {
                        StreamError::CorruptJournal(format!(
                            "journaled batch for epoch {} failed to re-apply: {e}",
                            rec.epoch
                        ))
                    })?;
                    if report.epoch != rec.epoch {
                        return Err(StreamError::CorruptJournal(format!(
                            "replaying the record for epoch {} advanced the engine to \
                             epoch {} instead",
                            rec.epoch, report.epoch
                        )));
                    }
                    replayed += 1;
                }
                let j = dio(
                    "journal reopen",
                    BatchJournal::open_append(path, scan.valid_len),
                )?;
                (j, replayed, scan.torn_tail)
            }
        };
        let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;

        let metrics = crate::obs::durable_metrics();
        metrics.recoveries.inc();
        metrics.recovery_replayed_batches.add(epochs_replayed);
        metrics.recovery_ns.record_duration(load_start.elapsed());

        let (heap_bytes, mapped_bytes) = publish_footprint(&engine);
        let report = RecoveryReport {
            snapshot_epoch,
            epochs_replayed,
            recovered_epoch: engine.epoch(),
            torn_tail,
            snapshot_load_ms,
            replay_ms,
            heap_bytes,
            mapped_bytes,
        };
        let undirected = is_undirected(&engine);
        Ok((
            DurableEngine {
                engine,
                dir,
                journal,
                dcfg,
                since_snapshot: epochs_replayed,
                undirected,
            },
            report,
        ))
    }

    /// Applies one batch with the write-ahead contract: the canonicalized
    /// batch is journaled and fsync'd after validation passes and before
    /// any shard commits. Empty batches short-circuit without touching the
    /// journal (they don't advance the epoch). At the configured cadence a
    /// snapshot lands after the apply and the journal compacts.
    pub fn apply(&mut self, batch: &EdgeBatch) -> Result<BatchReport> {
        let undirected = self.undirected;
        let journal = &mut self.journal;
        let mut hook = |b: &EdgeBatch, epoch: u64| -> std::io::Result<()> {
            // Validation already passed on every shard, so canonicalization
            // cannot fail; the journaled record holds the canonical edits
            // (dedup is idempotent — replay stages the identical delta).
            let (ins, del) = b.dedup_edits(undirected).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?;
            journal.append(epoch, b.timestamp, &ins, &del)
        };
        let report = self.engine.apply_hooked(batch, Some(&mut hook))?;
        if !report.shards.is_empty() {
            self.since_snapshot += 1;
            if self.dcfg.snapshot_every > 0 && self.since_snapshot >= self.dcfg.snapshot_every {
                self.snapshot_now()?;
            }
            // Commits may have promoted mapped layers to the heap; keep
            // the resident-vs-mapped gauges truthful.
            publish_footprint(&self.engine);
        }
        Ok(report)
    }

    /// Takes a snapshot at the current epoch, rotates the journal to the
    /// new base, and compacts: older snapshots and journal files are
    /// deleted once the new manifest is durable. Returns the snapshot
    /// epoch.
    pub fn snapshot_now(&mut self) -> Result<u64> {
        let epoch = self.engine.epoch();
        save_snapshot(&self.engine, &self.dir.join(format!("snap-{epoch}")))?;
        self.journal = dio(
            "journal rotate",
            BatchJournal::create(self.dir.join(format!("journal-{epoch}.wal")), epoch),
        )?;
        // Compaction. Best-effort: leftovers are harmless (recovery picks
        // the newest loadable snapshot and the newest journal base).
        for (e, p) in find_numbered(&self.dir, "snap-")? {
            if e < epoch {
                std::fs::remove_dir_all(&p).ok();
            }
        }
        for (e, p) in find_numbered(&self.dir, "journal-")? {
            if e < epoch {
                std::fs::remove_file(&p).ok();
            }
        }
        self.since_snapshot = 0;
        Ok(epoch)
    }

    /// The wrapped engine (read-only — mutation goes through
    /// [`DurableEngine::apply`] so the journal never lags the state).
    pub fn engine(&self) -> &StreamEngine {
        &self.engine
    }

    /// The data directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability policy.
    pub fn durability_config(&self) -> DurabilityConfig {
        self.dcfg
    }

    /// Passthrough of [`StreamEngine::set_maintain_crossover`] (a pure
    /// wall-time knob — never journaled because it never changes results).
    pub fn set_maintain_crossover(&mut self, crossover: f64) {
        self.engine.set_maintain_crossover(crossover);
    }
}

fn is_undirected(engine: &StreamEngine) -> bool {
    engine
        .graph()
        .map(|g| g.kind() == GraphKind::Undirected)
        .unwrap_or(true)
}

/// Pushes the engine's resident-vs-mapped column split to the global
/// `rwd_storage_{heap,mapped}_bytes` gauges and returns it.
fn publish_footprint(engine: &StreamEngine) -> (usize, usize) {
    let (mut heap, mut mapped) = (0usize, 0usize);
    for idx in engine.shard_indexes() {
        heap += idx.heap_bytes();
        mapped += idx.mapped_bytes();
    }
    rwd_walks::storage::record_storage_footprint(heap, mapped);
    (heap, mapped)
}

/// Maps an I/O failure into the named durability error.
fn dio<T>(context: &str, r: std::io::Result<T>) -> Result<T> {
    r.map_err(|source| StreamError::Durability {
        context: context.into(),
        source,
    })
}

/// Lists `<prefix><number>` entries of `dir` (an optional `.wal` suffix is
/// stripped), sorted ascending by number.
fn find_numbered(dir: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return dio("data dir list", Err(e)),
    };
    for entry in entries {
        let entry = dio("data dir list", entry)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else {
            continue;
        };
        let rest = rest.strip_suffix(".wal").unwrap_or(rest);
        if let Ok(number) = rest.parse::<u64>() {
            out.push((number, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(n, _)| *n);
    Ok(out)
}

/// Serializes the full engine state into `snap_dir`: `graph.bin`, one
/// walk-index file per shard, then `manifest.bin` last (commit point).
/// Every file ends in a CRC-32 trailer and is fsync'd before the manifest
/// lands.
pub(crate) fn save_snapshot(engine: &StreamEngine, snap_dir: &Path) -> Result<()> {
    let metrics = crate::obs::durable_metrics();
    let timer = metrics.snapshot_write_ns.time();
    dio("snapshot dir create", std::fs::create_dir_all(snap_dir))?;
    let weighted = engine.weighted_graph().is_some();

    // Graph: the canonical edge list. Rebuilding a CSR from it is bitwise
    // identical to the live graph (the graph crate's with_edits tests pin
    // exactly this equality for both the unweighted and weighted layouts).
    let mut graph_bytes = Vec::new();
    graph_bytes.extend_from_slice(GRAPH_MAGIC);
    if let Some(g) = engine.graph() {
        graph_bytes.push(0u8);
        graph_bytes.push(match g.kind() {
            GraphKind::Undirected => 0u8,
            GraphKind::Directed => 1u8,
        });
        graph_bytes.extend_from_slice(&(g.n() as u64).to_le_bytes());
        graph_bytes.extend_from_slice(&(g.m() as u64).to_le_bytes());
        for (u, v) in g.edges() {
            graph_bytes.extend_from_slice(&u.raw().to_le_bytes());
            graph_bytes.extend_from_slice(&v.raw().to_le_bytes());
        }
    } else {
        let g = engine.weighted_graph().expect("engine has a graph");
        graph_bytes.push(1u8);
        graph_bytes.push(0u8); // weighted graphs are always undirected
        graph_bytes.extend_from_slice(&(g.n() as u64).to_le_bytes());
        graph_bytes.extend_from_slice(&(g.m() as u64).to_le_bytes());
        for u in 0..g.n() as u32 {
            for (v, w) in g.neighbors(NodeId(u)) {
                if v.raw() >= u {
                    graph_bytes.extend_from_slice(&u.to_le_bytes());
                    graph_bytes.extend_from_slice(&v.raw().to_le_bytes());
                    graph_bytes.extend_from_slice(&w.to_bits().to_le_bytes());
                }
            }
        }
    }
    write_with_crc(&snap_dir.join("graph.bin"), graph_bytes)?;

    // Per-shard walk indexes, via the zero-copy-openable RWDIDX4 writer
    // (a big-endian host falls back to the portable RWDIDX2/3 writer —
    // both load, only V4 maps).
    for (i, idx) in engine.shard_indexes().iter().enumerate() {
        let path = snap_dir.join(format!("shard-{i}.rwdidx"));
        let saved = if cfg!(target_endian = "little") {
            idx.save_v4(&path)
        } else {
            idx.save(&path)
        };
        dio("shard index save", saved)?;
        dio(
            "shard index sync",
            File::open(&path).and_then(|f| f.sync_all()),
        )?;
    }

    // Manifest last: a snapshot is valid iff its manifest parses, so a
    // crash mid-snapshot leaves an ignorable directory, never a lie.
    let cfg = engine.config();
    let mut m = Vec::new();
    m.extend_from_slice(MANIFEST_MAGIC);
    m.extend_from_slice(&engine.epoch().to_le_bytes());
    m.extend_from_slice(&(cfg.l as u64).to_le_bytes());
    m.extend_from_slice(&(cfg.r as u64).to_le_bytes());
    m.extend_from_slice(&(cfg.k as u64).to_le_bytes());
    m.extend_from_slice(&cfg.seed.to_le_bytes());
    m.extend_from_slice(&(cfg.threads as u64).to_le_bytes());
    let (rule_tag, lambda) = match cfg.rule {
        GainRule::HittingTime => (0u8, 0f64),
        GainRule::Coverage => (1u8, 0f64),
        GainRule::Combined { lambda } => (2u8, lambda),
    };
    m.push(rule_tag);
    m.extend_from_slice(&lambda.to_bits().to_le_bytes());
    m.push(u8::from(weighted));
    m.extend_from_slice(
        &(engine.shard_indexes().first().map_or(0, |i| i.n()) as u64).to_le_bytes(),
    );
    let ranges = engine.shard_ranges();
    m.extend_from_slice(&(ranges.len() as u64).to_le_bytes());
    for rg in &ranges {
        m.extend_from_slice(&(rg.start() as u64).to_le_bytes());
        m.extend_from_slice(&(rg.end() as u64).to_le_bytes());
    }
    write_with_crc(&snap_dir.join("manifest.bin"), m)?;
    // Make the directory entries themselves durable (best-effort — not
    // every filesystem lets you fsync a directory handle).
    if let Ok(d) = File::open(snap_dir) {
        d.sync_all().ok();
    }
    timer.stop();
    metrics.snapshots_written.inc();
    Ok(())
}

fn write_with_crc(path: &Path, mut bytes: Vec<u8>) -> Result<()> {
    let sum = crc32(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    dio("snapshot file write", std::fs::write(path, &bytes))?;
    dio(
        "snapshot file sync",
        File::open(path).and_then(|f| f.sync_all()),
    )
}

/// The first 8 bytes of `path`, if readable — the on-disk format magic.
fn file_magic(path: &Path) -> Option<[u8; 8]> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).ok()?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).ok()?;
    Some(magic)
}

/// Reads a CRC-trailed snapshot file, verifying magic and checksum.
fn read_with_crc(path: &Path, magic: &[u8; 8], what: &str) -> Result<Vec<u8>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            return Err(StreamError::CorruptSnapshot(format!(
                "{what} {} unreadable: {e}",
                path.display()
            )))
        }
    };
    if bytes.len() < 12 || &bytes[..8] != magic {
        return Err(StreamError::CorruptSnapshot(format!(
            "{what} {} has a bad or truncated header",
            path.display()
        )));
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 4);
    if crc32(content) != u32::from_le_bytes(trailer.try_into().unwrap()) {
        return Err(StreamError::CorruptSnapshot(format!(
            "{what} {} fails its content checksum",
            path.display()
        )));
    }
    Ok(content[8..].to_vec())
}

/// Loads one snapshot directory back into a [`StreamEngine`] at the
/// snapshot's epoch. Every cross-field inconsistency is a named
/// [`StreamError::CorruptSnapshot`].
pub(crate) fn load_snapshot(snap_dir: &Path, mode: OpenMode) -> Result<StreamEngine> {
    let corrupt = |msg: String| StreamError::CorruptSnapshot(msg);
    let m = read_with_crc(&snap_dir.join("manifest.bin"), MANIFEST_MAGIC, "manifest")?;
    let fixed = 8 * 6 + 1 + 8 + 1 + 8 + 8;
    if m.len() < fixed {
        return Err(corrupt(format!(
            "manifest in {} is too short ({} bytes)",
            snap_dir.display(),
            m.len()
        )));
    }
    let u64_at = |at: usize| u64::from_le_bytes(m[at..at + 8].try_into().unwrap());
    let epoch = u64_at(0);
    let cfg = StreamConfig {
        l: u64_at(8) as u32,
        r: u64_at(16) as usize,
        k: u64_at(24) as usize,
        seed: u64_at(32),
        threads: u64_at(40) as usize,
        rule: match m[48] {
            0 => GainRule::HittingTime,
            1 => GainRule::Coverage,
            2 => GainRule::Combined {
                lambda: f64::from_bits(u64_at(49)),
            },
            tag => {
                return Err(corrupt(format!(
                    "manifest in {} names unknown gain rule tag {tag}",
                    snap_dir.display()
                )))
            }
        },
    };
    let weighted = m[57] != 0;
    let n = u64_at(58) as usize;
    let shard_count = u64_at(66) as usize;
    if m.len() != fixed + shard_count * 16 {
        return Err(corrupt(format!(
            "manifest in {} sizes {} bytes but its {shard_count} shard ranges need {}",
            snap_dir.display(),
            m.len(),
            fixed + shard_count * 16
        )));
    }
    let mut ranges = Vec::with_capacity(shard_count);
    for i in 0..shard_count {
        let start = u64_at(fixed + i * 16) as usize;
        let end = u64_at(fixed + i * 16 + 8) as usize;
        if start >= end || end > cfg.r {
            return Err(corrupt(format!(
                "manifest in {} holds shard range [{start}, {end}) outside the {}-layer \
                 tiling",
                snap_dir.display(),
                cfg.r
            )));
        }
        ranges.push(LayerRange::new(start, end));
    }

    // Graph rebuild from the canonical edge list.
    let g = read_with_crc(&snap_dir.join("graph.bin"), GRAPH_MAGIC, "graph")?;
    if g.len() < 18 {
        return Err(corrupt(format!(
            "graph file in {} is too short",
            snap_dir.display()
        )));
    }
    let g_weighted = g[0] != 0;
    let g_kind = g[1];
    let g_n = u64::from_le_bytes(g[2..10].try_into().unwrap()) as usize;
    let g_m = u64::from_le_bytes(g[10..18].try_into().unwrap()) as usize;
    if g_weighted != weighted || g_n != n {
        return Err(corrupt(format!(
            "graph file in {} disagrees with the manifest (weighted {g_weighted} vs \
             {weighted}, n {g_n} vs {n})",
            snap_dir.display()
        )));
    }
    let body = &g[18..];
    let graph: EvolvingGraph = if weighted {
        if body.len() != g_m * 16 {
            return Err(corrupt(format!(
                "graph file in {} holds {} edge bytes where {g_m} weighted edges need {}",
                snap_dir.display(),
                body.len(),
                g_m * 16
            )));
        }
        let edges: Vec<(u32, u32, f64)> = body
            .chunks_exact(16)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..8].try_into().unwrap()),
                    f64::from_bits(u64::from_le_bytes(c[8..16].try_into().unwrap())),
                )
            })
            .collect();
        let wg = WeightedCsrGraph::from_weighted_edges(n, &edges).map_err(|e| {
            corrupt(format!(
                "graph file in {} fails to rebuild: {e}",
                snap_dir.display()
            ))
        })?;
        EvolvingGraph::Weighted(Arc::new(wg))
    } else {
        if body.len() != g_m * 8 {
            return Err(corrupt(format!(
                "graph file in {} holds {} edge bytes where {g_m} edges need {}",
                snap_dir.display(),
                body.len(),
                g_m * 8
            )));
        }
        let mut b = match g_kind {
            0 => GraphBuilder::undirected(),
            1 => GraphBuilder::directed(),
            k => {
                return Err(corrupt(format!(
                    "graph file in {} names unknown graph kind {k}",
                    snap_dir.display()
                )))
            }
        }
        .with_nodes(n)
        .with_edge_capacity(g_m);
        for c in body.chunks_exact(8) {
            b.add_edge(
                u32::from_le_bytes(c[0..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..8].try_into().unwrap()),
            );
        }
        let cg = b.build().map_err(|e| {
            corrupt(format!(
                "graph file in {} fails to rebuild: {e}",
                snap_dir.display()
            ))
        })?;
        if cg.m() != g_m {
            return Err(corrupt(format!(
                "graph file in {} rebuilt to {} edges, not the recorded {g_m} (the edge \
                 list was not canonical)",
                snap_dir.display(),
                cg.m()
            )));
        }
        EvolvingGraph::Unweighted(Arc::new(cg))
    };

    // Per-shard indexes, cross-checked against the manifest's tiling.
    // Mapped mode zero-copies RWDIDX4 shard files; anything else (older
    // formats, hosts without the mapped path) deserializes.
    let mut shards = Vec::with_capacity(shard_count);
    for (i, &rg) in ranges.iter().enumerate() {
        let path = snap_dir.join(format!("shard-{i}.rwdidx"));
        let use_map = mode == OpenMode::Mapped
            && cfg!(unix)
            && cfg!(target_endian = "little")
            && file_magic(&path).is_some_and(|m| &m == b"RWDIDX4\0");
        let idx = if use_map {
            WalkIndex::open_mapped(&path)
        } else {
            WalkIndex::load_with_threads(&path, cfg.threads)
        }
        .map_err(|e| {
            corrupt(format!(
                "shard index {} failed to load: {e}",
                path.display()
            ))
        })?;
        if idx.n() != n
            || idx.l() != cfg.l
            || idx.seed() != cfg.seed
            || idx.layer_base() != rg.start()
            || idx.r() != rg.len()
        {
            return Err(corrupt(format!(
                "shard index {} disagrees with the manifest (n {} vs {n}, l {} vs {}, \
                 seed {} vs {}, layers [{}, {}) vs [{}, {}))",
                path.display(),
                idx.n(),
                idx.l(),
                cfg.l,
                idx.seed(),
                cfg.seed,
                idx.layer_base(),
                idx.layer_base() + idx.r(),
                rg.start(),
                rg.end()
            )));
        }
        shards.push(ShardEngine::from_parts(
            i,
            rg,
            graph.clone(),
            IncrementalIndex::from_loaded(idx, weighted, cfg.threads),
        ));
    }
    if shards.is_empty() {
        return Err(corrupt(format!(
            "manifest in {} names zero shards",
            snap_dir.display()
        )));
    }
    Ok(StreamEngine::from_shard_set(ShardSet::from_recovered(
        cfg, shards, epoch,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::erdos_renyi_gnp;

    fn cfg() -> StreamConfig {
        StreamConfig {
            l: 4,
            r: 5,
            k: 3,
            seed: 17,
            rule: GainRule::HittingTime,
            threads: 1,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rwd_durable_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Every bitwise-comparable surface of an engine.
    fn fingerprint(e: &StreamEngine) -> (u64, Vec<u32>, Vec<u64>, u64, bool) {
        (
            e.epoch(),
            e.seeds().iter().map(|s| s.raw()).collect(),
            e.gain_trace().iter().map(|g| g.to_bits()).collect(),
            e.objective().to_bits(),
            true,
        )
    }

    fn assert_engines_equal(a: &StreamEngine, b: &StreamEngine) {
        assert_eq!(fingerprint(a), fingerprint(b));
        assert_eq!(a.shard_count(), b.shard_count());
        for (ia, ib) in a.shard_indexes().iter().zip(b.shard_indexes()) {
            assert!(**ia == *ib, "a shard index drifted");
        }
        match (a.graph(), b.graph()) {
            (Some(ga), Some(gb)) => {
                assert_eq!(ga.offsets(), gb.offsets());
                assert_eq!(ga.targets(), gb.targets());
            }
            (None, None) => {
                let (ga, gb) = (a.weighted_graph().unwrap(), b.weighted_graph().unwrap());
                assert_eq!(ga.n(), gb.n());
                assert_eq!(ga.m(), gb.m());
            }
            _ => panic!("weighted-ness diverged"),
        }
    }

    fn churn_batches(g0: &rwd_graph::CsrGraph, count: usize) -> Vec<EdgeBatch> {
        // Alternate inserting absent edges and deleting ones we inserted.
        let n = g0.n() as u32;
        let mut live: Vec<(u32, u32)> = Vec::new();
        let mut batches = Vec::new();
        let mut cand = (0..n).flat_map(move |u| ((u + 1)..n).map(move |v| (u, v)));
        for t in 0..count {
            let mut b = EdgeBatch::new(100 + t as u64);
            if t % 3 == 2 {
                if let Some(e) = live.pop() {
                    b.deletions.push(e);
                }
            }
            for _ in 0..2 {
                if let Some((u, v)) = cand
                    .find(|&(u, v)| !g0.has_edge(NodeId(u), NodeId(v)) && !live.contains(&(u, v)))
                {
                    b.insertions.push((u, v, 1.0));
                    live.push((u, v));
                }
            }
            batches.push(b);
        }
        batches
    }

    #[test]
    fn create_apply_reopen_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let g0 = erdos_renyi_gnp(50, 0.08, 3).unwrap();
        let engine = StreamEngine::with_shards(g0.clone(), cfg(), 2).unwrap();
        let mut durable = DurableEngine::create(engine, &dir, DurabilityConfig::default()).unwrap();
        for b in churn_batches(&g0, 5) {
            durable.apply(&b).unwrap();
        }
        assert_eq!(durable.engine().epoch(), 5);
        let live = durable.engine().clone();
        drop(durable);

        let (recovered, report) = DurableEngine::open(&dir, DurabilityConfig::default()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.epochs_replayed, 5);
        assert_eq!(report.recovered_epoch, 5);
        assert!(report.torn_tail.is_none());
        assert_engines_equal(recovered.engine(), &live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_cadence_compacts_and_recovery_still_matches() {
        let dir = tmp_dir("cadence");
        let g0 = erdos_renyi_gnp(50, 0.08, 7).unwrap();
        let engine = StreamEngine::new(g0.clone(), cfg()).unwrap();
        let dcfg = DurabilityConfig { snapshot_every: 2 };
        let mut durable = DurableEngine::create(engine, &dir, dcfg).unwrap();
        for b in churn_batches(&g0, 5) {
            durable.apply(&b).unwrap();
        }
        // Snapshots landed after batches 2 and 4; compaction keeps only the
        // newest snapshot and journal.
        let snaps = find_numbered(&dir, "snap-").unwrap();
        let journals = find_numbered(&dir, "journal-").unwrap();
        assert_eq!(snaps.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![4]);
        assert_eq!(
            journals.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![4]
        );
        let live = durable.engine().clone();
        drop(durable);

        let (recovered, report) = DurableEngine::open(&dir, dcfg).unwrap();
        assert_eq!(report.snapshot_epoch, 4);
        assert_eq!(report.epochs_replayed, 1, "only the suffix replays");
        assert_engines_equal(recovered.engine(), &live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_recovers_the_surviving_prefix_and_resumes() {
        let dir = tmp_dir("torn");
        let g0 = erdos_renyi_gnp(40, 0.1, 11).unwrap();
        let mut prefix_engine = StreamEngine::new(g0.clone(), cfg()).unwrap();
        let engine = StreamEngine::new(g0.clone(), cfg()).unwrap();
        let mut durable = DurableEngine::create(engine, &dir, DurabilityConfig::default()).unwrap();
        let batches = churn_batches(&g0, 3);
        for b in &batches {
            durable.apply(b).unwrap();
        }
        drop(durable);
        // The reference engine applies only the surviving prefix (2 of 3).
        for b in &batches[..2] {
            prefix_engine.apply(b).unwrap();
        }
        // Tear the journal mid-way through the final record.
        let jpath = dir.join("journal-0.wal");
        let bytes = std::fs::read(&jpath).unwrap();
        std::fs::write(&jpath, &bytes[..bytes.len() - 7]).unwrap();

        let (mut recovered, report) =
            DurableEngine::open(&dir, DurabilityConfig::default()).unwrap();
        assert_eq!(report.recovered_epoch, 2);
        assert!(report.torn_tail.is_some());
        assert_engines_equal(recovered.engine(), &prefix_engine);

        // The journal resumes cleanly: re-apply the lost batch and a fresh
        // reopen still agrees with the straight-line engine.
        recovered.apply(&batches[2]).unwrap();
        prefix_engine.apply(&batches[2]).unwrap();
        let live = recovered.engine().clone();
        drop(recovered);
        let (again, report) = DurableEngine::open(&dir, DurabilityConfig::default()).unwrap();
        assert!(report.torn_tail.is_none());
        assert_engines_equal(again.engine(), &live);
        assert_engines_equal(again.engine(), &prefix_engine);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_open_zero_copies_a_v4_snapshot() {
        let dir = tmp_dir("mapped");
        let g0 = erdos_renyi_gnp(50, 0.08, 21).unwrap();
        let engine = StreamEngine::with_shards(g0.clone(), cfg(), 2).unwrap();
        let mut durable = DurableEngine::create(engine, &dir, DurabilityConfig::default()).unwrap();
        for b in churn_batches(&g0, 3) {
            durable.apply(&b).unwrap();
        }
        durable.snapshot_now().unwrap();
        let live = durable.engine().clone();
        drop(durable);

        let (mapped, mrep) =
            DurableEngine::open_with(&dir, DurabilityConfig::default(), OpenMode::Mapped).unwrap();
        let (owned, orep) =
            DurableEngine::open_with(&dir, DurabilityConfig::default(), OpenMode::Deserialize)
                .unwrap();
        assert_eq!(mrep.epochs_replayed, 0);
        assert_engines_equal(mapped.engine(), &live);
        assert_engines_equal(owned.engine(), &live);
        // Deserialize mode owns everything; mapped mode (with nothing to
        // replay) serves every posting column straight from the file, and
        // the two accountings cover the same bytes.
        assert_eq!(orep.mapped_bytes, 0);
        if cfg!(all(unix, target_endian = "little")) {
            assert!(mrep.mapped_bytes > 0, "V4 snapshot did not map");
            assert_eq!(
                mrep.heap_bytes + mrep.mapped_bytes,
                orep.heap_bytes,
                "mapped and owned opens account different column totals"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weighted_engine_round_trips_durably() {
        let dir = tmp_dir("weighted");
        let g0 = erdos_renyi_gnp(40, 0.1, 5).unwrap();
        let w0 = rwd_graph::weighted::weighted_twin(&g0, 9).unwrap();
        let engine = StreamEngine::with_shards_weighted(w0, cfg(), 2).unwrap();
        let mut durable = DurableEngine::create(engine, &dir, DurabilityConfig::default()).unwrap();
        let mut b = EdgeBatch::new(1);
        let (u, v) = (0..40u32)
            .flat_map(|u| ((u + 1)..40).map(move |v| (u, v)))
            .find(|&(u, v)| !g0.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        b.insertions.push((u, v, 2.25));
        durable.apply(&b).unwrap();
        durable.snapshot_now().unwrap();
        let live = durable.engine().clone();
        drop(durable);
        let (recovered, report) = DurableEngine::open(&dir, DurabilityConfig::default()).unwrap();
        assert_eq!(report.snapshot_epoch, 1);
        assert_eq!(report.epochs_replayed, 0);
        assert_engines_equal(recovered.engine(), &live);
        // Weighted columns are bitwise equal, not just structurally.
        let (ga, gb) = (
            recovered.engine().weighted_graph().unwrap(),
            live.weighted_graph().unwrap(),
        );
        for u in ga.nodes() {
            let a: Vec<(u32, u64)> = ga
                .neighbors(u)
                .map(|(v, w)| (v.raw(), w.to_bits()))
                .collect();
            let b: Vec<(u32, u64)> = gb
                .neighbors(u)
                .map(|(v, w)| (v.raw(), w.to_bits()))
                .collect();
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_names_missing_and_corrupt_state() {
        let dir = tmp_dir("errors");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            DurableEngine::open(&dir, DurabilityConfig::default()).unwrap_err(),
            StreamError::NoSnapshot(_)
        ));

        // A snapshot whose shard file is bit-rotted is rejected by name.
        let g0 = erdos_renyi_gnp(30, 0.12, 2).unwrap();
        let engine = StreamEngine::new(g0, cfg()).unwrap();
        let durable = DurableEngine::create(engine, &dir, DurabilityConfig::default()).unwrap();
        drop(durable);
        let shard = dir.join("snap-0").join("shard-0.rwdidx");
        let mut bytes = std::fs::read(&shard).unwrap();
        bytes[35] ^= 0x08; // RNG seed byte: only the CRC trailer can notice
        std::fs::write(&shard, &bytes).unwrap();
        let err = DurableEngine::open(&dir, DurabilityConfig::default()).unwrap_err();
        assert!(
            matches!(&err, StreamError::CorruptSnapshot(m) if m.contains("checksum")),
            "{err}"
        );

        // create() refuses to clobber an existing data dir.
        let g0 = erdos_renyi_gnp(30, 0.12, 2).unwrap();
        let engine = StreamEngine::new(g0, cfg()).unwrap();
        assert!(matches!(
            DurableEngine::create(engine, &dir, DurabilityConfig::default()).unwrap_err(),
            StreamError::InvalidConfig(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_journal_corruption_is_fatal_by_name() {
        let dir = tmp_dir("midcorrupt");
        let g0 = erdos_renyi_gnp(40, 0.1, 13).unwrap();
        let engine = StreamEngine::new(g0.clone(), cfg()).unwrap();
        let mut durable = DurableEngine::create(engine, &dir, DurabilityConfig::default()).unwrap();
        for b in churn_batches(&g0, 3) {
            durable.apply(&b).unwrap();
        }
        drop(durable);
        let jpath = dir.join("journal-0.wal");
        let mut bytes = std::fs::read(&jpath).unwrap();
        bytes[30] ^= 0x01; // record 0 payload: not the final record
        std::fs::write(&jpath, &bytes).unwrap();
        let err = DurableEngine::open(&dir, DurabilityConfig::default()).unwrap_err();
        assert!(matches!(err, StreamError::CorruptJournal(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
