//! Timestamped edge-churn batches and their application to graphs.

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, GraphError, NodeId};
use rwd_walks::NodeSet;

/// One timestamped batch of edge churn.
///
/// Insertions carry a weight so one trace can drive both pipelines: the
/// unweighted application ignores the weight, the weighted application uses
/// it. Listing an edge in both `deletions` and `insertions` is a
/// delete-then-reinsert — a weight update on weighted graphs.
///
/// The node universe is fixed (`0..n`): churn adds and removes edges, never
/// nodes. A node that loses its last edge simply becomes isolated (walks
/// from it stay put, the documented degree-0 convention).
///
/// **Duplicate edits.** Real timestamped traces routinely repeat an edge
/// inside one window, so `apply`/`apply_weighted` canonicalize the batch
/// first: *identical* duplicates — the same edge listed twice in
/// `deletions`, or listed twice in `insertions` with the same weight (for
/// an undirected graph, in either orientation) — collapse to a single
/// edit. What can never be repaired silently is a **conflicting**
/// duplicate: the same edge inserted twice with different weights is
/// rejected before anything touches the graph, because either choice would
/// silently pick a winner and both pipelines must agree on the applied
/// edge list. Everything else (`insert-of-an-existing-edge` not shielded
/// by a same-batch deletion, deletion of a missing edge, self-loops,
/// out-of-range endpoints) is still rejected by the graph-level
/// `with_edits` validation — the batch never reaches it in a shape that
/// could break the simple-graph invariant the walk index assumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeBatch {
    /// Event time of the batch (opaque to the engine; reported back in
    /// [`crate::BatchReport`] so churn stats can be joined to a timeline).
    pub timestamp: u64,
    /// Edges to insert, with the weight used by weighted graphs.
    pub insertions: Vec<(u32, u32, f64)>,
    /// Edges to delete.
    pub deletions: Vec<(u32, u32)>,
}

/// Canonicalized edit lists produced by [`EdgeBatch::dedup_edits`]:
/// orientation-normalized, sorted, identical duplicates collapsed.
pub type DedupedEdits = (Vec<(u32, u32, f64)>, Vec<(u32, u32)>);

impl EdgeBatch {
    /// Creates an empty batch at `timestamp`.
    pub fn new(timestamp: u64) -> Self {
        EdgeBatch {
            timestamp,
            ..EdgeBatch::default()
        }
    }

    /// Number of edits (insertions plus deletions) in the batch.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True when the batch contains no edits.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Canonicalizes the batch for application: orientation-normalizes
    /// edits (undirected graphs only), collapses identical duplicates, and
    /// rejects same-edge insertions whose weights disagree. Exposed so
    /// trace loaders can pre-clean windows; `apply`/`apply_weighted` call
    /// it internally.
    ///
    /// Weight identity is bitwise (`f64::to_bits`), the same equality the
    /// deterministic pipelines use everywhere else.
    pub fn dedup_edits(&self, undirected: bool) -> Result<DedupedEdits, GraphError> {
        let canon = |u: u32, v: u32| {
            if undirected && u > v {
                (v, u)
            } else {
                (u, v)
            }
        };
        let mut ins: Vec<(u32, u32, f64)> = self
            .insertions
            .iter()
            .map(|&(u, v, w)| {
                let (u, v) = canon(u, v);
                (u, v, w)
            })
            .collect();
        ins.sort_unstable_by_key(|a| (a.0, a.1, a.2.to_bits()));
        ins.dedup_by(|a, b| (a.0, a.1, a.2.to_bits()) == (b.0, b.1, b.2.to_bits()));
        if let Some(w) = ins
            .windows(2)
            .find(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
        {
            return Err(GraphError::InvalidInput(format!(
                "batch inserts edge ({}, {}) twice with conflicting weights \
                 {} and {}",
                w[0].0, w[0].1, w[0].2, w[1].2
            )));
        }
        let mut del: Vec<(u32, u32)> = self.deletions.iter().map(|&(u, v)| canon(u, v)).collect();
        del.sort_unstable();
        del.dedup();
        Ok((ins, del))
    }

    /// Applies the batch to an unweighted graph, producing the next-epoch
    /// graph and its touched set. Insertion weights are ignored (but still
    /// conflict-checked — see [`EdgeBatch::dedup_edits`] — so a trace
    /// behaves identically whichever pipeline consumes it). See
    /// [`CsrGraph::with_edits`] for the remaining validation rules.
    pub fn apply(&self, g: &CsrGraph) -> Result<GraphDelta, GraphError> {
        let undirected = g.kind() == rwd_graph::GraphKind::Undirected;
        let (ins, del) = self.dedup_edits(undirected)?;
        let ins: Vec<(u32, u32)> = ins.iter().map(|&(u, v, _)| (u, v)).collect();
        let (graph, touched) = g.with_edits(&ins, &del)?;
        let touched = NodeSet::from_nodes(graph.n(), touched);
        Ok(GraphDelta { graph, touched })
    }

    /// Applies the batch to a weighted graph: alias tables and cumulative
    /// weights are rebuilt only for touched rows
    /// ([`WeightedCsrGraph::with_edits`]). Identical duplicate edits are
    /// collapsed first ([`EdgeBatch::dedup_edits`]).
    pub fn apply_weighted(&self, g: &WeightedCsrGraph) -> Result<WeightedGraphDelta, GraphError> {
        let (ins, del) = self.dedup_edits(true)?;
        let (graph, touched) = g.with_edits(&ins, &del)?;
        let touched = NodeSet::from_nodes(graph.n(), touched);
        Ok(WeightedGraphDelta { graph, touched })
    }
}

/// The result of applying an [`EdgeBatch`] to a [`CsrGraph`]: the next
/// epoch's graph plus the set of nodes whose adjacency changed — the only
/// nodes whose outgoing walks can have changed.
#[derive(Clone, Debug)]
pub struct GraphDelta {
    /// The post-batch graph.
    pub graph: CsrGraph,
    /// Nodes whose adjacency list changed.
    pub touched: NodeSet,
}

impl GraphDelta {
    /// Touched nodes in ascending id order.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        self.touched.to_vec()
    }
}

/// The result of applying an [`EdgeBatch`] to a [`WeightedCsrGraph`].
#[derive(Clone, Debug)]
pub struct WeightedGraphDelta {
    /// The post-batch graph (alias tables patched for touched rows only).
    pub graph: WeightedCsrGraph,
    /// Nodes whose adjacency list (and thus sampler) changed.
    pub touched: NodeSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_tracks_touched_endpoints() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let mut batch = EdgeBatch::new(42);
        batch.insertions.push((2, 3, 1.0));
        batch.deletions.push((0, 1));
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let delta = batch.apply(&g).unwrap();
        assert_eq!(delta.graph.m(), 2);
        assert_eq!(
            delta.touched_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn apply_weighted_uses_insertion_weights() {
        let g = WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1.0)]).unwrap();
        let mut batch = EdgeBatch::new(0);
        batch.insertions.push((1, 2, 7.5));
        let delta = batch.apply_weighted(&g).unwrap();
        assert_eq!(delta.graph.m(), 2);
        assert!((delta.graph.strength(NodeId(2)) - 7.5).abs() < 1e-12);
        assert_eq!(delta.touched.to_vec(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn invalid_batches_are_rejected() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let mut bad = EdgeBatch::new(0);
        bad.deletions.push((1, 2));
        assert!(bad.apply(&g).is_err());
    }

    #[test]
    fn identical_duplicate_edits_collapse() {
        // Regression (trace windows repeat edges): the same insertion in
        // both orientations and a repeated deletion must apply as single
        // edits instead of failing the whole batch — and must never create
        // a parallel edge.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let mut batch = EdgeBatch::new(0);
        batch.insertions.push((2, 3, 1.5));
        batch.insertions.push((3, 2, 1.5)); // same undirected edge + weight
        batch.deletions.push((0, 1));
        batch.deletions.push((1, 0));
        let delta = batch.apply(&g).unwrap();
        assert_eq!(delta.graph.m(), 2);
        assert!(delta.graph.has_edge(NodeId(2), NodeId(3)));
        assert!(!delta.graph.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(delta.graph.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);

        // Weighted twin of the same batch.
        let wg = WeightedCsrGraph::from_weighted_edges(4, &[(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        let wd = batch.apply_weighted(&wg).unwrap();
        assert_eq!(wd.graph.m(), 2);
        assert!((wd.graph.strength(NodeId(3)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_duplicate_insertions_are_rejected() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]).unwrap();
        let wg = WeightedCsrGraph::from_weighted_edges(4, &[(0, 1, 1.0)]).unwrap();
        let mut batch = EdgeBatch::new(0);
        batch.insertions.push((2, 3, 1.0));
        batch.insertions.push((3, 2, 2.0)); // same edge, different weight
        let err = batch.apply(&g).unwrap_err();
        assert!(err.to_string().contains("conflicting weights"), "{err}");
        let err = batch.apply_weighted(&wg).unwrap_err();
        assert!(err.to_string().contains("conflicting weights"), "{err}");
    }

    #[test]
    fn directed_graphs_keep_orientations_distinct() {
        let mut b = rwd_graph::GraphBuilder::directed().with_nodes(3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let mut batch = EdgeBatch::new(0);
        // Opposite orientations are distinct arcs on a directed graph …
        batch.insertions.push((1, 2, 1.0));
        batch.insertions.push((2, 1, 1.0));
        let delta = batch.apply(&g).unwrap();
        assert_eq!(delta.graph.m(), 3);
        assert!(delta.graph.has_edge(NodeId(1), NodeId(2)));
        assert!(delta.graph.has_edge(NodeId(2), NodeId(1)));
        // … but an exact repeat of one arc still collapses.
        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((1, 2, 1.0));
        batch.insertions.push((1, 2, 1.0));
        let delta = batch.apply(&g).unwrap();
        assert_eq!(delta.graph.m(), 2);
    }

    #[test]
    fn insert_of_existing_edge_still_rejected() {
        // Dedup must not weaken the graph-level validation: inserting an
        // edge that already exists (and is not deleted in the same batch)
        // stays an error on both pipelines.
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let wg = WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1.0)]).unwrap();
        let mut batch = EdgeBatch::new(0);
        batch.insertions.push((1, 0, 3.0));
        assert!(batch.apply(&g).is_err());
        assert!(batch.apply_weighted(&wg).is_err());
    }
}
