//! Timestamped edge-churn batches and their application to graphs.

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, GraphError, NodeId};
use rwd_walks::NodeSet;

/// One timestamped batch of edge churn.
///
/// Insertions carry a weight so one trace can drive both pipelines: the
/// unweighted application ignores the weight, the weighted application uses
/// it. Listing an edge in both `deletions` and `insertions` is a
/// delete-then-reinsert — a weight update on weighted graphs.
///
/// The node universe is fixed (`0..n`): churn adds and removes edges, never
/// nodes. A node that loses its last edge simply becomes isolated (walks
/// from it stay put, the documented degree-0 convention).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeBatch {
    /// Event time of the batch (opaque to the engine; reported back in
    /// [`crate::BatchReport`] so churn stats can be joined to a timeline).
    pub timestamp: u64,
    /// Edges to insert, with the weight used by weighted graphs.
    pub insertions: Vec<(u32, u32, f64)>,
    /// Edges to delete.
    pub deletions: Vec<(u32, u32)>,
}

impl EdgeBatch {
    /// Creates an empty batch at `timestamp`.
    pub fn new(timestamp: u64) -> Self {
        EdgeBatch {
            timestamp,
            ..EdgeBatch::default()
        }
    }

    /// Number of edits (insertions plus deletions) in the batch.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True when the batch contains no edits.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Applies the batch to an unweighted graph, producing the next-epoch
    /// graph and its touched set. Insertion weights are ignored. See
    /// [`CsrGraph::with_edits`] for validation rules.
    pub fn apply(&self, g: &CsrGraph) -> Result<GraphDelta, GraphError> {
        let ins: Vec<(u32, u32)> = self.insertions.iter().map(|&(u, v, _)| (u, v)).collect();
        let (graph, touched) = g.with_edits(&ins, &self.deletions)?;
        let touched = NodeSet::from_nodes(graph.n(), touched);
        Ok(GraphDelta { graph, touched })
    }

    /// Applies the batch to a weighted graph: alias tables and cumulative
    /// weights are rebuilt only for touched rows
    /// ([`WeightedCsrGraph::with_edits`]).
    pub fn apply_weighted(&self, g: &WeightedCsrGraph) -> Result<WeightedGraphDelta, GraphError> {
        let (graph, touched) = g.with_edits(&self.insertions, &self.deletions)?;
        let touched = NodeSet::from_nodes(graph.n(), touched);
        Ok(WeightedGraphDelta { graph, touched })
    }
}

/// The result of applying an [`EdgeBatch`] to a [`CsrGraph`]: the next
/// epoch's graph plus the set of nodes whose adjacency changed — the only
/// nodes whose outgoing walks can have changed.
#[derive(Clone, Debug)]
pub struct GraphDelta {
    /// The post-batch graph.
    pub graph: CsrGraph,
    /// Nodes whose adjacency list changed.
    pub touched: NodeSet,
}

impl GraphDelta {
    /// Touched nodes in ascending id order.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        self.touched.to_vec()
    }
}

/// The result of applying an [`EdgeBatch`] to a [`WeightedCsrGraph`].
#[derive(Clone, Debug)]
pub struct WeightedGraphDelta {
    /// The post-batch graph (alias tables patched for touched rows only).
    pub graph: WeightedCsrGraph,
    /// Nodes whose adjacency list (and thus sampler) changed.
    pub touched: NodeSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_tracks_touched_endpoints() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let mut batch = EdgeBatch::new(42);
        batch.insertions.push((2, 3, 1.0));
        batch.deletions.push((0, 1));
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let delta = batch.apply(&g).unwrap();
        assert_eq!(delta.graph.m(), 2);
        assert_eq!(
            delta.touched_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn apply_weighted_uses_insertion_weights() {
        let g = WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1.0)]).unwrap();
        let mut batch = EdgeBatch::new(0);
        batch.insertions.push((1, 2, 7.5));
        let delta = batch.apply_weighted(&g).unwrap();
        assert_eq!(delta.graph.m(), 2);
        assert!((delta.graph.strength(NodeId(2)) - 7.5).abs() < 1e-12);
        assert_eq!(delta.touched.to_vec(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn invalid_batches_are_rejected() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let mut bad = EdgeBatch::new(0);
        bad.deletions.push((1, 2));
        assert!(bad.apply(&g).is_err());
    }
}
