//! # rwd-stream
//!
//! The evolving-graph subsystem: everything the static pipeline
//! (sample → index → greedy) needs to serve a graph under **edge churn**
//! without rebuilding from scratch.
//!
//! * [`batch`] — [`EdgeBatch`]: a timestamped set of edge insertions and
//!   deletions, applied to [`rwd_graph::CsrGraph`] or
//!   [`rwd_graph::weighted::WeightedCsrGraph`] to produce the next-epoch
//!   graph plus the set of *touched* endpoints ([`GraphDelta`] /
//!   [`WeightedGraphDelta`]); weighted application patches alias tables
//!   only for touched rows,
//! * [`index`] — [`IncrementalIndex`]: maintains a [`rwd_walks::WalkIndex`]
//!   across epochs by resampling exactly the `(src, layer)` walk groups a
//!   batch can have changed; because walks derive from counter-based
//!   `(seed, src, layer)` RNG streams, the maintained index is
//!   **bit-identical** to a from-scratch build on the post-update graph,
//! * [`maintain`] — [`SeedMaintainer`]: repairs the current seed set after
//!   each batch by replaying greedy rounds over a
//!   [`rwd_core::greedy::DeltaGainEngine`], evicting a seed only when its
//!   round's marginal-gain argmax actually changed; the engine state
//!   persists **across epochs** — each refresh's posting edit script
//!   ([`rwd_walks::PostingDelta`]) is absorbed in `O(touched)` and
//!   still-valid rounds replay from their recorded logs instead of
//!   re-streaming the index (bit-identical to a cold replay, with a
//!   crossover fallback for huge batches),
//! * [`shard`] — [`ShardEngine`] / [`ShardSet`]: the sharded engine core —
//!   the `R` walk layers are tiled into contiguous [`rwd_walks::LayerRange`]s,
//!   each owned by a per-shard engine (graph replica + partial index), and
//!   a scatter-gather coordinator broadcasts batches to every shard with
//!   all-or-nothing epoch advancement; results are bit-identical to the
//!   monolith at any shard count,
//! * [`engine`] — [`StreamEngine`]: the public facade tying it together
//!   (the 1-shard special case is the historical monolithic engine) and
//!   reporting per-batch churn statistics ([`BatchReport`]: groups
//!   resampled, postings rewritten, seeds swapped, per-shard rows),
//! * [`journal`] — [`BatchJournal`]: the epoch-stamped write-ahead batch
//!   log (length-prefixed, CRC-checksummed records, fsync'd before any
//!   shard commits) plus the scan that classifies a torn tail (truncate
//!   and continue) versus mid-journal corruption (named error),
//! * [`durable`] — [`DurableEngine`]: a [`StreamEngine`] wrapped in a data
//!   directory — journal every batch ahead of its commit, snapshot the
//!   whole engine at a configurable cadence (compacting the journal), and
//!   recover after a crash to a state **bit-identical** to the live engine
//!   that wrote the surviving prefix.
//!
//! The determinism contract carries over from the static pipeline: the
//! state after any prefix of batches is a pure function of
//! `(base graph, batches, config)` — independent of thread count — and
//! equals the state a cold start on the current graph would produce.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod durable;
pub mod engine;
pub mod index;
pub mod journal;
pub mod maintain;
pub(crate) mod obs;
pub mod shard;

pub use batch::{EdgeBatch, GraphDelta, WeightedGraphDelta};
pub use durable::{DurabilityConfig, DurableEngine, OpenMode, RecoveryReport};
pub use engine::{BatchReport, StreamConfig, StreamEngine};
pub use index::IncrementalIndex;
pub use journal::BatchJournal;
pub use maintain::{MaintainReport, SeedMaintainer};
pub use rwd_walks::PostingDelta;
pub use shard::{ShardBatchStats, ShardEngine, ShardSet};

/// Errors produced by the evolving-graph subsystem.
#[derive(Debug)]
pub enum StreamError {
    /// A batch failed validation against the current graph.
    Graph(rwd_graph::GraphError),
    /// The engine configuration is invalid for the given graph.
    InvalidConfig(String),
    /// The requested shard count cannot tile the walk layers: zero shards,
    /// or more shards than layers (some shard would own no layers).
    InvalidShardCount {
        /// Requested shard count.
        shards: usize,
        /// Walk layers available to tile (`R`).
        layers: usize,
    },
    /// A durable-storage operation (journal append, snapshot write,
    /// recovery load) failed at the I/O layer.
    Durability {
        /// What the engine was doing when the I/O failed.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A journal record before the tail failed its CRC or structural
    /// checks — unlike a torn tail (which recovery truncates and survives),
    /// mid-journal corruption means committed history is unreadable and is
    /// rejected by name.
    CorruptJournal(String),
    /// A snapshot in the data directory failed validation (bad magic,
    /// checksum mismatch, missing shard file, manifest inconsistency).
    CorruptSnapshot(String),
    /// The data directory holds no loadable snapshot to recover from.
    NoSnapshot(std::path::PathBuf),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Graph(e) => write!(f, "batch rejected: {e}"),
            StreamError::InvalidConfig(msg) => write!(f, "invalid stream config: {msg}"),
            StreamError::InvalidShardCount { shards, layers } => write!(
                f,
                "invalid shard count: {shards} shards over {layers} walk \
                 layers (need 1 <= shards <= layers)"
            ),
            StreamError::Durability { context, source } => {
                write!(f, "durability I/O failure during {context}: {source}")
            }
            StreamError::CorruptJournal(msg) => write!(f, "corrupt journal: {msg}"),
            StreamError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            StreamError::NoSnapshot(dir) => {
                write!(f, "no loadable snapshot in data dir {}", dir.display())
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Graph(e) => Some(e),
            StreamError::Durability { source, .. } => Some(source),
            StreamError::InvalidConfig(_)
            | StreamError::InvalidShardCount { .. }
            | StreamError::CorruptJournal(_)
            | StreamError::CorruptSnapshot(_)
            | StreamError::NoSnapshot(_) => None,
        }
    }
}

impl From<rwd_graph::GraphError> for StreamError {
    fn from(e: rwd_graph::GraphError) -> Self {
        StreamError::Graph(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StreamError>;
