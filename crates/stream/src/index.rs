//! Epoch-to-epoch maintenance of the walk index.

use std::sync::Arc;

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::CsrGraph;
use rwd_walks::{LayerRange, PostingDelta, RefreshStats, WalkIndex};

use crate::batch::{GraphDelta, WeightedGraphDelta};

/// A [`WalkIndex`] maintained across graph epochs.
///
/// The wrapper pins the build parameters (walk kind, seed, worker budget)
/// so every refresh replays the right RNG streams, and accumulates the
/// lifetime churn statistics. The invariant it preserves — asserted by the
/// equivalence test suite — is that after any number of
/// [`IncrementalIndex::apply`] calls, the wrapped index is bit-identical to
/// `WalkIndex::build` (or `build_weighted`) on the current graph: postings,
/// forward views, and per-node aggregates alike.
///
/// The index lives behind an [`Arc`] so the serving layer can pin a
/// snapshot of one epoch at zero cost: [`IncrementalIndex::share`] hands
/// out the current epoch's handle, and the next `apply` mutates in place
/// when no snapshot still holds it (the steady state) or transparently
/// clones first when one does (`Arc::make_mut`), so a pinned reader never
/// observes a mid-refresh index.
#[derive(Clone, Debug)]
pub struct IncrementalIndex {
    idx: Arc<WalkIndex>,
    weighted: bool,
    threads: usize,
    lifetime: RefreshStats,
}

impl IncrementalIndex {
    /// Builds the epoch-0 index over an unweighted graph.
    pub fn build(g: &CsrGraph, l: u32, r: usize, seed: u64, threads: usize) -> Self {
        IncrementalIndex {
            idx: Arc::new(WalkIndex::build_with_threads(g, l, r, seed, threads)),
            weighted: false,
            threads,
            lifetime: RefreshStats::default(),
        }
    }

    /// Builds the epoch-0 index over a weighted graph.
    pub fn build_weighted(
        g: &WeightedCsrGraph,
        l: u32,
        r: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        IncrementalIndex {
            idx: Arc::new(WalkIndex::build_weighted_with_threads(
                g, l, r, seed, threads,
            )),
            weighted: true,
            threads,
            lifetime: RefreshStats::default(),
        }
    }

    /// Builds the epoch-0 index for one shard: only the layers in `range`,
    /// each bitwise identical to the same layer of the full `R`-layer
    /// monolith (the per-`(seed, node, layer)` RNG streams use absolute
    /// layer indices). Refreshes replay the same absolute streams, so the
    /// shard tracks its slice of the monolith across epochs.
    pub fn build_layer_range(
        g: &CsrGraph,
        l: u32,
        range: LayerRange,
        seed: u64,
        threads: usize,
    ) -> Self {
        IncrementalIndex {
            idx: Arc::new(WalkIndex::build_layer_range(g, l, range, seed, threads)),
            weighted: false,
            threads,
            lifetime: RefreshStats::default(),
        }
    }

    /// Weighted twin of [`IncrementalIndex::build_layer_range`].
    pub fn build_weighted_layer_range(
        g: &WeightedCsrGraph,
        l: u32,
        range: LayerRange,
        seed: u64,
        threads: usize,
    ) -> Self {
        IncrementalIndex {
            idx: Arc::new(WalkIndex::build_weighted_layer_range(
                g, l, range, seed, threads,
            )),
            weighted: true,
            threads,
            lifetime: RefreshStats::default(),
        }
    }

    /// Wraps an index loaded from a snapshot file (the durable layer's
    /// recovery path). The lifetime churn counters restart at zero — they
    /// describe this process's work, not the index's history — so they are
    /// excluded from recovery-equality checks.
    pub(crate) fn from_loaded(idx: WalkIndex, weighted: bool, threads: usize) -> Self {
        IncrementalIndex {
            idx: Arc::new(idx),
            weighted,
            threads,
            lifetime: RefreshStats::default(),
        }
    }

    /// Advances the index to the next epoch: resamples exactly the walk
    /// groups the delta's touched set can have changed. Snapshots pinned
    /// via [`IncrementalIndex::share`] keep observing the previous epoch.
    ///
    /// # Panics
    /// Panics if the index was built over a weighted graph (use
    /// [`IncrementalIndex::apply_weighted`]) or the delta changed `n`.
    pub fn apply(&mut self, delta: &GraphDelta) -> RefreshStats {
        self.apply_collecting(delta).0
    }

    /// [`IncrementalIndex::apply`] that additionally returns the refresh's
    /// posting edit script — the input cross-epoch consumers (persistent
    /// gain engines) absorb to skip re-deriving from the full index.
    pub fn apply_collecting(&mut self, delta: &GraphDelta) -> (RefreshStats, PostingDelta) {
        assert!(
            !self.weighted,
            "index was built weighted; apply the weighted delta"
        );
        let (stats, posting_delta) = Arc::make_mut(&mut self.idx).refresh_collecting(
            &delta.graph,
            &delta.touched,
            self.threads,
        );
        self.lifetime.merge(&stats);
        (stats, posting_delta)
    }

    /// Weighted twin of [`IncrementalIndex::apply`].
    pub fn apply_weighted(&mut self, delta: &WeightedGraphDelta) -> RefreshStats {
        self.apply_weighted_collecting(delta).0
    }

    /// Weighted twin of [`IncrementalIndex::apply_collecting`].
    pub fn apply_weighted_collecting(
        &mut self,
        delta: &WeightedGraphDelta,
    ) -> (RefreshStats, PostingDelta) {
        assert!(
            self.weighted,
            "index was built unweighted; apply the unweighted delta"
        );
        let (stats, posting_delta) = Arc::make_mut(&mut self.idx).refresh_weighted_collecting(
            &delta.graph,
            &delta.touched,
            self.threads,
        );
        self.lifetime.merge(&stats);
        (stats, posting_delta)
    }

    /// The maintained index (always equal to a cold build on the current
    /// graph).
    pub fn index(&self) -> &WalkIndex {
        &self.idx
    }

    /// A shared handle to the current epoch's index. Cloning the `Arc` is
    /// O(1); holding it pins this epoch — a later [`IncrementalIndex::apply`]
    /// leaves the pinned index untouched (copy-on-write).
    pub fn share(&self) -> Arc<WalkIndex> {
        Arc::clone(&self.idx)
    }

    /// Whether the index samples weighted walks.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Accumulated churn over every applied batch.
    pub fn lifetime_stats(&self) -> RefreshStats {
        self.lifetime
    }

    /// Unwraps the maintained index (cloning only if a snapshot still
    /// shares it).
    pub fn into_index(self) -> WalkIndex {
        Arc::try_unwrap(self.idx).unwrap_or_else(|arc| (*arc).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::EdgeBatch;
    use rwd_graph::generators::erdos_renyi_gnp;

    #[test]
    fn apply_matches_cold_build_across_epochs() {
        let g0 = erdos_renyi_gnp(70, 0.07, 3).unwrap();
        let mut inc = IncrementalIndex::build(&g0, 5, 4, 17, 0);
        assert!(!inc.is_weighted());

        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((0, 69, 1.0));
        let delta = batch.apply(&g0).unwrap();
        let stats = inc.apply(&delta);
        assert!(stats.groups_resampled > 0);
        assert!(*inc.index() == WalkIndex::build(&delta.graph, 5, 4, 17));

        // Second epoch on top of the first.
        let mut batch2 = EdgeBatch::new(2);
        batch2.deletions.push((0, 69));
        let delta2 = batch2.apply(&delta.graph).unwrap();
        inc.apply(&delta2);
        assert!(*inc.index() == WalkIndex::build(&delta2.graph, 5, 4, 17));
        assert!(inc.lifetime_stats().groups_resampled >= stats.groups_resampled);
    }

    #[test]
    fn shared_handle_pins_its_epoch() {
        // A snapshot taken before a batch keeps observing the old epoch
        // bit for bit, while the maintained index advances.
        let g0 = erdos_renyi_gnp(50, 0.1, 8).unwrap();
        let mut inc = IncrementalIndex::build(&g0, 4, 3, 5, 0);
        let pinned = inc.share();
        let before = (*pinned).clone();

        let (u, v) = (0..50u32)
            .flat_map(|u| ((u + 1)..50).map(move |v| (u, v)))
            .find(|&(u, v)| !g0.has_edge(rwd_graph::NodeId(u), rwd_graph::NodeId(v)))
            .unwrap();
        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((u, v, 1.0));
        let delta = batch.apply(&g0).unwrap();
        inc.apply(&delta);

        assert!(*pinned == before, "pinned epoch mutated under the reader");
        assert!(*inc.index() == WalkIndex::build(&delta.graph, 4, 3, 5));
        assert!(*inc.index() != *pinned, "engine should have advanced");

        // With the pin dropped, the next apply mutates in place again (no
        // observable difference, just the steady-state path).
        drop(pinned);
        let mut batch2 = EdgeBatch::new(2);
        batch2.deletions.push((u, v));
        let delta2 = batch2.apply(&delta.graph).unwrap();
        inc.apply(&delta2);
        assert!(*inc.index() == WalkIndex::build(&delta2.graph, 4, 3, 5));
    }

    #[test]
    #[should_panic(expected = "built weighted")]
    fn unweighted_delta_on_weighted_index_panics() {
        let g = rwd_graph::generators::classic::path(6).unwrap();
        let wg = rwd_graph::weighted::weighted_twin(&g, 2).unwrap();
        let mut inc = IncrementalIndex::build_weighted(&wg, 3, 2, 5, 0);
        let mut batch = EdgeBatch::new(0);
        batch.insertions.push((0, 2, 1.0));
        let delta = batch.apply(&g).unwrap();
        inc.apply(&delta);
    }
}
