//! Epoch-to-epoch maintenance of the walk index.

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::CsrGraph;
use rwd_walks::{RefreshStats, WalkIndex};

use crate::batch::{GraphDelta, WeightedGraphDelta};

/// A [`WalkIndex`] maintained across graph epochs.
///
/// The wrapper pins the build parameters (walk kind, seed, worker budget)
/// so every refresh replays the right RNG streams, and accumulates the
/// lifetime churn statistics. The invariant it preserves — asserted by the
/// equivalence test suite — is that after any number of
/// [`IncrementalIndex::apply`] calls, the wrapped index is bit-identical to
/// `WalkIndex::build` (or `build_weighted`) on the current graph: postings,
/// forward views, and per-node aggregates alike.
#[derive(Clone, Debug)]
pub struct IncrementalIndex {
    idx: WalkIndex,
    weighted: bool,
    threads: usize,
    lifetime: RefreshStats,
}

impl IncrementalIndex {
    /// Builds the epoch-0 index over an unweighted graph.
    pub fn build(g: &CsrGraph, l: u32, r: usize, seed: u64, threads: usize) -> Self {
        IncrementalIndex {
            idx: WalkIndex::build_with_threads(g, l, r, seed, threads),
            weighted: false,
            threads,
            lifetime: RefreshStats::default(),
        }
    }

    /// Builds the epoch-0 index over a weighted graph.
    pub fn build_weighted(
        g: &WeightedCsrGraph,
        l: u32,
        r: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        IncrementalIndex {
            idx: WalkIndex::build_weighted_with_threads(g, l, r, seed, threads),
            weighted: true,
            threads,
            lifetime: RefreshStats::default(),
        }
    }

    /// Advances the index to the next epoch: resamples exactly the walk
    /// groups the delta's touched set can have changed.
    ///
    /// # Panics
    /// Panics if the index was built over a weighted graph (use
    /// [`IncrementalIndex::apply_weighted`]) or the delta changed `n`.
    pub fn apply(&mut self, delta: &GraphDelta) -> RefreshStats {
        assert!(
            !self.weighted,
            "index was built weighted; apply the weighted delta"
        );
        let stats = self
            .idx
            .refresh_with_threads(&delta.graph, &delta.touched, self.threads);
        self.lifetime.merge(&stats);
        stats
    }

    /// Weighted twin of [`IncrementalIndex::apply`].
    pub fn apply_weighted(&mut self, delta: &WeightedGraphDelta) -> RefreshStats {
        assert!(
            self.weighted,
            "index was built unweighted; apply the unweighted delta"
        );
        let stats =
            self.idx
                .refresh_weighted_with_threads(&delta.graph, &delta.touched, self.threads);
        self.lifetime.merge(&stats);
        stats
    }

    /// The maintained index (always equal to a cold build on the current
    /// graph).
    pub fn index(&self) -> &WalkIndex {
        &self.idx
    }

    /// Whether the index samples weighted walks.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Accumulated churn over every applied batch.
    pub fn lifetime_stats(&self) -> RefreshStats {
        self.lifetime
    }

    /// Unwraps the maintained index.
    pub fn into_index(self) -> WalkIndex {
        self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::EdgeBatch;
    use rwd_graph::generators::erdos_renyi_gnp;

    #[test]
    fn apply_matches_cold_build_across_epochs() {
        let g0 = erdos_renyi_gnp(70, 0.07, 3).unwrap();
        let mut inc = IncrementalIndex::build(&g0, 5, 4, 17, 0);
        assert!(!inc.is_weighted());

        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((0, 69, 1.0));
        let delta = batch.apply(&g0).unwrap();
        let stats = inc.apply(&delta);
        assert!(stats.groups_resampled > 0);
        assert!(*inc.index() == WalkIndex::build(&delta.graph, 5, 4, 17));

        // Second epoch on top of the first.
        let mut batch2 = EdgeBatch::new(2);
        batch2.deletions.push((0, 69));
        let delta2 = batch2.apply(&delta.graph).unwrap();
        inc.apply(&delta2);
        assert!(*inc.index() == WalkIndex::build(&delta2.graph, 5, 4, 17));
        assert!(inc.lifetime_stats().groups_resampled >= stats.groups_resampled);
    }

    #[test]
    #[should_panic(expected = "built weighted")]
    fn unweighted_delta_on_weighted_index_panics() {
        let g = rwd_graph::generators::classic::path(6).unwrap();
        let wg = rwd_graph::weighted::weighted_twin(&g, 2).unwrap();
        let mut inc = IncrementalIndex::build_weighted(&wg, 3, 2, 5, 0);
        let mut batch = EdgeBatch::new(0);
        batch.insertions.push((0, 2, 1.0));
        let delta = batch.apply(&g).unwrap();
        inc.apply(&delta);
    }
}
