//! End-to-end trace replay: the evolving engine driven by the shared
//! temporal-trace workload must (a) accept every generated batch, (b) keep
//! its index equal to a cold build at every epoch, and (c) report churn
//! that scales with the touched set.

use rwd_core::greedy::approx::GainRule;
use rwd_datasets::{temporal_trace, TemporalTraceSpec, TraceModel};
use rwd_stream::{StreamConfig, StreamEngine};
use rwd_walks::WalkIndex;

fn spec() -> TemporalTraceSpec {
    TemporalTraceSpec {
        model: TraceModel::ErdosRenyi { mean_degree: 10.0 },
        nodes: 300,
        batches: 5,
        batch_edits: 8,
        delete_fraction: 0.5,
        seed: 0xBEEF,
    }
}

fn config() -> StreamConfig {
    StreamConfig {
        l: 6,
        r: 8,
        k: 8,
        seed: 0x5EED,
        rule: GainRule::Coverage,
        threads: 0,
    }
}

#[test]
fn replaying_a_trace_never_drifts_from_cold_start() {
    let trace = temporal_trace(&spec()).unwrap();
    let cfg = config();
    let mut engine = StreamEngine::new(trace.base.clone(), cfg).unwrap();
    for batch in &trace.batches {
        let report = engine.apply(batch).unwrap();
        assert_eq!(report.insertions, 4);
        assert_eq!(report.deletions, 4);
        assert!(report.touched_nodes >= 2 && report.touched_nodes <= 16);
        // Churn proportionality: far fewer groups resampled than exist.
        assert!(
            report.refresh.groups_resampled < report.refresh.groups_total,
            "batch resampled everything: {:?}",
            report.refresh
        );
        // The maintained index equals a cold build on the current graph.
        let fresh = WalkIndex::build(engine.graph().unwrap(), cfg.l, cfg.r, cfg.seed);
        assert!(*engine.index() == fresh, "epoch {} drifted", report.epoch);
    }
    assert_eq!(engine.epoch(), 5);
    assert!(engine.lifetime_stats().groups_resampled > 0);
}

#[test]
fn weighted_replay_with_twin_base_stays_exact() {
    let trace = temporal_trace(&spec()).unwrap();
    let cfg = config();
    let wbase = rwd_graph::weighted::weighted_twin(&trace.base, spec().seed).unwrap();
    let mut engine = StreamEngine::new_weighted(wbase, cfg).unwrap();
    for batch in &trace.batches {
        engine.apply(batch).unwrap();
    }
    let fresh = WalkIndex::build_weighted(engine.weighted_graph().unwrap(), cfg.l, cfg.r, cfg.seed);
    assert!(*engine.index() == fresh, "weighted replay drifted");
}
