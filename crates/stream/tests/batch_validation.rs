//! Property tests for `EdgeBatch` canonicalization: whatever shape a batch
//! arrives in — repeated edits, both orientations, weight conflicts —
//! applying it must either fail cleanly or produce a **simple** graph that
//! matches a from-scratch build on the post-batch edge list, on both graph
//! kinds and on the weighted pipeline.

use proptest::prelude::*;
use proptest::Strategy;
use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, GraphBuilder, NodeId};
use rwd_stream::EdgeBatch;

/// Raw insertions (endpoints + weight bucket) and deletions.
type RawEdits = (Vec<(u32, u32, u8)>, Vec<(u32, u32)>);

/// Raw edit lists drawn with heavy duplicate pressure: few distinct node
/// ids, so repeated edges, flipped orientations and insert/delete overlaps
/// all occur constantly.
fn raw_batch() -> impl Strategy<Value = RawEdits> {
    (
        proptest::collection::vec((0u32..6, 0u32..6, 0u8..3), 0..=8),
        proptest::collection::vec((0u32..6, 0u32..6), 0..=5),
    )
}

fn base_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..6, 0u32..6), 0..=10)
}

fn simple(g: &CsrGraph) -> bool {
    g.nodes()
        .all(|u| g.neighbors(u).windows(2).all(|w| w[0] < w[1]))
}

/// Arc slots must match the logical edge count for the graph kind.
fn consistent(g: &CsrGraph) -> bool {
    let expect = match g.kind() {
        rwd_graph::GraphKind::Undirected => 2 * g.m(),
        rwd_graph::GraphKind::Directed => g.m(),
    };
    g.arc_count() == expect
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Unweighted, both graph kinds: no batch — however degenerate — can
    /// produce a non-simple graph or a wrong edge count.
    #[test]
    fn apply_preserves_simple_graph_invariant(
        edges in base_edges(),
        (raw_ins, dels) in raw_batch(),
        kind in 0u8..2
    ) {
        let directed = kind == 1;
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        }
        .with_nodes(6);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("default policies always build");
        let mut batch = EdgeBatch::new(0);
        for &(u, v, w) in &raw_ins {
            batch.insertions.push((u, v, 1.0 + w as f64));
        }
        batch.deletions = dels.clone();
        if let Ok(delta) = batch.apply(&g) {
            prop_assert!(simple(&delta.graph), "parallel edge or unsorted row");
            prop_assert!(consistent(&delta.graph), "edge count drifted");
            // Every touched node really changed (or was delete-reinserted);
            // at minimum the touched set covers all applied-edit endpoints.
            let (ins, del) = batch.dedup_edits(!directed).expect("apply succeeded");
            for &(u, v, _) in &ins {
                prop_assert!(delta.touched.contains(NodeId(u)), "insert src untouched");
                if !directed {
                    prop_assert!(delta.touched.contains(NodeId(v)));
                }
            }
            for &(u, v) in &del {
                prop_assert!(delta.touched.contains(NodeId(u)), "delete src untouched");
                if !directed {
                    prop_assert!(delta.touched.contains(NodeId(v)));
                }
            }
        }
    }

    /// Weighted pipeline: an accepted batch must yield the same graph a
    /// from-scratch weighted constructor builds from the post-batch edge
    /// list — which in particular proves the simple-graph invariant.
    #[test]
    fn apply_weighted_matches_from_scratch_build(
        edges in base_edges(),
        (raw_ins, dels) in raw_batch()
    ) {
        let mut b = GraphBuilder::undirected().with_nodes(6);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("default policies always build");
        let wg = rwd_graph::weighted::weighted_twin(&g, 9).expect("twin of simple graph");
        let mut batch = EdgeBatch::new(0);
        for &(u, v, w) in &raw_ins {
            batch.insertions.push((u, v, 1.0 + w as f64));
        }
        batch.deletions = dels.clone();
        if let Ok(delta) = batch.apply_weighted(&wg) {
            // Reconstruct the post-batch weighted edge list and rebuild.
            let (ins, del) = batch.dedup_edits(true).expect("apply succeeded");
            let mut final_edges: Vec<(u32, u32, f64)> = g
                .edges()
                .filter(|&(u, v)| !del.contains(&(u.raw(), v.raw())))
                .map(|(u, v)| {
                    (
                        u.raw(),
                        v.raw(),
                        rwd_graph::weighted::twin_weight(9, u.raw(), v.raw()),
                    )
                })
                .collect();
            for &(u, v, w) in &ins {
                final_edges.retain(|&(a, b, _)| (a, b) != (u, v));
                final_edges.push((u, v, w));
            }
            let fresh = WeightedCsrGraph::from_weighted_edges(6, &final_edges)
                .expect("applied batch yields a simple weighted graph");
            prop_assert_eq!(delta.graph.m(), fresh.m());
            for u in delta.graph.nodes() {
                let got: Vec<(NodeId, u64)> = delta
                    .graph
                    .neighbors(u)
                    .map(|(v, w)| (v, w.to_bits()))
                    .collect();
                let want: Vec<(NodeId, u64)> =
                    fresh.neighbors(u).map(|(v, w)| (v, w.to_bits())).collect();
                prop_assert_eq!(got, want, "row {} diverged", u);
            }
        }
    }
}
