//! Property-based tests for the walk machinery: walks stay on edges,
//! estimators respect their definitions, the inverted index agrees with
//! recomputation from the identical walk set, and everything is
//! deterministic per seed.

// Indexing parallel arrays by position is clearer than zipped iterators
// in these oracle comparisons.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::estimate::SampleEstimator;
use rwd_walks::rng::WalkRng;
use rwd_walks::{hitting, walker, NodeSet, WalkIndex};

/// Strategy: small connected-ish graphs (every node gets at least one
/// incident edge via a random spanning chain).
fn graphs() -> impl Strategy<Value = CsrGraph> {
    (3usize..=10).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..20).prop_map(move |mut extra| {
            // Chain 0-1-…-(n-1) guarantees no isolated nodes.
            for i in 1..n as u32 {
                extra.push((i - 1, i));
            }
            CsrGraph::from_edges(n, &extra).unwrap()
        })
    })
}

proptest! {
    /// Recorded walks only traverse edges and have exactly l+1 entries.
    #[test]
    fn walks_stay_on_edges(g in graphs(), seed in 0u64..500, l in 1u32..8) {
        let mut rng = WalkRng::from_seed(seed);
        let mut buf = Vec::new();
        for start in g.nodes() {
            walker::record_walk(&g, start, l, &mut rng, &mut buf);
            prop_assert_eq!(buf.len(), l as usize + 1);
            prop_assert_eq!(buf[0], start);
            for w in buf.windows(2) {
                prop_assert!(
                    g.has_edge(w[0], w[1]) || w[0] == w[1] && g.degree(w[0]) == 0,
                    "illegal step {:?}→{:?}", w[0], w[1]
                );
            }
        }
    }

    /// first_hit is consistent with the recorded walk when replayed on the
    /// same stream.
    #[test]
    fn first_hit_matches_recorded_walk(g in graphs(), seed in 0u64..200, l in 1u32..6, t in 0u32..10) {
        let n = g.n();
        let target = NodeSet::from_nodes(n, [NodeId(t % n as u32)]);
        for start in g.nodes() {
            let hit = {
                let mut rng = WalkRng::for_stream(seed, start.index() as u64, 0);
                walker::first_hit(&g, start, l, &target, &mut rng)
            };
            // Replay: the same stream yields the same walk; its first entry
            // into the target must match (note first_hit consumes fewer
            // steps on early exit, so replay via record_walk needs a fresh
            // stream, which for_stream guarantees).
            let mut rng = WalkRng::for_stream(seed, start.index() as u64, 0);
            let mut buf = Vec::new();
            walker::record_walk(&g, start, l, &mut rng, &mut buf);
            let expected = buf
                .iter()
                .position(|&x| target.contains(x))
                .map(|p| p as u32);
            match (hit, expected) {
                (Some(h), Some(e)) => prop_assert_eq!(h, e),
                (None, None) => {}
                // first_hit stops early; positions after the stop hop could
                // only exist if the early exit consumed fewer RNG draws —
                // they must still agree on the prefix, which the Some/Some
                // arm covers. A mismatch in optionality is a bug.
                (h, e) => prop_assert!(false, "hit {:?} vs walk {:?}", h, e),
            }
        }
    }

    /// Estimator outputs live in their defined ranges and members are exact.
    #[test]
    fn estimator_ranges(g in graphs(), seed in 0u64..100, l in 1u32..6) {
        let n = g.n();
        let set = NodeSet::from_nodes(n, [NodeId(0)]);
        let est = SampleEstimator::new(l, 16, seed).estimate(&g, &set);
        for u in 0..n {
            prop_assert!((0.0..=l as f64).contains(&est.hit_time[u]));
            prop_assert!((0.0..=1.0).contains(&est.hit_prob[u]));
        }
        prop_assert_eq!(est.hit_time[0], 0.0);
        prop_assert_eq!(est.hit_prob[0], 1.0);
        // F̂2 ≥ |S| always; F̂1 ≤ nL.
        prop_assert!(est.f2 >= 1.0 - 1e-12);
        prop_assert!(est.f1 <= (n as f64) * l as f64 + 1e-12);
    }

    /// The index-based hitting-time estimate equals a recomputation from
    /// the exact same recorded walks — bit-for-bit, not approximately.
    #[test]
    fn index_estimate_equals_walk_recomputation(
        g in graphs(), seed in 0u64..100, l in 1u32..6, picks in proptest::collection::vec(0u32..10, 1..4)
    ) {
        let n = g.n();
        let r = 6usize;
        let idx = WalkIndex::build(&g, l, r, seed);
        let set = NodeSet::from_nodes(n, picks.iter().map(|&p| NodeId(p % n as u32)));

        // Recompute expected D values straight from re-simulated walks.
        let mut expected = vec![0.0f64; n];
        let mut buf = Vec::new();
        for u in 0..n {
            let mut total = 0.0;
            for layer in 0..r {
                let mut rng = WalkRng::for_stream(seed, u as u64, layer as u64);
                walker::record_walk(&g, NodeId::new(u), l, &mut rng, &mut buf);
                let hit = buf.iter().position(|&x| set.contains(x));
                total += hit.map_or(l as f64, |p| p as f64);
            }
            expected[u] = total / r as f64;
        }
        let estimated = idx.estimate_hit_times(&set);
        for u in 0..n {
            prop_assert!((estimated[u] - expected[u]).abs() < 1e-12,
                "node {}: index {} vs walks {}", u, estimated[u], expected[u]);
        }

        // Same for hit probabilities.
        let probs = idx.estimate_hit_probs(&set);
        for u in 0..n {
            let mut hits = 0usize;
            for layer in 0..r {
                let mut rng = WalkRng::for_stream(seed, u as u64, layer as u64);
                walker::record_walk(&g, NodeId::new(u), l, &mut rng, &mut buf);
                if buf.iter().any(|&x| set.contains(x)) {
                    hits += 1;
                }
            }
            prop_assert!((probs[u] - hits as f64 / r as f64).abs() < 1e-12);
        }
    }

    /// Larger target sets can only speed up sampled hitting (same walks).
    #[test]
    fn index_monotone_under_set_growth(g in graphs(), seed in 0u64..100, extra in 0u32..10) {
        let n = g.n();
        let idx = WalkIndex::build(&g, 4, 8, seed);
        let s = NodeSet::from_nodes(n, [NodeId(0)]);
        let mut t = s.clone();
        t.insert(NodeId(extra % n as u32));
        let hs = idx.estimate_hit_times(&s);
        let ht = idx.estimate_hit_times(&t);
        let ps = idx.estimate_hit_probs(&s);
        let pt = idx.estimate_hit_probs(&t);
        for u in 0..n {
            prop_assert!(ht[u] <= hs[u] + 1e-12);
            prop_assert!(pt[u] >= ps[u] - 1e-12);
        }
    }

    /// DP objectives and sampled estimates agree within a generous envelope
    /// even at small R (they estimate the same quantity).
    #[test]
    fn sampled_tracks_exact_loosely(g in graphs(), seed in 0u64..50) {
        let n = g.n();
        let l = 4;
        let set = NodeSet::from_nodes(n, [NodeId(0)]);
        let est = SampleEstimator::new(l, 600, seed).estimate(&g, &set);
        let f1 = hitting::exact_f1(&g, &set, l);
        let f2 = hitting::exact_f2(&g, &set, l);
        // Hoeffding at R = 600: ε ≈ sqrt(ln(2n/0.01)/1200) ≈ 0.08 per node.
        prop_assert!((est.f1 - f1).abs() < 0.15 * n as f64 * l as f64 + 1.0);
        prop_assert!((est.f2 - f2).abs() < 0.15 * n as f64 + 1.0);
    }
}
