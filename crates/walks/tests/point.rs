//! Property tests for the point-query entry points.
//!
//! The serving path answers single-node questions from the forward view in
//! `O(postings)`; its whole correctness story is **bit-identity** with the
//! full-sweep estimators. These tests pin that on random graphs, walk
//! parameters and query sets — including the degenerate sets (empty, full)
//! and the ranking semantics of `top_m_uncovered`.

use proptest::prelude::*;
use proptest::Strategy;
use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::{NodeSet, WalkIndex};

/// A random simple graph plus walk parameters and a random query set.
fn random_instance() -> impl Strategy<Value = (CsrGraph, u32, usize, u64, Vec<u32>)> {
    (5usize..=40)
        .prop_flat_map(|n| {
            let max_edges = (n * (n - 1) / 2).min(120);
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_edges),
                1u32..=8,   // l
                1usize..=6, // r
                0u64..u64::MAX,
                proptest::collection::vec(0..n as u32, 0..=6), // set members
            )
        })
        .prop_map(|(n, edges, l, r, seed, members)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            (g, l, r, seed, members)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Point hit time / hit probability ≡ the full-sweep estimators,
    /// bit for bit, at every node.
    #[test]
    fn point_queries_are_bit_identical_to_sweeps(
        (g, l, r, seed, members) in random_instance()
    ) {
        let idx = WalkIndex::build(&g, l, r, seed);
        let set = NodeSet::from_nodes(g.n(), members.into_iter().map(NodeId));
        let ht = idx.estimate_hit_times(&set);
        let hp = idx.estimate_hit_probs(&set);
        for v in g.nodes() {
            prop_assert_eq!(
                idx.point_hit_time(v, &set).to_bits(),
                ht[v.index()].to_bits(),
                "hit time diverges at {}", v
            );
            prop_assert_eq!(
                idx.point_hit_prob(v, &set).to_bits(),
                hp[v.index()].to_bits(),
                "hit prob diverges at {}", v
            );
        }
        // Coverage equals the estimator total up to reassociation.
        let total: f64 = hp.iter().sum();
        prop_assert!((idx.coverage(&set) - total).abs() < 1e-9);
    }

    /// `top_m_uncovered` returns exactly the `m` lowest-probability nodes
    /// in (probability, id) order, with sweep-identical probabilities.
    #[test]
    fn top_m_uncovered_matches_sorted_sweep(
        (g, l, r, seed, members) in random_instance(),
        m in 0usize..=12
    ) {
        let idx = WalkIndex::build(&g, l, r, seed);
        let set = NodeSet::from_nodes(g.n(), members.into_iter().map(NodeId));
        let hp = idx.estimate_hit_probs(&set);
        let mut reference: Vec<(NodeId, f64)> = g.nodes().map(|v| (v, hp[v.index()])).collect();
        reference.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        reference.truncate(m.min(g.n()));
        let got = idx.top_m_uncovered(m, &set);
        prop_assert_eq!(got.len(), reference.len());
        for (got, want) in got.iter().zip(&reference) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }
}

#[test]
fn point_queries_survive_save_load() {
    // A reloaded index rebuilds its forward view canonically; the point
    // queries must keep answering identically.
    let g = rwd_graph::generators::erdos_renyi_gnp(60, 0.08, 3).unwrap();
    let idx = WalkIndex::build(&g, 5, 4, 17);
    let dir = std::env::temp_dir().join("rwd_point_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.rwdidx");
    idx.save(&path).unwrap();
    let loaded = WalkIndex::load(&path).unwrap();
    let set = NodeSet::from_nodes(60, [NodeId(0), NodeId(7), NodeId(31)]);
    for v in g.nodes() {
        assert_eq!(
            loaded.point_hit_time(v, &set).to_bits(),
            idx.point_hit_time(v, &set).to_bits()
        );
        assert_eq!(
            loaded.point_hit_prob(v, &set).to_bits(),
            idx.point_hit_prob(v, &set).to_bits()
        );
    }
    assert_eq!(
        loaded.coverage(&set).to_bits(),
        idx.coverage(&set).to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}
