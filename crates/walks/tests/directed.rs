//! Directed-graph semantics: the paper's directed extension. The walker,
//! the DP recursions, the estimator and the index all operate on
//! out-neighborhoods, so a directed `CsrGraph` works throughout; these
//! tests pin down the semantics (forced moves, sinks, asymmetric hitting).

// Indexing parallel arrays by position is clearer than zipped iterators
// in these oracle comparisons.
#![allow(clippy::needless_range_loop)]

use rwd_graph::{GraphBuilder, NodeId};
use rwd_walks::estimate::SampleEstimator;
use rwd_walks::rng::WalkRng;
use rwd_walks::{enumerate, hitting, walker, NodeSet, WalkIndex};

/// Directed path 0→1→2→3.
fn directed_path(n: usize) -> rwd_graph::CsrGraph {
    let mut b = GraphBuilder::directed().with_nodes(n);
    for u in 1..n as u32 {
        b.add_edge(u - 1, u);
    }
    b.build().unwrap()
}

/// Directed cycle 0→1→…→(n-1)→0.
fn directed_cycle(n: usize) -> rwd_graph::CsrGraph {
    let mut b = GraphBuilder::directed().with_nodes(n);
    for u in 0..n as u32 {
        b.add_edge(u, (u + 1) % n as u32);
    }
    b.build().unwrap()
}

#[test]
fn forced_walks_on_directed_path() {
    // Every step is forced: from 0 the walk reaches node t at hop t exactly.
    let g = directed_path(5);
    let set = NodeSet::from_nodes(5, [NodeId(3)]);
    let mut rng = WalkRng::from_seed(1);
    assert_eq!(walker::first_hit(&g, NodeId(0), 4, &set, &mut rng), Some(3));
    let h = hitting::hitting_time_to_set(&g, &set, 4);
    assert_eq!(h[0], 3.0);
    assert_eq!(h[1], 2.0);
    assert_eq!(h[2], 1.0);
    assert_eq!(h[3], 0.0);
}

#[test]
fn hitting_is_asymmetric_on_directed_graphs() {
    // 0 reaches 2 but 2 cannot reach 0 (sink-side truncation ⇒ h = L).
    let g = directed_path(3);
    let to_two = hitting::hitting_time_to_set(&g, &NodeSet::from_nodes(3, [NodeId(2)]), 5);
    let to_zero = hitting::hitting_time_to_set(&g, &NodeSet::from_nodes(3, [NodeId(0)]), 5);
    assert_eq!(to_two[0], 2.0);
    assert_eq!(to_zero[2], 5.0, "upstream node is unreachable: h = L");
    let p = hitting::hit_probability_to_set(&g, &NodeSet::from_nodes(3, [NodeId(0)]), 5);
    assert_eq!(p[2], 0.0);
}

#[test]
fn sink_nodes_follow_stay_put_convention() {
    // Node 2 is a sink (out-degree 0): its walk stays there forever.
    let g = directed_path(3);
    let mut rng = WalkRng::from_seed(2);
    let mut buf = Vec::new();
    walker::record_walk(&g, NodeId(2), 4, &mut rng, &mut buf);
    assert_eq!(buf, vec![NodeId(2); 5]);
}

#[test]
fn directed_cycle_deterministic_hitting() {
    // On a directed n-cycle every walk is forced; hitting time from u to
    // {0} is exactly (n − u) mod n when L allows it.
    let n = 6;
    let g = directed_cycle(n);
    let set = NodeSet::from_nodes(n, [NodeId(0)]);
    let h = hitting::hitting_time_to_set(&g, &set, 10);
    for u in 1..n {
        assert_eq!(h[u], (n - u) as f64, "node {u}");
    }
    // Enumeration oracle agrees on directed graphs too.
    for u in 0..n {
        let e = enumerate::hit_expectation(&g, NodeId::new(u), &set, 10);
        assert!((e - h[u]).abs() < 1e-12);
    }
}

#[test]
fn estimator_and_dp_agree_on_directed_branching() {
    // 0 → {1, 2}; 1 → 3; 2 → 3. Two-hop funnel onto 3 with a coin flip at 0.
    let mut b = GraphBuilder::directed().with_nodes(4);
    b.add_edge(0, 1);
    b.add_edge(0, 2);
    b.add_edge(1, 3);
    b.add_edge(2, 3);
    let g = b.build().unwrap();
    let set = NodeSet::from_nodes(4, [NodeId(1)]);
    // From 0: hits 1 at hop 1 w.p. 1/2, otherwise never (goes 2→3→stay).
    let h = hitting::hitting_time_to_set(&g, &set, 4);
    assert!((h[0] - (0.5 * 1.0 + 0.5 * 4.0)).abs() < 1e-12);
    let est = SampleEstimator::new(4, 4000, 7).estimate(&g, &set);
    assert!((est.hit_time[0] - h[0]).abs() < 0.1);
    let p = hitting::hit_probability_to_set(&g, &set, 4);
    assert!((p[0] - 0.5).abs() < 1e-12);
    assert!((est.hit_prob[0] - 0.5).abs() < 0.05);
}

#[test]
fn index_on_directed_graph_only_stores_downstream_visits() {
    let g = directed_path(4);
    let idx = WalkIndex::build(&g, 3, 8, 11);
    // Walks from 3 (sink) never leave 3 → no postings anywhere reference 3
    // except none (3 stays put and repeats are deduped).
    for layer in 0..8 {
        for v in 0..3u32 {
            assert!(
                idx.postings(layer, NodeId(v))
                    .iter()
                    .all(|p| p.id != NodeId(3)),
                "sink walked somewhere?"
            );
        }
        // Walks from 0 deterministically visit 1, 2, 3 at hops 1, 2, 3.
        let find = |v: u32| {
            idx.postings(layer, NodeId(v))
                .iter()
                .find(|p| p.id == NodeId(0))
                .map(|p| p.weight)
        };
        assert_eq!(find(1), Some(1));
        assert_eq!(find(2), Some(2));
        assert_eq!(find(3), Some(3));
    }
}

#[test]
fn directed_domination_selects_the_funnel_target() {
    // Star pointing inward: every spoke points at the hub. The hub is hit
    // by everyone in one hop — any reasonable solver must select it first.
    let n = 20;
    let mut b = GraphBuilder::directed().with_nodes(n);
    for u in 1..n as u32 {
        b.add_edge(u, 0);
    }
    let g = b.build().unwrap();
    let idx = WalkIndex::build(&g, 3, 32, 3);
    let sel = {
        // Pick argmax of first-round coverage gains directly from the index.
        let mut best = (0usize, 0.0f64);
        for u in 0..n {
            let mut covered = 0usize;
            for layer in 0..32 {
                covered += idx.postings(layer, NodeId::new(u)).len() + 1;
            }
            let score = covered as f64 / 32.0;
            if score > best.1 {
                best = (u, score);
            }
        }
        best.0
    };
    assert_eq!(sel, 0, "the inward hub dominates everyone");
}
