//! Property tests for the walk index's forward view.
//!
//! The forward view must be the **exact transpose** of the inverted
//! postings: for every layer, the multiset of `(src, node, hop)` triples
//! read through `forward(layer, src)` equals the multiset read through
//! `postings(layer, node)` — on random graphs, at any walk length, walk
//! count and thread count, and across a save/load round trip (the file
//! stores only the inverted lists; `load` re-derives the forward view).

use proptest::prelude::*;
use proptest::Strategy;
use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::WalkIndex;

/// A random simple graph (5..=40 nodes) plus walk-index parameters.
fn random_instance() -> impl Strategy<Value = (CsrGraph, u32, usize, u64)> {
    (5usize..=40)
        .prop_flat_map(|n| {
            let max_edges = (n * (n - 1) / 2).min(120);
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_edges),
                1u32..=8,   // l
                1usize..=6, // r
                0u64..u64::MAX,
            )
        })
        .prop_map(|(n, edges, l, r, seed)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            (g, l, r, seed)
        })
}

/// Every `(src, node, hop)` triple one view of a layer yields, sorted.
fn triples(n: usize, view: impl Fn(NodeId) -> Vec<(u32, u32, u32)>) -> Vec<(u32, u32, u32)> {
    let mut out: Vec<(u32, u32, u32)> = (0..n).flat_map(|v| view(NodeId::new(v))).collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: per layer, forward view ≡ transpose of the
    /// inverted postings (same `(src, node, hop)` multiset).
    #[test]
    fn forward_view_is_exact_transpose((g, l, r, seed) in random_instance()) {
        let idx = WalkIndex::build(&g, l, r, seed);
        for layer in 0..idx.r() {
            let inverted = triples(idx.n(), |v| {
                idx.postings(layer, v)
                    .iter()
                    .map(|p| (p.id.raw(), v.raw(), p.weight))
                    .collect()
            });
            let forward = triples(idx.n(), |src| {
                idx.forward(layer, src)
                    .iter()
                    .map(|p| (src.raw(), p.id.raw(), p.weight))
                    .collect()
            });
            prop_assert_eq!(&inverted, &forward, "layer {} transpose mismatch", layer);
            // Bonus shape checks: each forward list is (hop, id)-sorted —
            // the canonical walk-visit order that lets gain repairs stop at
            // the first hop past their threshold — and no walk visits more
            // than l nodes.
            for src in g.nodes() {
                let fr = idx.forward(layer, src);
                prop_assert!(fr.len() <= l as usize, "forward({}) too long", src);
                let keys: Vec<(u16, u32)> = fr
                    .weights()
                    .iter()
                    .copied()
                    .zip(fr.ids().iter().copied())
                    .collect();
                prop_assert!(
                    keys.windows(2).all(|w| w[0] < w[1]),
                    "forward({}) not (hop, id)-sorted", src
                );
                prop_assert!(
                    fr.weights().iter().all(|&w| 1 <= w && w as u32 <= l),
                    "forward({}) hop outside 1..=l", src
                );
            }
        }
    }

    /// Thread invariance extends to the forward view: the transposition is
    /// derived from the (thread-invariant) inverted columns.
    #[test]
    fn forward_view_is_thread_invariant((g, l, r, seed) in random_instance()) {
        let one = WalkIndex::build_with_threads(&g, l, r, seed, 1);
        let many = WalkIndex::build_with_threads(&g, l, r, seed, 4);
        for layer in 0..one.r() {
            for src in g.nodes() {
                prop_assert_eq!(one.forward(layer, src), many.forward(layer, src));
            }
        }
    }
}

#[test]
fn forward_view_survives_save_load() {
    // The RWDIDX2 file stores only the inverted lists; load must rebuild an
    // identical forward view by the same canonical transposition.
    let g = rwd_graph::generators::barabasi_albert(200, 3, 77).unwrap();
    let idx = WalkIndex::build(&g, 6, 8, 9);
    let dir = std::env::temp_dir().join("rwd_forward_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fwd.rwdidx");
    idx.save(&path).unwrap();
    let loaded = WalkIndex::load(&path).unwrap();
    for layer in 0..idx.r() {
        for src in g.nodes() {
            assert_eq!(loaded.forward(layer, src), idx.forward(layer, src));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
