//! Corpus tests for the index storage formats and the zero-copy open.
//!
//! Three claims are pinned here. **Compatibility:** V2/V3 files written by
//! `save()` keep loading bit-exactly, and RWDIDX4 files deserialize-load
//! to the same bits `open_mapped` serves in place. **Rejection:** a
//! truncated, misaligned or bit-rotted V4 file fails with a *named* error
//! on every open path — never a panic, never a silently wrong index.
//! **Bounded load memory:** the deserializing open's transient high-water
//! mark stays under a quarter of the final index footprint, so peak RSS
//! during a load is ≤ 1.25× the index it produces.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::{inspect_index_file, LayerRange, NodeSet, WalkIndex};

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rwd-storage-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// True when this host has the zero-copy path at all.
fn mapped_path_available() -> bool {
    cfg!(unix) && cfg!(target_endian = "little")
}

/// A small deterministic graph with some structure to walk.
fn sample_graph() -> CsrGraph {
    rwd_graph::generators::barabasi_albert(60, 3, 11).unwrap()
}

#[test]
fn v2_and_v3_compat_files_still_load() {
    let g = sample_graph();
    let dir = tmp_dir("compat");

    // Monolith → RWDIDX2.
    let idx = WalkIndex::build(&g, 5, 6, 77);
    let p2 = dir.join("mono.rwdidx");
    idx.save(&p2).unwrap();
    assert_eq!(WalkIndex::load(&p2).unwrap(), idx);
    let info = inspect_index_file(&p2).unwrap();
    assert_eq!(info.version, 2);
    assert_eq!((info.n, info.l, info.layer_count), (60, 5, 6));
    assert_eq!(info.layer_base, 0);
    assert_eq!(info.section_align, None);
    assert!(info.crc_ok);
    assert_eq!(info.total_postings, idx.total_postings() as u64);

    // Layer-range shard → RWDIDX3.
    let shard = WalkIndex::build_layer_range(&g, 5, LayerRange::new(2, 5), 77, 0);
    let p3 = dir.join("shard.rwdidx");
    shard.save(&p3).unwrap();
    assert_eq!(WalkIndex::load(&p3).unwrap(), shard);
    let info = inspect_index_file(&p3).unwrap();
    assert_eq!(info.version, 3);
    assert_eq!((info.layer_count, info.layer_base), (3, 2));
    assert_eq!(info.section_align, None);
    assert!(info.crc_ok);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v4_load_and_mapped_open_are_bit_identical_to_the_built_index() {
    let g = sample_graph();
    let idx = WalkIndex::build(&g, 6, 8, 5);
    let dir = tmp_dir("v4");
    let path = dir.join("mono.rwdidx");
    idx.save_v4(&path).unwrap();

    // Deserialize path: every column back on the heap, same bits.
    let loaded = WalkIndex::load(&path).unwrap();
    assert_eq!(loaded, idx);
    assert_eq!(loaded.mapped_bytes(), 0);

    let info = inspect_index_file(&path).unwrap();
    assert_eq!(info.version, 4);
    assert_eq!(
        (info.n, info.l, info.layer_count, info.layer_base),
        (60, 6, 8, 0)
    );
    assert_eq!(info.section_align, Some(8));
    assert!(info.crc_ok);
    assert_eq!(info.total_postings, idx.total_postings() as u64);

    if !mapped_path_available() {
        std::fs::remove_dir_all(&dir).ok();
        return;
    }

    // Zero-copy path: same bits by value, columns live in the map.
    let mapped = WalkIndex::open_mapped(&path).unwrap();
    assert_eq!(mapped, idx);
    assert_eq!(mapped.mapped_layers(), idx.r());
    assert!(mapped.mapped_bytes() > 0, "postings should live in the map");
    assert_eq!(
        mapped.heap_bytes(),
        0,
        "a fresh whole-file mapped open owns no column bytes"
    );
    assert_eq!(
        mapped.memory_bytes(),
        mapped.heap_bytes() + mapped.mapped_bytes()
    );

    // Round-trip: re-saving the mapped index reproduces the exact file,
    // and the V2 writer doesn't care where the columns live either.
    let resaved = dir.join("resaved.rwdidx");
    mapped.save_v4(&resaved).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&resaved).unwrap(),
        "save_v4 of a mapped index must be byte-identical to the source file"
    );
    let via_mapped = dir.join("mapped.v2.rwdidx");
    let via_owned = dir.join("owned.v2.rwdidx");
    mapped.save(&via_mapped).unwrap();
    idx.save(&via_owned).unwrap();
    assert_eq!(
        std::fs::read(&via_mapped).unwrap(),
        std::fs::read(&via_owned).unwrap()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v4_layer_range_opens_match_build_layer_range() {
    let g = sample_graph();
    let idx = WalkIndex::build(&g, 4, 7, 21);
    let dir = tmp_dir("range");
    let path = dir.join("mono.rwdidx");
    idx.save_v4(&path).unwrap();

    let range = LayerRange::new(2, 6);
    let built = WalkIndex::build_layer_range(&g, 4, range, 21, 0);
    assert_eq!(WalkIndex::load_layer_range(&path, range).unwrap(), built);
    if mapped_path_available() {
        let mapped = WalkIndex::open_mapped_layer_range(&path, range).unwrap();
        assert_eq!(mapped, built);
        assert_eq!(mapped.mapped_layers(), range.len());

        // A shard file (nonzero layer base) cannot be re-scoped.
        let shard_path = dir.join("shard.rwdidx");
        built.save_v4(&shard_path).unwrap();
        let err =
            WalkIndex::open_mapped_layer_range(&shard_path, LayerRange::new(0, 2)).unwrap_err();
        assert!(err.to_string().contains("monolithic"), "{err}");

        // A range past the stored layer count is refused by name.
        let err = WalkIndex::open_mapped_layer_range(&path, LayerRange::new(5, 9)).unwrap_err();
        assert!(
            err.to_string().contains("exceeds the file's layer count"),
            "{err}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[cfg(unix)]
fn mapped_open_rejects_non_v4_files_by_name() {
    if !mapped_path_available() {
        return;
    }
    let g = sample_graph();
    let idx = WalkIndex::build(&g, 3, 4, 9);
    let dir = tmp_dir("reject");

    // V2/V3 files have no zero-copy layout: named rejection, load() works.
    let p2 = dir.join("v2.rwdidx");
    idx.save(&p2).unwrap();
    let err = WalkIndex::open_mapped(&p2).unwrap_err();
    assert!(err.to_string().contains("no zero-copy open"), "{err}");
    assert_eq!(WalkIndex::load(&p2).unwrap(), idx);

    // The obsolete AoS layout and arbitrary bytes are named too.
    let p1 = dir.join("v1.rwdidx");
    std::fs::write(&p1, b"RWDIDX1\0some old payload").unwrap();
    let err = WalkIndex::open_mapped(&p1).unwrap_err();
    assert!(err.to_string().contains("RWDIDX1"), "{err}");
    let junk = dir.join("junk.rwdidx");
    std::fs::write(&junk, b"definitely not an index").unwrap();
    let err = WalkIndex::open_mapped(&junk).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Every structural damage mode of a V4 file yields the same named error
/// on the deserializing and (where available) the mapped open path.
#[test]
fn damaged_v4_files_are_rejected_by_name_on_every_open_path() {
    let g = sample_graph();
    let idx = WalkIndex::build(&g, 5, 6, 13);
    let dir = tmp_dir("damage");
    let path = dir.join("mono.rwdidx");
    idx.save_v4(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let open_errors = |p: &PathBuf| -> Vec<String> {
        let mut errs = vec![WalkIndex::load(p).unwrap_err().to_string()];
        if mapped_path_available() {
            errs.push(WalkIndex::open_mapped(p).unwrap_err().to_string());
        }
        errs
    };

    // Cut inside the fixed header: truncated.
    let p = dir.join("header-cut.rwdidx");
    std::fs::write(&p, &pristine[..30]).unwrap();
    for e in open_errors(&p) {
        assert!(e.contains("truncated"), "{e}");
    }

    // Cut inside the sections: the tiling no longer accounts for the file.
    let p = dir.join("tail-cut.rwdidx");
    std::fs::write(&p, &pristine[..pristine.len() - 9]).unwrap();
    for e in open_errors(&p) {
        assert!(e.contains("size mismatch before checksum trailer"), "{e}");
    }

    // Header claims a section alignment this build does not read.
    let p = dir.join("misaligned.rwdidx");
    let mut bytes = pristine.clone();
    bytes[48..56].copy_from_slice(&4u64.to_le_bytes());
    std::fs::write(&p, &bytes).unwrap();
    for e in open_errors(&p) {
        assert!(e.contains("unsupported section alignment"), "{e}");
    }

    // Entry table claims a layer bigger than the file.
    let p = dir.join("huge-layer.rwdidx");
    let mut bytes = pristine.clone();
    bytes[56..64].copy_from_slice(&(1u64 << 30).to_le_bytes());
    std::fs::write(&p, &bytes).unwrap();
    for e in open_errors(&p) {
        assert!(e.contains("exceeds file size"), "{e}");
    }

    // A flipped payload bit: structure intact, checksum names the rot —
    // and inspect still reports the header facts with `crc_ok: false`.
    let p = dir.join("bitrot.rwdidx");
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&p, &bytes).unwrap();
    for e in open_errors(&p) {
        assert!(e.contains("content checksum mismatch"), "{e}");
    }
    let info = inspect_index_file(&p).unwrap();
    assert!(!info.crc_ok, "inspect must notice the rot");
    assert_eq!((info.version, info.n, info.layer_count), (4, 60, 6));

    std::fs::remove_dir_all(&dir).ok();
}

/// The bounded-peak claim behind the deserializing open: transient buffers
/// (CRC chunk + per-worker block + transposition staging) stay under a
/// quarter of the final index, i.e. peak RSS ≤ 1.25× the loaded index.
/// Holds for both the packed V2 layout and the aligned V4 layout.
#[test]
fn deserializing_load_peak_memory_is_bounded() {
    let g = rwd_graph::generators::barabasi_albert(2000, 6, 3).unwrap();
    let idx = WalkIndex::build(&g, 8, 6, 4242);
    let dir = tmp_dir("peak");
    let p2 = dir.join("mono.v2.rwdidx");
    let p4 = dir.join("mono.v4.rwdidx");
    idx.save(&p2).unwrap();
    idx.save_v4(&p4).unwrap();

    for p in [&p2, &p4] {
        let (loaded, stats) = WalkIndex::load_with_stats(p, 1).unwrap();
        assert_eq!(loaded, idx);
        assert!(
            stats.transient_peak_bytes <= idx.memory_bytes() / 4,
            "load of {} held {} transient bytes against a {}-byte index",
            p.display(),
            stats.transient_peak_bytes,
            idx.memory_bytes()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Copy-on-write at layer grain: refreshing a mapped index promotes the
/// touched layers to the heap and lands on bits identical to refreshing
/// an owned index — promoted-then-edited ≡ owned-then-edited.
#[test]
fn refresh_promotes_mapped_layers_and_matches_owned_refresh() {
    if !mapped_path_available() {
        return;
    }
    let g0 = sample_graph();
    let idx = WalkIndex::build(&g0, 5, 6, 31);
    let dir = tmp_dir("promote");
    let path = dir.join("mono.rwdidx");
    idx.save_v4(&path).unwrap();

    // The next graph: one fresh edge between low-degree endpoints.
    let mut edges: Vec<(u32, u32)> = g0.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let extra = (0..g0.n() as u32)
        .flat_map(|u| ((u + 1)..g0.n() as u32).map(move |v| (u, v)))
        .find(|&(u, v)| !g0.has_edge(NodeId(u), NodeId(v)))
        .expect("sample graph is not complete");
    edges.push(extra);
    let g1 = CsrGraph::from_edges(g0.n(), &edges).unwrap();
    let touched = NodeSet::from_nodes(g0.n(), [NodeId(extra.0), NodeId(extra.1)]);

    let mut owned = idx.clone();
    owned.refresh(&g1, &touched);

    let mut mapped = WalkIndex::open_mapped(&path).unwrap();
    assert_eq!(mapped.mapped_layers(), idx.r());
    mapped.refresh(&g1, &touched);
    assert_eq!(
        mapped, owned,
        "promote-then-refresh drifted from owned refresh"
    );
    assert_eq!(
        mapped.mapped_layers(),
        0,
        "a touched endpoint invalidates one walk group in every layer"
    );
    assert_eq!(mapped.mapped_bytes(), 0);
    assert_eq!(mapped, WalkIndex::build(&g1, 5, 6, 31));

    std::fs::remove_dir_all(&dir).ok();
}
