//! The weighted extension: estimator, index and DP must agree with each
//! other on weighted graphs the same way the unweighted pipeline does.

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::NodeId;
use rwd_walks::estimate::SampleEstimator;
use rwd_walks::{hitting, NodeSet, WalkIndex};

fn triangle_skewed() -> WeightedCsrGraph {
    // Triangle 0-1-2 with a heavy 0-1 edge.
    WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 8.0), (0, 2, 1.0), (1, 2, 1.0)]).unwrap()
}

#[test]
fn weighted_estimator_tracks_weighted_dp() {
    let g = triangle_skewed();
    let set = NodeSet::from_nodes(3, [NodeId(1)]);
    let l = 5;
    let est = SampleEstimator::new(l, 6000, 3).estimate_weighted(&g, &set);
    let h = hitting::hitting_time_to_set_weighted(&g, &set, l);
    let p = hitting::hit_probability_to_set_weighted(&g, &set, l);
    for u in 0..3 {
        assert!(
            (est.hit_time[u] - h[u]).abs() < 0.05,
            "node {u}: est {} dp {}",
            est.hit_time[u],
            h[u]
        );
        assert!((est.hit_prob[u] - p[u]).abs() < 0.03);
    }
}

#[test]
fn skewed_weights_shift_the_estimates() {
    // With a heavy 0-1 edge, node 0 should hit {1} faster than node 2 does.
    let g = triangle_skewed();
    let set = NodeSet::from_nodes(3, [NodeId(1)]);
    let est = SampleEstimator::new(4, 4000, 9).estimate_weighted(&g, &set);
    assert!(
        est.hit_time[0] < est.hit_time[2],
        "0 (heavy edge) {} should beat 2 {}",
        est.hit_time[0],
        est.hit_time[2]
    );
}

#[test]
fn weighted_index_is_deterministic_and_valid() {
    let g = triangle_skewed();
    let a = WalkIndex::build_weighted(&g, 4, 16, 7);
    let b = WalkIndex::build_weighted(&g, 4, 16, 7);
    assert_eq!(a.total_postings(), b.total_postings());
    for layer in 0..16 {
        for v in 0..3 {
            assert_eq!(a.postings(layer, NodeId(v)), b.postings(layer, NodeId(v)));
            for p in a.postings(layer, NodeId(v)) {
                assert!(p.weight >= 1 && p.weight <= 4);
                assert_ne!(p.id, NodeId(v), "no self-postings");
            }
        }
    }
}

#[test]
fn weighted_index_replay_tracks_weighted_dp() {
    let g = triangle_skewed();
    let idx = WalkIndex::build_weighted(&g, 5, 4000, 21);
    let set = NodeSet::from_nodes(3, [NodeId(2)]);
    let replay = idx.estimate_hit_times(&set);
    let exact = hitting::hitting_time_to_set_weighted(&g, &set, 5);
    for u in 0..3 {
        assert!(
            (replay[u] - exact[u]).abs() < 0.06,
            "node {u}: index {} dp {}",
            replay[u],
            exact[u]
        );
    }
}

#[test]
fn heavy_edges_dominate_postings() {
    // Star with one overwhelmingly heavy spoke: nearly all of the hub's
    // walks should first visit the heavy leaf.
    let g = WeightedCsrGraph::from_weighted_edges(4, &[(0, 1, 1000.0), (0, 2, 1.0), (0, 3, 1.0)])
        .unwrap();
    let idx = WalkIndex::build_weighted(&g, 1, 200, 5);
    let to_heavy: usize = (0..200)
        .map(|layer| {
            idx.postings(layer, NodeId(1))
                .iter()
                .filter(|p| p.id == NodeId(0))
                .count()
        })
        .sum();
    assert!(
        to_heavy > 190,
        "hub hit the heavy leaf only {to_heavy}/200 times"
    );
}
