//! Shared worker-count policy for every parallel fan-out in the workspace.

/// Below this much sweep work — roughly table slots touched plus postings
/// streamed — layer-parallel passes run serially: thread spawn/join costs
/// more than the whole pass on tiny instances. The same threshold gates
/// `GainEngine::{update, gains_all}` in `rwd-core` and the index-replay
/// estimators in this crate, so "small" means the same thing everywhere.
pub const MIN_PARALLEL_SWEEP_WORK: usize = 1 << 15;

/// Resolves a requested worker count: `0` means "all cores"
/// (`available_parallelism`), anything else is taken literally; never
/// returns 0. Callers cap the result at their own task count.
pub fn resolve_threads(threads: usize) -> usize {
    let hw = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map_or(1, |t| t.get())
    };
    hw.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_pass_through_and_zero_means_cores() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }
}
