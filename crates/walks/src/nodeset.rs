//! Flat bitset over dense node ids.

use rwd_graph::NodeId;

/// A fixed-capacity bitset keyed by [`NodeId`].
///
/// The walk engine tests target-set membership once per hop; a flat bitset
/// makes that a single shift/mask instead of a hash probe. `len` is tracked
/// so `|S|` (needed by `F̂2 += |S|`, Algorithm 2 line 15) is O(1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set over the id universe `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Builds a set from node ids (duplicates ignored).
    pub fn from_nodes(capacity: usize, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::new(capacity);
        for u in nodes {
            s.insert(u);
        }
        s
    }

    /// Universe size the set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no members are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test. O(1).
    #[inline]
    pub fn contains(&self, u: NodeId) -> bool {
        let i = u.index();
        debug_assert!(i < self.capacity);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Inserts `u`; returns true if it was newly added.
    #[inline]
    pub fn insert(&mut self, u: NodeId) -> bool {
        let i = u.index();
        assert!(
            i < self.capacity,
            "node {u} outside universe {}",
            self.capacity
        );
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `u`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, u: NodeId) -> bool {
        let i = u.index();
        assert!(i < self.capacity);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all members, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(NodeId::new(wi * 64 + tz))
                }
            })
        })
    }

    /// Collects members into a vector (increasing id order).
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(0)), "duplicate insert returns false");
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(0)));
        assert!(s.contains(NodeId(129)));
        assert!(!s.contains(NodeId(64)));
        assert!(s.remove(NodeId(0)));
        assert!(!s.remove(NodeId(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_in_order() {
        let s = NodeSet::from_nodes(200, [NodeId(150), NodeId(3), NodeId(64)]);
        assert_eq!(s.to_vec(), vec![NodeId(3), NodeId(64), NodeId(150)]);
    }

    #[test]
    fn clear_resets() {
        let mut s = NodeSet::from_nodes(10, [NodeId(1), NodeId(2)]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId(1)));
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        let mut s = NodeSet::new(5);
        s.insert(NodeId(5));
    }

    #[test]
    fn word_boundary_exactness() {
        let mut s = NodeSet::new(64);
        assert!(s.insert(NodeId(63)));
        assert!(s.contains(NodeId(63)));
        assert_eq!(s.to_vec(), vec![NodeId(63)]);
    }
}
