//! Exact dynamic programs for hitting times and hit probabilities.
//!
//! These implement the recursions of the paper's Theorems 2.1–2.3. Each call
//! computes the quantity for **all** source nodes simultaneously in `O(mL)`
//! time and `O(n)` space (two level buffers) — the engine behind the exact
//! (DP-based) greedy algorithms `DPF1`/`DPF2`.

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, NodeId};

use crate::nodeset::NodeSet;

/// Generalized hitting time `h^L_uS` (Eq. 4) for every source `u`.
///
/// `h[u] = 0` for `u ∈ S`; otherwise
/// `h^ℓ_uS = 1 + (1/d_u) Σ_{w ∈ N(u)} h^{ℓ-1}_wS` with `h^{ℓ-1}_wS = 0`
/// for `w ∈ S` — equivalent to the paper's sum over `w ∈ V\S`. Isolated
/// nodes follow the stay-put convention and thus have `h = L` when outside
/// `S`. The empty set yields `h = L` everywhere (a walk can never hit ∅).
///
/// ```
/// use rwd_graph::generators::classic::path;
/// use rwd_graph::NodeId;
/// use rwd_walks::{hitting, NodeSet};
///
/// // Path 0-1-2, target {2}, L = 2: from node 1 the walk hits at hop 1
/// // with probability 1/2 and truncates at 2 otherwise: E = 1.5.
/// let g = path(3).unwrap();
/// let set = NodeSet::from_nodes(3, [NodeId(2)]);
/// let h = hitting::hitting_time_to_set(&g, &set, 2);
/// assert!((h[1] - 1.5).abs() < 1e-12);
/// assert_eq!(h[2], 0.0);
/// ```
pub fn hitting_time_to_set(g: &CsrGraph, set: &NodeSet, l: u32) -> Vec<f64> {
    let n = g.n();
    debug_assert_eq!(set.capacity(), n);
    // Level 0: T^0 = 0 for every node.
    let mut prev = vec![0.0f64; n];
    if l == 0 {
        return prev;
    }
    let mut next = vec![0.0f64; n];
    for _level in 1..=l {
        for u in 0..n {
            let id = NodeId::new(u);
            next[u] = if set.contains(id) {
                0.0
            } else {
                let nbrs = g.neighbors(id);
                if nbrs.is_empty() {
                    // Stay-put: the "neighbor" is u itself.
                    1.0 + prev[u]
                } else {
                    let sum: f64 = nbrs.iter().map(|w| prev[w.index()]).sum();
                    1.0 + sum / nbrs.len() as f64
                }
            };
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// Hit probability `p^L_uS` (Eq. 8) for every source `u`.
///
/// `p[u] = 1` for `u ∈ S`; `p^0_uS = 0` outside `S`;
/// `p^ℓ_uS = (1/d_u) Σ_{w ∈ N(u)} p^{ℓ-1}_wS` otherwise.
pub fn hit_probability_to_set(g: &CsrGraph, set: &NodeSet, l: u32) -> Vec<f64> {
    let n = g.n();
    debug_assert_eq!(set.capacity(), n);
    let mut prev = vec![0.0f64; n];
    for u in set.iter() {
        prev[u.index()] = 1.0;
    }
    if l == 0 {
        return prev;
    }
    let mut next = vec![0.0f64; n];
    for _level in 1..=l {
        for u in 0..n {
            let id = NodeId::new(u);
            next[u] = if set.contains(id) {
                1.0
            } else {
                let nbrs = g.neighbors(id);
                if nbrs.is_empty() {
                    prev[u] // stay-put: remains 0 outside S
                } else {
                    let sum: f64 = nbrs.iter().map(|w| prev[w.index()]).sum();
                    sum / nbrs.len() as f64
                }
            };
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// Node-to-node hitting time `h^L_uv` (Eq. 2) for every source `u` — the
/// singleton-set case of [`hitting_time_to_set`].
pub fn hitting_time_to_node(g: &CsrGraph, v: NodeId, l: u32) -> Vec<f64> {
    let set = NodeSet::from_nodes(g.n(), [v]);
    hitting_time_to_set(g, &set, l)
}

/// Exact objective `F1(S) = nL − Σ_{u ∈ V\S} h^L_uS` (Problem 1, Eq. 6).
pub fn exact_f1(g: &CsrGraph, set: &NodeSet, l: u32) -> f64 {
    let h = hitting_time_to_set(g, set, l);
    let total: f64 = h.iter().sum(); // members contribute 0
    g.n() as f64 * l as f64 - total
}

/// Exact objective `F2(S) = Σ_u p^L_uS` (Problem 2, Eq. 7).
pub fn exact_f2(g: &CsrGraph, set: &NodeSet, l: u32) -> f64 {
    hit_probability_to_set(g, set, l).iter().sum()
}

/// Weighted-graph generalized hitting time: transition probabilities are
/// `w(u,x)/strength(u)` instead of `1/d_u` (the paper's directed/weighted
/// extension remark).
pub fn hitting_time_to_set_weighted(g: &WeightedCsrGraph, set: &NodeSet, l: u32) -> Vec<f64> {
    let n = g.n();
    let mut prev = vec![0.0f64; n];
    if l == 0 {
        return prev;
    }
    let mut next = vec![0.0f64; n];
    for _level in 1..=l {
        for u in 0..n {
            let id = NodeId::new(u);
            next[u] = if set.contains(id) {
                0.0
            } else {
                let strength = g.strength(id);
                if strength == 0.0 {
                    1.0 + prev[u]
                } else {
                    let sum: f64 = g.neighbors(id).map(|(w, wt)| wt * prev[w.index()]).sum();
                    1.0 + sum / strength
                }
            };
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// Weighted-graph hit probability (see [`hitting_time_to_set_weighted`]).
pub fn hit_probability_to_set_weighted(g: &WeightedCsrGraph, set: &NodeSet, l: u32) -> Vec<f64> {
    let n = g.n();
    let mut prev = vec![0.0f64; n];
    for u in set.iter() {
        prev[u.index()] = 1.0;
    }
    if l == 0 {
        return prev;
    }
    let mut next = vec![0.0f64; n];
    for _level in 1..=l {
        for u in 0..n {
            let id = NodeId::new(u);
            next[u] = if set.contains(id) {
                1.0
            } else {
                let strength = g.strength(id);
                if strength == 0.0 {
                    prev[u]
                } else {
                    let sum: f64 = g.neighbors(id).map(|(w, wt)| wt * prev[w.index()]).sum();
                    sum / strength
                }
            };
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::{classic, paper_example};

    fn set_of(n: usize, nodes: &[u32]) -> NodeSet {
        NodeSet::from_nodes(n, nodes.iter().map(|&u| NodeId(u)))
    }

    #[test]
    fn member_nodes_have_zero_hitting_time() {
        let g = paper_example::figure1();
        let s = set_of(8, &[4, 5]);
        let h = hitting_time_to_set(&g, &s, 4);
        assert_eq!(h[4], 0.0);
        assert_eq!(h[5], 0.0);
    }

    #[test]
    fn empty_set_gives_l_everywhere() {
        let g = paper_example::figure1();
        let s = NodeSet::new(8);
        for l in [0u32, 1, 3, 7] {
            let h = hitting_time_to_set(&g, &s, l);
            assert!(h.iter().all(|&x| (x - l as f64).abs() < 1e-12), "l = {l}");
            let p = hit_probability_to_set(&g, &s, l);
            assert!(p.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn bounded_by_l_lemma_2_1() {
        let g = paper_example::figure1();
        let s = set_of(8, &[2]);
        for l in 0..8 {
            let h = hitting_time_to_set(&g, &s, l);
            assert!(h.iter().all(|&x| (0.0..=l as f64 + 1e-12).contains(&x)));
        }
    }

    #[test]
    fn path_two_nodes_closed_form() {
        // Path 0-1, target {1}: from 0 the walk hits at time 1 always.
        let g = classic::path(2).unwrap();
        let s = set_of(2, &[1]);
        let h = hitting_time_to_set(&g, &s, 5);
        assert!((h[0] - 1.0).abs() < 1e-12);
        let p = hit_probability_to_set(&g, &s, 5);
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_hitting_time_closed_form() {
        // Star with hub 0 and 3 leaves; target = {hub}. Any leaf hits at
        // time 1; the hub is a member.
        let g = classic::star(4).unwrap();
        let s = set_of(4, &[0]);
        let h = hitting_time_to_set(&g, &s, 6);
        for &h_leaf in &h[1..4] {
            assert!((h_leaf - 1.0).abs() < 1e-12);
        }
        // Target = one leaf: from the hub, P(hit leaf in one step) = 1/3.
        // h^1_{hub,leaf} = 1 (truncated), p^1 = 1/3.
        let s = set_of(4, &[1]);
        let p = hit_probability_to_set(&g, &s, 1);
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_probability_symmetry() {
        let g = classic::cycle(6).unwrap();
        let s = set_of(6, &[0]);
        let p = hit_probability_to_set(&g, &s, 4);
        // Nodes equidistant from 0 must have equal probabilities.
        assert!((p[1] - p[5]).abs() < 1e-12);
        assert!((p[2] - p[4]).abs() < 1e-12);
        let h = hitting_time_to_set(&g, &s, 4);
        assert!((h[1] - h[5]).abs() < 1e-12);
        assert!((h[2] - h[4]).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_conventions() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let s = set_of(3, &[0]);
        let h = hitting_time_to_set(&g, &s, 5);
        assert!(
            (h[2] - 5.0).abs() < 1e-12,
            "isolated node never hits: h = L"
        );
        let p = hit_probability_to_set(&g, &s, 5);
        assert_eq!(p[2], 0.0);
        // Isolated member node.
        let s = set_of(3, &[2]);
        let h = hitting_time_to_set(&g, &s, 5);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn monotone_in_l() {
        // Larger L ⇒ larger (truncated) hitting time and larger hit probability.
        let g = paper_example::figure1();
        let s = set_of(8, &[6]);
        let mut last_h = -1.0;
        let mut last_p = -1.0;
        for l in 0..10 {
            let h: f64 = hitting_time_to_set(&g, &s, l).iter().sum();
            let p: f64 = hit_probability_to_set(&g, &s, l).iter().sum();
            assert!(h >= last_h - 1e-12);
            assert!(p >= last_p - 1e-12);
            last_h = h;
            last_p = p;
        }
    }

    #[test]
    fn monotone_in_set_inclusion() {
        // S ⊆ T ⇒ h_uT ≤ h_uS and p_uT ≥ p_uS (Theorem 3.1/3.2 machinery).
        let g = paper_example::figure1();
        let s = set_of(8, &[1]);
        let t = set_of(8, &[1, 6]);
        let hs = hitting_time_to_set(&g, &s, 6);
        let ht = hitting_time_to_set(&g, &t, 6);
        let ps = hit_probability_to_set(&g, &s, 6);
        let pt = hit_probability_to_set(&g, &t, 6);
        for u in 0..8 {
            assert!(ht[u] <= hs[u] + 1e-12);
            assert!(pt[u] >= ps[u] - 1e-12);
        }
    }

    #[test]
    fn f1_f2_empty_set_are_zero() {
        let g = paper_example::figure1();
        let s = NodeSet::new(8);
        assert!(exact_f1(&g, &s, 6).abs() < 1e-12);
        assert!(exact_f2(&g, &s, 6).abs() < 1e-12);
    }

    #[test]
    fn f2_full_set_is_n() {
        let g = paper_example::figure1();
        let s = NodeSet::from_nodes(8, g.nodes());
        assert!((exact_f2(&g, &s, 3) - 8.0).abs() < 1e-12);
        assert!((exact_f1(&g, &s, 3) - 24.0).abs() < 1e-12); // nL − 0
    }

    #[test]
    fn hitting_time_to_node_matches_singleton_set() {
        let g = paper_example::figure1();
        let direct = hitting_time_to_node(&g, NodeId(4), 5);
        let via_set = hitting_time_to_set(&g, &set_of(8, &[4]), 5);
        assert_eq!(direct, via_set);
    }

    #[test]
    fn weighted_uniform_weights_match_unweighted() {
        let g = paper_example::figure1();
        let edges: Vec<(u32, u32, f64)> = g.edges().map(|(u, v)| (u.raw(), v.raw(), 1.0)).collect();
        let wg = WeightedCsrGraph::from_weighted_edges(8, &edges).unwrap();
        let s = set_of(8, &[1, 6]);
        let h = hitting_time_to_set(&g, &s, 6);
        let hw = hitting_time_to_set_weighted(&wg, &s, 6);
        for u in 0..8 {
            assert!((h[u] - hw[u]).abs() < 1e-12);
        }
        let p = hit_probability_to_set(&g, &s, 6);
        let pw = hit_probability_to_set_weighted(&wg, &s, 6);
        for u in 0..8 {
            assert!((p[u] - pw[u]).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_skew_changes_hitting_time() {
        // Triangle 0-1-2; target {1}. Heavier 0-1 edge pulls walks from 0
        // toward 1 faster.
        let balanced =
            WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
                .unwrap();
        let skewed =
            WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 10.0), (0, 2, 1.0), (1, 2, 1.0)])
                .unwrap();
        let s = set_of(3, &[1]);
        let hb = hitting_time_to_set_weighted(&balanced, &s, 8);
        let hs = hitting_time_to_set_weighted(&skewed, &s, 8);
        assert!(hs[0] < hb[0]);
    }
}
