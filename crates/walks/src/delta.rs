//! Compact posting deltas emitted by incremental refreshes.
//!
//! [`WalkIndex::refresh`](crate::WalkIndex::refresh) re-walks exactly the
//! `(src, layer)` groups a batch can have changed. The collecting variants
//! ([`WalkIndex::refresh_collecting`](crate::WalkIndex::refresh_collecting)
//! and its weighted/threaded twins) additionally report *what* changed:
//! per resampled group, the inverted postings the group dropped and the
//! postings it now produces, each with its first-visit hop. That is the
//! exact edit script between two index epochs — a consumer holding
//! epoch-`t` derived state (e.g. the persistent gain tables of
//! `DeltaGainEngine`) can patch itself to epoch `t+1` in `O(|delta|)`
//! instead of re-deriving from the full index.
//!
//! Layer indices in a delta are **absolute** (`layer_base + local`), so
//! deltas from a set of layer-range shards can be interpreted against the
//! global layer order without translation.

/// One changed inverted posting: `(owner, src, hop)` — the walk of `src`
/// (in the delta's layer) first visits `owner` at hop `hop`.
pub type PostingEdit = (u32, u32, u16);

/// The posting edits of one walk layer for one refresh.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayerDelta {
    /// Absolute layer index (`layer_base + local`).
    pub layer: usize,
    /// Sources whose walk group was re-walked, ascending. Every edit in
    /// `removed`/`added` names one of these sources; a resampled group may
    /// also reproduce its old postings exactly (both lists then carry the
    /// identical entries).
    pub resampled: Vec<u32>,
    /// Old postings the resampled groups dropped (the groups' previous
    /// forward lists), grouped by source in ascending-source order.
    pub removed: Vec<PostingEdit>,
    /// New postings the resampled groups produced, grouped by source in
    /// ascending-source order (walk order within a group).
    pub added: Vec<PostingEdit>,
}

/// The full edit script of one [`WalkIndex::refresh`](crate::WalkIndex)
/// pass: one [`LayerDelta`] per layer that resampled at least one group,
/// in ascending absolute-layer order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PostingDelta {
    /// Per-layer edits, ascending by absolute layer; layers with no
    /// resampled group are omitted.
    pub layers: Vec<LayerDelta>,
}

impl PostingDelta {
    /// True when the refresh resampled nothing (the delta is a no-op).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total posting edits (removed + added) across all layers — the
    /// `O(|delta|)` a consumer pays to absorb this refresh.
    pub fn postings_changed(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.removed.len() + l.added.len())
            .sum()
    }

    /// Total `(src, layer)` groups resampled across all layers.
    pub fn groups_resampled(&self) -> usize {
        self.layers.iter().map(|l| l.resampled.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_layers() {
        let delta = PostingDelta {
            layers: vec![
                LayerDelta {
                    layer: 0,
                    resampled: vec![1, 4],
                    removed: vec![(2, 1, 1), (3, 4, 2)],
                    added: vec![(5, 1, 1)],
                },
                LayerDelta {
                    layer: 3,
                    resampled: vec![7],
                    removed: Vec::new(),
                    added: vec![(0, 7, 2), (1, 7, 3)],
                },
            ],
        };
        assert!(!delta.is_empty());
        assert_eq!(delta.postings_changed(), 5);
        assert_eq!(delta.groups_resampled(), 3);
        assert!(PostingDelta::default().is_empty());
    }
}
