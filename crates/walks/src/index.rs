//! The inverted walk index — the paper's Algorithm 3 (`Invert_Index`).
//!
//! For every node `w` the builder runs `R` L-length walks; walk `i` from `w`
//! contributes a posting `⟨w, j⟩` to list `I[i][v]` when it *first* visits
//! `v` at hop `j` (repeated visits are dropped, matching the definition of
//! hitting time). Postings are materialized per layer (one layer = one walk
//! index `i` across all sources) as a CSR-packed posting file: a flat
//! `Vec<Posting>` plus per-node offsets — `O(nRL)` space total, one
//! allocation per layer.
//!
//! A single index serves *both* problems: Problem 1 consumes the true hop
//! weights, Problem 2 treats any posting as the indicator "source hits `v`"
//! (the paper's `weight ← 1` comment in Algorithm 3).

use rwd_graph::{CsrGraph, NodeId};

use crate::nodeset::NodeSet;
use crate::rng::WalkRng;
use crate::walker;

/// One inverted-list entry: the walk from `id` first reaches the list's
/// owner node at hop `weight` (`1 ≤ weight ≤ L`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// Source node whose walk produced this posting.
    pub id: NodeId,
    /// Hop at which the source's walk first visits the owner node.
    pub weight: u32,
}

/// One walk layer: the inverted lists `I[i][·]` for a fixed walk index `i`,
/// CSR-packed by owner node.
#[derive(Clone, Debug)]
struct Layer {
    offsets: Vec<usize>,
    postings: Vec<Posting>,
}

impl Layer {
    fn from_triples(n: usize, mut triples: Vec<(u32, Posting)>) -> Layer {
        // Counting sort by owner node keeps construction O(n + entries).
        let mut counts = vec![0usize; n + 1];
        for &(v, _) in &triples {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut postings = vec![
            Posting {
                id: NodeId(0),
                weight: 0
            };
            triples.len()
        ];
        for (v, p) in triples.drain(..) {
            postings[counts[v as usize]] = p;
            counts[v as usize] += 1;
        }
        Layer { offsets, postings }
    }

    #[inline]
    fn postings(&self, v: NodeId) -> &[Posting] {
        &self.postings[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }
}

/// The materialized sample store `I[1:R][1:n]` of Algorithm 3.
#[derive(Clone, Debug)]
pub struct WalkIndex {
    n: usize,
    l: u32,
    layers: Vec<Layer>,
    seed: u64,
}

impl WalkIndex {
    /// Builds the index by running `r` walks per node (Algorithm 3),
    /// parallelized over layers; the result is a pure function of
    /// `(graph, l, r, seed)` regardless of thread count.
    ///
    /// ```
    /// use rwd_graph::generators::paper_example::figure1;
    /// use rwd_walks::WalkIndex;
    ///
    /// let g = figure1();
    /// let idx = WalkIndex::build(&g, 4, 16, 7);
    /// assert_eq!((idx.n(), idx.l(), idx.r()), (8, 4, 16));
    /// assert!(idx.total_postings() <= 8 * 16 * 4); // ≤ nRL
    /// ```
    pub fn build(g: &CsrGraph, l: u32, r: usize, seed: u64) -> WalkIndex {
        Self::build_with_threads(g, l, r, seed, 0)
    }

    /// [`WalkIndex::build`] with an explicit worker count (`0` = all cores).
    pub fn build_with_threads(
        g: &CsrGraph,
        l: u32,
        r: usize,
        seed: u64,
        threads: usize,
    ) -> WalkIndex {
        assert!(r > 0, "need at least one walk per node");
        let n = g.n();
        let hw = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism().map_or(1, |t| t.get())
        };
        let workers = hw.max(1).min(r);

        let mut layers: Vec<Option<Layer>> = (0..r).map(|_| None).collect();
        let chunk = r.div_ceil(workers);
        // Scoped fan-out over layer chunks; every layer derives its walks
        // from (seed, node, layer) streams, so the chunking is invisible in
        // the output.
        std::thread::scope(|scope| {
            for (ci, slot) in layers.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (j, out) in slot.iter_mut().enumerate() {
                        let layer_idx = ci * chunk + j;
                        *out = Some(build_layer(g, l, layer_idx, seed));
                    }
                });
            }
        });

        WalkIndex {
            n,
            l,
            layers: layers
                .into_iter()
                .map(|o| o.expect("layer built"))
                .collect(),
            seed,
        }
    }

    /// Builds the index over a weighted graph: identical structure, walk
    /// steps drawn with probability proportional to edge weight (the
    /// paper's weighted extension; Algorithm 6 then works unchanged because
    /// it only ever touches the index).
    pub fn build_weighted(
        g: &rwd_graph::weighted::WeightedCsrGraph,
        l: u32,
        r: usize,
        seed: u64,
    ) -> WalkIndex {
        assert!(r > 0, "need at least one walk per node");
        let n = g.n();
        let layers = (0..r)
            .map(|layer_idx| {
                let mut triples: Vec<(u32, Posting)> = Vec::new();
                let mut visited = vec![u32::MAX; n];
                for w in 0..n {
                    let mut rng = WalkRng::for_stream(seed, w as u64, layer_idx as u64);
                    let mut u = NodeId::new(w);
                    visited[w] = w as u32;
                    for j in 1..=l {
                        u = walker::step_weighted(g, u, &mut rng);
                        if visited[u.index()] != w as u32 {
                            visited[u.index()] = w as u32;
                            triples.push((
                                u.raw(),
                                Posting {
                                    id: NodeId::new(w),
                                    weight: j,
                                },
                            ));
                        }
                    }
                }
                Layer::from_triples(n, triples)
            })
            .collect();
        WalkIndex { n, l, layers, seed }
    }

    /// Builds an index from explicitly supplied walks: `walks[w]` is the
    /// recorded sequence (including the start, `l + 1` entries) of the
    /// single walk from node `w` — the `R = 1` case used by the paper's
    /// Example 3.1. See [`WalkIndex::from_walk_layers`] for general `R`.
    pub fn from_walks(n: usize, l: u32, walks: &[Vec<NodeId>]) -> WalkIndex {
        Self::from_walk_layers(n, l, std::slice::from_ref(&walks.to_vec()))
    }

    /// Builds an index from explicit walk layers:
    /// `layers[i][w]` = recorded walk `i` from node `w` (`l + 1` entries).
    pub fn from_walk_layers(n: usize, l: u32, layers: &[Vec<Vec<NodeId>>]) -> WalkIndex {
        assert!(!layers.is_empty());
        let built = layers
            .iter()
            .map(|layer_walks| {
                assert_eq!(layer_walks.len(), n, "one walk per node required");
                let mut triples: Vec<(u32, Posting)> = Vec::new();
                let mut visited = vec![u32::MAX; n];
                for (w, walk) in layer_walks.iter().enumerate() {
                    assert_eq!(
                        walk.len(),
                        l as usize + 1,
                        "walk from node {w} must have l + 1 = {} entries",
                        l + 1
                    );
                    assert_eq!(walk[0], NodeId::new(w), "walk must start at its source");
                    visited[w] = w as u32;
                    for (j, &v) in walk.iter().enumerate().skip(1) {
                        if visited[v.index()] != w as u32 {
                            visited[v.index()] = w as u32;
                            triples.push((
                                v.raw(),
                                Posting {
                                    id: NodeId::new(w),
                                    weight: j as u32,
                                },
                            ));
                        }
                    }
                }
                Layer::from_triples(n, triples)
            })
            .collect();
        WalkIndex {
            n,
            l,
            layers: built,
            seed: 0,
        }
    }

    /// Node-universe size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Walk-length bound `L`.
    #[inline]
    pub fn l(&self) -> u32 {
        self.l
    }

    /// Number of walk layers `R`.
    #[inline]
    pub fn r(&self) -> usize {
        self.layers.len()
    }

    /// Seed the index was built with (0 for explicit-walk indexes).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The inverted list `I[layer][v]`: all sources whose `layer`-th walk
    /// visits `v`, each with its first-visit hop.
    #[inline]
    pub fn postings(&self, layer: usize, v: NodeId) -> &[Posting] {
        self.layers[layer].postings(v)
    }

    /// Total number of stored postings (≤ nRL).
    pub fn total_postings(&self) -> usize {
        self.layers.iter().map(|l| l.postings.len()).sum()
    }

    /// Approximate resident bytes of the index (postings + offsets).
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.postings.len() * std::mem::size_of::<Posting>()
                    + l.offsets.len() * std::mem::size_of::<usize>()
            })
            .sum()
    }

    /// Replays the index against an arbitrary target set: returns per-layer
    /// first-hit times `D[i][u] = min(L, min_{s∈S} firsthit_i(u → s))`
    /// averaged over layers — the index-based estimate of `h^L_uS`.
    ///
    /// This is the batch (non-incremental) form of what Algorithm 5
    /// maintains; `rwd-core` uses the incremental form inside the greedy
    /// loop and the tests assert the two agree.
    pub fn estimate_hit_times(&self, set: &NodeSet) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n];
        let mut d = vec![0u32; self.n];
        for layer in &self.layers {
            d.fill(self.l);
            for s in set.iter() {
                d[s.index()] = 0;
                for p in layer.postings(s) {
                    let slot = &mut d[p.id.index()];
                    if p.weight < *slot {
                        *slot = p.weight;
                    }
                }
            }
            for (a, &v) in acc.iter_mut().zip(d.iter()) {
                *a += v as f64;
            }
        }
        let r = self.layers.len() as f64;
        acc.iter_mut().for_each(|a| *a /= r);
        acc
    }

    /// Persists the index to disk (the paper's "sample materialization"
    /// made durable): magic + header + per-layer CSR blocks, little-endian.
    /// A paper-scale index builds in seconds but is reused across many
    /// `k`/`λ` sweeps — saving it makes experiment suites restartable.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(b"RWDIDX1\0")?;
        w.write_all(&(self.n as u64).to_le_bytes())?;
        w.write_all(&(self.l as u64).to_le_bytes())?;
        w.write_all(&(self.layers.len() as u64).to_le_bytes())?;
        w.write_all(&self.seed.to_le_bytes())?;
        for layer in &self.layers {
            w.write_all(&(layer.postings.len() as u64).to_le_bytes())?;
            for &off in &layer.offsets {
                w.write_all(&(off as u64).to_le_bytes())?;
            }
            for p in &layer.postings {
                w.write_all(&p.id.raw().to_le_bytes())?;
                w.write_all(&p.weight.to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Loads an index previously written by [`WalkIndex::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<WalkIndex> {
        use std::io::Read;
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"RWDIDX1\0" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a walk-index file (bad magic)",
            ));
        }
        let mut u64buf = [0u8; 8];
        let mut read_u64 = |r: &mut dyn Read| -> std::io::Result<u64> {
            r.read_exact(&mut u64buf)?;
            Ok(u64::from_le_bytes(u64buf))
        };
        let n = read_u64(&mut r)? as usize;
        let l = read_u64(&mut r)? as u32;
        let layer_count = read_u64(&mut r)? as usize;
        let seed = read_u64(&mut r)?;
        let mut layers = Vec::with_capacity(layer_count);
        for _ in 0..layer_count {
            let postings_len = read_u64(&mut r)? as usize;
            let mut offsets = Vec::with_capacity(n + 1);
            for _ in 0..=n {
                offsets.push(read_u64(&mut r)? as usize);
            }
            if *offsets.last().unwrap_or(&0) != postings_len {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "corrupt walk-index file (offset/posting mismatch)",
                ));
            }
            let mut postings = Vec::with_capacity(postings_len);
            let mut u32buf = [0u8; 4];
            for _ in 0..postings_len {
                r.read_exact(&mut u32buf)?;
                let id = NodeId(u32::from_le_bytes(u32buf));
                r.read_exact(&mut u32buf)?;
                let weight = u32::from_le_bytes(u32buf);
                postings.push(Posting { id, weight });
            }
            layers.push(Layer { offsets, postings });
        }
        Ok(WalkIndex { n, l, layers, seed })
    }

    /// Index-based estimate of the hit probability `p^L_uS`: the fraction of
    /// layers in which `u`'s walk reaches `S` (members of `S` count 1).
    pub fn estimate_hit_probs(&self, set: &NodeSet) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n];
        let mut hit = vec![false; self.n];
        for layer in &self.layers {
            hit.fill(false);
            for s in set.iter() {
                hit[s.index()] = true;
                for p in layer.postings(s) {
                    hit[p.id.index()] = true;
                }
            }
            for (a, &h) in acc.iter_mut().zip(hit.iter()) {
                if h {
                    *a += 1.0;
                }
            }
        }
        let r = self.layers.len() as f64;
        acc.iter_mut().for_each(|a| *a /= r);
        acc
    }
}

/// Runs all walks of one layer and packs them into inverted lists.
fn build_layer(g: &CsrGraph, l: u32, layer_idx: usize, seed: u64) -> Layer {
    let n = g.n();
    // A loose upper bound on postings (each hop adds at most one).
    let mut triples: Vec<(u32, Posting)> = Vec::with_capacity(n * (l as usize).min(8));
    let mut visited = vec![u32::MAX; n];
    for w in 0..n {
        let mut rng = WalkRng::for_stream(seed, w as u64, layer_idx as u64);
        let mut u = NodeId::new(w);
        visited[w] = w as u32;
        for j in 1..=l {
            u = walker::step(g, u, &mut rng);
            if visited[u.index()] != w as u32 {
                visited[u.index()] = w as u32;
                triples.push((
                    u.raw(),
                    Posting {
                        id: NodeId::new(w),
                        weight: j,
                    },
                ));
            }
        }
    }
    Layer::from_triples(n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::record_walk;
    use rwd_graph::generators::paper_example;

    fn figure1_index() -> WalkIndex {
        WalkIndex::build(&paper_example::figure1(), 2, 1, 42)
    }

    #[test]
    fn postings_reference_real_first_visits() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 3, 7);
        // Recreate each walk with the same stream and check the postings of
        // every visited node agree.
        for layer in 0..idx.r() {
            for w in g.nodes() {
                let mut rng = WalkRng::for_stream(7, w.index() as u64, layer as u64);
                let mut buf = Vec::new();
                record_walk(&g, w, 4, &mut rng, &mut buf);
                // First-visit hops from the recorded walk.
                let mut first = std::collections::HashMap::new();
                for (j, &v) in buf.iter().enumerate().skip(1) {
                    if v != w {
                        first.entry(v).or_insert(j as u32);
                    }
                }
                for (&v, &j) in &first {
                    let hit = idx
                        .postings(layer, v)
                        .iter()
                        .find(|p| p.id == w)
                        .unwrap_or_else(|| panic!("missing posting {w}→{v}"));
                    assert_eq!(hit.weight, j);
                }
                // And no spurious postings for this source.
                for v in g.nodes() {
                    let has = idx.postings(layer, v).iter().any(|p| p.id == w);
                    assert_eq!(has, first.contains_key(&v), "{w} vs {v}");
                }
            }
        }
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let g = paper_example::figure1();
        let a = WalkIndex::build_with_threads(&g, 3, 8, 5, 1);
        let b = WalkIndex::build_with_threads(&g, 3, 8, 5, 4);
        assert_eq!(a.total_postings(), b.total_postings());
        for layer in 0..8 {
            for v in g.nodes() {
                assert_eq!(a.postings(layer, v), b.postings(layer, v));
            }
        }
    }

    #[test]
    fn from_walks_matches_example_3_1_table_1() {
        // The fixed walks of Example 3.1 (paper labels v1..v8 = ids 0..7).
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        let idx = WalkIndex::from_walks(8, 2, &walks);

        let lists: Vec<Vec<(usize, u32)>> = (0..8)
            .map(|owner| {
                idx.postings(0, NodeId::new(owner))
                    .iter()
                    .map(|p| (p.id.index() + 1, p.weight)) // back to paper labels
                    .collect()
            })
            .collect();
        // Table 1 of the paper:
        assert_eq!(lists[0], vec![]); // v1
        assert_eq!(lists[1], vec![(1, 1), (3, 1), (5, 1)]); // v2
        assert_eq!(lists[2], vec![(1, 2), (2, 1)]); // v3
        assert_eq!(lists[3], vec![(8, 2)]); // v4
        assert_eq!(lists[4], vec![(2, 2), (3, 2), (4, 2), (6, 2), (7, 1)]); // v5
        assert_eq!(lists[5], vec![(5, 2)]); // v6
        assert_eq!(lists[6], vec![(4, 1), (6, 1), (8, 1)]); // v7
        assert_eq!(lists[7], vec![]); // v8
    }

    #[test]
    fn repeated_nodes_indexed_once() {
        // Walk (v7, v5, v7): the second v7 must not be indexed (it is the
        // source) and v5 gets weight 1 — already covered by the Table 1
        // test; here check a self-revisit of a non-source node.
        let walks = vec![
            vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)], // 0-1-0-1
            vec![NodeId(1), NodeId(0), NodeId(1), NodeId(0)],
        ];
        let idx = WalkIndex::from_walks(2, 3, &walks);
        // Walk from 0 visits 1 first at hop 1 (hop 3 revisit dropped).
        assert_eq!(
            idx.postings(0, NodeId(1)),
            &[Posting {
                id: NodeId(0),
                weight: 1
            }]
        );
        // Walk from 1 visits 0 first at hop 1.
        assert_eq!(
            idx.postings(0, NodeId(0)),
            &[Posting {
                id: NodeId(1),
                weight: 1
            }]
        );
    }

    #[test]
    fn estimate_hit_times_replays_correctly() {
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        let idx = WalkIndex::from_walks(8, 2, &walks);
        // S = {v2}: first hits — v1 at 1, v3 at 1, v5 at 1; others miss (L = 2).
        let s = NodeSet::from_nodes(8, [v(2)]);
        let h = idx.estimate_hit_times(&s);
        assert_eq!(h[v(1).index()], 1.0);
        assert_eq!(h[v(2).index()], 0.0);
        assert_eq!(h[v(3).index()], 1.0);
        assert_eq!(h[v(4).index()], 2.0);
        assert_eq!(h[v(5).index()], 1.0);
        assert_eq!(h[v(6).index()], 2.0);
        let p = idx.estimate_hit_probs(&s);
        assert_eq!(p[v(1).index()], 1.0);
        assert_eq!(p[v(4).index()], 0.0);
        assert_eq!(p[v(2).index()], 1.0);
    }

    #[test]
    fn memory_accounting_is_positive() {
        let idx = figure1_index();
        assert!(idx.total_postings() > 0);
        assert!(idx.memory_bytes() >= idx.total_postings() * 8);
        assert_eq!(idx.l(), 2);
        assert_eq!(idx.r(), 1);
        assert_eq!(idx.n(), 8);
    }

    #[test]
    fn save_load_round_trip() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 6, 13);
        let dir = std::env::temp_dir().join("rwd_index_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.rwdidx");
        idx.save(&path).unwrap();
        let loaded = WalkIndex::load(&path).unwrap();
        assert_eq!(loaded.n(), idx.n());
        assert_eq!(loaded.l(), idx.l());
        assert_eq!(loaded.r(), idx.r());
        assert_eq!(loaded.seed(), idx.seed());
        for layer in 0..idx.r() {
            for v in g.nodes() {
                assert_eq!(loaded.postings(layer, v), idx.postings(layer, v));
            }
        }
        // The reloaded index drives identical estimates.
        let set = NodeSet::from_nodes(8, [NodeId(1), NodeId(6)]);
        assert_eq!(
            loaded.estimate_hit_times(&set),
            idx.estimate_hit_times(&set)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("rwd_index_io_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.rwdidx");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(WalkIndex::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "walk must start at its source")]
    fn from_walks_validates_start() {
        let _ = WalkIndex::from_walks(
            2,
            1,
            &[vec![NodeId(1), NodeId(0)], vec![NodeId(1), NodeId(0)]],
        );
    }
}
