//! The inverted walk index — the paper's Algorithm 3 (`Invert_Index`).
//!
//! For every node `w` the builder runs `R` L-length walks; walk `i` from `w`
//! contributes a posting `⟨w, j⟩` to list `I[i][v]` when it *first* visits
//! `v` at hop `j` (repeated visits are dropped, matching the definition of
//! hitting time). Postings are materialized per layer (one layer = one walk
//! index `i` across all sources) in **struct-of-arrays** form: parallel
//! `ids: Vec<u32>` / `weights: Vec<u16>` columns plus per-node CSR offsets —
//! `O(nRL)` entries at 6 bytes each, so a greedy sweep touching only ids (or
//! only weights) streams just the column it needs instead of 8-byte AoS
//! structs.
//!
//! Construction fans out over a 2-D `(layer × node-chunk)` task grid, so the
//! machine saturates even when `R` is smaller than the core count. Every
//! walk derives from its own `(seed, node, layer)` RNG stream, so output is
//! bit-identical at any thread count.
//!
//! A single index serves *both* problems: Problem 1 consumes the true hop
//! weights, Problem 2 treats any posting as the indicator "source hits `v`"
//! (the paper's `weight ← 1` comment in Algorithm 3).
//!
//! Every layer additionally stores the **forward view** — the exact
//! transpose of its inverted lists: `forward(i, src)` enumerates the nodes
//! that walk `i` from `src` first-visits, with the same hops. The forward
//! view is what makes greedy rounds output-sensitive: when Algorithm 5
//! lowers `D[i][src]`, the only candidates whose Algorithm-4 gain changed
//! are precisely `forward(i, src)`. It is derived canonically from the
//! inverted columns (per owner-ascending transposition) in every
//! construction path — build, explicit walks, and `load` — so the on-disk
//! RWDIDX2 format is unchanged and a reloaded index carries an identical
//! forward view.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rwd_graph::{CsrGraph, NodeId};

use crate::delta::{LayerDelta, PostingDelta};
use crate::nodeset::NodeSet;
use crate::parallel::resolve_threads;
use crate::rng::WalkRng;
use crate::storage::{Column, MmapRegion};
use crate::walker;

/// One inverted-list entry: the walk from `id` first reaches the list's
/// owner node at hop `weight` (`1 ≤ weight ≤ L`).
///
/// This is the *logical* item type; storage is columnar (see
/// [`PostingsRef`]), and iterators materialize `Posting`s on the fly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// Source node whose walk produced this posting.
    pub id: NodeId,
    /// Hop at which the source's walk first visits the owner node.
    pub weight: u32,
}

/// Zero-copy view of one inverted list `I[layer][v]` in SoA form.
///
/// The two columns are index-aligned: `ids()[k]` hit the owner at hop
/// `weights()[k]`. Sweeps that only need one column (e.g. the Problem-2
/// coverage rule, which ignores hop weights) borrow just that slice.
#[derive(Clone, Copy)]
pub struct PostingsRef<'a> {
    ids: &'a [u32],
    weights: &'a [u16],
}

impl<'a> PostingsRef<'a> {
    /// Number of postings in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The source-id column.
    #[inline]
    pub fn ids(&self) -> &'a [u32] {
        self.ids
    }

    /// The first-visit-hop column (always `1 ≤ w ≤ L`, hence `u16`).
    #[inline]
    pub fn weights(&self) -> &'a [u16] {
        self.weights
    }

    /// The `k`-th posting, materialized.
    #[inline]
    pub fn get(&self, k: usize) -> Posting {
        Posting {
            id: NodeId(self.ids[k]),
            weight: self.weights[k] as u32,
        }
    }

    /// Iterates the list as materialized [`Posting`]s.
    #[inline]
    pub fn iter(&self) -> PostingsIter<'a> {
        PostingsIter {
            ids: self.ids.iter(),
            weights: self.weights.iter(),
        }
    }

    /// Collects the list into owned [`Posting`]s (tests, debugging).
    pub fn to_vec(&self) -> Vec<Posting> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for PostingsRef<'a> {
    type Item = Posting;
    type IntoIter = PostingsIter<'a>;

    fn into_iter(self) -> PostingsIter<'a> {
        self.iter()
    }
}

impl PartialEq for PostingsRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.ids == other.ids && self.weights == other.weights
    }
}
impl Eq for PostingsRef<'_> {}

impl std::fmt::Debug for PostingsRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over a [`PostingsRef`], yielding [`Posting`]s by value.
pub struct PostingsIter<'a> {
    ids: std::slice::Iter<'a, u32>,
    weights: std::slice::Iter<'a, u16>,
}

impl Iterator for PostingsIter<'_> {
    type Item = Posting;

    #[inline]
    fn next(&mut self) -> Option<Posting> {
        let id = *self.ids.next()?;
        let weight = *self.weights.next()? as u32;
        Some(Posting {
            id: NodeId(id),
            weight,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

/// `(owner, source, hop)` triple produced while walking, before CSR packing.
type Triple = (u32, u32, u16);

/// One walk layer: the inverted lists `I[i][·]` for a fixed walk index `i`,
/// CSR-packed by owner node in struct-of-arrays form, plus the **forward
/// view** — the transpose CSR keyed by *source*: `fwd_*[src]` lists the
/// nodes walk `i` from `src` first-visits and at which hop. The forward
/// columns are always derived from the inverted columns by a two-pass
/// stable radix transposition (bucket by hop, then counting-sort by
/// source), so within one forward list the visited nodes appear in
/// **ascending hop order** (ties by ascending id) — walk-visit order, which
/// lets incremental-gain repairs stop at the first hop that can no longer
/// matter. The order is canonical: every construction path, including
/// `load`, produces it.
/// Each column is a [`Column`] — heap-owned after a build or refresh,
/// zero-copy mapped after [`WalkIndex::open_mapped`]. Equality compares
/// values, so a mapped layer equals the owned layer it was saved from.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Layer {
    offsets: Column<u32>,
    ids: Column<u32>,
    weights: Column<u16>,
    fwd_offsets: Column<u32>,
    fwd_ids: Column<u32>,
    fwd_weights: Column<u16>,
}

/// The recycled heap buffers of a displaced [`Layer`] generation (see
/// [`PatchScratch::buf`]). A mapped column has no heap buffer to recycle,
/// so displacing a mapped layer yields empty vectors — the next patch
/// simply allocates fresh, which is exactly the copy-on-write promotion
/// cost.
#[derive(Default)]
struct LayerBufs {
    offsets: Vec<u32>,
    ids: Vec<u32>,
    weights: Vec<u16>,
    fwd_offsets: Vec<u32>,
    fwd_ids: Vec<u32>,
    fwd_weights: Vec<u16>,
}

impl Layer {
    /// A fully heap-owned layer from freshly built column vectors.
    fn owned(
        offsets: Vec<u32>,
        ids: Vec<u32>,
        weights: Vec<u16>,
        fwd_offsets: Vec<u32>,
        fwd_ids: Vec<u32>,
        fwd_weights: Vec<u16>,
    ) -> Layer {
        Layer {
            offsets: offsets.into(),
            ids: ids.into(),
            weights: weights.into(),
            fwd_offsets: fwd_offsets.into(),
            fwd_ids: fwd_ids.into(),
            fwd_weights: fwd_weights.into(),
        }
    }

    /// Reclaims the heap buffers for recycling (empty for mapped columns).
    fn into_bufs(self) -> LayerBufs {
        LayerBufs {
            offsets: self.offsets.take_buffer(),
            ids: self.ids.take_buffer(),
            weights: self.weights.take_buffer(),
            fwd_offsets: self.fwd_offsets.take_buffer(),
            fwd_ids: self.fwd_ids.take_buffer(),
            fwd_weights: self.fwd_weights.take_buffer(),
        }
    }

    /// Whether any column still borrows from a mapped file.
    fn is_mapped(&self) -> bool {
        self.offsets.is_mapped()
            || self.ids.is_mapped()
            || self.weights.is_mapped()
            || self.fwd_offsets.is_mapped()
            || self.fwd_ids.is_mapped()
            || self.fwd_weights.is_mapped()
    }

    /// Heap bytes owned by this layer's columns.
    fn heap_bytes(&self) -> usize {
        self.offsets.heap_bytes()
            + self.ids.heap_bytes()
            + self.weights.heap_bytes()
            + self.fwd_offsets.heap_bytes()
            + self.fwd_ids.heap_bytes()
            + self.fwd_weights.heap_bytes()
    }

    /// Bytes this layer borrows from a mapped file.
    fn mapped_bytes(&self) -> usize {
        self.offsets.mapped_bytes()
            + self.ids.mapped_bytes()
            + self.weights.mapped_bytes()
            + self.fwd_offsets.mapped_bytes()
            + self.fwd_ids.mapped_bytes()
            + self.fwd_weights.mapped_bytes()
    }
    /// Packs the triples of one layer — supplied as consecutive node-chunk
    /// outputs, in ascending node order — into SoA CSR columns. Counting
    /// sort by owner keeps construction O(n + entries) and preserves the
    /// generation order (source ascending, hop ascending) within each list.
    ///
    /// Each part's buffer is freed as soon as it has been placed, so the
    /// triple staging (12 B/entry) and the SoA columns (6 B/entry) overlap
    /// only one part at a time instead of layer-by-layer doubling.
    fn from_parts(n: usize, parts: &mut [Vec<Triple>]) -> Layer {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "layer posting count {total} overflows u32 CSR offsets"
        );
        let mut counts = vec![0u32; n + 1];
        for part in parts.iter() {
            for &(v, _, _) in part {
                counts[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut ids = vec![0u32; total];
        let mut weights = vec![0u16; total];
        for part in parts.iter_mut() {
            for &(v, id, w) in part.iter() {
                let slot = counts[v as usize] as usize;
                ids[slot] = id;
                weights[slot] = w;
                counts[v as usize] += 1;
            }
            *part = Vec::new();
        }
        Layer::from_inverted(n, offsets, ids, weights)
    }

    /// Finishes a layer from its inverted CSR columns by materializing the
    /// forward view via a two-pass stable radix transposition (`O(n + L +
    /// entries)`): postings are first bucketed by hop, then counting-sorted
    /// by source, so each forward list comes out in ascending `(hop, id)`
    /// order — walk-visit order. Because the transposition only reads the
    /// inverted columns, every construction path (parallel build, explicit
    /// walks, `load`) yields a bit-identical forward view for identical
    /// postings.
    fn from_inverted(n: usize, offsets: Vec<u32>, ids: Vec<u32>, weights: Vec<u16>) -> Layer {
        let total = ids.len();
        assert!(
            total <= u32::MAX as usize,
            "layer posting count {total} overflows u32 CSR offsets"
        );
        // Pass 1: stable bucket by hop. Hops are 1..=L (≤ u16::MAX), so
        // this is a counting sort over at most 65535 buckets; within one
        // hop bucket, entries keep (owner asc) order.
        let max_hop = weights.iter().copied().max().unwrap_or(0) as usize;
        let mut hop_counts = vec![0u32; max_hop + 2];
        for &w in &weights {
            hop_counts[w as usize + 1] += 1;
        }
        for h in 0..=max_hop {
            hop_counts[h + 1] += hop_counts[h];
        }
        let mut by_hop: Vec<(u32, u32, u16)> = vec![(0, 0, 0); total]; // (src, owner, hop)
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            for k in lo..hi {
                let slot = &mut hop_counts[weights[k] as usize];
                by_hop[*slot as usize] = (ids[k], v as u32, weights[k]);
                *slot += 1;
            }
        }
        // Pass 2: stable counting sort by source; per source the (hop asc,
        // owner asc) order from pass 1 is preserved.
        let mut counts = vec![0u32; n + 1];
        for &src in &ids {
            counts[src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let fwd_offsets = counts.clone();
        let mut fwd_ids = vec![0u32; total];
        let mut fwd_weights = vec![0u16; total];
        for &(src, owner, hop) in &by_hop {
            let slot = &mut counts[src as usize];
            fwd_ids[*slot as usize] = owner;
            fwd_weights[*slot as usize] = hop;
            *slot += 1;
        }
        Layer::owned(offsets, ids, weights, fwd_offsets, fwd_ids, fwd_weights)
    }

    #[inline]
    fn postings(&self, v: NodeId) -> PostingsRef<'_> {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        PostingsRef {
            ids: &self.ids[lo..hi],
            weights: &self.weights[lo..hi],
        }
    }

    #[inline]
    fn forward(&self, src: NodeId) -> PostingsRef<'_> {
        let lo = self.fwd_offsets[src.index()] as usize;
        let hi = self.fwd_offsets[src.index() + 1] as usize;
        PostingsRef {
            ids: &self.fwd_ids[lo..hi],
            weights: &self.fwd_weights[lo..hi],
        }
    }
}

/// A contiguous range of walk layers `[start, end)` — the unit of sharding.
///
/// The estimators of the paper are sums of independent per-layer integer
/// contributions divided once by `R` at the end, so an index restricted to
/// a layer range is a *complete* description of those layers: a shard
/// owning `[start, end)` builds, refreshes and queries exactly the layers
/// the monolithic index stores at the same absolute positions, bit for bit
/// (walk RNG streams are keyed by the **absolute** layer index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayerRange {
    start: usize,
    end: usize,
}

impl LayerRange {
    /// The range `[start, end)`.
    ///
    /// # Panics
    /// Panics when `start >= end` — every range owns at least one layer.
    pub fn new(start: usize, end: usize) -> LayerRange {
        assert!(start < end, "layer range [{start}, {end}) is empty");
        LayerRange { start, end }
    }

    /// First layer of the range (absolute index).
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last layer of the range (absolute index).
    #[inline]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of layers in the range.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always false — ranges are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the absolute layer index lies in the range.
    #[inline]
    pub fn contains(&self, layer: usize) -> bool {
        self.start <= layer && layer < self.end
    }

    /// Splits `[0, r)` into `shards` contiguous, balanced ranges: the first
    /// `r % shards` ranges get one extra layer. The concatenation of the
    /// returned ranges is exactly `[0, r)` in order — the invariant the
    /// scatter-gather coordinator merges by.
    ///
    /// # Panics
    /// Panics when `shards == 0` or `shards > r` (a shard must own at least
    /// one layer); engine layers turn these into named errors first.
    pub fn partition(r: usize, shards: usize) -> Vec<LayerRange> {
        assert!(shards > 0, "cannot partition {r} layers into 0 shards");
        assert!(
            shards <= r,
            "cannot partition {r} layers into {shards} shards (empty shard)"
        );
        let base = r / shards;
        let extra = r % shards;
        let mut out = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            out.push(LayerRange::new(start, start + len));
            start += len;
        }
        debug_assert_eq!(start, r);
        out
    }
}

/// Per-batch accounting of an incremental [`WalkIndex::refresh`]: how many
/// `(src, layer)` walk groups were actually re-walked and how many postings
/// the layer surgery rewrote. The resampled-group count is the
/// output-sensitivity measure of the evolving-graph pipeline — it scales
/// with the touched set (via the inverted lists of the touched nodes), not
/// with `n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// `(src, layer)` groups re-walked on the new graph.
    pub groups_resampled: usize,
    /// Total groups in the index (`n · R`).
    pub groups_total: usize,
    /// Old postings dropped by resampled groups.
    pub postings_removed: usize,
    /// New postings produced by resampled groups.
    pub postings_added: usize,
}

impl RefreshStats {
    /// Total postings rewritten by the batch (removed + added).
    pub fn postings_rewritten(&self) -> usize {
        self.postings_removed + self.postings_added
    }

    /// Merges another batch's stats into this one (totals must agree).
    pub fn merge(&mut self, other: &RefreshStats) {
        self.groups_resampled += other.groups_resampled;
        self.groups_total = self.groups_total.max(other.groups_total);
        self.postings_removed += other.postings_removed;
        self.postings_added += other.postings_added;
    }
}

/// The materialized sample store `I[1:R][1:n]` of Algorithm 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkIndex {
    n: usize,
    l: u32,
    layers: Vec<Layer>,
    seed: u64,
    /// Absolute index of `layers[0]` in the full `R`-layer index. `0` for a
    /// monolithic index; a shard built over `LayerRange { start, .. }`
    /// stores `start`, so every RNG stream and refresh replay uses absolute
    /// layer indices and the shard's layers stay bitwise identical to the
    /// monolith's.
    layer_base: usize,
    /// Per-node inverted-posting count across all layers
    /// (`Σ_i |I[i][v]|`), precomputed at construction — the `S = ∅`
    /// closed-form gain initializers read these instead of re-streaming
    /// every list. Mapped straight from an RWDIDX4 file on a zero-copy
    /// open; promoted on the first refresh that changes any posting.
    posting_counts: Column<u64>,
    /// Per-node sum of posting hop weights across all layers
    /// (`Σ_i Σ_{(src,w) ∈ I[i][v]} w`).
    posting_hop_sums: Column<u64>,
}

/// Node chunks smaller than this are not worth a task of their own.
const MIN_NODE_CHUNK: usize = 512;

/// Reusable per-worker first-visit dedup: each source walk bumps the stamp
/// instead of clearing the whole buffer.
struct VisitScratch {
    visited: Vec<u32>,
    stamp: u32,
}

impl VisitScratch {
    fn new(n: usize) -> Self {
        VisitScratch {
            visited: vec![u32::MAX; n],
            stamp: 0,
        }
    }

    /// Advances to a fresh stamp, resetting the buffer on (practically
    /// unreachable — 2^32 walks per worker) stamp-space exhaustion.
    fn next_stamp(&mut self) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == u32::MAX {
            self.visited.fill(u32::MAX);
            self.stamp = 1;
        }
        self.stamp
    }
}

/// Runs the single `(seed, src, layer)` walk, appending its first-visit
/// triples. Every construction *and maintenance* path funnels through this
/// function, so a resampled group is bit-identical to the group a
/// from-scratch build would produce on the same graph.
#[inline]
fn walk_one<F>(
    layer_idx: usize,
    src: usize,
    l: u32,
    seed: u64,
    step: &F,
    scratch: &mut VisitScratch,
    triples: &mut Vec<Triple>,
) where
    F: Fn(NodeId, &mut WalkRng) -> NodeId,
{
    let s = scratch.next_stamp();
    let mut rng = WalkRng::for_stream(seed, src as u64, layer_idx as u64);
    let mut u = NodeId::new(src);
    scratch.visited[src] = s;
    for j in 1..=l {
        u = step(u, &mut rng);
        if scratch.visited[u.index()] != s {
            scratch.visited[u.index()] = s;
            triples.push((u.raw(), src as u32, j as u16));
        }
    }
}

/// Per-worker scratch for incremental layer patching: stamped affected-set
/// marks (reset-free across layers) and the worker's staged per-node
/// aggregate deltas.
struct PatchScratch {
    visit: VisitScratch,
    /// `affected[src] == stamp` ⟺ src's walk group resamples this layer.
    affected: Vec<u32>,
    /// `owner_stamp[v] == stamp` ⟺ `v`'s inverted row loses or gains a
    /// posting this layer (and must be re-merged instead of copied).
    owner_stamp: Vec<u32>,
    stamp: u32,
    /// Σ over this worker's layers of posting-count changes per node.
    agg_dcount: Vec<i64>,
    /// Σ over this worker's layers of hop-sum changes per node.
    agg_dhops: Vec<i64>,
    /// Reused staging for the fresh postings re-sorted by `(owner, src)`.
    adds: Vec<Triple>,
    /// Recycled column buffers: each patch builds the next epoch's columns
    /// here and swaps them with the layer's, so steady-state refreshes
    /// reuse two generations of allocations instead of mallocing ~12 bytes
    /// per posting per epoch. Together with the stamp arrays this keeps the
    /// per-layer patch free of `O(n)` allocations. A displaced *mapped*
    /// layer contributes empty buffers (its bytes belong to the map), which
    /// is precisely the one-time copy-on-write promotion cost.
    buf: LayerBufs,
}

impl PatchScratch {
    fn new(n: usize) -> Self {
        PatchScratch {
            visit: VisitScratch::new(n),
            affected: vec![u32::MAX; n],
            owner_stamp: vec![u32::MAX; n],
            stamp: 0,
            agg_dcount: vec![0; n],
            agg_dhops: vec![0; n],
            adds: Vec::new(),
            buf: LayerBufs::default(),
        }
    }

    /// Advances to a fresh stamp for both mark arrays (same wrap policy as
    /// [`VisitScratch`]).
    fn next_stamp(&mut self) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == u32::MAX {
            self.affected.fill(u32::MAX);
            self.owner_stamp.fill(u32::MAX);
            self.stamp = 1;
        }
        self.stamp
    }
}

/// Patches one layer for the next graph epoch: detects the affected walk
/// groups through the *old* inverted lists of the touched nodes, re-walks
/// exactly those groups on the new graph, and rebuilds both CSR views with
/// **row-level** surgery — rows owned by unaffected nodes are copied
/// verbatim (bulk `memcpy`), only rows with stale or fresh postings are
/// re-merged. The canonical orders are preserved exactly (inverted rows:
/// ascending source; forward rows: ascending hop = walk order), so the
/// patched layer is bit-identical to the layer a from-scratch build on the
/// new graph would produce.
///
/// When at least one group resampled, the layer's **net** edit script (see
/// [`LayerDelta`]) is appended to `deltas`: each affected group's old and
/// new forward rows are merged in hop order and verbatim reproductions
/// cancel at the source, so the script holds only postings that actually
/// differ — a resampled walk that never diverges contributes nothing, and
/// downstream absorption is `O(net)` rather than `O(gross)`.
#[allow(clippy::too_many_arguments)]
fn patch_layer<F>(
    layer: &mut Layer,
    n: usize,
    l: u32,
    seed: u64,
    layer_idx: usize,
    touched: &NodeSet,
    step: &F,
    ws: &mut PatchScratch,
    deltas: &mut Vec<LayerDelta>,
) -> RefreshStats
where
    F: Fn(NodeId, &mut WalkRng) -> NodeId,
{
    let mut out = RefreshStats::default();
    // --- 1. affected groups: touched sources ∪ sources visiting them ----
    let stamp = ws.next_stamp();
    let mut affected_srcs: Vec<u32> = Vec::new();
    for v in touched.iter() {
        if ws.affected[v.index()] != stamp {
            ws.affected[v.index()] = stamp;
            affected_srcs.push(v.raw());
        }
        for &src in layer.postings(v).ids() {
            if ws.affected[src as usize] != stamp {
                ws.affected[src as usize] = stamp;
                affected_srcs.push(src);
            }
        }
    }
    affected_srcs.sort_unstable();
    out.groups_resampled = affected_srcs.len();
    if affected_srcs.is_empty() {
        return out;
    }

    // --- 2. re-walk affected groups with their original RNG streams -----
    // Ascending source order makes the triple stream canonical; per-source
    // bounds let the forward patch splice each group back in directly.
    let mut new_triples: Vec<Triple> = Vec::with_capacity(affected_srcs.len() * 4);
    let mut new_src_bounds: Vec<u32> = Vec::with_capacity(affected_srcs.len() + 1);
    new_src_bounds.push(0);
    for &src in &affected_srcs {
        walk_one(
            layer_idx,
            src as usize,
            l,
            seed,
            step,
            &mut ws.visit,
            &mut new_triples,
        );
        new_src_bounds.push(new_triples.len() as u32);
    }
    out.postings_added = new_triples.len();

    // --- 3. per-owner deltas: stale rows, fresh rows, aggregate edits ---
    // Owners needing a re-merge are exactly those losing a stale posting
    // (they appear in an affected source's old forward list) or gaining a
    // fresh one; every other row is copied wholesale below.
    for &src in &affected_srcs {
        let lo = layer.fwd_offsets[src as usize] as usize;
        let hi = layer.fwd_offsets[src as usize + 1] as usize;
        out.postings_removed += hi - lo;
        for k in lo..hi {
            let owner = layer.fwd_ids[k] as usize;
            ws.owner_stamp[owner] = stamp;
            ws.agg_dcount[owner] -= 1;
            ws.agg_dhops[owner] -= layer.fwd_weights[k] as i64;
        }
    }
    // The fresh postings re-sorted by `(owner, src)` — the inverted rows'
    // canonical order. The sort is over the (small) add set only, so the
    // patch stays proportional to the churn, not to `n`.
    ws.adds.clear();
    ws.adds.extend_from_slice(&new_triples);
    ws.adds
        .sort_unstable_by_key(|&(owner, src, _)| (owner, src));
    for &(owner, _, hop) in &ws.adds {
        ws.owner_stamp[owner as usize] = stamp;
        ws.agg_dcount[owner as usize] += 1;
        ws.agg_dhops[owner as usize] += hop as i64;
    }

    // --- 3b. net edit script: verbatim reproductions cancel here --------
    // A resampled walk that diverges late (or never) re-emits most of its
    // old forward row byte for byte; the gain engine only cares about the
    // difference. Both rows are hop-ascending (walk order), so one ordered
    // merge per group emits exactly the net edits — downstream absorption
    // is O(net), and a fully reproduced group contributes nothing at all.
    let mut removed: Vec<Triple> = Vec::new();
    let mut added: Vec<Triple> = Vec::new();
    for (gi, &src) in affected_srcs.iter().enumerate() {
        let lo = layer.fwd_offsets[src as usize] as usize;
        let hi = layer.fwd_offsets[src as usize + 1] as usize;
        let tlo = new_src_bounds[gi] as usize;
        let thi = new_src_bounds[gi + 1] as usize;
        let same = hi - lo == thi - tlo
            && (0..hi - lo).all(|k| {
                let (owner, _, hop) = new_triples[tlo + k];
                layer.fwd_ids[lo + k] == owner && layer.fwd_weights[lo + k] == hop
            });
        if same {
            continue;
        }
        let (mut k, mut t) = (lo, tlo);
        while k < hi || t < thi {
            // Order within a group is strictly ascending hop on both sides.
            let old_key = (k < hi).then(|| (layer.fwd_weights[k], layer.fwd_ids[k]));
            let new_key = (t < thi).then(|| (new_triples[t].2, new_triples[t].0));
            match (old_key, new_key) {
                (Some(o), Some(w)) if o == w => {
                    k += 1;
                    t += 1;
                }
                (Some(o), Some(w)) if o < w => {
                    removed.push((o.1, src, o.0));
                    k += 1;
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    added.push(new_triples[t]);
                    t += 1;
                }
                (Some(o), None) => {
                    removed.push((o.1, src, o.0));
                    k += 1;
                }
                (None, None) => unreachable!(),
            }
        }
    }

    // --- 4. inverted columns: row-level rebuild -------------------------
    let new_total = layer.ids.len() + out.postings_added - out.postings_removed;
    assert!(
        new_total <= u32::MAX as usize,
        "layer posting count {new_total} overflows u32 CSR offsets"
    );
    let mut offsets = std::mem::take(&mut ws.buf.offsets);
    offsets.clear();
    offsets.reserve(n + 1);
    offsets.push(0u32);
    let mut ids = std::mem::take(&mut ws.buf.ids);
    ids.clear();
    ids.reserve(new_total);
    let mut weights = std::mem::take(&mut ws.buf.weights);
    weights.clear();
    weights.reserve(new_total);
    let mut ac = 0usize; // cursor into ws.adds (owner-ascending)
    for v in 0..n {
        let lo = layer.offsets[v] as usize;
        let hi = layer.offsets[v + 1] as usize;
        if ws.owner_stamp[v] != stamp {
            ids.extend_from_slice(&layer.ids[lo..hi]);
            weights.extend_from_slice(&layer.weights[lo..hi]);
        } else {
            // Merge kept old entries (stale sources dropped) with this
            // owner's adds, both ascending by source id. All adds belong to
            // stamped owners, and the outer loop visits owners ascending,
            // so the cursor is already positioned at `v`'s first add.
            let mut ahi = ac;
            while ahi < ws.adds.len() && ws.adds[ahi].0 as usize == v {
                ahi += 1;
            }
            for k in lo..hi {
                let src = layer.ids[k];
                if ws.affected[src as usize] == stamp {
                    continue;
                }
                while ac < ahi && ws.adds[ac].1 < src {
                    ids.push(ws.adds[ac].1);
                    weights.push(ws.adds[ac].2);
                    ac += 1;
                }
                ids.push(src);
                weights.push(layer.weights[k]);
            }
            for &(_, src, hop) in &ws.adds[ac..ahi] {
                ids.push(src);
                weights.push(hop);
            }
            ac = ahi;
        }
        offsets.push(ids.len() as u32);
    }

    // --- 5. forward columns: affected rows spliced, others copied -------
    let mut fwd_offsets = std::mem::take(&mut ws.buf.fwd_offsets);
    fwd_offsets.clear();
    fwd_offsets.reserve(n + 1);
    fwd_offsets.push(0u32);
    let mut fwd_ids = std::mem::take(&mut ws.buf.fwd_ids);
    fwd_ids.clear();
    fwd_ids.reserve(new_total);
    let mut fwd_weights = std::mem::take(&mut ws.buf.fwd_weights);
    fwd_weights.clear();
    fwd_weights.reserve(new_total);
    let mut next_aff = 0usize;
    for src in 0..n {
        if next_aff < affected_srcs.len() && affected_srcs[next_aff] as usize == src {
            let tlo = new_src_bounds[next_aff] as usize;
            let thi = new_src_bounds[next_aff + 1] as usize;
            for &(owner, _, hop) in &new_triples[tlo..thi] {
                fwd_ids.push(owner);
                fwd_weights.push(hop);
            }
            next_aff += 1;
        } else {
            let lo = layer.fwd_offsets[src] as usize;
            let hi = layer.fwd_offsets[src + 1] as usize;
            fwd_ids.extend_from_slice(&layer.fwd_ids[lo..hi]);
            fwd_weights.extend_from_slice(&layer.fwd_weights[lo..hi]);
        }
        fwd_offsets.push(fwd_ids.len() as u32);
    }

    // Swap the fresh (always owned) columns in and keep the displaced
    // generation as the next patch's buffers. When the displaced layer was
    // mapped, this swap *is* the copy-on-write promotion: exactly this
    // layer's columns leave the file region, untouched layers stay mapped.
    let displaced = std::mem::replace(
        layer,
        Layer::owned(offsets, ids, weights, fwd_offsets, fwd_ids, fwd_weights),
    );
    ws.buf = displaced.into_bufs();
    deltas.push(LayerDelta {
        layer: layer_idx,
        resampled: affected_srcs,
        removed,
        added,
    });
    out
}

/// Walks nodes `[lo, hi)` of one layer, appending first-visit triples.
fn walk_node_range<F>(
    layer_idx: usize,
    lo: usize,
    hi: usize,
    l: u32,
    seed: u64,
    step: &F,
    scratch: &mut VisitScratch,
) -> Vec<Triple>
where
    F: Fn(NodeId, &mut WalkRng) -> NodeId,
{
    let mut triples: Vec<Triple> = Vec::with_capacity((hi - lo) * (l as usize).min(8));
    for w in lo..hi {
        walk_one(layer_idx, w, l, seed, step, scratch, &mut triples);
    }
    triples
}

/// Runs all `r × n` walks and packs them into per-layer SoA CSR lists.
/// `layer_base` offsets every walk's RNG-stream layer index, so building
/// layers `[layer_base, layer_base + r)` of a sharded index reproduces the
/// monolith's layers at those absolute positions bit for bit.
///
/// Work is split over a 2-D `(layer × node-chunk)` task grid drained from an
/// atomic queue, so the build saturates the machine even when `r` is below
/// the core count; each task's output is a pure function of
/// `(seed, node range, layer)`, so scheduling never affects the result.
fn build_layers<F>(
    n: usize,
    l: u32,
    r: usize,
    layer_base: usize,
    seed: u64,
    threads: usize,
    step: &F,
) -> Vec<Layer>
where
    F: Fn(NodeId, &mut WalkRng) -> NodeId + Sync,
{
    let workers = resolve_threads(threads);
    let max_chunks = n.div_ceil(MIN_NODE_CHUNK).max(1);
    // Oversubscribe ~4× for load balance across skewed chunks.
    let target_chunks = (workers * 4).div_ceil(r).clamp(1, max_chunks);
    let chunk_nodes = n.div_ceil(target_chunks).max(1);
    // Re-derive the chunk count from the rounded-up chunk size, so the last
    // chunk's range never starts past `n` (ceil(n/c) chunks of c nodes can
    // need fewer chunks than first targeted).
    let chunks_per_layer = n.div_ceil(chunk_nodes).max(1);
    let tasks = r * chunks_per_layer;

    let mut parts: Vec<Vec<Triple>> = (0..tasks).map(|_| Vec::new()).collect();
    let task_range = |t: usize| {
        let layer_idx = layer_base + t / chunks_per_layer;
        let lo = ((t % chunks_per_layer) * chunk_nodes).min(n);
        let hi = (lo + chunk_nodes).min(n);
        (layer_idx, lo, hi)
    };

    if workers == 1 {
        let mut scratch = VisitScratch::new(n);
        for (t, part) in parts.iter_mut().enumerate() {
            let (layer_idx, lo, hi) = task_range(t);
            *part = walk_node_range(layer_idx, lo, hi, l, seed, step, &mut scratch);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers.min(tasks))
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, Vec<Triple>)> = Vec::new();
                        let mut scratch = VisitScratch::new(n);
                        loop {
                            let t = next.fetch_add(1, Ordering::Relaxed);
                            if t >= tasks {
                                break;
                            }
                            let (layer_idx, lo, hi) = task_range(t);
                            out.push((
                                t,
                                walk_node_range(layer_idx, lo, hi, l, seed, step, &mut scratch),
                            ));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (t, v) in h.join().expect("index build worker panicked") {
                    parts[t] = v;
                }
            }
        });
    }

    // Pack each layer's chunk outputs (already in node order) into SoA CSR,
    // parallel over layers; each layer's staging buffers are freed as it
    // packs, so triple staging and final columns barely overlap.
    let mut layers: Vec<Option<Layer>> = (0..r).map(|_| None).collect();
    let pack_workers = workers.min(r);
    if pack_workers == 1 {
        for (slot, group) in layers.iter_mut().zip(parts.chunks_mut(chunks_per_layer)) {
            *slot = Some(Layer::from_parts(n, group));
        }
    } else {
        let lchunk = r.div_ceil(pack_workers);
        let mut layer_groups: Vec<&mut [Vec<Triple>]> =
            parts.chunks_mut(chunks_per_layer).collect();
        std::thread::scope(|scope| {
            for (slots, groups) in layers
                .chunks_mut(lchunk)
                .zip(layer_groups.chunks_mut(lchunk))
            {
                scope.spawn(move || {
                    for (slot, group) in slots.iter_mut().zip(groups.iter_mut()) {
                        *slot = Some(Layer::from_parts(n, group));
                    }
                });
            }
        });
    }
    layers
        .into_iter()
        .map(|o| o.expect("layer built"))
        .collect()
}

impl WalkIndex {
    /// Finishes construction from built layers: computes the per-node
    /// posting aggregates (count and hop-weight sum across layers) in one
    /// pass over each layer's columns — parallel over node chunks above
    /// the shared work gate, honoring the caller's worker budget
    /// (`0` = all cores). Every public constructor funnels through here,
    /// so the aggregates always agree with the stored postings.
    fn assemble(
        n: usize,
        l: u32,
        layers: Vec<Layer>,
        layer_base: usize,
        seed: u64,
        threads: usize,
    ) -> WalkIndex {
        let (posting_counts, posting_hop_sums) = Self::compute_aggregates(n, &layers, threads);
        WalkIndex {
            n,
            l,
            layers,
            seed,
            layer_base,
            posting_counts: posting_counts.into(),
            posting_hop_sums: posting_hop_sums.into(),
        }
    }

    /// Recomputes the per-node posting aggregates from the layer columns —
    /// shared by [`WalkIndex::assemble`] and the incremental
    /// [`WalkIndex::refresh`] path (all sums are integers, so the result is
    /// independent of the worker layout).
    fn compute_aggregates(n: usize, layers: &[Layer], threads: usize) -> (Vec<u64>, Vec<u64>) {
        let total: usize = layers.iter().map(|la| la.ids.len()).sum();
        let mut posting_counts = vec![0u64; n];
        let mut posting_hop_sums = vec![0u64; n];
        let fill = |lo: usize, counts: &mut [u64], sums: &mut [u64]| {
            for layer in layers {
                for (slot, v) in (lo..lo + counts.len()).enumerate() {
                    let a = layer.offsets[v] as usize;
                    let b = layer.offsets[v + 1] as usize;
                    counts[slot] += (b - a) as u64;
                    let mut s = 0u64;
                    for &w in &layer.weights[a..b] {
                        s += w as u64;
                    }
                    sums[slot] += s;
                }
            }
        };
        let workers = if n + total < crate::parallel::MIN_PARALLEL_SWEEP_WORK {
            1
        } else {
            resolve_threads(threads).min(n.max(1))
        };
        if workers == 1 {
            fill(0, &mut posting_counts, &mut posting_hop_sums);
        } else {
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for (ci, (counts, sums)) in posting_counts
                    .chunks_mut(chunk)
                    .zip(posting_hop_sums.chunks_mut(chunk))
                    .enumerate()
                {
                    let fill = &fill;
                    scope.spawn(move || fill(ci * chunk, counts, sums));
                }
            });
        }
        (posting_counts, posting_hop_sums)
    }

    /// Builds the index by running `r` walks per node (Algorithm 3),
    /// parallelized over a `(layer × node-chunk)` grid; the result is a pure
    /// function of `(graph, l, r, seed)` regardless of thread count.
    ///
    /// ```
    /// use rwd_graph::generators::paper_example::figure1;
    /// use rwd_walks::WalkIndex;
    ///
    /// let g = figure1();
    /// let idx = WalkIndex::build(&g, 4, 16, 7);
    /// assert_eq!((idx.n(), idx.l(), idx.r()), (8, 4, 16));
    /// assert!(idx.total_postings() <= 8 * 16 * 4); // ≤ nRL
    /// ```
    pub fn build(g: &CsrGraph, l: u32, r: usize, seed: u64) -> WalkIndex {
        Self::build_with_threads(g, l, r, seed, 0)
    }

    /// [`WalkIndex::build`] with an explicit worker count (`0` = all cores).
    pub fn build_with_threads(
        g: &CsrGraph,
        l: u32,
        r: usize,
        seed: u64,
        threads: usize,
    ) -> WalkIndex {
        assert!(r > 0, "need at least one walk per node");
        assert!(
            l <= u16::MAX as u32,
            "walk length {l} exceeds u16 hop range"
        );
        let n = g.n();
        let step = |u: NodeId, rng: &mut WalkRng| walker::step(g, u, rng);
        let layers = build_layers(n, l, r, 0, seed, threads, &step);
        WalkIndex::assemble(n, l, layers, 0, seed, threads)
    }

    /// Builds only the layers of `range` — the shard-local view of the
    /// monolithic `WalkIndex::build(g, l, r, seed)` for any `r >= range.end()`.
    /// Walk RNG streams are keyed by the absolute layer index, so
    /// `idx.layers == monolith.layers[range.start()..range.end()]` bit for
    /// bit, and [`WalkIndex::refresh`] on the partial index replays exactly
    /// the monolith's walks for those layers.
    pub fn build_layer_range(
        g: &CsrGraph,
        l: u32,
        range: LayerRange,
        seed: u64,
        threads: usize,
    ) -> WalkIndex {
        assert!(
            l <= u16::MAX as u32,
            "walk length {l} exceeds u16 hop range"
        );
        let n = g.n();
        let step = |u: NodeId, rng: &mut WalkRng| walker::step(g, u, rng);
        let layers = build_layers(n, l, range.len(), range.start(), seed, threads, &step);
        WalkIndex::assemble(n, l, layers, range.start(), seed, threads)
    }

    /// Weighted twin of [`WalkIndex::build_layer_range`].
    pub fn build_weighted_layer_range(
        g: &rwd_graph::weighted::WeightedCsrGraph,
        l: u32,
        range: LayerRange,
        seed: u64,
        threads: usize,
    ) -> WalkIndex {
        assert!(
            l <= u16::MAX as u32,
            "walk length {l} exceeds u16 hop range"
        );
        let n = g.n();
        let step = |u: NodeId, rng: &mut WalkRng| walker::step_weighted(g, u, rng);
        let layers = build_layers(n, l, range.len(), range.start(), seed, threads, &step);
        WalkIndex::assemble(n, l, layers, range.start(), seed, threads)
    }

    /// Builds the index over a weighted graph: identical structure, walk
    /// steps drawn with probability proportional to edge weight (the
    /// paper's weighted extension; Algorithm 6 then works unchanged because
    /// it only ever touches the index). Uses all cores; see
    /// [`WalkIndex::build_weighted_with_threads`].
    pub fn build_weighted(
        g: &rwd_graph::weighted::WeightedCsrGraph,
        l: u32,
        r: usize,
        seed: u64,
    ) -> WalkIndex {
        Self::build_weighted_with_threads(g, l, r, seed, 0)
    }

    /// [`WalkIndex::build_weighted`] with an explicit worker count (`0` =
    /// all cores). Same 2-D parallel grid as the unweighted build; output is
    /// bit-identical at any thread count.
    pub fn build_weighted_with_threads(
        g: &rwd_graph::weighted::WeightedCsrGraph,
        l: u32,
        r: usize,
        seed: u64,
        threads: usize,
    ) -> WalkIndex {
        assert!(r > 0, "need at least one walk per node");
        assert!(
            l <= u16::MAX as u32,
            "walk length {l} exceeds u16 hop range"
        );
        let n = g.n();
        let step = |u: NodeId, rng: &mut WalkRng| walker::step_weighted(g, u, rng);
        let layers = build_layers(n, l, r, 0, seed, threads, &step);
        WalkIndex::assemble(n, l, layers, 0, seed, threads)
    }

    /// Incrementally maintains the index after edge churn: given the
    /// next-epoch graph and the set of **touched** nodes (nodes whose
    /// adjacency list changed, e.g. from
    /// [`CsrGraph::with_edits`](rwd_graph::CsrGraph::with_edits)), re-walks
    /// exactly the `(src, layer)` groups the churn can have changed and
    /// patches the layer columns in place. Uses all cores; see
    /// [`WalkIndex::refresh_with_threads`].
    pub fn refresh(&mut self, g: &CsrGraph, touched: &NodeSet) -> RefreshStats {
        self.refresh_with_threads(g, touched, 0)
    }

    /// [`WalkIndex::refresh`] with an explicit worker count (`0` = all
    /// cores). The maintained index is **bit-identical** to
    /// [`WalkIndex::build`] on the new graph at any worker count.
    ///
    /// Why resampling only touched groups is exact: a walk is a pure
    /// function of its counter-based `(seed, src, layer)` RNG stream and of
    /// the adjacency lists of the nodes it steps from, all of which it
    /// visits. A group whose recorded visit set (`src` plus its forward
    /// list) avoids every touched node therefore replays **identically** on
    /// the new graph — its stored postings already are what a from-scratch
    /// build would sample. Conversely any group whose walk *would* change
    /// must step differently somewhere, and the first deviating step is
    /// drawn at a touched node on the old walk — so the affected groups are
    /// exactly `{src touched} ∪ {src ∈ I[i][v] : v touched}`, found via the
    /// inverted lists of the touched nodes in time proportional to their
    /// postings, not to `n`.
    ///
    /// The caller must pass the graph the index's walks now live on: the
    /// index must have been built by [`WalkIndex::build`] (same seed) on a
    /// predecessor of `g`, and `touched` must cover every node whose
    /// adjacency differs (indexes from explicit walks cannot be refreshed —
    /// there is no RNG stream to replay). Panics if `g` changed the node
    /// universe.
    pub fn refresh_with_threads(
        &mut self,
        g: &CsrGraph,
        touched: &NodeSet,
        threads: usize,
    ) -> RefreshStats {
        self.refresh_collecting(g, touched, threads).0
    }

    /// [`WalkIndex::refresh_with_threads`] that additionally returns the
    /// refresh's edit script: per resampled `(src, layer)` group, the
    /// inverted postings dropped and produced (see [`PostingDelta`]). The
    /// index mutation is identical to the non-collecting variant; the
    /// delta is assembled from buffers the layer surgery materializes
    /// anyway, so collection costs `O(postings rewritten)`.
    pub fn refresh_collecting(
        &mut self,
        g: &CsrGraph,
        touched: &NodeSet,
        threads: usize,
    ) -> (RefreshStats, PostingDelta) {
        assert_eq!(g.n(), self.n, "refresh requires an unchanged node universe");
        let step = |u: NodeId, rng: &mut WalkRng| walker::step(g, u, rng);
        let timer = crate::obs::metrics().refresh_ns.time();
        let out = self.refresh_with_step(touched, threads, &step);
        timer.stop();
        crate::obs::metrics()
            .groups_resampled
            .add(out.0.groups_resampled as u64);
        out
    }

    /// Weighted twin of [`WalkIndex::refresh`]: the index must have been
    /// built by [`WalkIndex::build_weighted`] on a predecessor of `g` (e.g.
    /// maintained through
    /// [`WeightedCsrGraph::with_edits`](rwd_graph::weighted::WeightedCsrGraph::with_edits),
    /// which patches alias tables only for touched rows, keeping untouched
    /// rows bit-identical — the property the replay argument needs).
    pub fn refresh_weighted(
        &mut self,
        g: &rwd_graph::weighted::WeightedCsrGraph,
        touched: &NodeSet,
    ) -> RefreshStats {
        self.refresh_weighted_with_threads(g, touched, 0)
    }

    /// [`WalkIndex::refresh_weighted`] with an explicit worker count
    /// (`0` = all cores); same exactness guarantees as
    /// [`WalkIndex::refresh_with_threads`].
    pub fn refresh_weighted_with_threads(
        &mut self,
        g: &rwd_graph::weighted::WeightedCsrGraph,
        touched: &NodeSet,
        threads: usize,
    ) -> RefreshStats {
        self.refresh_weighted_collecting(g, touched, threads).0
    }

    /// Weighted twin of [`WalkIndex::refresh_collecting`].
    pub fn refresh_weighted_collecting(
        &mut self,
        g: &rwd_graph::weighted::WeightedCsrGraph,
        touched: &NodeSet,
        threads: usize,
    ) -> (RefreshStats, PostingDelta) {
        assert_eq!(g.n(), self.n, "refresh requires an unchanged node universe");
        let step = |u: NodeId, rng: &mut WalkRng| walker::step_weighted(g, u, rng);
        let timer = crate::obs::metrics().refresh_ns.time();
        let out = self.refresh_with_step(touched, threads, &step);
        timer.stop();
        crate::obs::metrics()
            .groups_resampled
            .add(out.0.groups_resampled as u64);
        out
    }

    /// Shared refresh driver: layers fan out over workers; each layer is
    /// patched independently by [`patch_layer`] (affected-group detection →
    /// selective re-walk → row-level column surgery), and each worker
    /// accumulates integer deltas for the per-node aggregates that are
    /// applied after the join. Every operation is integer-exact and
    /// per-layer, so the result is bit-identical at any worker count.
    fn refresh_with_step<F>(
        &mut self,
        touched: &NodeSet,
        threads: usize,
        step: &F,
    ) -> (RefreshStats, PostingDelta)
    where
        F: Fn(NodeId, &mut WalkRng) -> NodeId + Sync,
    {
        let n = self.n;
        assert_eq!(
            touched.capacity(),
            n,
            "touched-set universe must match the index"
        );
        let r = self.layers.len();
        let mut stats = RefreshStats {
            groups_total: n * r,
            ..RefreshStats::default()
        };
        if touched.is_empty() {
            return (stats, PostingDelta::default());
        }
        let (l, seed, layer_base) = (self.l, self.seed, self.layer_base);

        // Patches a chunk of layers with one reused scratch; returns the
        // chunk's stats, its layer edit scripts (ascending layers), and its
        // staged aggregate deltas.
        type ChunkOut = (RefreshStats, Vec<LayerDelta>, Vec<i64>, Vec<i64>);
        let patch_chunk = |base: usize, layers: &mut [Layer]| -> ChunkOut {
            let mut ws = PatchScratch::new(n);
            let mut out = RefreshStats::default();
            let mut deltas = Vec::new();
            for (off, layer) in layers.iter_mut().enumerate() {
                let part = patch_layer(
                    layer,
                    n,
                    l,
                    seed,
                    layer_base + base + off,
                    touched,
                    step,
                    &mut ws,
                    &mut deltas,
                );
                out.groups_resampled += part.groups_resampled;
                out.postings_removed += part.postings_removed;
                out.postings_added += part.postings_added;
            }
            (out, deltas, ws.agg_dcount, ws.agg_dhops)
        };

        let workers = resolve_threads(threads).min(r);
        let mut partials: Vec<ChunkOut> = Vec::with_capacity(workers);
        if workers == 1 {
            partials.push(patch_chunk(0, &mut self.layers));
        } else {
            let chunk = r.div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .layers
                    .chunks_mut(chunk)
                    .enumerate()
                    .map(|(ci, layers)| {
                        let patch_chunk = &patch_chunk;
                        scope.spawn(move || patch_chunk(ci * chunk, layers))
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("refresh worker panicked"));
                }
            });
        }
        // Chunks are gathered in layer order, so concatenating their edit
        // scripts keeps the delta ascending by absolute layer — the same
        // canonical order a single-threaded refresh emits.
        let mut delta = PostingDelta::default();
        // Any non-empty refresh may edit the aggregates, so promote them to
        // owned up front (a 16 B/node copy at most — negligible next to the
        // column surgery above, and a no-op for an already-owned index).
        let counts = self.posting_counts.make_mut();
        let hop_sums = self.posting_hop_sums.make_mut();
        for (p, deltas, dcount, dhops) in partials {
            stats.groups_resampled += p.groups_resampled;
            stats.postings_removed += p.postings_removed;
            stats.postings_added += p.postings_added;
            delta.layers.extend(deltas);
            // Integer deltas commute, so application order (and hence the
            // worker layout) cannot change the aggregates.
            for (slot, d) in counts.iter_mut().zip(dcount) {
                *slot = (*slot as i64 + d) as u64;
            }
            for (slot, d) in hop_sums.iter_mut().zip(dhops) {
                *slot = (*slot as i64 + d) as u64;
            }
        }
        (stats, delta)
    }

    /// Builds an index from explicitly supplied walks: `walks[w]` is the
    /// recorded sequence (including the start, `l + 1` entries) of the
    /// single walk from node `w` — the `R = 1` case used by the paper's
    /// Example 3.1. See [`WalkIndex::from_walk_layers`] for general `R`.
    pub fn from_walks(n: usize, l: u32, walks: &[Vec<NodeId>]) -> WalkIndex {
        Self::from_walk_layers(n, l, std::slice::from_ref(&walks.to_vec()))
    }

    /// Builds an index from explicit walk layers:
    /// `layers[i][w]` = recorded walk `i` from node `w` (`l + 1` entries).
    pub fn from_walk_layers(n: usize, l: u32, layers: &[Vec<Vec<NodeId>>]) -> WalkIndex {
        assert!(!layers.is_empty());
        assert!(
            l <= u16::MAX as u32,
            "walk length {l} exceeds u16 hop range"
        );
        let built = layers
            .iter()
            .map(|layer_walks| {
                assert_eq!(layer_walks.len(), n, "one walk per node required");
                let mut triples: Vec<Triple> = Vec::new();
                let mut visited = vec![u32::MAX; n];
                for (w, walk) in layer_walks.iter().enumerate() {
                    assert_eq!(
                        walk.len(),
                        l as usize + 1,
                        "walk from node {w} must have l + 1 = {} entries",
                        l + 1
                    );
                    assert_eq!(walk[0], NodeId::new(w), "walk must start at its source");
                    visited[w] = w as u32;
                    for (j, &v) in walk.iter().enumerate().skip(1) {
                        if visited[v.index()] != w as u32 {
                            visited[v.index()] = w as u32;
                            triples.push((v.raw(), w as u32, j as u16));
                        }
                    }
                }
                Layer::from_parts(n, std::slice::from_mut(&mut triples))
            })
            .collect();
        WalkIndex::assemble(n, l, built, 0, 0, 0)
    }

    /// Node-universe size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Walk-length bound `L`.
    #[inline]
    pub fn l(&self) -> u32 {
        self.l
    }

    /// Number of walk layers `R`.
    #[inline]
    pub fn r(&self) -> usize {
        self.layers.len()
    }

    /// Seed the index was built with (0 for explicit-walk indexes).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Absolute index of the first stored layer — `0` for a monolithic
    /// index, `range.start()` for a shard built by
    /// [`WalkIndex::build_layer_range`]. Layer arguments to
    /// [`WalkIndex::postings`] / [`WalkIndex::forward`] stay *local*
    /// (`0..r()`); only RNG streams and refresh replays use the absolute
    /// index.
    #[inline]
    pub fn layer_base(&self) -> usize {
        self.layer_base
    }

    /// The absolute layer range this index stores:
    /// `[layer_base, layer_base + r)`.
    #[inline]
    pub fn layer_range(&self) -> LayerRange {
        LayerRange::new(self.layer_base, self.layer_base + self.layers.len())
    }

    /// The inverted list `I[layer][v]`: all sources whose `layer`-th walk
    /// visits `v`, each with its first-visit hop — a zero-copy SoA view.
    #[inline]
    pub fn postings(&self, layer: usize, v: NodeId) -> PostingsRef<'_> {
        self.layers[layer].postings(v)
    }

    /// The forward list of `src` in `layer`: the nodes that walk `layer`
    /// from `src` first-visits, with the visit hop — the exact transpose of
    /// [`WalkIndex::postings`] (`v ∈ forward(i, src) ⟺ src ∈ I[i][v]`, same
    /// hop). In the returned view, `ids()` are the *visited nodes* and
    /// `weights()` the first-visit hops, in ascending hop order (walk-visit
    /// order; ties by ascending id) — so a consumer that only cares about
    /// hops below a threshold can stop at the first hop past it.
    ///
    /// This is the view that makes incremental greedy output-sensitive:
    /// when a selection lowers `D[layer][src]`, the candidates whose
    /// Algorithm-4 gain changed are exactly this list.
    #[inline]
    pub fn forward(&self, layer: usize, src: NodeId) -> PostingsRef<'_> {
        self.layers[layer].forward(src)
    }

    /// Total number of stored postings (≤ nRL), counting each walk visit
    /// once (the forward view mirrors the same entries and is not counted).
    pub fn total_postings(&self) -> usize {
        self.layers.iter().map(|l| l.ids.len()).sum()
    }

    /// `Σ_i |I[i][v]|` — how many inverted postings `v` owns across all
    /// layers, precomputed at construction. With `D1 ≡ L` (the `S = ∅`
    /// state) this and [`WalkIndex::posting_hop_sum`] give every
    /// candidate's initial gain in closed form without touching a list.
    #[inline]
    pub fn posting_count(&self, v: NodeId) -> u64 {
        self.posting_counts[v.index()]
    }

    /// `Σ_i Σ_{(src,w) ∈ I[i][v]} w` — the total hop weight of `v`'s
    /// inverted postings across all layers, precomputed at construction.
    #[inline]
    pub fn posting_hop_sum(&self, v: NodeId) -> u64 {
        self.posting_hop_sums[v.index()]
    }

    /// Total bytes of index data: per layer, the inverted SoA posting
    /// columns (4-byte ids + 2-byte hop weights) **and** the forward-view
    /// columns of the same shape — 12 bytes per posting in total — plus
    /// one 4-byte CSR offset per node per view and the per-node aggregate
    /// tables. Always equals [`WalkIndex::heap_bytes`] `+`
    /// [`WalkIndex::mapped_bytes`]; for a fully owned index it is all
    /// heap, for a freshly mapped one almost all file-backed.
    pub fn memory_bytes(&self) -> usize {
        self.heap_bytes() + self.mapped_bytes()
    }

    /// Bytes of index data owned on the heap (the resident-set cost the
    /// process pays unconditionally). A freshly mapped index owns nothing;
    /// every refresh that touches a layer moves that layer's share here.
    pub fn heap_bytes(&self) -> usize {
        self.layers.iter().map(Layer::heap_bytes).sum::<usize>()
            + self.posting_counts.heap_bytes()
            + self.posting_hop_sums.heap_bytes()
    }

    /// Bytes of index data borrowed zero-copy from a mapped file (paged in
    /// on demand and evictable under memory pressure — the RSS the kernel
    /// can reclaim). Zero for an owned index.
    pub fn mapped_bytes(&self) -> usize {
        self.layers.iter().map(Layer::mapped_bytes).sum::<usize>()
            + self.posting_counts.mapped_bytes()
            + self.posting_hop_sums.mapped_bytes()
    }

    /// How many of this index's layers still borrow their columns from a
    /// mapped file (diagnostics for the lazy-promotion path).
    pub fn mapped_layers(&self) -> usize {
        self.layers.iter().filter(|la| la.is_mapped()).count()
    }

    /// Replays the index against an arbitrary target set: returns per-layer
    /// first-hit times `D[i][u] = min(L, min_{s∈S} firsthit_i(u → s))`
    /// averaged over layers — the index-based estimate of `h^L_uS`.
    ///
    /// This is the batch (non-incremental) form of what Algorithm 5
    /// maintains; `rwd-core` uses the incremental form inside the greedy
    /// loop and the tests assert the two agree. Runs on all cores; see
    /// [`WalkIndex::estimate_hit_times_with_threads`].
    pub fn estimate_hit_times(&self, set: &NodeSet) -> Vec<f64> {
        self.estimate_hit_times_with_threads(set, 0)
    }

    /// [`WalkIndex::estimate_hit_times`] with an explicit worker count
    /// (`0` = all cores). Layers fan out over workers, each reusing one
    /// `D`-scratch buffer across its layers; per-layer sums are exact
    /// integers reduced in layer order, so the result is bit-identical at
    /// any worker count. Instances below the shared work gate run serially.
    pub fn estimate_hit_times_with_threads(&self, set: &NodeSet, threads: usize) -> Vec<f64> {
        self.replay_layers(threads, |layer, d| {
            d.fill(self.l);
            for s in set.iter() {
                d[s.index()] = 0;
                let pr = layer.postings(s);
                for (&id, &w) in pr.ids.iter().zip(pr.weights) {
                    let slot = &mut d[id as usize];
                    if (w as u32) < *slot {
                        *slot = w as u32;
                    }
                }
            }
        })
    }

    /// Index-based estimate of the hit probability `p^L_uS`: the fraction of
    /// layers in which `u`'s walk reaches `S` (members of `S` count 1).
    /// Runs on all cores; see
    /// [`WalkIndex::estimate_hit_probs_with_threads`].
    pub fn estimate_hit_probs(&self, set: &NodeSet) -> Vec<f64> {
        self.estimate_hit_probs_with_threads(set, 0)
    }

    /// [`WalkIndex::estimate_hit_probs`] with an explicit worker count
    /// (`0` = all cores); same parallel layout and determinism guarantees
    /// as [`WalkIndex::estimate_hit_times_with_threads`].
    pub fn estimate_hit_probs_with_threads(&self, set: &NodeSet, threads: usize) -> Vec<f64> {
        self.replay_layers(threads, |layer, d| {
            d.fill(0);
            for s in set.iter() {
                d[s.index()] = 1;
                for &id in layer.postings(s).ids {
                    d[id as usize] = 1;
                }
            }
        })
    }

    /// Shared layer-replay driver: `fill` recomputes one layer's per-node
    /// integer table into the reused scratch `d`, and the driver averages
    /// those tables over layers — serially below the work gate, otherwise
    /// parallel over layer chunks with one scratch buffer per worker and a
    /// chunk-ordered reduction. All summed values are small integers, so
    /// the result is bit-identical for any worker count.
    fn replay_layers(&self, threads: usize, fill: impl Fn(&Layer, &mut [u32]) + Sync) -> Vec<f64> {
        let r = self.layers.len();
        let work = r * self.n;
        let workers = if work < crate::parallel::MIN_PARALLEL_SWEEP_WORK {
            1
        } else {
            resolve_threads(threads).min(r)
        };
        let accumulate = |layers: &[Layer]| {
            let mut acc = vec![0.0f64; self.n];
            let mut d = vec![0u32; self.n];
            for layer in layers {
                fill(layer, &mut d);
                for (a, &v) in acc.iter_mut().zip(d.iter()) {
                    *a += v as f64;
                }
            }
            acc
        };
        let mut acc = if workers == 1 {
            accumulate(&self.layers)
        } else {
            let chunk = r.div_ceil(workers);
            let mut partials: Vec<Vec<f64>> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .layers
                    .chunks(chunk)
                    .map(|layers| scope.spawn(|| accumulate(layers)))
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("estimate worker panicked"));
                }
            });
            let mut parts = partials.into_iter();
            let mut acc = parts.next().expect("at least one worker");
            for p in parts {
                for (a, b) in acc.iter_mut().zip(p) {
                    *a += b;
                }
            }
            acc
        };
        let r = r as f64;
        acc.iter_mut().for_each(|a| *a /= r);
        acc
    }

    /// Persists the index to disk (the paper's "sample materialization"
    /// made durable): magic + header + per-layer SoA blocks, little-endian,
    /// each layer assembled in one buffer and written with a single call.
    /// A paper-scale index builds in seconds but is reused across many
    /// `k`/`λ` sweeps — saving it makes experiment suites restartable.
    ///
    /// A monolithic index (`layer_base == 0`) writes the unchanged RWDIDX2
    /// format; a layer-range shard writes RWDIDX3, which extends the header
    /// with the shard's absolute layer base so a reload refreshes with the
    /// right RNG streams. Both layouts end in a 4-byte little-endian CRC-32
    /// trailer over every preceding byte (magic and header included), so
    /// bit rot anywhere in the file is detected at load.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        let mut crc = crate::crc::Crc32::new();
        let mut header = Vec::with_capacity(48);
        if self.layer_base == 0 {
            header.extend_from_slice(MAGIC_V2);
        } else {
            header.extend_from_slice(MAGIC_V3);
        }
        header.extend_from_slice(&(self.n as u64).to_le_bytes());
        header.extend_from_slice(&(self.l as u64).to_le_bytes());
        header.extend_from_slice(&(self.layers.len() as u64).to_le_bytes());
        header.extend_from_slice(&self.seed.to_le_bytes());
        if self.layer_base != 0 {
            header.extend_from_slice(&(self.layer_base as u64).to_le_bytes());
        }
        crc.update(&header);
        w.write_all(&header)?;
        let mut buf: Vec<u8> = Vec::new();
        for layer in &self.layers {
            buf.clear();
            buf.reserve(8 + layer.offsets.len() * 4 + layer.ids.len() * 6);
            buf.extend_from_slice(&(layer.ids.len() as u64).to_le_bytes());
            for &off in layer.offsets.iter() {
                buf.extend_from_slice(&off.to_le_bytes());
            }
            for &id in layer.ids.iter() {
                buf.extend_from_slice(&id.to_le_bytes());
            }
            for &hw in layer.weights.iter() {
                buf.extend_from_slice(&hw.to_le_bytes());
            }
            crc.update(&buf);
            w.write_all(&buf)?;
        }
        w.write_all(&crc.finish().to_le_bytes())?;
        w.flush()
    }

    /// Loads an index previously written by [`WalkIndex::save`] or
    /// [`WalkIndex::save_v4`], deserializing every column to the heap.
    ///
    /// Accepts the monolithic RWDIDX2 layout, the RWDIDX3 layer-range
    /// extension and the aligned RWDIDX4 zero-copy layout (parsed, not
    /// mapped — see [`WalkIndex::open_mapped`] for the zero-copy open);
    /// rejects the obsolete `RWDIDX1` (AoS) layout with a dedicated
    /// error — rebuild and re-save such indexes with this version.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<WalkIndex> {
        Self::load_impl(path.as_ref(), None, 0).map(|(idx, _)| idx)
    }

    /// [`WalkIndex::load`] with an explicit worker budget for the parallel
    /// layer parse and aggregate sweep: `0` means "all cores", anything
    /// else is taken literally. The loaded index is bit-identical either
    /// way — callers that pin an engine to a thread budget (benchmarks,
    /// per-engine quotas) use this so recovery honours the same budget.
    pub fn load_with_threads(
        path: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> std::io::Result<WalkIndex> {
        Self::load_impl(path.as_ref(), None, threads).map(|(idx, _)| idx)
    }

    /// [`WalkIndex::load_with_threads`] that additionally reports the
    /// load's transient-memory accounting (see [`LoadStats`]) — the
    /// evidence behind the bounded-peak claim: a deserializing open never
    /// holds the whole file *and* the parsed index at once.
    pub fn load_with_stats(
        path: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> std::io::Result<(WalkIndex, LoadStats)> {
        Self::load_impl(path.as_ref(), None, threads)
    }

    /// Loads only the layers of `range` from a **monolithic** (RWDIDX2 or
    /// monolithic RWDIDX4) index file, producing the shard-local partial
    /// index `build_layer_range` would build: layers outside the range are
    /// skipped without parsing, and the result's
    /// [`WalkIndex::layer_base`] is `range.start()`. Rejects files whose
    /// layer count the range exceeds, and already-sharded (RWDIDX3, or V4
    /// with a nonzero layer base) files — re-scoping a shard of a shard
    /// would silently mis-key the RNG streams.
    pub fn load_layer_range(
        path: impl AsRef<std::path::Path>,
        range: LayerRange,
    ) -> std::io::Result<WalkIndex> {
        Self::load_impl(path.as_ref(), Some(range), 0).map(|(idx, _)| idx)
    }

    fn load_impl(
        path: &std::path::Path,
        want: Option<LayerRange>,
        threads: usize,
    ) -> std::io::Result<(WalkIndex, LoadStats)> {
        let file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 8 {
            return Err(bad_file("not a walk-index file (bad magic)"));
        }
        let mut magic = [0u8; 8];
        pread(&file, &mut magic, 0)?;
        if &magic == MAGIC_V1 {
            return Err(bad_file(
                "walk-index file uses the obsolete RWDIDX1 (AoS) layout; \
                 rebuild the index and re-save it in the RWDIDX2 format",
            ));
        }
        if &magic == MAGIC_V4 {
            return Self::load_v4(&file, file_len, want, threads);
        }
        if &magic != MAGIC_V2 && &magic != MAGIC_V3 {
            return Err(bad_file("not a walk-index file (bad magic)"));
        }
        Self::load_v23(&file, file_len, &magic == MAGIC_V3, want, threads)
    }

    /// Deserializing loader for the RWDIDX2/RWDIDX3 layouts.
    ///
    /// The file is never pulled into memory whole: the boundary walk reads
    /// only the 8-byte length prefixes, the CRC pass streams fixed-size
    /// chunks, and the parallel parse positioned-reads one layer block at
    /// a time into a per-worker reused buffer. The transient high-water
    /// mark is therefore bounded by the largest layer block (plus its
    /// transposition staging), not by the file — see [`LoadStats`]. Every
    /// count in the file is still untrusted: header/block sizes are
    /// checked against the actual file length *before* any payload read,
    /// so a corrupt or crafted file yields `InvalidData`, never a panic or
    /// an absurd allocation.
    fn load_v23(
        file: &std::fs::File,
        file_len: u64,
        v3: bool,
        want: Option<LayerRange>,
        threads: usize,
    ) -> std::io::Result<(WalkIndex, LoadStats)> {
        // The last 4 bytes are the CRC-32 trailer; everything before it is
        // checksummed content (skipped layers included).
        let content_len = file_len.saturating_sub(4);
        let header_len: usize = if v3 { 40 } else { 32 };
        if file_len < 8 + header_len as u64 {
            return Err(truncated());
        }
        let mut header = [0u8; 40];
        pread(file, &mut header[..header_len], 8)?;
        let u64_at = |i: usize| u64::from_le_bytes(header[i * 8..(i + 1) * 8].try_into().unwrap());
        let n64 = u64_at(0);
        let l64 = u64_at(1);
        let layer_count64 = u64_at(2);
        let seed = u64_at(3);
        let file_base64 = if v3 { u64_at(4) } else { 0 };
        check_header_fields(n64, l64, layer_count64, file_base64)?;
        if let Some(range) = want {
            if file_base64 != 0 {
                return Err(bad_file(
                    "load_layer_range requires a monolithic (RWDIDX2) index file, \
                     not an already-sharded RWDIDX3 one",
                ));
            }
            if range.end() as u64 > layer_count64 {
                return Err(bad_file(
                    "requested layer range exceeds the file's layer count",
                ));
            }
        }
        let l = l64 as u32;
        // A layer block stores (n + 1) 4-byte offsets, so n and layer_count
        // are bounded by the checksummed content length.
        if n64.saturating_mul(4) > content_len || layer_count64.saturating_mul(8) > content_len {
            return Err(bad_file(
                "corrupt walk-index file (header exceeds file size)",
            ));
        }
        let n = n64 as usize;
        let layer_count = layer_count64 as usize;
        // Pass 1 — boundary walk: the length prefixes tile the content
        // region into layer blocks, so every block size is validated (and
        // the tiling shown to account for every content byte) before any
        // payload is read. Only the 8-byte prefixes are touched here.
        let mut consumed: u64 = 8 + header_len as u64;
        let mut blocks: Vec<(usize, u64, usize)> =
            Vec::with_capacity(want.map_or(layer_count, |rg| rg.len()));
        for li in 0..layer_count {
            if file_len < consumed + 8 {
                return Err(truncated());
            }
            let mut prefix = [0u8; 8];
            pread(file, &mut prefix, consumed)?;
            consumed += 8;
            let entries64 = u64::from_le_bytes(prefix);
            let block64 = ((n64 + 1) * 4).saturating_add(entries64.saturating_mul(6));
            if block64 > content_len {
                return Err(bad_file(
                    "corrupt walk-index file (layer exceeds file size)",
                ));
            }
            if file_len < consumed + block64 {
                return Err(truncated());
            }
            if want.is_none_or(|rg| rg.contains(li)) {
                blocks.push((entries64 as usize, consumed, block64 as usize));
            }
            consumed += block64;
        }
        // Whole-file integrity: the layer tiling must account for every
        // content byte, and the CRC-32 trailer must match it (skipped
        // layers included). Bit rot anywhere — even in fields no
        // structural check constrains, like the RNG seed — surfaces here
        // instead of being served.
        if consumed != content_len {
            return Err(bad_file(
                "corrupt walk-index file (size mismatch before checksum trailer)",
            ));
        }
        let crc_buf = verify_trailer(file, content_len)?;
        // Pass 2 — parse. Blocks are independent, so they are re-read and
        // decoded (and their forward views transposed) in parallel when the
        // posting volume warrants the threads; results land in per-layer
        // slots, so layer order and first-failing-layer error are
        // scheduling-free.
        let read_parse = |buf: &mut Vec<u8>, entries: usize, off: u64, len: usize| {
            buf.clear();
            buf.resize(len, 0);
            pread(file, buf, off)?;
            parse_layer_block(n, l, entries, buf)
        };
        let total_postings: usize = blocks.iter().map(|&(e, _, _)| e).sum();
        let workers = if n + total_postings < crate::parallel::MIN_PARALLEL_SWEEP_WORK {
            1
        } else {
            resolve_threads(threads).min(blocks.len().max(1))
        };
        // Off unix, positioned reads fall back to a shared-cursor seek.
        let workers = if cfg!(unix) { workers } else { 1 };
        // One worker's pass over its block chunk: a reused read buffer, and
        // the chunk's transient high-water mark (block bytes + the 12 B per
        // posting the forward transposition stages).
        let run_chunk = |b_chunk: &[(usize, u64, usize)],
                         s_chunk: &mut [Option<std::io::Result<Layer>>]|
         -> usize {
            let mut buf: Vec<u8> = Vec::new();
            let mut peak = 0usize;
            for (slot, &(entries, off, len)) in s_chunk.iter_mut().zip(b_chunk) {
                peak = peak.max(len + 12 * entries);
                *slot = Some(read_parse(&mut buf, entries, off, len));
            }
            peak
        };
        let mut slots: Vec<Option<std::io::Result<Layer>>> = Vec::new();
        slots.resize_with(blocks.len(), || None);
        let parse_peak = if workers <= 1 {
            run_chunk(&blocks, &mut slots)
        } else {
            let chunk = blocks.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = blocks
                    .chunks(chunk)
                    .zip(slots.chunks_mut(chunk))
                    .map(|(b_chunk, s_chunk)| {
                        let run_chunk = &run_chunk;
                        scope.spawn(move || run_chunk(b_chunk, s_chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("load worker panicked"))
                    .sum()
            })
        };
        let mut layers = Vec::with_capacity(blocks.len());
        for slot in slots {
            layers.push(slot.expect("every layer block has a parse slot")?);
        }
        let layer_base = want.map_or(file_base64 as usize, |rg| rg.start());
        let stats = LoadStats {
            transient_peak_bytes: crc_buf.max(parse_peak),
        };
        Ok((
            WalkIndex::assemble(n, l, layers, layer_base, seed, threads),
            stats,
        ))
    }

    /// Deserializing loader for the RWDIDX4 layout: reads only the
    /// inverted sections (the stored forward views and aggregates are
    /// skipped — both are re-derived canonically, so the result is bitwise
    /// equal to [`WalkIndex::open_mapped`] on the same file). Same bounded
    /// transient memory as [`WalkIndex::load_v23`].
    fn load_v4(
        file: &std::fs::File,
        file_len: u64,
        want: Option<LayerRange>,
        threads: usize,
    ) -> std::io::Result<(WalkIndex, LoadStats)> {
        if file_len < V4_FIXED_HEADER as u64 {
            return Err(truncated());
        }
        let mut header = [0u8; V4_FIXED_HEADER];
        pread(file, &mut header, 0)?;
        let layer_count64 = u64::from_le_bytes(header[24..32].try_into().unwrap());
        // Bound the entry-table allocation by the actual file size before
        // trusting the header's layer count.
        if layer_count64.saturating_mul(8) > file_len {
            return Err(bad_file(
                "corrupt walk-index file (header exceeds file size)",
            ));
        }
        let mut table = vec![0u8; layer_count64 as usize * 8];
        if file_len < V4_FIXED_HEADER as u64 + table.len() as u64 {
            return Err(truncated());
        }
        pread(file, &mut table, V4_FIXED_HEADER as u64)?;
        let entries: Vec<u64> = table
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let layout = v4_layout(&header, &entries, file_len)?;
        check_v4_range(&layout, want)?;
        let crc_buf = verify_trailer(file, layout.content_len)?;
        let n = layout.n;
        let l = layout.l;
        let specs: Vec<&V4LayerSpec> = match want {
            Some(rg) => layout.layers[rg.start()..rg.end()].iter().collect(),
            None => layout.layers.iter().collect(),
        };
        // Re-read each selected layer's inverted sections into one
        // contiguous [offsets | ids | weights] buffer — the same block
        // shape V2/V3 store — and reuse their parser.
        let read_parse = |buf: &mut Vec<u8>, spec: &V4LayerSpec| -> std::io::Result<Layer> {
            let ob = (n + 1) * 4;
            let ib = spec.entries * 4;
            let wb = spec.entries * 2;
            buf.clear();
            buf.resize(ob + ib + wb, 0);
            pread(file, &mut buf[..ob], spec.offsets as u64)?;
            pread(file, &mut buf[ob..ob + ib], spec.ids as u64)?;
            pread(file, &mut buf[ob + ib..], spec.weights as u64)?;
            parse_layer_block(n, l, spec.entries, buf)
        };
        let total_postings: usize = specs.iter().map(|s| s.entries).sum();
        let workers = if n + total_postings < crate::parallel::MIN_PARALLEL_SWEEP_WORK {
            1
        } else {
            resolve_threads(threads).min(specs.len().max(1))
        };
        let workers = if cfg!(unix) { workers } else { 1 };
        let run_chunk =
            |b_chunk: &[&V4LayerSpec], s_chunk: &mut [Option<std::io::Result<Layer>>]| -> usize {
                let mut buf: Vec<u8> = Vec::new();
                let mut peak = 0usize;
                for (slot, spec) in s_chunk.iter_mut().zip(b_chunk) {
                    peak = peak.max((n + 1) * 4 + 18 * spec.entries);
                    *slot = Some(read_parse(&mut buf, spec));
                }
                peak
            };
        let mut slots: Vec<Option<std::io::Result<Layer>>> = Vec::new();
        slots.resize_with(specs.len(), || None);
        let parse_peak = if workers <= 1 {
            run_chunk(&specs, &mut slots)
        } else {
            let chunk = specs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = specs
                    .chunks(chunk)
                    .zip(slots.chunks_mut(chunk))
                    .map(|(b_chunk, s_chunk)| {
                        let run_chunk = &run_chunk;
                        scope.spawn(move || run_chunk(b_chunk, s_chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("load worker panicked"))
                    .sum()
            })
        };
        let mut layers = Vec::with_capacity(specs.len());
        for slot in slots {
            layers.push(slot.expect("every layer has a parse slot")?);
        }
        let layer_base = want.map_or(layout.layer_base, |rg| rg.start());
        let stats = LoadStats {
            transient_peak_bytes: crc_buf.max(parse_peak),
        };
        Ok((
            WalkIndex::assemble(n, l, layers, layer_base, layout.seed, threads),
            stats,
        ))
    }

    /// Persists the index in the 8-byte-aligned RWDIDX4 layout — the
    /// zero-copy format [`WalkIndex::open_mapped`] serves straight from
    /// the page cache. Unlike V2/V3 it stores *both* CSR views **and** the
    /// per-node aggregate tables, so a mapped open computes nothing:
    /// columns are reinterpreted in place. Layout: magic, a fixed header
    /// (`n`, `L`, layer count, seed, layer base, declared section
    /// alignment), a per-layer entry-count table, then per layer the six
    /// column sections (each zero-padded to the declared alignment),
    /// the two aggregate sections, and the same CRC-32 trailer V2/V3 end
    /// in. Only little-endian hosts write V4 (the format *is* the LE
    /// in-memory image); elsewhere use [`WalkIndex::save`].
    pub fn save_v4(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        #[cfg(not(target_endian = "little"))]
        {
            let _ = path;
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "RWDIDX4 is a little-endian zero-copy format; use save() (V2/V3) on this host",
            ))
        }
        #[cfg(target_endian = "little")]
        {
            use crate::storage::pod_bytes;
            use std::io::Write;
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            let mut crc = crate::crc::Crc32::new();
            let mut header = Vec::with_capacity(V4_FIXED_HEADER + self.layers.len() * 8);
            header.extend_from_slice(MAGIC_V4);
            for v in [
                self.n as u64,
                self.l as u64,
                self.layers.len() as u64,
                self.seed,
                self.layer_base as u64,
                V4_ALIGN,
            ] {
                header.extend_from_slice(&v.to_le_bytes());
            }
            for layer in &self.layers {
                header.extend_from_slice(&(layer.ids.len() as u64).to_le_bytes());
            }
            crc.update(&header);
            w.write_all(&header)?;
            for layer in &self.layers {
                write_v4_section(&mut w, &mut crc, pod_bytes(layer.offsets.as_slice()))?;
                write_v4_section(&mut w, &mut crc, pod_bytes(layer.ids.as_slice()))?;
                write_v4_section(&mut w, &mut crc, pod_bytes(layer.weights.as_slice()))?;
                write_v4_section(&mut w, &mut crc, pod_bytes(layer.fwd_offsets.as_slice()))?;
                write_v4_section(&mut w, &mut crc, pod_bytes(layer.fwd_ids.as_slice()))?;
                write_v4_section(&mut w, &mut crc, pod_bytes(layer.fwd_weights.as_slice()))?;
            }
            write_v4_section(&mut w, &mut crc, pod_bytes(self.posting_counts.as_slice()))?;
            write_v4_section(
                &mut w,
                &mut crc,
                pod_bytes(self.posting_hop_sums.as_slice()),
            )?;
            w.write_all(&crc.finish().to_le_bytes())?;
            w.flush()
        }
    }

    /// Opens an RWDIDX4 file zero-copy: the file is mapped once
    /// (`mmap(2)`), the CRC trailer and section layout are validated once,
    /// and every posting column becomes a borrowed window into the map —
    /// no per-element parse, no transposition, no allocation proportional
    /// to postings. Pages fault in on first touch and remain evictable, so
    /// a 100M-posting index answers its first point query at page-cache
    /// speed. The opened index is **bitwise equal** (by value) to
    /// [`WalkIndex::load`] of the same file; the first refresh that
    /// touches a layer promotes exactly that layer's columns to the heap
    /// (copy-on-write at layer grain).
    ///
    /// Requires a little-endian unix host (the on-disk columns are the LE
    /// in-memory image); elsewhere, and for V2/V3 files, use
    /// [`WalkIndex::load`].
    pub fn open_mapped(path: impl AsRef<std::path::Path>) -> std::io::Result<WalkIndex> {
        Self::open_mapped_impl(path.as_ref(), None)
    }

    /// [`WalkIndex::open_mapped`] scoped to the layers of `range`, the
    /// zero-copy twin of [`WalkIndex::load_layer_range`]: requires a
    /// monolithic (layer base 0) RWDIDX4 file. The selected layers stay
    /// mapped; the per-node aggregates are recomputed for the range (the
    /// file's aggregate sections cover all layers), which streams the
    /// range's postings once.
    pub fn open_mapped_layer_range(
        path: impl AsRef<std::path::Path>,
        range: LayerRange,
    ) -> std::io::Result<WalkIndex> {
        Self::open_mapped_impl(path.as_ref(), Some(range))
    }

    fn open_mapped_impl(
        path: &std::path::Path,
        want: Option<LayerRange>,
    ) -> std::io::Result<WalkIndex> {
        if cfg!(not(target_endian = "little")) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "zero-copy index opens require a little-endian host \
                 (RWDIDX4 stores little-endian columns); use load() instead",
            ));
        }
        let file = std::fs::File::open(path)?;
        let region = Arc::new(MmapRegion::map(&file)?);
        let bytes = region.as_bytes();
        if bytes.len() < 8 {
            return Err(bad_file("not a walk-index file (bad magic)"));
        }
        if &bytes[..8] == MAGIC_V1 {
            return Err(bad_file(
                "walk-index file uses the obsolete RWDIDX1 (AoS) layout; \
                 rebuild the index and re-save it in the RWDIDX4 format",
            ));
        }
        if &bytes[..8] == MAGIC_V2 || &bytes[..8] == MAGIC_V3 {
            return Err(bad_file(
                "walk-index file uses the RWDIDX2/RWDIDX3 layout, which has no \
                 zero-copy open; load() it, or re-save with save_v4 for the mapped path",
            ));
        }
        if &bytes[..8] != MAGIC_V4 {
            return Err(bad_file("not a walk-index file (bad magic)"));
        }
        if bytes.len() < V4_FIXED_HEADER {
            return Err(truncated());
        }
        let header = &bytes[..V4_FIXED_HEADER];
        let layer_count64 = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if layer_count64.saturating_mul(8) > bytes.len() as u64 {
            return Err(bad_file(
                "corrupt walk-index file (header exceeds file size)",
            ));
        }
        let table_end = V4_FIXED_HEADER + layer_count64 as usize * 8;
        if bytes.len() < table_end {
            return Err(truncated());
        }
        let entries: Vec<u64> = bytes[V4_FIXED_HEADER..table_end]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let layout = v4_layout(header, &entries, bytes.len() as u64)?;
        check_v4_range(&layout, want)?;
        // The one-and-only content scan: a chunked CRC sweep across all
        // cores, folded exactly with crc32_combine — the checksum is the
        // only O(file) work on this path, so it is the open time. After
        // this, bulk payloads are trusted; only the structural offsets
        // columns (which bound every later slice) are validated further.
        let content = layout.content_len as usize;
        let trailer = u32::from_le_bytes(bytes[content..content + 4].try_into().unwrap());
        let cores = std::thread::available_parallelism().map_or(1, |t| t.get());
        if trailer != crate::crc::crc32_parallel(&bytes[..content], cores) {
            return Err(bad_file(
                "corrupt walk-index file (content checksum mismatch)",
            ));
        }
        let n = layout.n;
        let selected: std::ops::Range<usize> = match want {
            Some(rg) => rg.start()..rg.end(),
            None => 0..layout.layers.len(),
        };
        let mut layers = Vec::with_capacity(selected.len());
        for li in selected {
            let spec = &layout.layers[li];
            let offsets: Column<u32> = Column::mapped(region.clone(), spec.offsets, n + 1)?;
            validate_mapped_offsets(&offsets, spec.entries)?;
            let fwd_offsets: Column<u32> = Column::mapped(region.clone(), spec.fwd_offsets, n + 1)?;
            validate_mapped_offsets(&fwd_offsets, spec.entries)?;
            layers.push(Layer {
                offsets,
                ids: Column::mapped(region.clone(), spec.ids, spec.entries)?,
                weights: Column::mapped(region.clone(), spec.weights, spec.entries)?,
                fwd_offsets,
                fwd_ids: Column::mapped(region.clone(), spec.fwd_ids, spec.entries)?,
                fwd_weights: Column::mapped(region.clone(), spec.fwd_weights, spec.entries)?,
            });
        }
        let (posting_counts, posting_hop_sums) = if want.is_none() {
            // Whole-file open: the stored aggregates are exactly what
            // assemble() would compute (save_v4 wrote them from a canonical
            // index), so map them too.
            (
                Column::mapped(region.clone(), layout.counts, n)?,
                Column::mapped(region.clone(), layout.hop_sums, n)?,
            )
        } else {
            // Ranged open: the file's aggregates cover *all* layers, so the
            // partial index recomputes its own over the mapped columns.
            let (c, h) = Self::compute_aggregates(n, &layers, 0);
            (c.into(), h.into())
        };
        Ok(WalkIndex {
            n,
            l: layout.l,
            layers,
            seed: layout.seed,
            layer_base: want.map_or(layout.layer_base, |rg| rg.start()),
            posting_counts,
            posting_hop_sums,
        })
    }
}

const MAGIC_V1: &[u8; 8] = b"RWDIDX1\0";
const MAGIC_V2: &[u8; 8] = b"RWDIDX2\0";
const MAGIC_V3: &[u8; 8] = b"RWDIDX3\0";
const MAGIC_V4: &[u8; 8] = b"RWDIDX4\0";

/// Section alignment RWDIDX4 declares in its header: every section start
/// is a multiple of 8 within the file, and `mmap(2)` bases are
/// page-aligned, so mapped element pointers inherit the alignment of the
/// widest stored scalar (`u64`).
const V4_ALIGN: u64 = 8;

/// RWDIDX4 fixed header: magic + 6 `u64` fields (`n`, `l`, layer count,
/// seed, layer base, section alignment). The per-layer entry table
/// follows immediately.
const V4_FIXED_HEADER: usize = 8 + 6 * 8;

/// Transient-memory accounting of one deserializing load
/// ([`WalkIndex::load_with_stats`]).
///
/// The load path never materializes the whole file: the CRC pass streams
/// 64 KiB chunks and each parse worker positioned-reads one layer block
/// at a time into a reused buffer. [`LoadStats::transient_peak_bytes`] is
/// the high-water mark of those short-lived buffers — raw block bytes
/// plus the 12-byte-per-posting forward-transposition staging — maximized
/// over time per worker and summed across workers (workers peak
/// independently, so the sum bounds any instant). Peak load memory is
/// therefore bounded by `final index size + transient_peak_bytes`; the
/// storage suite asserts the transient share stays ≤ 25% of
/// [`WalkIndex::memory_bytes`] (peak ≤ 1.25× the final index), where the
/// old whole-file-buffer-held-across-the-parse design peaked near 2×.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// High-water mark (bytes) of buffers that live only during the load.
    pub transient_peak_bytes: usize,
}

fn bad_file(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn truncated() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "walk-index file is truncated",
    )
}

/// Positioned read (`pread(2)`): fills `buf` from absolute offset `off`
/// without touching the shared cursor, so parse workers can read one open
/// file concurrently.
fn pread(file: &std::fs::File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        // No positioned-read API: clone the handle and seek. Clones share
        // the cursor, so off-unix loads keep a single reader.
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
}

/// Streams the checksummed content region in fixed chunks, compares the
/// CRC-32 trailer, and returns the chunk-buffer size it used (for the
/// transient accounting). The caller has already validated that
/// `content_len + 4` bytes exist.
fn verify_trailer(file: &std::fs::File, content_len: u64) -> std::io::Result<usize> {
    const CRC_CHUNK: u64 = 64 << 10;
    let cap = content_len.clamp(1, CRC_CHUNK) as usize;
    let mut buf = vec![0u8; cap];
    let mut crc = crate::crc::Crc32::new();
    let mut pos = 0u64;
    while pos < content_len {
        let take = cap.min((content_len - pos) as usize);
        pread(file, &mut buf[..take], pos)?;
        crc.update(&buf[..take]);
        pos += take as u64;
    }
    let mut t = [0u8; 4];
    pread(file, &mut t, content_len)?;
    if u32::from_le_bytes(t) != crc.finish() {
        return Err(bad_file(
            "corrupt walk-index file (content checksum mismatch)",
        ));
    }
    Ok(cap)
}

/// The cross-field header validation every format version shares: the
/// counts constrain each other and the posting encoding, so values no
/// builder can produce are rejected here instead of yielding a nonsense
/// index.
/// * posting ids are u32, so an index over more than `u32::MAX` nodes is
///   unrepresentable (every id bound check would pass vacuously);
/// * walks have `1 ≤ hop ≤ l ≤ u16::MAX` (the builder asserts it and hops
///   are stored as u16), so `l = 0` admits no posting at all;
/// * every constructor requires `r ≥ 1` — an index with zero layers would
///   make each estimator divide by zero.
fn check_header_fields(n64: u64, l64: u64, layer_count64: u64, base64: u64) -> std::io::Result<()> {
    if n64 > u32::MAX as u64 {
        return Err(bad_file(
            "corrupt walk-index file (node count exceeds the u32 posting-id range)",
        ));
    }
    if l64 == 0 || l64 > u16::MAX as u64 {
        return Err(bad_file(
            "corrupt walk-index file (walk length outside 1..=65535)",
        ));
    }
    if layer_count64 == 0 {
        return Err(bad_file("corrupt walk-index file (zero walk layers)"));
    }
    if base64.saturating_add(layer_count64) > u32::MAX as u64 {
        return Err(bad_file(
            "corrupt walk-index file (layer base outside the representable range)",
        ));
    }
    Ok(())
}

/// Parses one `[offsets | ids | weights]` inverted block (the V2/V3 layer
/// block body; V4 loads assemble the same shape from its sections) into a
/// [`Layer`], validating structure as it decodes.
fn parse_layer_block(n: usize, l: u32, entries: usize, block: &[u8]) -> std::io::Result<Layer> {
    let (off_bytes, rest) = block.split_at((n + 1) * 4);
    let (id_bytes, weight_bytes) = rest.split_at(entries * 4);
    let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut monotone = true;
    let mut prev = 0u32;
    for c in off_bytes.chunks_exact(4) {
        let v = u32::from_le_bytes(c.try_into().unwrap());
        monotone &= v >= prev;
        prev = v;
        offsets.push(v);
    }
    if !monotone || offsets.first() != Some(&0) || *offsets.last().unwrap_or(&0) as usize != entries
    {
        return Err(bad_file(
            "corrupt walk-index file (offset/posting mismatch)",
        ));
    }
    let mut ids: Vec<u32> = Vec::with_capacity(entries);
    let mut in_range = true;
    for c in id_bytes.chunks_exact(4) {
        let id = u32::from_le_bytes(c.try_into().unwrap());
        in_range &= (id as usize) < n;
        ids.push(id);
    }
    if !in_range {
        return Err(bad_file(
            "corrupt walk-index file (posting id out of range)",
        ));
    }
    let mut weights: Vec<u16> = Vec::with_capacity(entries);
    let mut hops_ok = true;
    for c in weight_bytes.chunks_exact(2) {
        let w = u16::from_le_bytes(c.try_into().unwrap());
        hops_ok &= (w as u32).wrapping_sub(1) < l;
        weights.push(w);
    }
    if !hops_ok {
        return Err(bad_file(
            "corrupt walk-index file (hop weight outside 1..=L)",
        ));
    }
    Ok(Layer::from_inverted(n, offsets, ids, weights))
}

/// Absolute file positions of one layer's six sections in an RWDIDX4 file.
#[derive(Clone, Copy)]
struct V4LayerSpec {
    entries: usize,
    offsets: usize,
    ids: usize,
    weights: usize,
    fwd_offsets: usize,
    fwd_ids: usize,
    fwd_weights: usize,
}

/// Everything the RWDIDX4 fixed header + entry table determine: validated
/// field values and the absolute position of every section. Shared by the
/// mapped open, the deserializing load and [`inspect_index_file`], so all
/// three agree on the format byte for byte.
struct V4Layout {
    n: usize,
    l: u32,
    seed: u64,
    layer_base: usize,
    layers: Vec<V4LayerSpec>,
    counts: usize,
    hop_sums: usize,
    /// Checksummed bytes (everything before the 4-byte CRC trailer).
    content_len: u64,
}

/// Walks the RWDIDX4 section structure, validating every size against the
/// actual file length (checked arithmetic throughout — a crafted entry
/// table yields `InvalidData`, never overflow or an absurd allocation)
/// and requiring the tiling to account for every content byte.
fn v4_layout(header: &[u8], entries: &[u64], file_len: u64) -> std::io::Result<V4Layout> {
    let u64_at = |i: usize| u64::from_le_bytes(header[8 + i * 8..16 + i * 8].try_into().unwrap());
    let n64 = u64_at(0);
    let l64 = u64_at(1);
    let layer_count64 = u64_at(2);
    let seed = u64_at(3);
    let base64 = u64_at(4);
    let align = u64_at(5);
    check_header_fields(n64, l64, layer_count64, base64)?;
    if align != V4_ALIGN {
        return Err(bad_file(
            "corrupt walk-index file (unsupported section alignment; this build reads 8)",
        ));
    }
    if entries.len() as u64 != layer_count64 {
        return Err(truncated());
    }
    let pad8 = |x: u64| x.div_ceil(8) * 8;
    let overflow = || bad_file("corrupt walk-index file (layer exceeds file size)");
    let n = n64 as usize;
    let off_bytes = pad8((n64 + 1) * 4);
    let mut cur: u64 = V4_FIXED_HEADER as u64 + layer_count64 * 8;
    let mut layers = Vec::with_capacity(entries.len());
    for &e in entries {
        if e > u32::MAX as u64 {
            return Err(bad_file(
                "corrupt walk-index file (layer posting count overflows u32 offsets)",
            ));
        }
        let ids_bytes = pad8(e.checked_mul(4).ok_or_else(overflow)?);
        let weight_bytes = pad8(e.checked_mul(2).ok_or_else(overflow)?);
        let section = |len: u64, cur: &mut u64| -> std::io::Result<usize> {
            let at = *cur;
            *cur = cur.checked_add(len).ok_or_else(overflow)?;
            if *cur > file_len {
                return Err(overflow());
            }
            Ok(at as usize)
        };
        layers.push(V4LayerSpec {
            entries: e as usize,
            offsets: section(off_bytes, &mut cur)?,
            ids: section(ids_bytes, &mut cur)?,
            weights: section(weight_bytes, &mut cur)?,
            fwd_offsets: section(off_bytes, &mut cur)?,
            fwd_ids: section(ids_bytes, &mut cur)?,
            fwd_weights: section(weight_bytes, &mut cur)?,
        });
    }
    let agg_bytes = pad8(n64 * 8);
    let counts = cur as usize;
    cur = cur.checked_add(agg_bytes).ok_or_else(overflow)?;
    let hop_sums = cur as usize;
    cur = cur.checked_add(agg_bytes).ok_or_else(overflow)?;
    if cur.checked_add(4) != Some(file_len) {
        return Err(bad_file(
            "corrupt walk-index file (size mismatch before checksum trailer)",
        ));
    }
    Ok(V4Layout {
        n,
        l: l64 as u32,
        seed,
        layer_base: base64 as usize,
        layers,
        counts,
        hop_sums,
        content_len: cur,
    })
}

/// The layer-range admissibility rules shared by the ranged V4 open paths.
fn check_v4_range(layout: &V4Layout, want: Option<LayerRange>) -> std::io::Result<()> {
    if let Some(range) = want {
        if layout.layer_base != 0 {
            return Err(bad_file(
                "layer-range opens require a monolithic (layer base 0) index file, \
                 not an already-sharded one",
            ));
        }
        if range.end() > layout.layers.len() {
            return Err(bad_file(
                "requested layer range exceeds the file's layer count",
            ));
        }
    }
    Ok(())
}

/// Structural validation a mapped open performs on each CSR offsets
/// column. The offsets bound every later postings slice, so they are
/// checked eagerly (one pass over `n + 1` values per view); the bulk
/// id/weight payloads are trusted under the CRC trailer — corruption that
/// survives a CRC match can only produce wrong answers or a clean
/// bounds-check panic, never out-of-bounds reads of the map.
fn validate_mapped_offsets(offsets: &[u32], entries: usize) -> std::io::Result<()> {
    let mut monotone = offsets.first() == Some(&0);
    let mut prev = 0u32;
    for &v in offsets {
        monotone &= v >= prev;
        prev = v;
    }
    if !monotone || offsets.last().map(|&e| e as usize) != Some(entries) {
        return Err(bad_file(
            "corrupt walk-index file (offset/posting mismatch)",
        ));
    }
    Ok(())
}

/// What [`inspect_index_file`] reports: the facts the header and section
/// structure encode, plus whether the CRC trailer matches — all without
/// constructing a [`WalkIndex`].
#[derive(Clone, Debug)]
pub struct IndexFileInfo {
    /// On-disk format version: 2 (RWDIDX2), 3 (RWDIDX3) or 4 (RWDIDX4).
    pub version: u32,
    /// Node-universe size `n`.
    pub n: u64,
    /// Walk-length bound `L`.
    pub l: u64,
    /// Number of layers the file stores (its `R`).
    pub layer_count: u64,
    /// Absolute index of the first stored layer (0 = monolithic).
    pub layer_base: u64,
    /// Build seed.
    pub seed: u64,
    /// Total inverted postings across the stored layers.
    pub total_postings: u64,
    /// Header-declared section alignment (V4 only).
    pub section_align: Option<u64>,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Whether the CRC-32 content trailer matches.
    pub crc_ok: bool,
}

/// Reads an index file's header and section structure — format version,
/// dimensions, layer range, posting count, alignment — and verifies the
/// CRC trailer, without constructing an index: no column parse, no
/// transposition, `O(R)` memory and one streamed pass of I/O. Structural
/// corruption (impossible sizes, bad tiling) errors out; a CRC mismatch
/// is *reported* (`crc_ok: false`) so damaged files can still be triaged.
pub fn inspect_index_file(path: impl AsRef<std::path::Path>) -> std::io::Result<IndexFileInfo> {
    let file = std::fs::File::open(path.as_ref())?;
    let file_len = file.metadata()?.len();
    if file_len < 8 {
        return Err(bad_file("not a walk-index file (bad magic)"));
    }
    let mut magic = [0u8; 8];
    pread(&file, &mut magic, 0)?;
    if &magic == MAGIC_V1 {
        return Err(bad_file(
            "walk-index file uses the obsolete RWDIDX1 (AoS) layout; \
             rebuild the index and re-save it in the RWDIDX2 format",
        ));
    }
    let crc_status = |content_len: u64| -> std::io::Result<bool> {
        Ok(verify_trailer(&file, content_len).is_ok())
    };
    if &magic == MAGIC_V4 {
        if file_len < V4_FIXED_HEADER as u64 {
            return Err(truncated());
        }
        let mut header = [0u8; V4_FIXED_HEADER];
        pread(&file, &mut header, 0)?;
        let layer_count64 = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if layer_count64.saturating_mul(8) > file_len {
            return Err(bad_file(
                "corrupt walk-index file (header exceeds file size)",
            ));
        }
        let mut table = vec![0u8; layer_count64 as usize * 8];
        if file_len < V4_FIXED_HEADER as u64 + table.len() as u64 {
            return Err(truncated());
        }
        pread(&file, &mut table, V4_FIXED_HEADER as u64)?;
        let entries: Vec<u64> = table
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let layout = v4_layout(&header, &entries, file_len)?;
        return Ok(IndexFileInfo {
            version: 4,
            n: layout.n as u64,
            l: layout.l as u64,
            layer_count: layout.layers.len() as u64,
            layer_base: layout.layer_base as u64,
            seed: layout.seed,
            total_postings: entries.iter().sum(),
            section_align: Some(V4_ALIGN),
            file_bytes: file_len,
            crc_ok: crc_status(layout.content_len)?,
        });
    }
    if &magic != MAGIC_V2 && &magic != MAGIC_V3 {
        return Err(bad_file("not a walk-index file (bad magic)"));
    }
    let v3 = &magic == MAGIC_V3;
    let content_len = file_len.saturating_sub(4);
    let header_len: usize = if v3 { 40 } else { 32 };
    if file_len < 8 + header_len as u64 {
        return Err(truncated());
    }
    let mut header = [0u8; 40];
    pread(&file, &mut header[..header_len], 8)?;
    let u64_at = |i: usize| u64::from_le_bytes(header[i * 8..(i + 1) * 8].try_into().unwrap());
    let (n64, l64, layer_count64, seed) = (u64_at(0), u64_at(1), u64_at(2), u64_at(3));
    let base64 = if v3 { u64_at(4) } else { 0 };
    check_header_fields(n64, l64, layer_count64, base64)?;
    if n64.saturating_mul(4) > content_len || layer_count64.saturating_mul(8) > content_len {
        return Err(bad_file(
            "corrupt walk-index file (header exceeds file size)",
        ));
    }
    // Boundary walk over the length prefixes only.
    let mut consumed: u64 = 8 + header_len as u64;
    let mut total_postings = 0u64;
    for _ in 0..layer_count64 {
        if file_len < consumed + 8 {
            return Err(truncated());
        }
        let mut prefix = [0u8; 8];
        pread(&file, &mut prefix, consumed)?;
        consumed += 8;
        let entries64 = u64::from_le_bytes(prefix);
        let block64 = ((n64 + 1) * 4).saturating_add(entries64.saturating_mul(6));
        if block64 > content_len {
            return Err(bad_file(
                "corrupt walk-index file (layer exceeds file size)",
            ));
        }
        if file_len < consumed + block64 {
            return Err(truncated());
        }
        total_postings += entries64;
        consumed += block64;
    }
    if consumed != content_len {
        return Err(bad_file(
            "corrupt walk-index file (size mismatch before checksum trailer)",
        ));
    }
    Ok(IndexFileInfo {
        version: if v3 { 3 } else { 2 },
        n: n64,
        l: l64,
        layer_count: layer_count64,
        layer_base: base64,
        seed,
        total_postings,
        section_align: None,
        file_bytes: file_len,
        crc_ok: crc_status(content_len)?,
    })
}

/// Writes one RWDIDX4 section: the raw little-endian column image,
/// zero-padded to the declared 8-byte alignment, folded into the CRC.
#[cfg(target_endian = "little")]
fn write_v4_section<W: std::io::Write>(
    w: &mut W,
    crc: &mut crate::crc::Crc32,
    bytes: &[u8],
) -> std::io::Result<()> {
    crc.update(bytes);
    w.write_all(bytes)?;
    let rem = bytes.len() % 8;
    if rem != 0 {
        let pad = [0u8; 8];
        crc.update(&pad[..8 - rem]);
        w.write_all(&pad[..8 - rem])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::record_walk;
    use rwd_graph::generators::paper_example;

    fn figure1_index() -> WalkIndex {
        WalkIndex::build(&paper_example::figure1(), 2, 1, 42)
    }

    #[test]
    fn postings_reference_real_first_visits() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 3, 7);
        // Recreate each walk with the same stream and check the postings of
        // every visited node agree.
        for layer in 0..idx.r() {
            for w in g.nodes() {
                let mut rng = WalkRng::for_stream(7, w.index() as u64, layer as u64);
                let mut buf = Vec::new();
                record_walk(&g, w, 4, &mut rng, &mut buf);
                // First-visit hops from the recorded walk.
                let mut first = std::collections::HashMap::new();
                for (j, &v) in buf.iter().enumerate().skip(1) {
                    if v != w {
                        first.entry(v).or_insert(j as u32);
                    }
                }
                for (&v, &j) in &first {
                    let hit = idx
                        .postings(layer, v)
                        .iter()
                        .find(|p| p.id == w)
                        .unwrap_or_else(|| panic!("missing posting {w}→{v}"));
                    assert_eq!(hit.weight, j);
                }
                // And no spurious postings for this source.
                for v in g.nodes() {
                    let has = idx.postings(layer, v).iter().any(|p| p.id == w);
                    assert_eq!(has, first.contains_key(&v), "{w} vs {v}");
                }
            }
        }
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let g = paper_example::figure1();
        let a = WalkIndex::build_with_threads(&g, 3, 8, 5, 1);
        let b = WalkIndex::build_with_threads(&g, 3, 8, 5, 4);
        assert_eq!(a.total_postings(), b.total_postings());
        for layer in 0..8 {
            for v in g.nodes() {
                assert_eq!(a.postings(layer, v), b.postings(layer, v));
            }
        }
    }

    #[test]
    fn from_walks_matches_example_3_1_table_1() {
        // The fixed walks of Example 3.1 (paper labels v1..v8 = ids 0..7).
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        let idx = WalkIndex::from_walks(8, 2, &walks);

        let lists: Vec<Vec<(usize, u32)>> = (0..8)
            .map(|owner| {
                idx.postings(0, NodeId::new(owner))
                    .iter()
                    .map(|p| (p.id.index() + 1, p.weight)) // back to paper labels
                    .collect()
            })
            .collect();
        // Table 1 of the paper:
        assert_eq!(lists[0], vec![]); // v1
        assert_eq!(lists[1], vec![(1, 1), (3, 1), (5, 1)]); // v2
        assert_eq!(lists[2], vec![(1, 2), (2, 1)]); // v3
        assert_eq!(lists[3], vec![(8, 2)]); // v4
        assert_eq!(lists[4], vec![(2, 2), (3, 2), (4, 2), (6, 2), (7, 1)]); // v5
        assert_eq!(lists[5], vec![(5, 2)]); // v6
        assert_eq!(lists[6], vec![(4, 1), (6, 1), (8, 1)]); // v7
        assert_eq!(lists[7], vec![]); // v8
    }

    #[test]
    fn repeated_nodes_indexed_once() {
        // Walk (v7, v5, v7): the second v7 must not be indexed (it is the
        // source) and v5 gets weight 1 — already covered by the Table 1
        // test; here check a self-revisit of a non-source node.
        let walks = vec![
            vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)], // 0-1-0-1
            vec![NodeId(1), NodeId(0), NodeId(1), NodeId(0)],
        ];
        let idx = WalkIndex::from_walks(2, 3, &walks);
        // Walk from 0 visits 1 first at hop 1 (hop 3 revisit dropped).
        assert_eq!(
            idx.postings(0, NodeId(1)).to_vec(),
            vec![Posting {
                id: NodeId(0),
                weight: 1
            }]
        );
        // Walk from 1 visits 0 first at hop 1.
        assert_eq!(
            idx.postings(0, NodeId(0)).to_vec(),
            vec![Posting {
                id: NodeId(1),
                weight: 1
            }]
        );
    }

    #[test]
    fn estimate_hit_times_replays_correctly() {
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        let idx = WalkIndex::from_walks(8, 2, &walks);
        // S = {v2}: first hits — v1 at 1, v3 at 1, v5 at 1; others miss (L = 2).
        let s = NodeSet::from_nodes(8, [v(2)]);
        let h = idx.estimate_hit_times(&s);
        assert_eq!(h[v(1).index()], 1.0);
        assert_eq!(h[v(2).index()], 0.0);
        assert_eq!(h[v(3).index()], 1.0);
        assert_eq!(h[v(4).index()], 2.0);
        assert_eq!(h[v(5).index()], 1.0);
        assert_eq!(h[v(6).index()], 2.0);
        let p = idx.estimate_hit_probs(&s);
        assert_eq!(p[v(1).index()], 1.0);
        assert_eq!(p[v(4).index()], 0.0);
        assert_eq!(p[v(2).index()], 1.0);
    }

    #[test]
    fn memory_accounting_is_positive() {
        let idx = figure1_index();
        assert!(idx.total_postings() > 0);
        // 12 bytes per posting — 6 for the inverted columns (4-byte id +
        // 2-byte weight) and 6 more for the forward view — plus offsets.
        assert!(idx.memory_bytes() >= idx.total_postings() * 12);
        assert_eq!(idx.l(), 2);
        assert_eq!(idx.r(), 1);
        assert_eq!(idx.n(), 8);
    }

    #[test]
    fn forward_view_is_exact_transpose() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 3, 7);
        for layer in 0..idx.r() {
            // Collect both views as (src, visited, hop) triples; they must
            // be the same multiset (the proptest in tests/forward.rs covers
            // random graphs; this pins the small fixture).
            let mut inv: Vec<(u32, u32, u32)> = Vec::new();
            let mut fwd: Vec<(u32, u32, u32)> = Vec::new();
            for v in g.nodes() {
                for p in idx.postings(layer, v) {
                    inv.push((p.id.raw(), v.raw(), p.weight));
                }
                for p in idx.forward(layer, v) {
                    fwd.push((v.raw(), p.id.raw(), p.weight));
                }
            }
            inv.sort_unstable();
            fwd.sort_unstable();
            assert_eq!(inv, fwd, "layer {layer}");
            // Forward lists are (hop, id)-ascending (the canonical
            // transposition order documented on `WalkIndex::forward`).
            for src in g.nodes() {
                let fr = idx.forward(layer, src);
                let keys: Vec<(u16, u32)> = fr
                    .weights()
                    .iter()
                    .copied()
                    .zip(fr.ids().iter().copied())
                    .collect();
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "src {src}");
            }
        }
    }

    #[test]
    fn forward_view_of_example_3_1() {
        // Table 1 transposed: the walk (v2, v3, v5) must give
        // forward(v2) = {v3@1, v5@2}; v5's walk (v5, v2, v6) gives
        // {v2@1, v6@2}.
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        let idx = WalkIndex::from_walks(8, 2, &walks);
        let fwd = |src: usize| -> Vec<(usize, u32)> {
            idx.forward(0, v(src))
                .iter()
                .map(|p| (p.id.index() + 1, p.weight))
                .collect()
        };
        assert_eq!(fwd(1), vec![(2, 1), (3, 2)]);
        assert_eq!(fwd(2), vec![(3, 1), (5, 2)]);
        assert_eq!(fwd(5), vec![(2, 1), (6, 2)]);
        assert_eq!(fwd(7), vec![(5, 1)]); // v7's revisit of itself dropped
    }

    #[test]
    fn soa_columns_are_aligned_views() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 3, 7);
        for layer in 0..idx.r() {
            for v in g.nodes() {
                let pr = idx.postings(layer, v);
                assert_eq!(pr.ids().len(), pr.weights().len());
                assert_eq!(pr.len(), pr.iter().count());
                for (k, p) in pr.iter().enumerate() {
                    assert_eq!(p, pr.get(k));
                    assert_eq!(p.id.raw(), pr.ids()[k]);
                    assert_eq!(p.weight, pr.weights()[k] as u32);
                    assert!(p.weight >= 1 && p.weight <= 4);
                }
            }
        }
    }

    #[test]
    fn save_load_round_trip() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 6, 13);
        let dir = std::env::temp_dir().join("rwd_index_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.rwdidx");
        idx.save(&path).unwrap();
        let loaded = WalkIndex::load(&path).unwrap();
        assert_eq!(loaded.n(), idx.n());
        assert_eq!(loaded.l(), idx.l());
        assert_eq!(loaded.r(), idx.r());
        assert_eq!(loaded.seed(), idx.seed());
        for layer in 0..idx.r() {
            for v in g.nodes() {
                assert_eq!(loaded.postings(layer, v), idx.postings(layer, v));
                // The forward view is rebuilt from the inverted columns on
                // load (the file stores only the inverted lists), and the
                // transposition is canonical, so it must match too.
                assert_eq!(loaded.forward(layer, v), idx.forward(layer, v));
            }
        }
        // The reloaded index drives identical estimates.
        let set = NodeSet::from_nodes(8, [NodeId(1), NodeId(6)]);
        assert_eq!(
            loaded.estimate_hit_times(&set),
            idx.estimate_hit_times(&set)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("rwd_index_io_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.rwdidx");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(WalkIndex::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn high_thread_count_on_large_graph_does_not_overrun_chunk_grid() {
        // Regression: with chunk counts re-derived from the rounded-up chunk
        // size, the last task's node range must stay inside [0, n] even when
        // the oversubscribed 2-D grid wants more chunks than fit (formerly a
        // subtract-with-overflow for n = 512_486, r = 1, threads = 250).
        let g = rwd_graph::generators::classic::path(512_486).unwrap();
        let idx = WalkIndex::build_with_threads(&g, 1, 1, 3, 250);
        assert_eq!(idx.n(), 512_486);
        assert!(idx.total_postings() <= 512_486);
        let one = WalkIndex::build_with_threads(&g, 1, 1, 3, 1);
        assert_eq!(idx.total_postings(), one.total_postings());
    }

    #[test]
    fn load_rejects_oversized_header_counts_without_allocating() {
        let dir = std::env::temp_dir().join("rwd_index_io_huge");
        std::fs::create_dir_all(&dir).unwrap();
        // n = u64::MAX in the header: must be InvalidData, not a panic or a
        // giant allocation.
        let mut bytes = b"RWDIDX2\0".to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        bytes.extend_from_slice(&4u64.to_le_bytes()); // l
        bytes.extend_from_slice(&1u64.to_le_bytes()); // layers
        bytes.extend_from_slice(&7u64.to_le_bytes()); // seed
        let path = dir.join("huge_n.rwdidx");
        std::fs::write(&path, &bytes).unwrap();
        assert!(WalkIndex::load(&path).is_err());

        // Plausible n but an absurd per-layer entry count: same contract.
        let mut bytes = b"RWDIDX2\0".to_vec();
        bytes.extend_from_slice(&8u64.to_le_bytes()); // n
        bytes.extend_from_slice(&4u64.to_le_bytes()); // l
        bytes.extend_from_slice(&1u64.to_le_bytes()); // layers
        bytes.extend_from_slice(&7u64.to_le_bytes()); // seed
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // layer entries
        let path = dir.join("huge_entries.rwdidx");
        std::fs::write(&path, &bytes).unwrap();
        assert!(WalkIndex::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_cross_field_header_corruption() {
        // Corpus of headers that pass the magic check and the raw size
        // heuristics but violate cross-field invariants no builder can
        // produce: such files must be InvalidData, never a nonsense index.
        let dir = std::env::temp_dir().join("rwd_index_io_header");
        std::fs::create_dir_all(&dir).unwrap();
        let header = |n: u64, l: u64, layers: u64| -> Vec<u8> {
            let mut bytes = b"RWDIDX2\0".to_vec();
            bytes.extend_from_slice(&n.to_le_bytes());
            bytes.extend_from_slice(&l.to_le_bytes());
            bytes.extend_from_slice(&layers.to_le_bytes());
            bytes.extend_from_slice(&7u64.to_le_bytes()); // seed
            bytes
        };
        // One structurally valid empty layer block for n nodes.
        let empty_layer = |n: usize| -> Vec<u8> {
            let mut bytes = 0u64.to_le_bytes().to_vec(); // entries
            bytes.extend(vec![0u8; (n + 1) * 4]); // offsets
            bytes
        };

        // n just past the u32 posting-id range (ids could never reference
        // the upper nodes, so the index is unrepresentable).
        let mut bytes = header(u32::MAX as u64 + 1, 4, 1);
        bytes.extend(empty_layer(4)); // content irrelevant; header rejects
        let path = dir.join("n_past_u32.rwdidx");
        std::fs::write(&path, &bytes).unwrap();
        let err = WalkIndex::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("posting-id range"), "{err}");

        // l = 0: no posting can satisfy 1 <= hop <= l. Without the check
        // this loaded "successfully" as an all-empty nonsense index.
        let mut bytes = header(4, 0, 1);
        bytes.extend(empty_layer(4));
        let path = dir.join("l_zero.rwdidx");
        std::fs::write(&path, &bytes).unwrap();
        let err = WalkIndex::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("walk length"), "{err}");

        // l past the u16 hop range (hops are stored as u16).
        let path = dir.join("l_huge.rwdidx");
        std::fs::write(&path, header(4, u16::MAX as u64 + 1, 1)).unwrap();
        assert!(WalkIndex::load(&path).is_err());

        // layer_count = 0: r() would be 0 and every estimator would divide
        // by zero. Without the check this also loaded "successfully".
        let path = dir.join("zero_layers.rwdidx");
        std::fs::write(&path, header(4, 4, 0)).unwrap();
        let err = WalkIndex::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("zero walk layers"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_old_rwdidx1_format_with_clear_message() {
        let dir = std::env::temp_dir().join("rwd_index_io_v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.rwdidx");
        let mut bytes = b"RWDIDX1\0".to_vec();
        bytes.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bytes).unwrap();
        let err = WalkIndex::load(&path).unwrap_err();
        assert!(
            err.to_string().contains("RWDIDX1"),
            "error should name the old format: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_bit_rot_via_content_checksum() {
        // Corpus of single-damage variants of a valid file. The seed field
        // and posting payload bytes pass every structural check, so only
        // the CRC-32 trailer can catch them — the distinct "content
        // checksum mismatch" message proves the trailer (not a structural
        // check) fired. Truncation and trailing garbage are also detected.
        let dir = std::env::temp_dir().join("rwd_index_io_bitrot");
        std::fs::create_dir_all(&dir).unwrap();
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 6, 13);
        let path = dir.join("good.rwdidx");
        idx.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        assert!(WalkIndex::load(&path).is_ok());

        let expect_crc_mismatch = |bytes: &[u8], what: &str| {
            let p = dir.join("damaged.rwdidx");
            std::fs::write(&p, bytes).unwrap();
            let err = WalkIndex::load(&p).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{what}");
            assert!(
                err.to_string().contains("content checksum mismatch"),
                "{what}: {err}"
            );
        };

        // Flip one bit in the RNG seed (header bytes 32..40): structurally
        // unconstrained, so before the trailer this loaded "successfully"
        // as an index whose refreshes would silently diverge.
        let mut rot = good.clone();
        rot[33] ^= 0x10;
        expect_crc_mismatch(&rot, "seed bit flip");

        // Flip one bit in a posting id byte deep in the payload (still a
        // valid node id, so the structural checks pass).
        let mut rot = good.clone();
        let mid = good.len() / 2;
        rot[mid] ^= 0x01;
        let p = dir.join("mid_flip.rwdidx");
        std::fs::write(&p, &rot).unwrap();
        // Depending on which field the bit lands in, a structural check may
        // fire first — either way the load must fail with InvalidData.
        let err = WalkIndex::load(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Flip a bit in the trailer itself.
        let mut rot = good.clone();
        let last = rot.len() - 1;
        rot[last] ^= 0x80;
        expect_crc_mismatch(&rot, "trailer bit flip");

        // Trailing garbage after the trailer: the size accounting rejects
        // it before the checksum comparison.
        let mut fat = good.clone();
        fat.extend_from_slice(&[0u8; 16]);
        let p = dir.join("fat.rwdidx");
        std::fs::write(&p, &fat).unwrap();
        let err = WalkIndex::load(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("size mismatch"), "{err}");

        // A shard (RWDIDX3) file gets the same protection.
        let part = WalkIndex::build_layer_range(&g, 4, LayerRange::new(2, 5), 13, 0);
        let spath = dir.join("shard.rwdidx");
        part.save(&spath).unwrap();
        let mut rot = std::fs::read(&spath).unwrap();
        rot[41] ^= 0x04; // inside the layer_base extension / payload
        expect_crc_mismatch(&rot, "shard bit flip");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refresh_is_bit_identical_to_rebuild() {
        // Churn a G(n, p) graph and maintain the index incrementally; the
        // result must equal a from-scratch build on the final graph in every
        // column (PartialEq covers inverted + forward views and aggregates).
        let g0 = rwd_graph::generators::erdos_renyi_gnp(80, 0.06, 11).unwrap();
        let (g1, touched) = g0
            .with_edits(
                &[(0, 79), (3, 41), (17, 60)],
                &[g0.edges().next().map(|(u, v)| (u.raw(), v.raw())).unwrap()],
            )
            .unwrap();
        let touched = NodeSet::from_nodes(g1.n(), touched);
        let mut idx = WalkIndex::build(&g0, 5, 6, 23);
        let stats = idx.refresh(&g1, &touched);
        let fresh = WalkIndex::build(&g1, 5, 6, 23);
        assert!(idx == fresh, "maintained index must equal a rebuild");
        assert!(stats.groups_resampled >= touched.len() * idx.r());
        assert!(stats.groups_resampled <= stats.groups_total);
        assert!(stats.postings_rewritten() > 0);
    }

    #[test]
    fn refresh_weighted_is_bit_identical_to_rebuild() {
        let g0 = rwd_graph::generators::erdos_renyi_gnp(60, 0.08, 5).unwrap();
        let w0 = rwd_graph::weighted::weighted_twin(&g0, 9).unwrap();
        let del = g0.edges().next().map(|(u, v)| (u.raw(), v.raw())).unwrap();
        let (w1, touched) = w0
            .with_edits(&[(2, 59, 1.25), (10, 30, 0.5)], &[del])
            .unwrap();
        let touched = NodeSet::from_nodes(w1.n(), touched);
        let mut idx = WalkIndex::build_weighted(&w0, 6, 5, 31);
        idx.refresh_weighted(&w1, &touched);
        let fresh = WalkIndex::build_weighted(&w1, 6, 5, 31);
        assert!(
            idx == fresh,
            "maintained weighted index must equal a rebuild"
        );
    }

    #[test]
    fn refresh_empty_touched_is_a_noop() {
        let g = paper_example::figure1();
        let mut idx = WalkIndex::build(&g, 4, 3, 7);
        let before = idx.clone();
        let stats = idx.refresh(&g, &NodeSet::new(g.n()));
        assert_eq!(
            stats,
            RefreshStats {
                groups_total: g.n() * 3,
                ..RefreshStats::default()
            }
        );
        assert!(idx == before);
    }

    #[test]
    fn refresh_is_thread_invariant() {
        let g0 = rwd_graph::generators::barabasi_albert(150, 3, 13).unwrap();
        // Insert the first two absent edges (hubs make fixed pairs brittle).
        let mut inserts = Vec::new();
        'outer: for u in 0..150u32 {
            for v in (u + 1)..150u32 {
                if !g0.has_edge(NodeId(u), NodeId(v)) {
                    inserts.push((u, v));
                    if inserts.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        let (g1, touched) = g0.with_edits(&inserts, &[]).unwrap();
        let touched = NodeSet::from_nodes(g1.n(), touched);
        let mut serial = WalkIndex::build(&g0, 5, 8, 3);
        let serial_stats = serial.refresh_with_threads(&g1, &touched, 1);
        for threads in [2, 8] {
            let mut idx = WalkIndex::build(&g0, 5, 8, 3);
            let stats = idx.refresh_with_threads(&g1, &touched, threads);
            assert_eq!(stats, serial_stats, "threads {threads}");
            assert!(idx == serial, "threads {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "unchanged node universe")]
    fn refresh_rejects_resized_graph() {
        let g = paper_example::figure1();
        let mut idx = WalkIndex::build(&g, 3, 2, 1);
        let bigger = rwd_graph::generators::classic::path(9).unwrap();
        idx.refresh(&bigger, &NodeSet::new(9));
    }

    #[test]
    fn layer_range_partition_is_balanced_and_contiguous() {
        for r in 1..=12usize {
            for shards in 1..=r {
                let ranges = LayerRange::partition(r, shards);
                assert_eq!(ranges.len(), shards);
                assert_eq!(ranges[0].start(), 0);
                assert_eq!(ranges.last().unwrap().end(), r);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end(), w[1].start(), "contiguous");
                    assert!(w[0].len() >= w[1].len(), "extra layers lead");
                    assert!(w[0].len() - w[1].len() <= 1, "balanced");
                }
                for rg in &ranges {
                    assert!(rg.start() < rg.end());
                    assert!(rg.contains(rg.start()) && !rg.contains(rg.end()));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn layer_range_partition_rejects_more_shards_than_layers() {
        let _ = LayerRange::partition(3, 4);
    }

    #[test]
    fn layer_range_build_is_the_monolith_slice() {
        // A shard built over [lo, hi) must store exactly the monolith's
        // layers lo..hi — postings, forward views and aggregates — at any
        // thread count, and keep that property through a refresh.
        let g0 = rwd_graph::generators::barabasi_albert(120, 3, 17).unwrap();
        let (r, l, seed) = (7usize, 5u32, 29u64);
        let full = WalkIndex::build(&g0, l, r, seed);
        for shards in [1usize, 2, 3, 7] {
            for range in LayerRange::partition(r, shards) {
                for threads in [1usize, 4] {
                    let part = WalkIndex::build_layer_range(&g0, l, range, seed, threads);
                    assert_eq!(part.r(), range.len());
                    assert_eq!(part.layer_base(), range.start());
                    assert_eq!(part.layer_range(), range);
                    for local in 0..part.r() {
                        for v in g0.nodes() {
                            assert_eq!(
                                part.postings(local, v),
                                full.postings(range.start() + local, v)
                            );
                            assert_eq!(
                                part.forward(local, v),
                                full.forward(range.start() + local, v)
                            );
                        }
                    }
                }
            }
        }

        // Churn: refresh each shard and the monolith; shards must track the
        // monolith's slices (and a from-scratch shard build) bit for bit.
        let (g1, touched) = g0.with_edits(&[(0, 119), (5, 60)], &[]).unwrap();
        let touched = NodeSet::from_nodes(g1.n(), touched);
        let mut full2 = full.clone();
        full2.refresh(&g1, &touched);
        for range in LayerRange::partition(r, 3) {
            let mut part = WalkIndex::build_layer_range(&g0, l, range, seed, 0);
            part.refresh(&g1, &touched);
            let fresh = WalkIndex::build_layer_range(&g1, l, range, seed, 0);
            assert!(part == fresh, "refreshed shard must equal a rebuild");
            for local in 0..part.r() {
                for v in g1.nodes() {
                    assert_eq!(
                        part.postings(local, v),
                        full2.postings(range.start() + local, v)
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_layer_range_build_is_the_monolith_slice() {
        let g = rwd_graph::generators::erdos_renyi_gnp(70, 0.08, 3).unwrap();
        let w = rwd_graph::weighted::weighted_twin(&g, 11).unwrap();
        let full = WalkIndex::build_weighted(&w, 4, 6, 19);
        for range in LayerRange::partition(6, 4) {
            let part = WalkIndex::build_weighted_layer_range(&w, 4, range, 19, 0);
            for local in 0..part.r() {
                for v in g.nodes() {
                    assert_eq!(
                        part.postings(local, v),
                        full.postings(range.start() + local, v)
                    );
                }
            }
        }
    }

    #[test]
    fn shard_save_load_round_trips_via_rwdidx3() {
        let g = paper_example::figure1();
        let range = LayerRange::new(2, 5);
        let part = WalkIndex::build_layer_range(&g, 4, range, 13, 0);
        let dir = std::env::temp_dir().join("rwd_index_io_shard");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.rwdidx");
        part.save(&path).unwrap();
        let loaded = WalkIndex::load(&path).unwrap();
        assert_eq!(loaded.layer_base(), 2);
        assert_eq!(loaded.layer_range(), range);
        assert!(loaded == part);
        // A reloaded shard refreshes with the right absolute RNG streams.
        let (g1, touched) = g.with_edits(&[(0, 7)], &[]).unwrap();
        let touched = NodeSet::from_nodes(g1.n(), touched);
        let mut refreshed = loaded;
        refreshed.refresh(&g1, &touched);
        assert!(refreshed == WalkIndex::build_layer_range(&g1, 4, range, 13, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_layer_range_scopes_a_monolithic_file() {
        let g = paper_example::figure1();
        let full = WalkIndex::build(&g, 4, 6, 13);
        let dir = std::env::temp_dir().join("rwd_index_io_range");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.rwdidx");
        full.save(&path).unwrap();
        let range = LayerRange::new(1, 4);
        let loaded = WalkIndex::load_layer_range(&path, range).unwrap();
        assert!(loaded == WalkIndex::build_layer_range(&g, 4, range, 13, 0));
        // Out-of-bounds ranges and shard files are rejected by name.
        let err = WalkIndex::load_layer_range(&path, LayerRange::new(4, 7)).unwrap_err();
        assert!(err.to_string().contains("layer count"), "{err}");
        let shard_path = dir.join("shard.rwdidx");
        loaded.save(&shard_path).unwrap();
        let err = WalkIndex::load_layer_range(&shard_path, LayerRange::new(0, 1)).unwrap_err();
        assert!(err.to_string().contains("monolithic"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "walk must start at its source")]
    fn from_walks_validates_start() {
        let _ = WalkIndex::from_walks(
            2,
            1,
            &[vec![NodeId(1), NodeId(0)], vec![NodeId(1), NodeId(0)]],
        );
    }
}
