//! Deterministic, splittable random-number streams.
//!
//! Every sampled walk in this workspace is identified by a `(seed, node,
//! walk-index)` triple; [`WalkRng::for_stream`] derives an independent
//! generator for each triple. Parallel builders can therefore split work
//! across threads arbitrarily and still produce identical output — the
//! property the determinism tests in `rwd-walks` and `rwd-core` rely on.
//!
//! The generator is xoshiro256++ seeded through splitmix64, the standard
//! pairing recommended by the xoshiro authors; both are implemented here
//! directly (≈30 lines) to keep the hot path free of trait indirection.

/// One round of the splitmix64 mixing function.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fast, deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct WalkRng {
    s: [u64; 4],
}

impl WalkRng {
    /// Creates a generator from a single seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        WalkRng { s }
    }

    /// Derives the independent stream for `(seed, a, b)` — typically
    /// `(experiment seed, node id, walk index)`.
    pub fn for_stream(seed: u64, a: u64, b: u64) -> Self {
        // Feed the coordinates through splitmix64 sequentially; each output
        // depends on all inputs, so streams are pairwise independent for
        // practical purposes.
        let mut sm = seed ^ 0xA076_1D64_78BD_642F;
        let _ = splitmix64(&mut sm);
        sm ^= a.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        let _ = splitmix64(&mut sm);
        sm ^= b.wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
        Self::from_seed(splitmix64(&mut sm))
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform index in `[0, n)` via Lemire's multiply-shift (no modulo
    /// bias worth caring about at walk-sampling scales, no division).
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = WalkRng::from_seed(7);
        let mut b = WalkRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = WalkRng::from_seed(1);
        let mut b = WalkRng::from_seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_order_independent() {
        // The stream for (s, a, b) must not depend on which other streams
        // were created before it.
        let mut x = WalkRng::for_stream(99, 5, 2);
        let _ = WalkRng::for_stream(99, 1, 0);
        let mut y = WalkRng::for_stream(99, 5, 2);
        for _ in 0..16 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn stream_coordinates_matter() {
        let a = WalkRng::for_stream(1, 2, 3).next_u64();
        assert_ne!(a, WalkRng::for_stream(1, 3, 2).next_u64());
        assert_ne!(a, WalkRng::for_stream(2, 2, 3).next_u64());
        assert_ne!(a, WalkRng::for_stream(1, 2, 4).next_u64());
    }

    #[test]
    fn gen_index_stays_in_range_and_covers() {
        let mut rng = WalkRng::from_seed(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.gen_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_f64_unit_interval_and_roughly_uniform() {
        let mut rng = WalkRng::from_seed(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = WalkRng::from_seed(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }
}
