//! Column storage: every posting column is either heap-owned or borrowed
//! zero-copy from a memory-mapped index file.
//!
//! [`Column<T>`] is the store behind each [`Layer`] column
//! (`offsets`/`ids`/`weights` and the forward triplet) and the per-node
//! aggregate tables. An `Owned` column is a plain `Vec<T>`; a `Mapped`
//! column is an aligned window into an [`MmapRegion`] reinterpreted in
//! place as `[T]` — no parse, no copy, pages fault in on first touch.
//! Both deref to `&[T]`, so every consumer (postings views, point
//! queries, gain engines, `save`) reads the same slice type and cannot
//! observe which store backs it.
//!
//! Mutation promotes: [`Column::make_mut`] copies a mapped column to an
//! owned `Vec` on first write. The refresh path swaps whole rebuilt
//! columns per layer, so promotion lands exactly at layer grain — a
//! promoted-then-edited index is bitwise equal to an owned-then-edited
//! one (see `tests/storage_equivalence.rs`).
//!
//! The mmap itself is a minimal std-only `mmap(2)`/`munmap(2)` FFI
//! wrapper (`PROT_READ`, `MAP_PRIVATE`) — no crates. Zero-copy
//! reinterpretation requires a little-endian host (the on-disk format is
//! little-endian); the open path enforces that with a compile-time gate
//! and falls back to the deserializing loader elsewhere. All downstream
//! accesses go through bounds-checked slices, so even a file that
//! mutates under the map (which `MAP_PRIVATE` leaves unspecified) can
//! only produce wrong query answers or a clean panic — never undefined
//! behaviour. Structural invariants (offset monotonicity) are validated
//! once at open; bulk payloads are trusted under the file's CRC-32
//! trailer.
//!
//! [`Layer`]: crate::index::WalkIndex

use std::fs::File;
use std::io;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

/// Scalars a [`Column`] may store: plain old data with no padding and no
/// invalid bit patterns, stored little-endian on disk. Sealed — the
/// on-disk format only ever holds `u16`/`u32`/`u64` columns.
pub trait Pod: Copy + Send + Sync + Eq + std::fmt::Debug + sealed::Sealed + 'static {}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

impl Pod for u16 {}
impl Pod for u32 {}
impl Pod for u64 {}

/// A read-only `mmap(2)` window over an entire file, unmapped on drop.
///
/// Held in an [`Arc`] by every [`Column`] borrowing from it, so the
/// mapping outlives all views regardless of drop order.
#[derive(Debug)]
pub struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is immutable after creation (PROT_READ) and the
// kernel mapping is process-global; sharing the base pointer across
// threads is sound.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps the whole of `file` read-only.
    ///
    /// Fails with [`io::ErrorKind::Unsupported`] on non-unix hosts and
    /// with [`io::ErrorKind::InvalidData`] for empty files (POSIX forbids
    /// zero-length mappings).
    pub fn map(file: &File) -> io::Result<MmapRegion> {
        sys::map(file)
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped file contents.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe { sys::unmap(self.ptr, self.len) }
    }
}

#[cfg(unix)]
mod sys {
    use super::MmapRegion;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    pub(super) fn map(file: &File) -> io::Result<MmapRegion> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cannot memory-map an empty file",
            ));
        }
        if len > isize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to memory-map",
            ));
        }
        let len = len as usize;
        // SAFETY: fd is a live open file, len > 0, offset 0; a failed map
        // returns MAP_FAILED which we convert to an error.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapRegion {
            ptr: ptr as *const u8,
            len,
        })
    }

    pub(super) unsafe fn unmap(ptr: *const u8, len: usize) {
        munmap(ptr as *mut core::ffi::c_void, len);
    }
}

#[cfg(not(unix))]
mod sys {
    use super::MmapRegion;
    use std::fs::File;
    use std::io;

    pub(super) fn map(_file: &File) -> io::Result<MmapRegion> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory-mapped index storage requires a unix host; use the deserializing load path",
        ))
    }

    pub(super) unsafe fn unmap(_ptr: *const u8, _len: usize) {}
}

/// One posting column: heap-owned or a zero-copy window into a mapped
/// index file. Dereferences to `&[T]` either way.
#[derive(Clone)]
pub struct Column<T: Pod> {
    repr: Repr<T>,
}

#[derive(Clone)]
enum Repr<T: Pod> {
    Owned(Vec<T>),
    Mapped {
        region: Arc<MmapRegion>,
        /// Byte offset of the first element inside the region; the
        /// element pointer `region.ptr + offset` is aligned for `T`
        /// (checked at construction).
        offset: usize,
        /// Element count.
        len: usize,
        _t: PhantomData<T>,
    },
}

impl<T: Pod> Column<T> {
    /// A heap-owned column.
    pub fn owned(v: Vec<T>) -> Column<T> {
        Column {
            repr: Repr::Owned(v),
        }
    }

    /// A zero-copy column over `len` elements starting `offset` bytes
    /// into `region`.
    ///
    /// Fails if the window overruns the region or the element pointer is
    /// not aligned for `T`. Only meaningful on little-endian hosts — the
    /// on-disk encoding is little-endian and is reinterpreted in place;
    /// callers gate on `cfg(target_endian = "little")`.
    pub fn mapped(region: Arc<MmapRegion>, offset: usize, len: usize) -> io::Result<Column<T>> {
        let size = std::mem::size_of::<T>();
        let bytes = len
            .checked_mul(size)
            .ok_or_else(|| bad_col("column length overflows"))?;
        let end = offset
            .checked_add(bytes)
            .ok_or_else(|| bad_col("column window overflows"))?;
        if end > region.len() {
            return Err(bad_col("column window exceeds the mapped file"));
        }
        if !(region.ptr as usize + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(bad_col("column window is misaligned"));
        }
        Ok(Column {
            repr: Repr::Mapped {
                region,
                offset,
                len,
                _t: PhantomData,
            },
        })
    }

    /// The column contents as a slice, whichever store backs them.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v.as_slice(),
            Repr::Mapped {
                region,
                offset,
                len,
                ..
            } => {
                // SAFETY: construction checked bounds and alignment; the
                // region is immutable and outlives self via the Arc; T is
                // Pod so any bit pattern is a valid value.
                unsafe { std::slice::from_raw_parts(region.ptr.add(*offset) as *const T, *len) }
            }
        }
    }

    /// Whether this column borrows from a mapped file.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }

    /// Bytes of heap this column owns (0 when mapped).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Repr::Mapped { .. } => 0,
        }
    }

    /// Bytes this column borrows from a mapped file (0 when owned).
    pub fn mapped_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned(_) => 0,
            Repr::Mapped { len, .. } => len * std::mem::size_of::<T>(),
        }
    }

    /// Mutable access, promoting a mapped column to an owned copy first
    /// (copy-on-write: the mapped bytes are untouched).
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        if let Repr::Mapped { .. } = self.repr {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => unreachable!("just promoted"),
        }
    }

    /// Recovers the backing `Vec` for buffer recycling: the vector itself
    /// for an owned column, an empty one for a mapped column (there is no
    /// heap buffer to recycle — the map stays with its region).
    pub fn take_buffer(self) -> Vec<T> {
        match self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => Vec::new(),
        }
    }
}

impl<T: Pod> Default for Column<T> {
    fn default() -> Self {
        Column::owned(Vec::new())
    }
}

impl<T: Pod> From<Vec<T>> for Column<T> {
    fn from(v: Vec<T>) -> Self {
        Column::owned(v)
    }
}

impl<T: Pod> Deref for Column<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> PartialEq for Column<T> {
    /// Value equality: an owned and a mapped column with the same
    /// contents compare equal (bit-identity is about values, not stores).
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> Eq for Column<T> {}

impl<T: Pod> std::fmt::Debug for Column<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_mapped() {
            write!(f, "Mapped")?;
        }
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

/// The little-endian byte image of a pod slice, for zero-copy section
/// writes. Only correct on little-endian hosts; the V4 save path is
/// gated accordingly.
#[cfg(target_endian = "little")]
pub(crate) fn pod_bytes<T: Pod>(s: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding), and on a little-endian host the
    // in-memory image is the on-disk encoding.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

fn bad_col(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt walk-index file ({msg})"),
    )
}

/// Publishes a process-level storage footprint to the global metrics
/// registry: `rwd_storage_heap_bytes` and `rwd_storage_mapped_bytes`.
/// Callers (engines, servers) set this after construction, recovery and
/// each commit, typically from
/// [`WalkIndex::heap_bytes`](crate::WalkIndex::heap_bytes) /
/// [`WalkIndex::mapped_bytes`](crate::WalkIndex::mapped_bytes) sums, so
/// the metrics endpoint shows resident-vs-mapped split live.
pub fn record_storage_footprint(heap_bytes: usize, mapped_bytes: usize) {
    let m = crate::obs::metrics();
    m.storage_heap_bytes.set(heap_bytes as i64);
    m.storage_mapped_bytes.set(mapped_bytes as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn owned_column_derefs_and_accounts() {
        let c: Column<u32> = Column::owned(vec![1, 2, 3]);
        assert_eq!(&c[..], &[1, 2, 3]);
        assert!(!c.is_mapped());
        assert_eq!(c.heap_bytes(), 12);
        assert_eq!(c.mapped_bytes(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn mapped_column_reads_file_bytes() {
        let dir = std::env::temp_dir().join(format!("rwd-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.bin");
        let vals: Vec<u32> = (0..64).map(|i| i * 3 + 1).collect();
        {
            let mut f = File::create(&path).unwrap();
            for v in &vals {
                f.write_all(&v.to_le_bytes()).unwrap();
            }
        }
        let region = Arc::new(MmapRegion::map(&File::open(&path).unwrap()).unwrap());
        let col: Column<u32> = Column::mapped(region.clone(), 0, vals.len()).unwrap();
        assert!(col.is_mapped());
        assert_eq!(col.heap_bytes(), 0);
        assert_eq!(col.mapped_bytes(), vals.len() * 4);
        assert_eq!(col.as_slice(), &vals[..]);
        // Window beyond the file is rejected.
        assert!(Column::<u32>::mapped(region.clone(), 0, vals.len() + 1).is_err());
        // Misaligned element pointer is rejected (offset 2 within u32s).
        assert!(Column::<u32>::mapped(region.clone(), 2, 1).is_err());
        // Promotion copies the values and drops the map reference.
        let mut col2 = col.clone();
        col2.make_mut()[0] = 99;
        assert_eq!(col2[0], 99);
        assert_eq!(col[0], vals[0]);
        assert!(!col2.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn region_outlives_columns_via_arc() {
        let dir = std::env::temp_dir().join(format!("rwd-storage-arc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.bin");
        std::fs::write(&path, 42u64.to_le_bytes()).unwrap();
        let col: Column<u64> = {
            let region = Arc::new(MmapRegion::map(&File::open(&path).unwrap()).unwrap());
            Column::mapped(region, 0, 1).unwrap()
        };
        // The temporary Arc is gone; the column still reads.
        assert_eq!(col[0], 42);
        std::fs::remove_file(&path).ok();
    }
}
