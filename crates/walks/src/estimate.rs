//! Monte-Carlo estimation of `F1`/`F2` — the paper's Algorithm 2.
//!
//! For every node `u ∉ S` the estimator runs `R` independent L-length walks
//! and records the first-hit statistics `(r, t)`; Eq. (9)/(10) then give the
//! unbiased estimators
//! `ĥ_uS = (Σ t_i + (R − r)·L) / R` and `p̂_uS = r / R`.
//! Lemmas 3.3/3.4 (Hoeffding) bound the `R` needed for an `(ε, δ)`
//! guarantee; [`samples_for_f1`]/[`samples_for_f2`] compute those bounds.
//!
//! Walks are keyed by `(seed, node, walk-index)` streams, so estimates are
//! identical for any thread count.

use rwd_graph::{CsrGraph, NodeId};

use crate::nodeset::NodeSet;
use crate::rng::WalkRng;
use crate::walker;

/// Output of one [`SampleEstimator::estimate`] call.
#[derive(Clone, Debug)]
pub struct Estimates {
    /// Estimated `F1(S) = nL − Σ_{u∉S} ĥ_uS`.
    pub f1: f64,
    /// Estimated `F2(S) = Σ_{u∉S} p̂_uS + |S|`.
    pub f2: f64,
    /// Per-node estimated hitting time `ĥ_uS` (0 for members of `S`).
    pub hit_time: Vec<f64>,
    /// Per-node estimated hit probability `p̂_uS` (1 for members of `S`).
    pub hit_prob: Vec<f64>,
}

impl Estimates {
    /// Average hitting time over non-members: the paper's metric
    /// `M1(S) = Σ_{u∈V\S} h_uS / |V\S|` (AHT). `L` when `S` covers `V`.
    pub fn aht(&self, set: &NodeSet, l: u32) -> f64 {
        let outside = self.hit_time.len() - set.len();
        if outside == 0 {
            return l as f64;
        }
        self.hit_time.iter().sum::<f64>() / outside as f64
    }

    /// Expected number of hitting nodes: the paper's metric
    /// `M2(S) = Σ_u E[X^L_uS]` (EHN). Equals the `f2` field.
    pub fn ehn(&self) -> f64 {
        self.f2
    }
}

/// Algorithm 2: sampling-based estimator for `F1(S)` and `F2(S)`.
///
/// ```
/// use rwd_graph::generators::classic::star;
/// use rwd_graph::NodeId;
/// use rwd_walks::{NodeSet, SampleEstimator};
///
/// // Star graph, target = the hub: every leaf hits at hop 1 exactly, so
/// // even a tiny sample is exact here.
/// let g = star(10).unwrap();
/// let set = NodeSet::from_nodes(10, [NodeId(0)]);
/// let est = SampleEstimator::new(5, 8, 42).estimate(&g, &set);
/// assert_eq!(est.hit_time[3], 1.0);
/// assert_eq!(est.f2, 10.0);
/// ```
#[derive(Clone, Debug)]
pub struct SampleEstimator {
    /// Walk-length bound `L`.
    pub l: u32,
    /// Walks per node `R`.
    pub r: usize,
    /// Base seed; estimates are a pure function of `(graph, S, l, r, seed)`.
    pub seed: u64,
    /// Worker threads (`0` = use all available cores).
    pub threads: usize,
}

impl SampleEstimator {
    /// Creates an estimator with automatic thread count.
    pub fn new(l: u32, r: usize, seed: u64) -> Self {
        SampleEstimator {
            l,
            r,
            seed,
            threads: 0,
        }
    }

    /// Serial estimator (used by tests asserting thread-count invariance).
    pub fn serial(l: u32, r: usize, seed: u64) -> Self {
        SampleEstimator {
            l,
            r,
            seed,
            threads: 1,
        }
    }

    fn effective_threads(&self, n: usize) -> usize {
        crate::parallel::resolve_threads(self.threads).min(n.max(1))
    }

    /// Runs Algorithm 2 for target set `set`.
    pub fn estimate(&self, g: &CsrGraph, set: &NodeSet) -> Estimates {
        let n = g.n();
        assert_eq!(set.capacity(), n, "set universe must match the graph");
        assert!(self.r > 0, "need at least one walk per node");
        let mut hit_time = vec![0.0f64; n];
        let mut hit_prob = vec![0.0f64; n];

        let threads = self.effective_threads(n);
        let chunk = n.div_ceil(threads);
        if n > 0 {
            // Scoped fan-out over disjoint node chunks. Each walk draws from
            // its own (seed, node, walk-index) stream, so the partitioning
            // never influences the sampled values — only who computes them.
            std::thread::scope(|scope| {
                for (ci, (ht, hp)) in hit_time
                    .chunks_mut(chunk)
                    .zip(hit_prob.chunks_mut(chunk))
                    .enumerate()
                {
                    let base = ci * chunk;
                    scope.spawn(move || {
                        for (off, (ht_u, hp_u)) in ht.iter_mut().zip(hp.iter_mut()).enumerate() {
                            let u = NodeId::new(base + off);
                            if set.contains(u) {
                                *ht_u = 0.0;
                                *hp_u = 1.0;
                                continue;
                            }
                            let (t_sum, hits) = self.sample_node(g, u, set);
                            let r = self.r as f64;
                            *ht_u = (t_sum as f64 + (self.r - hits) as f64 * self.l as f64) / r;
                            *hp_u = hits as f64 / r;
                        }
                    });
                }
            });
        }

        let miss_time: f64 = hit_time.iter().sum();
        let f1 = n as f64 * self.l as f64 - miss_time;
        let f2 = hit_prob.iter().sum::<f64>();
        Estimates {
            f1,
            f2,
            hit_time,
            hit_prob,
        }
    }

    /// Runs the `R` walks for one source node; returns `(Σ t_i, r)` of
    /// Algorithm 2 lines 6–11.
    fn sample_node(&self, g: &CsrGraph, u: NodeId, set: &NodeSet) -> (u64, usize) {
        let mut t_sum = 0u64;
        let mut hits = 0usize;
        for i in 0..self.r {
            let mut rng = WalkRng::for_stream(self.seed, u.index() as u64, i as u64);
            if let Some(t) = walker::first_hit(g, u, self.l, set, &mut rng) {
                t_sum += t as u64;
                hits += 1;
            }
        }
        (t_sum, hits)
    }

    /// Algorithm 2 on a weighted graph: identical estimator, transition
    /// probabilities proportional to edge weights (the paper's weighted
    /// extension). Serial — weighted estimation is used at extension-demo
    /// scales.
    pub fn estimate_weighted(
        &self,
        g: &rwd_graph::weighted::WeightedCsrGraph,
        set: &NodeSet,
    ) -> Estimates {
        let n = g.n();
        assert_eq!(set.capacity(), n, "set universe must match the graph");
        assert!(self.r > 0, "need at least one walk per node");
        let mut hit_time = vec![0.0f64; n];
        let mut hit_prob = vec![0.0f64; n];
        for u in 0..n {
            let u_id = NodeId::new(u);
            if set.contains(u_id) {
                hit_prob[u] = 1.0;
                continue;
            }
            let mut t_sum = 0u64;
            let mut hits = 0usize;
            for i in 0..self.r {
                let mut rng = WalkRng::for_stream(self.seed, u as u64, i as u64);
                if let Some(t) = walker::first_hit_weighted(g, u_id, self.l, set, &mut rng) {
                    t_sum += t as u64;
                    hits += 1;
                }
            }
            let r = self.r as f64;
            hit_time[u] = (t_sum as f64 + (self.r - hits) as f64 * self.l as f64) / r;
            hit_prob[u] = hits as f64 / r;
        }
        let miss_time: f64 = hit_time.iter().sum();
        let f1 = n as f64 * self.l as f64 - miss_time;
        let f2 = hit_prob.iter().sum::<f64>();
        Estimates {
            f1,
            f2,
            hit_time,
            hit_prob,
        }
    }
}

/// Lemma 3.3: smallest `R` with
/// `Pr[|F̂1 − F1| ≥ ε(n−|S|)L] ≤ δ`, i.e. `R ≥ ln((n−|S|)/δ) / (2ε²)`.
pub fn samples_for_f1(n: usize, set_size: usize, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    let outside = (n.saturating_sub(set_size)).max(1) as f64;
    ((outside / delta).ln() / (2.0 * eps * eps)).ceil().max(1.0) as usize
}

/// Lemma 3.4: smallest `R` with `Pr[|F̂2 − F2| ≥ εn] ≤ δ`,
/// i.e. `R ≥ ln(n/δ) / (2ε²)`.
pub fn samples_for_f2(n: usize, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    (((n.max(1) as f64) / delta).ln() / (2.0 * eps * eps))
        .ceil()
        .max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting;
    use rwd_graph::generators::{classic, paper_example};

    fn set_of(n: usize, nodes: &[u32]) -> NodeSet {
        NodeSet::from_nodes(n, nodes.iter().map(|&u| NodeId(u)))
    }

    #[test]
    fn members_are_exact() {
        let g = paper_example::figure1();
        let s = set_of(8, &[1, 6]);
        let est = SampleEstimator::new(4, 50, 7).estimate(&g, &s);
        assert_eq!(est.hit_time[1], 0.0);
        assert_eq!(est.hit_prob[6], 1.0);
    }

    #[test]
    fn deterministic_walk_graph_is_estimated_exactly() {
        // Path 0-1 with target {1}: every walk hits at t = 1, so the
        // estimator is exact for any R.
        let g = classic::path(2).unwrap();
        let s = set_of(2, &[1]);
        let est = SampleEstimator::new(5, 10, 3).estimate(&g, &s);
        assert_eq!(est.hit_time[0], 1.0);
        assert_eq!(est.hit_prob[0], 1.0);
        assert!((est.f2 - 2.0).abs() < 1e-12);
        assert!((est.f1 - (2.0 * 5.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn estimates_approach_dp_values() {
        let g = paper_example::figure1();
        let s = set_of(8, &[4, 5]);
        let l = 4;
        let est = SampleEstimator::new(l, 4000, 11).estimate(&g, &s);
        let h = hitting::hitting_time_to_set(&g, &s, l);
        let p = hitting::hit_probability_to_set(&g, &s, l);
        for u in 0..8 {
            assert!(
                (est.hit_time[u] - h[u]).abs() < 0.15,
                "ĥ[{u}] = {} vs {}",
                est.hit_time[u],
                h[u]
            );
            assert!((est.hit_prob[u] - p[u]).abs() < 0.06);
        }
        assert!((est.f1 - hitting::exact_f1(&g, &s, l)).abs() < 0.8);
        assert!((est.f2 - hitting::exact_f2(&g, &s, l)).abs() < 0.4);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = paper_example::figure1();
        let s = set_of(8, &[2]);
        let serial = SampleEstimator::serial(5, 64, 9).estimate(&g, &s);
        let parallel = SampleEstimator {
            l: 5,
            r: 64,
            seed: 9,
            threads: 4,
        }
        .estimate(&g, &s);
        assert_eq!(serial.hit_time, parallel.hit_time);
        assert_eq!(serial.hit_prob, parallel.hit_prob);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = paper_example::figure1();
        let s = set_of(8, &[2]);
        let a = SampleEstimator::new(5, 32, 1).estimate(&g, &s);
        let b = SampleEstimator::new(5, 32, 1).estimate(&g, &s);
        let c = SampleEstimator::new(5, 32, 2).estimate(&g, &s);
        assert_eq!(a.hit_time, b.hit_time);
        assert_ne!(a.hit_time, c.hit_time);
    }

    #[test]
    fn empty_set_estimates() {
        let g = paper_example::figure1();
        let s = NodeSet::new(8);
        let est = SampleEstimator::new(4, 16, 5).estimate(&g, &s);
        assert!(est.f1.abs() < 1e-12);
        assert!(est.f2.abs() < 1e-12);
        assert!(est.hit_time.iter().all(|&h| h == 4.0));
    }

    #[test]
    fn metrics_helpers() {
        let g = paper_example::figure1();
        let s = set_of(8, &[1, 6]);
        let est = SampleEstimator::new(4, 64, 3).estimate(&g, &s);
        let aht = est.aht(&s, 4);
        assert!((aht - est.hit_time.iter().sum::<f64>() / 6.0).abs() < 1e-12);
        assert_eq!(est.ehn(), est.f2);
        // Full coverage: AHT defined as L.
        let full = NodeSet::from_nodes(8, g.nodes());
        let est = SampleEstimator::new(4, 4, 3).estimate(&g, &full);
        assert_eq!(est.aht(&full, 4), 4.0);
        assert!((est.f2 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_bounds_shrink_with_eps() {
        let loose = samples_for_f1(1000, 30, 0.2, 0.05);
        let tight = samples_for_f1(1000, 30, 0.05, 0.05);
        assert!(tight > loose * 10);
        assert!(samples_for_f2(1000, 0.1, 0.1) >= samples_for_f2(10, 0.1, 0.1));
        // Paper remark: R ≈ 100 already gives good accuracy at ε ≈ 0.23,
        // δ = 0.05 for n = 1000.
        assert!(samples_for_f1(1000, 30, 0.25, 0.05) <= 100);
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_r_panics() {
        let g = classic::path(2).unwrap();
        let s = set_of(2, &[1]);
        let _ = SampleEstimator::new(3, 0, 0).estimate(&g, &s);
    }
}
