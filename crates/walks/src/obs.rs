//! Pre-registered handles into the process-wide metrics registry
//! ([`rwd_obs::global`]), created once on first use so the refresh hot
//! path only touches lock-free atomics.

use std::sync::OnceLock;

use rwd_obs::{Counter, Gauge, Histogram};

pub(crate) struct WalkMetrics {
    /// Wall time of one selective-refresh call over a walk index.
    pub refresh_ns: Histogram,
    /// Walk groups re-sampled across every refresh in the process.
    pub groups_resampled: Counter,
    /// Heap-owned posting-column bytes across the process's indexes.
    pub storage_heap_bytes: Gauge,
    /// Mapped (zero-copy, page-cache-backed) posting-column bytes.
    pub storage_mapped_bytes: Gauge,
}

pub(crate) fn metrics() -> &'static WalkMetrics {
    static METRICS: OnceLock<WalkMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rwd_obs::global();
        WalkMetrics {
            refresh_ns: reg.histogram(
                "rwd_walks_refresh_ns",
                "Wall time of one walk-index selective refresh (nanoseconds)",
            ),
            groups_resampled: reg.counter(
                "rwd_walks_groups_resampled_total",
                "Walk (src, layer) groups re-sampled across all refreshes",
            ),
            storage_heap_bytes: reg.gauge(
                "rwd_storage_heap_bytes",
                "Heap-owned walk-index column bytes across the process",
            ),
            storage_mapped_bytes: reg.gauge(
                "rwd_storage_mapped_bytes",
                "Memory-mapped (zero-copy) walk-index column bytes across the process",
            ),
        }
    })
}
