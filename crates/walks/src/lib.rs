//! # rwd-walks
//!
//! L-length random-walk machinery for random-walk domination:
//!
//! * [`rng`] — deterministic per-(node, walk) RNG streams so that every
//!   sampled quantity is reproducible bit-for-bit regardless of thread count,
//! * [`nodeset`] — a flat bitset for target-set membership tests,
//! * [`walker`] — the walk engine (step, record, first-hit queries),
//! * [`hitting`] — exact dynamic programs for the hitting time `h^L_uS`
//!   (Eq. 4), node-to-node hitting time (Eq. 2) and the hit probability
//!   `p^L_uS` (Eq. 8), all-sources in `O(mL)` per call,
//! * [`enumerate`] — brute-force expectations by enumerating every walk on
//!   tiny graphs (an independent test oracle for the DP),
//! * [`estimate`] — the paper's Algorithm 2 Monte-Carlo estimator with the
//!   Hoeffding sample-size bounds of Lemmas 3.3/3.4,
//! * [`index`] — the paper's Algorithm 3 inverted walk index backing the
//!   approximate greedy algorithm (Algorithm 6),
//! * [`delta`] — the compact posting edit script an incremental refresh
//!   emits (removed/added inverted postings per resampled group), the
//!   input to cross-epoch warm starts downstream,
//! * [`point`] — single-node hitting-time / hit-probability / coverage
//!   queries over the index's forward view, `O(postings)` per query and
//!   bit-identical to the full-sweep estimators (the serving-path entry
//!   points),
//! * [`parallel`] — the shared worker-count policy every fan-out uses,
//! * [`storage`] — the column store behind the index: every posting column
//!   is either heap-owned or a zero-copy window into an `mmap(2)`-backed
//!   RWDIDX4 file, promoted to the heap only when first mutated,
//! * [`crc`] — streaming CRC-32 backing the content checksums every
//!   durable artifact (index files, snapshots, journal records) carries.
//!
//! Degree-0 convention: a walk at an isolated node stays put (self-loop
//! semantics) in both the DP and the sampler, so the two always agree.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod delta;
pub mod enumerate;
pub mod estimate;
pub mod hitting;
pub mod index;
pub mod nodeset;
pub(crate) mod obs;
pub mod parallel;
pub mod point;
pub mod rng;
pub mod storage;
pub mod walker;

pub use delta::{LayerDelta, PostingDelta, PostingEdit};
pub use estimate::{Estimates, SampleEstimator};
pub use index::{
    inspect_index_file, IndexFileInfo, LayerRange, LoadStats, Posting, PostingsRef, RefreshStats,
    WalkIndex,
};
pub use nodeset::NodeSet;
pub use point::{top_m_from_counts, PartialContribution};
pub use rng::WalkRng;
pub use storage::{Column, MmapRegion};
