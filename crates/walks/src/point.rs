//! Point queries over the walk index — the serving-path entry points.
//!
//! [`WalkIndex::estimate_hit_times`] and [`WalkIndex::estimate_hit_probs`]
//! answer "what is the estimate for *every* node" in `O(n·R + postings(S))`
//! — the right shape for a greedy sweep, the wrong shape for an online
//! query about *one* node. The entry points here answer single-node
//! questions from the **forward view** instead:
//!
//! * [`WalkIndex::point_hit_time`] / [`WalkIndex::point_hit_prob`] — scan
//!   `forward(i, u)` per layer, `O(Σ_i |forward(i, u)|)` ≤ `O(R·L)` total,
//!   with early exit at the first set member (forward lists are in
//!   ascending hop order, so the first member hit *is* the minimum hop);
//! * [`WalkIndex::coverage`] / [`WalkIndex::top_m_uncovered`] — stream the
//!   inverted lists of the set members only, `O(n + R·|S| + postings(S))`,
//!   never the whole index.
//!
//! Every function reproduces the corresponding full-sweep estimator
//! **bit-identically**: all per-layer contributions are small integers
//! (exactly representable in `f64`, so summation order cannot matter) and
//! the final division by `R` is the same single operation the sweep
//! performs. The serving layer (`rwd-serve`) relies on this to answer
//! queries from a pinned snapshot without ever running a sweep.

use rwd_graph::NodeId;

use crate::index::WalkIndex;
use crate::nodeset::NodeSet;

/// The raw integer numerators of one index's point-query answer — what a
/// shard returns to a scatter-gather coordinator. Per-layer contributions
/// are small integers, so summing `PartialContribution`s across shards in
/// any order and dividing the totals once by the *global* `R` reproduces
/// the monolithic [`WalkIndex::point_hit_time`] /
/// [`WalkIndex::point_hit_prob`] bit for bit.
///
/// Both sums are carried because a layer whose walk first hits the set at
/// hop `L` and a layer that misses entirely contribute the same `L` to
/// `hop_sum` — the hit count cannot be recovered from the hop sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartialContribution {
    /// Layers scanned (the contributing index's `r`).
    pub layers: usize,
    /// Σ over layers of the first-visit hop into the set (`L` on a miss;
    /// `0` per layer when the queried node is itself a member).
    pub hop_sum: u64,
    /// Layers whose walk reaches the set (every layer when the queried
    /// node is a member).
    pub hits: u64,
}

impl PartialContribution {
    /// Accumulates another shard's contribution (integer sums commute, so
    /// merge order never matters).
    pub fn merge(&mut self, other: &PartialContribution) {
        self.layers += other.layers;
        self.hop_sum += other.hop_sum;
        self.hits += other.hits;
    }
}

/// Selects the `m` nodes with the lowest covered-layer count (ties toward
/// the smaller id) from a merged per-node count table, attaching each
/// node's hit probability `count / r`. This is the selection step of
/// [`WalkIndex::top_m_uncovered`], split out so a scatter-gather
/// coordinator that summed per-shard [`WalkIndex::covered_layer_counts`]
/// tables runs the *same* code path as the monolithic query — bit-identical
/// by construction.
pub fn top_m_from_counts(counts: &[u32], r: usize, m: usize) -> Vec<(NodeId, f64)> {
    let mut order: Vec<u32> = (0..counts.len() as u32).collect();
    let m = m.min(order.len());
    if m == 0 {
        return Vec::new();
    }
    let key = |v: &u32| (counts[*v as usize], *v);
    if m < order.len() {
        order.select_nth_unstable_by_key(m - 1, key);
        order.truncate(m);
    }
    order.sort_unstable_by_key(key);
    let r = r as f64;
    order
        .into_iter()
        .map(|v| (NodeId(v), counts[v as usize] as f64 / r))
        .collect()
}

impl WalkIndex {
    /// Point form of [`WalkIndex::estimate_hit_times`]: the estimated
    /// `L`-truncated hitting time `ĥ^L_{u,S}` of the single node `u` into
    /// `set`, in `O(Σ_i |forward(i, u)|)` instead of a full sweep.
    ///
    /// Bit-identical to `estimate_hit_times(set)[u]` for every `u` and
    /// `set` (members score 0; a node whose walk never reaches `set`
    /// scores `L`).
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn point_hit_time(&self, u: NodeId, set: &NodeSet) -> f64 {
        self.check_set(set);
        let r = self.r();
        if set.contains(u) {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for layer in 0..r {
            acc += self.layer_hit_hop(layer, u, set) as f64;
        }
        acc / r as f64
    }

    /// Point form of [`WalkIndex::estimate_hit_probs`]: the estimated hit
    /// probability `p̂^L_{u,S}` of the single node `u` (fraction of layers
    /// whose walk from `u` reaches `set`; members score 1).
    ///
    /// Bit-identical to `estimate_hit_probs(set)[u]`.
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn point_hit_prob(&self, u: NodeId, set: &NodeSet) -> f64 {
        self.check_set(set);
        let r = self.r();
        if set.contains(u) {
            return 1.0;
        }
        let mut hits = 0u32;
        for layer in 0..r {
            let fr = self.forward(layer, u);
            if fr.ids().iter().any(|&id| set.contains(NodeId(id))) {
                hits += 1;
            }
        }
        hits as f64 / r as f64
    }

    /// This index's integer contribution to the point queries for `u` —
    /// the shard-side half of a scatter-gather [`WalkIndex::point_hit_time`]
    /// / [`WalkIndex::point_hit_prob`]: one forward scan per layer yields
    /// both the first-visit hop (`L` on a miss) and the hit flag. A member
    /// `u` contributes hop `0` and a hit for every layer, matching the
    /// monolithic short-circuits after the final division.
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn point_contribution(&self, u: NodeId, set: &NodeSet) -> PartialContribution {
        self.check_set(set);
        let r = self.r();
        if set.contains(u) {
            return PartialContribution {
                layers: r,
                hop_sum: 0,
                hits: r as u64,
            };
        }
        let mut hop_sum = 0u64;
        let mut hits = 0u64;
        for layer in 0..r {
            let fr = self.forward(layer, u);
            let mut hop = self.l();
            let mut hit = false;
            for (&id, &w) in fr.ids().iter().zip(fr.weights()) {
                if set.contains(NodeId(id)) {
                    hop = w as u32;
                    hit = true;
                    break;
                }
            }
            hop_sum += hop as u64;
            hits += hit as u64;
        }
        PartialContribution {
            layers: r,
            hop_sum,
            hits,
        }
    }

    /// First-visit hop of walk `layer` from `u` into `set`, or `L` when the
    /// walk misses. Forward lists are in ascending hop order, so the first
    /// member encountered carries the minimal hop.
    #[inline]
    fn layer_hit_hop(&self, layer: usize, u: NodeId, set: &NodeSet) -> u32 {
        let fr = self.forward(layer, u);
        for (&id, &hop) in fr.ids().iter().zip(fr.weights()) {
            if set.contains(NodeId(id)) {
                return hop as u32;
            }
        }
        self.l()
    }

    /// Expected number of nodes dominated by `set` — the Problem-2
    /// objective `F̂2(set) = Σ_u p̂^L_{u,set}` — computed by streaming only
    /// the set members' inverted lists: `O(n + R·|set| + postings(set))`.
    ///
    /// The per-layer covered counts are integers, so the result equals
    /// `(Σ_i |covered_i|) / R` exactly; it agrees with summing
    /// [`WalkIndex::estimate_hit_probs`] up to the usual floating-point
    /// reassociation of `n` divisions (the per-node fractions themselves
    /// are what is bit-identical, via [`WalkIndex::point_hit_prob`]).
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn coverage(&self, set: &NodeSet) -> f64 {
        let cnt = self.covered_layer_counts(set);
        let total: u64 = cnt.iter().map(|&c| c as u64).sum();
        total as f64 / self.r() as f64
    }

    /// The `m` nodes *least* covered by `set`: lowest estimated hit
    /// probability first, ties broken toward the smaller id. Each entry
    /// carries its hit probability, bit-identical to
    /// `estimate_hit_probs(set)` at that node.
    ///
    /// Cost: `O(n + R·|set| + postings(set))` to count layer hits plus a
    /// partial selection of the `m` smallest — no full-sweep `D`-table.
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn top_m_uncovered(&self, m: usize, set: &NodeSet) -> Vec<(NodeId, f64)> {
        let cnt = self.covered_layer_counts(set);
        top_m_from_counts(&cnt, self.r(), m)
    }

    /// Per-node count of layers whose walk reaches `set` (members count
    /// every layer) — the integer numerator behind
    /// [`WalkIndex::estimate_hit_probs`], produced without a `D`-table
    /// sweep: one stamped pass over the set members' inverted lists.
    ///
    /// Public so a scatter-gather coordinator can sum the per-shard tables
    /// elementwise (each layer's contribution is the same integer the
    /// monolith counts) and run [`top_m_from_counts`] / the coverage
    /// division once over the merged totals.
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn covered_layer_counts(&self, set: &NodeSet) -> Vec<u32> {
        self.check_set(set);
        let n = self.n();
        let mut cnt = vec![0u32; n];
        let mut stamp = vec![u32::MAX; n];
        for layer in 0..self.r() {
            let mark = layer as u32;
            for s in set.iter() {
                if stamp[s.index()] != mark {
                    stamp[s.index()] = mark;
                    cnt[s.index()] += 1;
                }
                for &id in self.postings(layer, s).ids() {
                    let id = id as usize;
                    if stamp[id] != mark {
                        stamp[id] = mark;
                        cnt[id] += 1;
                    }
                }
            }
        }
        cnt
    }

    #[inline]
    fn check_set(&self, set: &NodeSet) {
        assert_eq!(
            set.capacity(),
            self.n(),
            "query set universe must match the index"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::paper_example;

    #[test]
    fn point_queries_match_sweeps_on_figure1() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 5, 11);
        let set = NodeSet::from_nodes(8, [NodeId(1), NodeId(6)]);
        let ht = idx.estimate_hit_times(&set);
        let hp = idx.estimate_hit_probs(&set);
        for v in g.nodes() {
            assert_eq!(
                idx.point_hit_time(v, &set).to_bits(),
                ht[v.index()].to_bits(),
                "hit time {v}"
            );
            assert_eq!(
                idx.point_hit_prob(v, &set).to_bits(),
                hp[v.index()].to_bits(),
                "hit prob {v}"
            );
        }
        let sum: f64 = (0..8).map(|v| idx.point_hit_prob(NodeId(v), &set)).sum();
        assert!((idx.coverage(&set) - sum).abs() < 1e-9);
    }

    #[test]
    fn top_m_uncovered_ranks_by_probability_then_id() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 3, 4, 5);
        let set = NodeSet::from_nodes(8, [NodeId(4)]);
        let hp = idx.estimate_hit_probs(&set);
        let ranked = idx.top_m_uncovered(8, &set);
        assert_eq!(ranked.len(), 8);
        for w in ranked.windows(2) {
            let (a, pa) = w[0];
            let (b, pb) = w[1];
            assert!(pa < pb || (pa == pb && a < b), "order {a}/{b}");
        }
        for &(v, p) in &ranked {
            assert_eq!(p.to_bits(), hp[v.index()].to_bits());
        }
        // A shorter prefix is exactly the head of the full ranking.
        assert_eq!(idx.top_m_uncovered(3, &set), ranked[..3].to_vec());
        assert!(idx.top_m_uncovered(0, &set).is_empty());
        // m beyond n is clamped.
        assert_eq!(idx.top_m_uncovered(99, &set), ranked);
    }

    #[test]
    fn members_and_isolated_nodes_score_trivially() {
        let g = rwd_graph::generators::classic::path(4).unwrap();
        let idx = WalkIndex::build(&g, 3, 2, 9);
        let set = NodeSet::from_nodes(4, [NodeId(2)]);
        assert_eq!(idx.point_hit_time(NodeId(2), &set), 0.0);
        assert_eq!(idx.point_hit_prob(NodeId(2), &set), 1.0);
        // Empty set: everything misses.
        let empty = NodeSet::new(4);
        assert_eq!(idx.point_hit_time(NodeId(0), &empty), 3.0);
        assert_eq!(idx.point_hit_prob(NodeId(0), &empty), 0.0);
        assert_eq!(idx.coverage(&empty), 0.0);
    }

    #[test]
    fn sharded_contributions_merge_to_the_monolithic_answers() {
        use crate::index::LayerRange;
        let g = paper_example::figure1();
        let (l, r, seed) = (4u32, 6usize, 11u64);
        let full = WalkIndex::build(&g, l, r, seed);
        let set = NodeSet::from_nodes(8, [NodeId(1), NodeId(6)]);
        for shards in [1usize, 2, 3, 6] {
            let parts: Vec<WalkIndex> = LayerRange::partition(r, shards)
                .into_iter()
                .map(|rg| WalkIndex::build_layer_range(&g, l, rg, seed, 0))
                .collect();
            // Point queries: merged integer numerators, one final division.
            for v in g.nodes() {
                let mut acc = crate::PartialContribution::default();
                for p in &parts {
                    acc.merge(&p.point_contribution(v, &set));
                }
                assert_eq!(acc.layers, r);
                let ht = if set.contains(v) {
                    0.0
                } else {
                    acc.hop_sum as f64 / r as f64
                };
                let hp = if set.contains(v) {
                    1.0
                } else {
                    acc.hits as f64 / r as f64
                };
                assert_eq!(ht.to_bits(), full.point_hit_time(v, &set).to_bits());
                assert_eq!(hp.to_bits(), full.point_hit_prob(v, &set).to_bits());
            }
            // Set queries: summed per-shard count tables drive the same
            // selection and coverage the monolith computes.
            let mut cnt = vec![0u32; 8];
            for p in &parts {
                for (a, b) in cnt.iter_mut().zip(p.covered_layer_counts(&set)) {
                    *a += b;
                }
            }
            let total: u64 = cnt.iter().map(|&c| c as u64).sum();
            let coverage = total as f64 / r as f64;
            assert_eq!(coverage.to_bits(), full.coverage(&set).to_bits());
            assert_eq!(top_m_from_counts(&cnt, r, 5), full.top_m_uncovered(5, &set));
        }
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn mismatched_universe_panics() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 2, 1, 1);
        idx.point_hit_time(NodeId(0), &NodeSet::new(5));
    }
}
