//! Brute-force walk enumeration — an independent test oracle.
//!
//! For tiny graphs it is feasible to enumerate *every* realization of an
//! L-length random walk together with its probability and compute exact
//! expectations directly from the definition (Eq. 3), with no dynamic
//! programming involved. The property tests compare [`crate::hitting`]
//! against these values; agreement to 1e-10 on random small graphs is strong
//! evidence both are right, since the two code paths share nothing.
//!
//! The recursion tracks the *partial* expectation `E[t_hit · 1{hit}]`
//! together with the hit probability: both compose linearly over neighbor
//! choices, and the truncated expectation follows as
//! `E[T^L] = E[t_hit · 1{hit}] + (1 − p) · L`.

use rwd_graph::{CsrGraph, NodeId};

use crate::nodeset::NodeSet;

/// Returns `(E[t_hit · 1{hit within l}], Pr[hit within l])` for a walk at
/// `u` with `l` hops remaining, where `t_hit` counts hops from now.
/// Cost `O(maxdeg^l)` — keep the graph tiny.
fn explore(g: &CsrGraph, u: NodeId, set: &NodeSet, l: u32) -> (f64, f64) {
    if set.contains(u) {
        return (0.0, 1.0);
    }
    if l == 0 {
        return (0.0, 0.0);
    }
    let nbrs = g.neighbors(u);
    if nbrs.is_empty() {
        // Stay-put convention: burn a hop at u.
        let (pe, pp) = explore(g, u, set, l - 1);
        return (pe + pp, pp); // every hit path is one hop longer
    }
    let share = 1.0 / nbrs.len() as f64;
    let mut partial = 0.0;
    let mut prob = 0.0;
    for &w in nbrs {
        let (pe, pp) = explore(g, w, set, l - 1);
        partial += share * (pe + pp);
        prob += share * pp;
    }
    (partial, prob)
}

/// Exact `E[T^L_uS]` (the generalized hitting time, Eq. 3) by enumeration.
pub fn hit_expectation(g: &CsrGraph, start: NodeId, set: &NodeSet, l: u32) -> f64 {
    let (partial, prob) = explore(g, start, set, l);
    partial + (1.0 - prob) * l as f64
}

/// Exact `p^L_uS = Pr[walk from u hits S within L]` by enumeration.
pub fn hit_probability(g: &CsrGraph, start: NodeId, set: &NodeSet, l: u32) -> f64 {
    explore(g, start, set, l).1
}

/// Exact `F1(S) = nL − Σ_{u∉S} E[T^L_uS]` by enumeration.
pub fn f1(g: &CsrGraph, set: &NodeSet, l: u32) -> f64 {
    let miss: f64 = g
        .nodes()
        .filter(|u| !set.contains(*u))
        .map(|u| hit_expectation(g, u, set, l))
        .sum();
    g.n() as f64 * l as f64 - miss
}

/// Exact `F2(S) = Σ_u p^L_uS` by enumeration (members count 1).
pub fn f2(g: &CsrGraph, set: &NodeSet, l: u32) -> f64 {
    g.nodes().map(|u| hit_probability(g, u, set, l)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting;
    use rwd_graph::generators::{classic, paper_example};

    fn set_of(n: usize, nodes: &[u32]) -> NodeSet {
        NodeSet::from_nodes(n, nodes.iter().map(|&u| NodeId(u)))
    }

    #[test]
    fn path_hand_computed_values() {
        // Path 0-1-2, target {2}, l = 2. From 1: step to 0 or 2 equally;
        // hit at t=1 w.p. 1/2, else t truncates at 2. E = 1/2·1 + 1/2·2 = 1.5.
        let g = classic::path(3).unwrap();
        let s = set_of(3, &[2]);
        assert!((hit_expectation(&g, NodeId(1), &s, 2) - 1.5).abs() < 1e-12);
        assert!((hit_probability(&g, NodeId(1), &s, 2) - 0.5).abs() < 1e-12);
        // From 0: forced to 1, then 1/2 to hit at t=2. E = 1/2·2 + 1/2·2 = 2.
        assert!((hit_expectation(&g, NodeId(0), &s, 2) - 2.0).abs() < 1e-12);
        assert!((hit_probability(&g, NodeId(0), &s, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_dp_on_figure1() {
        let g = paper_example::figure1();
        let s = set_of(8, &[4, 5]);
        for l in 0..=5 {
            let dp = hitting::hitting_time_to_set(&g, &s, l);
            let pp = hitting::hit_probability_to_set(&g, &s, l);
            for u in g.nodes() {
                let e = hit_expectation(&g, u, &s, l);
                let p = hit_probability(&g, u, &s, l);
                assert!(
                    (e - dp[u.index()]).abs() < 1e-10,
                    "E mismatch u={u} l={l}: enum {e} dp {}",
                    dp[u.index()]
                );
                assert!((p - pp[u.index()]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn matches_dp_with_isolated_node() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let s = set_of(4, &[0]);
        for l in 0..=4 {
            let dp = hitting::hitting_time_to_set(&g, &s, l);
            for u in g.nodes() {
                let e = hit_expectation(&g, u, &s, l);
                assert!((e - dp[u.index()]).abs() < 1e-10, "u={u} l={l}");
            }
        }
    }

    #[test]
    fn f1_f2_match_dp_on_small_cycle() {
        let g = classic::cycle(5).unwrap();
        let s = set_of(5, &[0, 2]);
        for l in 0..=5 {
            assert!((f1(&g, &s, l) - hitting::exact_f1(&g, &s, l)).abs() < 1e-10);
            assert!((f2(&g, &s, l) - hitting::exact_f2(&g, &s, l)).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_set_expectation_is_l() {
        let g = classic::cycle(4).unwrap();
        let s = NodeSet::new(4);
        assert!((hit_expectation(&g, NodeId(0), &s, 3) - 3.0).abs() < 1e-12);
        assert_eq!(hit_probability(&g, NodeId(0), &s, 3), 0.0);
    }
}
