//! Streaming CRC-32 (IEEE 802.3 polynomial) for on-disk integrity.
//!
//! Every durable artifact in the system — RWDIDX2/3 index files, engine
//! snapshots, journal records — carries a content checksum so bit rot is
//! detected at load instead of silently served. The implementation is the
//! classic reflected table-driven CRC-32 (polynomial `0xEDB88320`), the
//! same function zlib/PNG/ethernet use, so externally produced checksums
//! (`crc32(b"123456789") == 0xCBF43926`) agree.

/// Incremental CRC-32 hasher over a byte stream.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorbs `bytes` into the running checksum.
    ///
    /// Uses slicing-by-8: eight precomputed tables let the loop fold one
    /// aligned 8-byte word per iteration instead of one byte, which is what
    /// keeps whole-index checksum verification off the snapshot-recovery
    /// critical path.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ s;
            let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
            s = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            s = (s >> 8) ^ TABLES[0][((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// Finishes the checksum without consuming the hasher.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Reflected CRC-32 lookup tables for polynomial `0xEDB88320`, built at
/// compile time. `TABLES[0]` is the classic one-byte table; `TABLES[k]`
/// advances a byte `k` positions through the shift register, so the eight
/// tables together fold a 64-bit word in one step (slicing-by-8).
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
