//! Streaming CRC-32 (IEEE 802.3 polynomial) for on-disk integrity.
//!
//! Every durable artifact in the system — RWDIDX2/3 index files, engine
//! snapshots, journal records — carries a content checksum so bit rot is
//! detected at load instead of silently served. The implementation is the
//! classic reflected table-driven CRC-32 (polynomial `0xEDB88320`), the
//! same function zlib/PNG/ethernet use, so externally produced checksums
//! (`crc32(b"123456789") == 0xCBF43926`) agree.

/// Incremental CRC-32 hasher over a byte stream.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorbs `bytes` into the running checksum.
    ///
    /// Uses slicing-by-8: eight precomputed tables let the loop fold one
    /// aligned 8-byte word per iteration instead of one byte, which is what
    /// keeps whole-index checksum verification off the snapshot-recovery
    /// critical path.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ s;
            let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
            s = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            s = (s >> 8) ^ TABLES[0][((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// Finishes the checksum without consuming the hasher.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Combines two independently computed checksums: for any split
/// `m = a ++ b`, `crc32_combine(crc32(a), crc32(b), b.len()) == crc32(m)`.
///
/// CRC-32 is linear over GF(2): appending `len2` bytes to `a` multiplies
/// its shift-register state by `x^(8·len2)` (mod the polynomial), and
/// that operator is a 32×32 bit matrix applied by square-and-multiply —
/// `O(log len2)` matrix squarings, independent of the data (zlib's
/// `crc32_combine`). This is what lets one whole-file sweep be computed
/// as parallel per-chunk sweeps and folded exactly.
pub fn crc32_combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    // odd = the operator advancing the register by ONE zero bit.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    let mut row = 1u32;
    for slot in odd.iter_mut().skip(1) {
        *slot = row;
        row <<= 1;
    }
    let mut even = [0u32; 32];
    gf2_matrix_square(&mut even, &odd); // 2 zero bits
    gf2_matrix_square(&mut odd, &even); // 4 zero bits
    let (mut crc1, mut len2) = (crc1, len2);
    // Square-and-multiply over the bits of 8·len2 (the ×256 head start is
    // why the loop starts from the 4-bit operator and squares first).
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

/// CRC-32 of an in-memory slice, computed by up to `threads` workers over
/// contiguous chunks and folded with [`crc32_combine`] — bit-identical to
/// [`crc32`] at any worker count. This is the mapped open's one content
/// sweep: the checksum is the only O(file) work on that path, so it is
/// the only part worth parallelizing. Chunks stay ≥ 1 MiB (below that,
/// thread spawn costs more than the hash), and `threads <= 1` or a small
/// input degrade to the sequential sweep.
pub fn crc32_parallel(bytes: &[u8], threads: usize) -> u32 {
    const MIN_CHUNK: usize = 1 << 20;
    let workers = threads.clamp(1, bytes.len().div_ceil(MIN_CHUNK).max(1));
    if workers <= 1 {
        return crc32(bytes);
    }
    let chunk = bytes.len().div_ceil(workers);
    let parts: Vec<(u32, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bytes
            .chunks(chunk)
            .map(|c| scope.spawn(move || (crc32(c), c.len() as u64)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("crc worker"))
            .collect()
    });
    let mut acc = 0u32;
    for (c, len) in parts {
        acc = crc32_combine(acc, c, len);
    }
    acc
}

fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Reflected CRC-32 lookup tables for polynomial `0xEDB88320`, built at
/// compile time. `TABLES[0]` is the classic one-byte table; `TABLES[k]`
/// advances a byte `k` positions through the shift register, so the eight
/// tables together fold a 64-bit word in one step (slicing-by-8).
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn combine_equals_one_shot_at_every_split() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5_000).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 64, 2_499, 4_999, 5_000] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                whole,
                "split at {split}"
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_at_any_worker_count() {
        let data: Vec<u8> = (0..4_000_000usize).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32(&data);
        for threads in [0, 1, 2, 3, 7, 16] {
            assert_eq!(crc32_parallel(&data, threads), whole, "{threads} workers");
        }
        assert_eq!(crc32_parallel(b"", 8), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
