//! The L-length random-walk engine.
//!
//! An *L-length random walk* (paper §2) starts at a node and takes at most
//! `L` uniform-neighbor steps; nodes may repeat. A walk standing on an
//! isolated node stays put (documented degree-0 convention).

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, NodeId};

use crate::nodeset::NodeSet;
use crate::rng::WalkRng;

/// Takes one uniform step from `u`, or stays if `u` is isolated.
#[inline]
pub fn step(g: &CsrGraph, u: NodeId, rng: &mut WalkRng) -> NodeId {
    let nbrs = g.neighbors(u);
    if nbrs.is_empty() {
        u
    } else {
        nbrs[rng.gen_index(nbrs.len())]
    }
}

/// Runs an L-length walk from `start`, writing the visited sequence
/// (including `start`, so `l + 1` entries) into `out`.
pub fn record_walk(g: &CsrGraph, start: NodeId, l: u32, rng: &mut WalkRng, out: &mut Vec<NodeId>) {
    out.clear();
    out.reserve(l as usize + 1);
    let mut u = start;
    out.push(u);
    for _ in 0..l {
        u = step(g, u, rng);
        out.push(u);
    }
}

/// Simulates an L-length walk from `start` and returns the hop count at
/// which it *first* enters `set` — the sampled value of `min{t : Z_t ∈ S}`
/// from Eq. (3) — or `None` if the walk does not hit within `l` hops.
///
/// Hop 0 counts: if `start ∈ set` the result is `Some(0)` without stepping.
pub fn first_hit(
    g: &CsrGraph,
    start: NodeId,
    l: u32,
    set: &NodeSet,
    rng: &mut WalkRng,
) -> Option<u32> {
    if set.contains(start) {
        return Some(0);
    }
    let mut u = start;
    for t in 1..=l {
        u = step(g, u, rng);
        if set.contains(u) {
            return Some(t);
        }
    }
    None
}

/// The sampled value of the truncated variable `T^L_uS` (Eq. 3): the first
/// hit hop, or `l` when the walk never hits.
#[inline]
pub fn truncated_hit_time(
    g: &CsrGraph,
    start: NodeId,
    l: u32,
    set: &NodeSet,
    rng: &mut WalkRng,
) -> u32 {
    first_hit(g, start, l, set, rng).unwrap_or(l)
}

/// Weighted-graph variant of [`step`]: neighbor chosen with probability
/// proportional to edge weight via the O(1) alias table (one uniform draw
/// per step, no binary search).
#[inline]
pub fn step_weighted(g: &WeightedCsrGraph, u: NodeId, rng: &mut WalkRng) -> NodeId {
    g.pick_neighbor_alias(u, rng.gen_f64()).unwrap_or(u)
}

/// Weighted-graph variant of [`first_hit`].
pub fn first_hit_weighted(
    g: &WeightedCsrGraph,
    start: NodeId,
    l: u32,
    set: &NodeSet,
    rng: &mut WalkRng,
) -> Option<u32> {
    if set.contains(start) {
        return Some(0);
    }
    let mut u = start;
    for t in 1..=l {
        u = step_weighted(g, u, rng);
        if set.contains(u) {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::{classic, paper_example};

    #[test]
    fn record_walk_has_l_plus_one_entries_and_valid_edges() {
        let g = paper_example::figure1();
        let mut rng = WalkRng::from_seed(5);
        let mut buf = Vec::new();
        record_walk(&g, NodeId(0), 4, &mut rng, &mut buf);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf[0], NodeId(0));
        for w in buf.windows(2) {
            assert!(
                g.has_edge(w[0], w[1]),
                "step {:?} -> {:?} not an edge",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn isolated_node_walk_stays_put() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rng = WalkRng::from_seed(1);
        let mut buf = Vec::new();
        record_walk(&g, NodeId(2), 3, &mut rng, &mut buf);
        assert_eq!(buf, vec![NodeId(2); 4]);
    }

    #[test]
    fn first_hit_zero_for_member_start() {
        let g = paper_example::figure1();
        let set = NodeSet::from_nodes(g.n(), [NodeId(0)]);
        let mut rng = WalkRng::from_seed(2);
        assert_eq!(first_hit(&g, NodeId(0), 4, &set, &mut rng), Some(0));
    }

    #[test]
    fn first_hit_on_path_is_deterministic_at_forced_moves() {
        // Path 0-1: from 0 the only move is to 1.
        let g = classic::path(2).unwrap();
        let set = NodeSet::from_nodes(2, [NodeId(1)]);
        let mut rng = WalkRng::from_seed(3);
        assert_eq!(first_hit(&g, NodeId(0), 4, &set, &mut rng), Some(1));
    }

    #[test]
    fn miss_returns_none_and_truncation_returns_l() {
        // Path 0-1-2-3, target {3}, l = 1: cannot reach from 0.
        let g = classic::path(4).unwrap();
        let set = NodeSet::from_nodes(4, [NodeId(3)]);
        let mut rng = WalkRng::from_seed(4);
        assert_eq!(first_hit(&g, NodeId(0), 1, &set, &mut rng), None);
        let mut rng = WalkRng::from_seed(4);
        assert_eq!(truncated_hit_time(&g, NodeId(0), 1, &set, &mut rng), 1);
    }

    #[test]
    fn empty_target_set_never_hits() {
        let g = paper_example::figure1();
        let set = NodeSet::new(g.n());
        let mut rng = WalkRng::from_seed(9);
        assert_eq!(first_hit(&g, NodeId(0), 10, &set, &mut rng), None);
    }

    #[test]
    fn weighted_walk_follows_heavy_edge() {
        use rwd_graph::weighted::WeightedCsrGraph;
        // Node 0's neighbors: 1 (weight 1e-9) and 2 (weight 1e9); a single
        // step should essentially always pick 2.
        let g = WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1e-9), (0, 2, 1e9)]).unwrap();
        let mut rng = WalkRng::from_seed(10);
        let hits = (0..200)
            .filter(|_| step_weighted(&g, NodeId(0), &mut rng) == NodeId(2))
            .count();
        assert_eq!(hits, 200);
    }

    #[test]
    fn weighted_first_hit_member_start() {
        use rwd_graph::weighted::WeightedCsrGraph;
        let g = WeightedCsrGraph::from_weighted_edges(2, &[(0, 1, 1.0)]).unwrap();
        let set = NodeSet::from_nodes(2, [NodeId(1)]);
        let mut rng = WalkRng::from_seed(11);
        assert_eq!(
            first_hit_weighted(&g, NodeId(1), 3, &set, &mut rng),
            Some(0)
        );
        assert_eq!(
            first_hit_weighted(&g, NodeId(0), 3, &set, &mut rng),
            Some(1)
        );
    }
}
