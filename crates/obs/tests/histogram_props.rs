//! Property tests for the histogram semantics the whole workspace leans
//! on: lossless merge, exposition round-trip, and lock-free recording.

use proptest::prelude::*;
use rwd_obs::{bucket_bounds, bucket_index, text, Histogram, Registry, BUCKETS};

/// Arbitrary latency-like values spanning every octave, generated from a
/// (mantissa, shift) pair so large magnitudes are as likely as small ones.
fn value_strategy() -> impl Strategy<Value = u64> {
    (0u64..1024, 0u32..63).prop_map(|(m, s)| m.wrapping_shl(s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) answers every quantile exactly as a histogram that
    /// recorded the concatenation of both sample streams — quantiles are a
    /// pure function of bucket counts, and merge adds them losslessly.
    #[test]
    fn merge_quantiles_equal_concatenation(
        xs in collection::vec(value_strategy(), 1..200),
        ys in collection::vec(value_strategy(), 1..200),
    ) {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), both.snapshot());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let (merged, concat) = (a.quantile(q), both.quantile(q));
            prop_assert!(
                merged == concat,
                "q={} diverged: merged {} vs concatenated {}",
                q, merged, concat
            );
        }
    }

    /// Every recorded value lands in a bucket whose bounds contain it, and
    /// the rendered text exposition decodes back to identical bucket
    /// counts and sum (lossless round-trip).
    #[test]
    fn exposition_round_trip_is_lossless(
        vs in collection::vec(value_strategy(), 1..300),
    ) {
        let reg = Registry::new();
        let h = reg.histogram_with("rwd_prop_ns", "prop", &[("endpoint", "prop")]);
        for &v in &vs {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            prop_assert!(lo <= v && v <= hi, "value {} outside [{}, {}]", v, lo, hi);
            h.record(v);
        }
        let samples = match text::parse(&reg.render()) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(e)),
        };
        let decoded = text::histogram_snapshot(&samples, "rwd_prop_ns", &[("endpoint", "prop")]);
        prop_assert_eq!(decoded, Some(h.snapshot()));
    }
}

/// Bucket boundaries are monotone and tile the whole `u64` domain with no
/// gaps or overlaps — checked by full enumeration, not sampling.
#[test]
fn bucket_boundaries_monotone_and_exhaustive() {
    let mut next_expected = 0u64;
    for i in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(
            lo,
            next_expected,
            "bucket {i} does not start where {} ended",
            i.max(1) - 1
        );
        assert!(hi >= lo);
        assert_eq!(bucket_index(lo), i);
        assert_eq!(bucket_index(hi), i);
        if hi == u64::MAX {
            assert_eq!(i, BUCKETS - 1);
            return;
        }
        next_expected = hi + 1;
    }
    panic!("buckets never reached u64::MAX");
}

/// Eight threads hammering one histogram (and its clones) lose no counts:
/// the final count, sum, and per-bucket totals equal the arithmetic truth.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across octaves per thread.
                    h.record((i % 97) << (t % 11));
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    let mut expected_sum = 0u64;
    let mut expected_buckets = vec![0u64; BUCKETS];
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let v = (i % 97) << (t % 11);
            expected_sum = expected_sum.wrapping_add(v);
            expected_buckets[bucket_index(v)] += 1;
        }
    }
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.buckets, expected_buckets);
}
