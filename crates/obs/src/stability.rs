//! Answer-stability telemetry across published epochs.
//!
//! The concentration results for random-graph domination (Glebov–Liebenau–
//! Szabó; Ganesan — see PAPERS.md) predict that the dominating set of an
//! evolving graph barely moves per churn batch: the domination number is
//! concentrated on two consecutive values, and near-optimal seed sets stay
//! near-optimal under bounded perturbation. [`EpochStabilityTracker`] turns
//! that prediction into a measured per-epoch signal — seed-set Jaccard
//! similarity, seeds swapped, objective drift, coverage churn — which can
//! later justify serving slightly-stale cached answers under load.

use std::collections::HashSet;

/// Stability measurements for one published epoch, relative to the
/// previously observed epoch. The first observation has no predecessor:
/// its Jaccard is `1.0` and every drift is zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochRecord {
    /// The epoch these measurements describe.
    pub epoch: u64,
    /// Seed-set size at this epoch.
    pub seeds: usize,
    /// Jaccard similarity `|prev ∩ cur| / |prev ∪ cur|` of the seed sets.
    pub jaccard: f64,
    /// Seeds present previously but gone now (`|prev \ cur|`).
    pub seeds_swapped: usize,
    /// Objective value at this epoch.
    pub objective: f64,
    /// Signed objective change vs the previous epoch.
    pub objective_drift: f64,
    /// Coverage fraction at this epoch, when the caller supplied one.
    pub coverage: Option<f64>,
    /// Signed coverage change vs the previous epoch, when both sides
    /// supplied coverage.
    pub coverage_delta: Option<f64>,
}

/// End-of-trace aggregate over every transition a tracker observed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StabilitySummary {
    /// Observed epochs (including the baseline first one).
    pub epochs: usize,
    /// Mean seed-set Jaccard over transitions (1.0 when < 2 epochs).
    pub mean_jaccard: f64,
    /// Worst (smallest) transition Jaccard (1.0 when < 2 epochs).
    pub min_jaccard: f64,
    /// Total seeds swapped out across all transitions.
    pub total_swapped: usize,
    /// Mean `|objective_drift|` over transitions.
    pub mean_abs_objective_drift: f64,
    /// Largest `|objective_drift|` over any transition.
    pub max_abs_objective_drift: f64,
    /// Largest `|coverage_delta|` over any transition, when measured.
    pub max_abs_coverage_delta: Option<f64>,
}

/// Records per-epoch answer-stability metrics: feed it the published seed
/// set (as raw node ids), objective, and optionally a coverage fraction
/// after every committed batch; it returns the transition measurements and
/// keeps the full history for an end-of-trace [`StabilitySummary`].
#[derive(Clone, Debug, Default)]
pub struct EpochStabilityTracker {
    prev: Option<Prev>,
    history: Vec<EpochRecord>,
}

#[derive(Clone, Debug)]
struct Prev {
    seeds: HashSet<u32>,
    objective: f64,
    coverage: Option<f64>,
}

impl EpochStabilityTracker {
    /// A tracker with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one published epoch and returns its stability record
    /// (also appended to [`EpochStabilityTracker::history`]).
    pub fn observe(
        &mut self,
        epoch: u64,
        seeds: &[u32],
        objective: f64,
        coverage: Option<f64>,
    ) -> EpochRecord {
        let cur: HashSet<u32> = seeds.iter().copied().collect();
        let record = match &self.prev {
            None => EpochRecord {
                epoch,
                seeds: cur.len(),
                jaccard: 1.0,
                seeds_swapped: 0,
                objective,
                objective_drift: 0.0,
                coverage,
                coverage_delta: None,
            },
            Some(prev) => {
                let inter = prev.seeds.intersection(&cur).count();
                let union = prev.seeds.len() + cur.len() - inter;
                EpochRecord {
                    epoch,
                    seeds: cur.len(),
                    jaccard: if union == 0 {
                        1.0
                    } else {
                        inter as f64 / union as f64
                    },
                    seeds_swapped: prev.seeds.len() - inter,
                    objective,
                    objective_drift: objective - prev.objective,
                    coverage,
                    coverage_delta: match (prev.coverage, coverage) {
                        (Some(p), Some(c)) => Some(c - p),
                        _ => None,
                    },
                }
            }
        };
        self.prev = Some(Prev {
            seeds: cur,
            objective,
            coverage,
        });
        self.history.push(record);
        record
    }

    /// Every observation so far, in order.
    pub fn history(&self) -> &[EpochRecord] {
        &self.history
    }

    /// Aggregates over all transitions (observations after the first).
    pub fn summary(&self) -> StabilitySummary {
        let transitions = &self.history[self.history.len().min(1)..];
        let n = transitions.len();
        let mut s = StabilitySummary {
            epochs: self.history.len(),
            mean_jaccard: 1.0,
            min_jaccard: 1.0,
            total_swapped: 0,
            mean_abs_objective_drift: 0.0,
            max_abs_objective_drift: 0.0,
            max_abs_coverage_delta: None,
        };
        if n == 0 {
            return s;
        }
        s.mean_jaccard = transitions.iter().map(|r| r.jaccard).sum::<f64>() / n as f64;
        s.min_jaccard = transitions.iter().map(|r| r.jaccard).fold(1.0, f64::min);
        s.total_swapped = transitions.iter().map(|r| r.seeds_swapped).sum();
        s.mean_abs_objective_drift = transitions
            .iter()
            .map(|r| r.objective_drift.abs())
            .sum::<f64>()
            / n as f64;
        s.max_abs_objective_drift = transitions
            .iter()
            .map(|r| r.objective_drift.abs())
            .fold(0.0, f64::max);
        s.max_abs_coverage_delta = transitions
            .iter()
            .filter_map(|r| r.coverage_delta)
            .map(f64::abs)
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_epoch_is_the_baseline() {
        let mut t = EpochStabilityTracker::new();
        let r = t.observe(1, &[1, 2, 3], 10.0, Some(0.9));
        assert_eq!(r.jaccard, 1.0);
        assert_eq!(r.seeds_swapped, 0);
        assert_eq!(r.objective_drift, 0.0);
        assert_eq!(r.coverage_delta, None);
    }

    #[test]
    fn transitions_measure_swap_and_drift() {
        let mut t = EpochStabilityTracker::new();
        t.observe(1, &[1, 2, 3, 4], 10.0, Some(0.90));
        let r = t.observe(2, &[1, 2, 3, 9], 9.5, Some(0.92));
        // |∩| = 3, |∪| = 5.
        assert!((r.jaccard - 0.6).abs() < 1e-12);
        assert_eq!(r.seeds_swapped, 1);
        assert!((r.objective_drift + 0.5).abs() < 1e-12);
        assert!((r.coverage_delta.unwrap() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates_transitions_only() {
        let mut t = EpochStabilityTracker::new();
        assert_eq!(t.summary().epochs, 0);
        t.observe(1, &[1, 2], 5.0, None);
        let s = t.summary();
        assert_eq!((s.epochs, s.total_swapped), (1, 0));
        assert_eq!(s.mean_jaccard, 1.0);
        t.observe(2, &[2, 3], 6.0, None);
        t.observe(3, &[2, 3], 6.0, None);
        let s = t.summary();
        assert_eq!(s.epochs, 3);
        assert_eq!(s.total_swapped, 1);
        // Transitions: jaccard 1/3 then 1.
        assert!((s.mean_jaccard - (1.0 / 3.0 + 1.0) / 2.0).abs() < 1e-12);
        assert!((s.min_jaccard - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.max_abs_objective_drift - 1.0).abs() < 1e-12);
        assert_eq!(s.max_abs_coverage_delta, None);
    }
}
