//! Lock-free metric primitives: counters, gauges, and the log-linear
//! histogram that backs every latency measurement in the workspace.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sub-buckets per power-of-two octave. 32 sub-buckets bound the relative
/// quantization error of any recorded value by 1/32 ≈ 3.1%, which keeps
/// histogram-derived p99 ratios honest for the CI gates.
const SUBS: u64 = 32;

/// Total bucket count: 64 exact unit buckets for values `< 64`, then 32
/// sub-buckets for each of the 58 remaining octaves up to `u64::MAX`.
pub const BUCKETS: usize = (2 * SUBS + 58 * SUBS) as usize;

/// Maps a recorded value to its bucket index. Values below 64 get exact
/// width-1 buckets; above, each power-of-two octave `[2^m, 2^{m+1})` splits
/// into 32 equal sub-buckets.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 * SUBS {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = msb - 5;
        ((shift + 1) * SUBS + (v >> shift) - SUBS) as usize
    }
}

/// Inverse of [`bucket_index`]: the inclusive `[lower, upper]` value range
/// of bucket `index`. Boundaries are monotone in `index` and tile `u64`
/// exactly — properties the obs test suite holds by enumeration.
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let i = index as u64;
    if i < 2 * SUBS {
        (i, i)
    } else {
        let octave = i / SUBS - 1;
        let lower = (SUBS + i % SUBS) << octave;
        let width = 1u64 << octave;
        (lower, lower + (width - 1))
    }
}

/// A monotone event counter. Cloning shares the underlying atomic, so a
/// handle registered once can be copied onto hot paths for free.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Point-in-time value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, pinned snapshots, published
/// epoch). Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Point-in-time value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// A lock-free log-linear histogram with exact integer counts.
///
/// Values (by convention: nanoseconds) land in one of [`BUCKETS`] buckets —
/// exact below 64, then 32 sub-buckets per power-of-two octave, bounding
/// relative quantization error by ~3.1% across the full `u64` range. Both
/// the bucket counts and the running sum are plain relaxed atomics, so
/// recording is wait-free and a [`HistogramSnapshot`] is a point-in-time
/// read with no writer coordination. Merging histograms adds bucket counts
/// — lossless by construction, and quantiles are a pure function of the
/// bucket counts, so `merge(a, b)` answers exactly what a histogram fed
/// both sample streams would.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, unregistered, empty histogram.
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts an RAII timer that records the elapsed nanoseconds into this
    /// histogram when dropped.
    pub fn time(&self) -> ScopedTimer {
        ScopedTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Adds every bucket count (and the sum) of `other` into `self`.
    /// Lossless: the result is bucket-for-bucket identical to a histogram
    /// that recorded both sample streams.
    pub fn merge_from(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// [`Histogram::merge_from`] for an already-taken snapshot.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (dst, &src) in self.0.buckets.iter().zip(&snap.buckets) {
            if src > 0 {
                dst.fetch_add(src, Ordering::Relaxed);
            }
        }
        self.0.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    /// Point-in-time copy of all bucket counts and the sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Convenience: `self.snapshot().quantile(q)`.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`]'s bucket counts and value sum.
/// The immutable form histograms take for quantile math, merging across
/// shards, and round-tripping through the text exposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, dense, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds every bucket count and the sum of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.sum += other.sum;
    }

    /// The ceil-rank `q`-quantile (`q` clamped to `[0, 1]`): the bucket
    /// holding sample number `⌈q · count⌉` of the sorted stream, with
    /// linear interpolation inside multi-value buckets. Exact for values
    /// below 64 (unit buckets); within ~3.1% above. Deterministic — a pure
    /// function of the bucket counts — and returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                if hi == lo {
                    return lo as f64;
                }
                let within = (rank - seen) as f64 / c as f64;
                return lo as f64 + within * (hi - lo) as f64;
            }
            seen += c;
        }
        unreachable!("rank {rank} beyond total count {count}")
    }
}

/// RAII timer from [`Histogram::time`]: records the elapsed nanoseconds
/// into its histogram when dropped, so a scope is instrumented by holding
/// one binding.
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Histogram,
    start: Instant,
}

impl ScopedTimer {
    /// Stops the timer now, recording the elapsed time (instead of at the
    /// end of the scope).
    pub fn stop(self) {}

    /// Elapsed time so far without stopping.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_bounds_agree_everywhere() {
        // Every bucket's bounds map back to its own index, boundaries are
        // monotone, and consecutive buckets tile u64 with no gap.
        let mut prev_upper: Option<u64> = None;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i} inverted: [{lo}, {hi}]");
            assert_eq!(bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of {i}");
            if let Some(p) = prev_upper {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            prev_upper = Some(hi);
        }
        assert_eq!(prev_upper, Some(u64::MAX));
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..64usize {
            assert_eq!(snap.buckets[v], 1);
        }
        assert_eq!(snap.sum, (0..64).sum::<u64>());
        // Unit buckets ⇒ quantiles of small values are exact.
        assert_eq!(snap.quantile(0.5), 31.0);
        assert_eq!(snap.quantile(1.0), 63.0);
        assert_eq!(snap.quantile(0.0), 0.0);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [1_000u64, 25_000, 310_000, 4_900_000, 77_000_000] {
            h.record(v);
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            // Octave sub-bucketing bounds the width by lower/32.
            assert!((hi - lo) as f64 <= lo as f64 / 32.0 + 1.0);
        }
        assert_eq!(h.count(), 5);
        let p100 = h.quantile(1.0);
        assert!((p100 - 77_000_000.0).abs() / 77_000_000.0 <= 1.0 / 32.0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 700, 700, 123_456] {
            a.record(v);
            both.record(v);
        }
        for v in [9u64, 700, 88_000_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn timer_records_once_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.time();
        }
        h.time().stop();
        assert_eq!(h.count(), 2);
    }
}
