//! The typed metric registry and its Prometheus text renderer.

use std::sync::Mutex;

use crate::metrics::{bucket_bounds, Counter, Gauge, Histogram};

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A typed, get-or-create metric registry.
///
/// Registration takes a lock; the returned [`Counter`] / [`Gauge`] /
/// [`Histogram`] handles share their atomics with the registry, so hot
/// paths pre-register once and record lock-free thereafter. Registering
/// the same `(name, labels)` pair again returns the existing handle —
/// under a different metric kind it panics, naming the collision.
///
/// [`Registry::render`] produces the Prometheus text exposition format
/// from a point-in-time read of every atomic: histograms emit cumulative
/// `_bucket{le="…"}` rows for non-empty buckets only (plus `+Inf`, `_sum`,
/// `_count`), which [`crate::text`] can parse back to exact bucket counts.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

/// The process-wide registry: engine-internal instrumentation (walk
/// refresh, batch phases, durability) registers here, and servers append
/// its rendering to their own.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry {
        metrics: Mutex::new(Vec::new()),
    };
    &GLOBAL
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut metrics = self.metrics.lock().expect("obs registry poisoned");
        if let Some(m) = metrics.iter().find(|m| {
            m.name == name && m.labels.len() == labels.len() && {
                m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
            }
        }) {
            return m.handle.clone();
        }
        let handle = make();
        if let Some(clash) = metrics
            .iter()
            .find(|m| m.name == name && m.handle.kind() != handle.kind())
        {
            panic!(
                "metric {name:?} registered as {} and {}",
                clash.handle.kind(),
                handle.kind()
            );
        }
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// Gets or creates an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates a counter carrying constant labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, help, labels, || Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or creates an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates a gauge carrying constant labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, labels, || Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or creates an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Gets or creates a histogram carrying constant labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, help, labels, || Handle::Histogram(Histogram::new())) {
            Handle::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format, reading each atomic exactly once. Families are ordered by
    /// name (stable within a name: registration order), so the output is
    /// deterministic for a fixed set of values.
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().expect("obs registry poisoned");
        let mut order: Vec<&Metric> = metrics.iter().collect();
        order.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        let mut last_name = "";
        for m in order {
            if m.name != last_name {
                out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
                out.push_str(&format!("# TYPE {} {}\n", m.name, m.handle.kind()));
                last_name = &m.name;
            }
            match &m.handle {
                Handle::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_block(&m.labels, None),
                        c.get()
                    ));
                }
                Handle::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_block(&m.labels, None),
                        g.get()
                    ));
                }
                Handle::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, &c) in snap.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let (_, upper) = bucket_bounds(i);
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            label_block(&m.labels, Some(&upper.to_string())),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        label_block(&m.labels, Some("+Inf")),
                        cumulative
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        label_block(&m.labels, None),
                        snap.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        label_block(&m.labels, None),
                        cumulative
                    ));
                }
            }
        }
        out
    }
}

/// Formats `{k="v",…,le="…"}`, escaping label values; empty string when
/// there are no labels at all.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_the_atomic() {
        let reg = Registry::new();
        let a = reg.counter("rwd_test_total", "test");
        let b = reg.counter("rwd_test_total", "test");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn labels_distinguish_series() {
        let reg = Registry::new();
        let a = reg.counter_with("rwd_req_total", "reqs", &[("endpoint", "hit_time")]);
        let b = reg.counter_with("rwd_req_total", "reqs", &[("endpoint", "coverage")]);
        a.add(3);
        b.add(5);
        let text = reg.render();
        assert!(text.contains("rwd_req_total{endpoint=\"hit_time\"} 3"));
        assert!(text.contains("rwd_req_total{endpoint=\"coverage\"} 5"));
        // One HELP/TYPE header per family, not per series.
        assert_eq!(text.matches("# TYPE rwd_req_total counter").count(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_collision_panics() {
        let reg = Registry::new();
        let _ = reg.counter("rwd_thing", "x");
        let _ = reg.gauge_with("rwd_thing", "x", &[("a", "b")]);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("rwd_lat_ns", "latency");
        h.record(5);
        h.record(5);
        h.record(40);
        let text = reg.render();
        assert!(text.contains("# TYPE rwd_lat_ns histogram"));
        assert!(text.contains("rwd_lat_ns_bucket{le=\"5\"} 2"));
        assert!(text.contains("rwd_lat_ns_bucket{le=\"40\"} 3"));
        assert!(text.contains("rwd_lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("rwd_lat_ns_sum 50"));
        assert!(text.contains("rwd_lat_ns_count 3"));
    }
}
