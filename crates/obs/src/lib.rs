//! # rwd-obs — metrics & stability telemetry
//!
//! Std-only observability primitives for the rwd engine stack:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars,
//! * [`Histogram`] — log-linear-bucketed latency histogram with exact
//!   integer counts, lossless [`Histogram::merge_from`], and deterministic
//!   [`HistogramSnapshot::quantile`] estimation (the one shared percentile
//!   implementation for the whole workspace),
//! * [`ScopedTimer`] — RAII timer recording elapsed nanoseconds on drop,
//! * [`Registry`] — typed get-or-create metric registry rendering the
//!   Prometheus text exposition format, with cheap pre-registered handles
//!   for hot paths and a process-wide instance behind [`global`],
//! * [`text`] — a parser for the exposition format, so tests (and the
//!   acceptance gate) can hold rendered snapshots to exact bucket counts,
//! * [`EpochStabilityTracker`] — per-epoch answer-stability telemetry
//!   (seed-set Jaccard, seeds swapped, objective drift, coverage churn),
//!   turning the domination-number concentration predictions from the
//!   random-graph literature into a measured signal.
//!
//! Everything here is `std`-only and lock-free on the record path: writers
//! touch only `AtomicU64`/`AtomicI64` with relaxed ordering, and a metrics
//! snapshot is a point-in-time read of those atomics — no coordination with
//! writers, no stop-the-world.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod metrics;
mod registry;
mod stability;
pub mod text;

pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, ScopedTimer, BUCKETS,
};
pub use registry::{global, Registry};
pub use stability::{EpochRecord, EpochStabilityTracker, StabilitySummary};
