//! Parser for the Prometheus text exposition format produced by
//! [`Registry::render`](crate::Registry::render).
//!
//! The engine's own tests and CI gates consume metric snapshots as text
//! (that is what a scraper would see), so this module gives them an exact
//! decoder: samples keep their raw integer values where the text is an
//! integer, and [`histogram_snapshot`] reconstructs per-bucket counts from
//! the cumulative `_bucket{le=…}` rows — lossless, because each emitted
//! `le` bound is the inclusive upper edge of exactly one bucket.

use crate::metrics::{bucket_index, HistogramSnapshot, BUCKETS};

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric (or series: `_bucket`, `_sum`, `_count`) name.
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// The value as a float (`+Inf` parses to `f64::INFINITY`).
    pub value: f64,
    /// The value as an exact integer, when the text was one.
    pub exact: Option<u64>,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True when the sample's labels, ignoring `le`, equal `want` exactly.
    fn labels_match(&self, want: &[(&str, &str)]) -> bool {
        let mine: Vec<_> = self.labels.iter().filter(|(k, _)| k != "le").collect();
        mine.len() == want.len()
            && mine
                .iter()
                .zip(want)
                .all(|((k, v), (wk, wv))| k == wk && v == wv)
    }
}

/// Parses an exposition document into its samples, skipping comment and
/// blank lines. Errors name the offending line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let err = |why: &str| format!("bad exposition line ({why}): {line:?}");
    let (series, value_text) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or_else(|| err("unclosed label block"))?;
            (&line[..open + 1], line[close + 1..].trim())
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| err("no value"))?;
            (&line[..sp], line[sp + 1..].trim())
        }
    };
    let (name, labels) = if let Some(name) = series.strip_suffix('{') {
        let open = line.find('{').unwrap();
        let close = line.rfind('}').unwrap();
        (name.to_string(), parse_labels(&line[open + 1..close])?)
    } else {
        (series.to_string(), Vec::new())
    };
    if name.is_empty() {
        return Err(err("empty metric name"));
    }
    let value: f64 = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|_| err("unparseable value"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
        exact: value_text.parse().ok(),
    })
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        let after = after
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value: {rest:?}"))?;
        // Scan to the closing quote, honouring \\ and \" escapes.
        let mut value = String::new();
        let mut chars = after.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape: {rest:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {rest:?}"))?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start().trim_start_matches(',').trim();
    }
    Ok(labels)
}

/// Reconstructs a [`HistogramSnapshot`] for the histogram `name` with
/// constant labels `labels` from parsed samples: cumulative
/// `{name}_bucket{le=…}` rows are differenced back into per-bucket counts
/// (each finite `le` identifies its bucket uniquely), and `{name}_sum`
/// restores the value sum. Returns `None` when no `_count` row matches.
pub fn histogram_snapshot(
    samples: &[Sample],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<HistogramSnapshot> {
    samples
        .iter()
        .find(|s| s.name == format!("{name}_count") && s.labels_match(labels))?;
    let mut snap = HistogramSnapshot::empty();
    let bucket_series = format!("{name}_bucket");
    let mut rows: Vec<(usize, u64)> = Vec::new();
    for s in samples {
        if s.name != bucket_series || !s.labels_match(labels) {
            continue;
        }
        let le = s.label("le")?;
        if le == "+Inf" {
            continue;
        }
        let bound: u64 = le.parse().ok()?;
        rows.push((bucket_index(bound), s.exact?));
    }
    rows.sort_unstable();
    let mut prev = 0u64;
    for (idx, cumulative) in rows {
        debug_assert!(idx < BUCKETS);
        snap.buckets[idx] = cumulative.checked_sub(prev)?;
        prev = cumulative;
    }
    let sum = samples
        .iter()
        .find(|s| s.name == format!("{name}_sum") && s.labels_match(labels))?;
    snap.sum = sum.exact?;
    Some(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn parses_scalars_and_labels() {
        let samples =
            parse("# HELP x y\n# TYPE x counter\nx 7\nx_more{a=\"b\",c=\"d e\"} 9\ng -3\n")
                .unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "x");
        assert_eq!(samples[0].exact, Some(7));
        assert_eq!(samples[1].label("c"), Some("d e"));
        assert_eq!(samples[2].value, -3.0);
        assert_eq!(samples[2].exact, None);
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let samples = parse("m{v=\"a\\\"b\\\\c\"} 1\n").unwrap();
        assert_eq!(samples[0].label("v"), Some("a\"b\\c"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("novalue\n").is_err());
        assert!(parse("m{unclosed=\"x\" 1\n").is_err());
    }

    #[test]
    fn histogram_round_trips_exactly() {
        let reg = Registry::new();
        let h = reg.histogram_with("rwd_lat_ns", "lat", &[("endpoint", "hit_time")]);
        for v in [0u64, 1, 63, 64, 65, 4096, 4097, 1 << 40, u64::MAX] {
            h.record(v);
            h.record(v);
        }
        let samples = parse(&reg.render()).unwrap();
        let snap = histogram_snapshot(&samples, "rwd_lat_ns", &[("endpoint", "hit_time")])
            .expect("histogram present");
        assert_eq!(snap, h.snapshot());
    }
}
