//! # rwd-core
//!
//! Random-walk domination in large graphs — the primary contribution of
//! Li, Yu, Huang, Cheng (ICDE 2014), implemented end to end:
//!
//! * [`problem`] — the two random-walk domination problems:
//!   **Problem 1** (minimize total L-truncated hitting time, Eq. 6) and
//!   **Problem 2** (maximize expected number of dominated nodes, Eq. 7),
//! * [`objective`] — monotone submodular objectives `F1`, `F2` (exact DP and
//!   sampled forms), plus the paper's future-work extensions: a combined
//!   objective and an edge-coverage objective,
//! * [`greedy`] — the generic greedy of Algorithm 1 with optional lazy
//!   (CELF) evaluation, and the Algorithm 4/5 gain engine over the inverted
//!   walk index,
//! * [`algo`] — user-facing solvers: [`algo::DpGreedy`] (`DPF1`/`DPF2`),
//!   [`algo::SamplingGreedy`], and [`algo::ApproxGreedy`]
//!   (`ApproxF1`/`ApproxF2`, Algorithm 6, `O(kRLn)` time),
//! * [`baselines`] — the paper's `Degree` and `Dominate` baselines plus
//!   `Random` and PageRank,
//! * [`metrics`] — the evaluation metrics `AHT` (`M1`) and `EHN` (`M2`),
//! * [`coverage`] — the future-work partial-cover problem (min `|S|` to
//!   dominate `α·n` nodes in expectation),
//! * [`report`] — small table/TSV helpers shared by the harness, CLI and
//!   examples.
//!
//! ## Quickstart
//!
//! ```
//! use rwd_core::algo::ApproxGreedy;
//! use rwd_core::problem::{Params, Problem};
//! use rwd_graph::generators::barabasi_albert;
//!
//! let g = barabasi_albert(300, 3, 7).unwrap();
//! let params = Params { k: 5, l: 6, r: 50, seed: 1, ..Params::default() };
//! let sel = ApproxGreedy::new(Problem::MaxCoverage, params).run(&g).unwrap();
//! assert_eq!(sel.nodes.len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algo;
pub mod baselines;
pub mod coverage;
pub mod error;
pub mod greedy;
pub mod metrics;
pub mod objective;
pub mod problem;
pub mod report;

pub use error::CoreError;
pub use greedy::Strategy;
pub use problem::{Params, Problem, Selection};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
