//! Monotone submodular objectives.
//!
//! The paper proves (Theorems 3.1/3.2) that both problems maximize monotone
//! nondecreasing submodular set functions with `F(∅) = 0`, which is what
//! gives the greedy algorithms their `1 − 1/e` guarantee. This module
//! provides those objectives in exact (DP) and sampled (Algorithm 2) form,
//! plus the two future-work objectives sketched in the paper's §5: a
//! positive combination of `F1` and `F2`, and an edge-coverage variant.

use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::estimate::SampleEstimator;
use rwd_walks::rng::WalkRng;
use rwd_walks::{hitting, walker, NodeSet};

/// A set function `F : 2^V → ℝ` with marginal-gain evaluation.
///
/// Implementations used with the greedy drivers must be monotone
/// nondecreasing and submodular (the drivers do not check, but the CELF
/// driver's correctness depends on submodularity).
pub trait Objective {
    /// Evaluates `F(S)`.
    fn eval(&self, set: &NodeSet) -> f64;

    /// Marginal gain `F(S ∪ {u}) − F(S)` given the cached `base = F(S)`.
    ///
    /// The default clones the set; objectives with cheaper incremental forms
    /// override this.
    fn gain(&self, set: &NodeSet, u: NodeId, base: f64) -> f64 {
        debug_assert!(!set.contains(u), "gain of a member is zero by definition");
        let mut s = set.clone();
        s.insert(u);
        self.eval(&s) - base
    }

    /// Size of the ground set `V`.
    fn universe(&self) -> usize;

    /// Display name for reports.
    fn name(&self) -> String;
}

/// Exact Problem 1 objective `F1(S) = nL − Σ_{u∈V\S} h^L_uS`, evaluated by
/// the Eq. (4) dynamic program in `O(mL)` per call.
#[derive(Clone, Copy, Debug)]
pub struct ExactF1<'g> {
    graph: &'g CsrGraph,
    l: u32,
}

impl<'g> ExactF1<'g> {
    /// Creates the objective for walk bound `l`.
    pub fn new(graph: &'g CsrGraph, l: u32) -> Self {
        ExactF1 { graph, l }
    }
}

impl Objective for ExactF1<'_> {
    fn eval(&self, set: &NodeSet) -> f64 {
        hitting::exact_f1(self.graph, set, self.l)
    }
    fn universe(&self) -> usize {
        self.graph.n()
    }
    fn name(&self) -> String {
        "ExactF1".into()
    }
}

/// Exact Problem 2 objective `F2(S) = Σ_u p^L_uS` (Eq. 8 DP, `O(mL)`).
#[derive(Clone, Copy, Debug)]
pub struct ExactF2<'g> {
    graph: &'g CsrGraph,
    l: u32,
}

impl<'g> ExactF2<'g> {
    /// Creates the objective for walk bound `l`.
    pub fn new(graph: &'g CsrGraph, l: u32) -> Self {
        ExactF2 { graph, l }
    }
}

impl Objective for ExactF2<'_> {
    fn eval(&self, set: &NodeSet) -> f64 {
        hitting::exact_f2(self.graph, set, self.l)
    }
    fn universe(&self) -> usize {
        self.graph.n()
    }
    fn name(&self) -> String {
        "ExactF2".into()
    }
}

/// Sampled Problem 1 objective `F̂1` (Algorithm 2): unbiased, deterministic
/// per seed, `O(nRL)` per evaluation.
#[derive(Clone, Debug)]
pub struct SampledF1<'g> {
    graph: &'g CsrGraph,
    est: SampleEstimator,
}

impl<'g> SampledF1<'g> {
    /// Creates the sampled objective with `r` walks per node.
    pub fn new(graph: &'g CsrGraph, l: u32, r: usize, seed: u64) -> Self {
        SampledF1 {
            graph,
            est: SampleEstimator::new(l, r, seed),
        }
    }
}

impl Objective for SampledF1<'_> {
    fn eval(&self, set: &NodeSet) -> f64 {
        self.est.estimate(self.graph, set).f1
    }
    fn universe(&self) -> usize {
        self.graph.n()
    }
    fn name(&self) -> String {
        "SampledF1".into()
    }
}

/// Sampled Problem 2 objective `F̂2` (Algorithm 2).
#[derive(Clone, Debug)]
pub struct SampledF2<'g> {
    graph: &'g CsrGraph,
    est: SampleEstimator,
}

impl<'g> SampledF2<'g> {
    /// Creates the sampled objective with `r` walks per node.
    pub fn new(graph: &'g CsrGraph, l: u32, r: usize, seed: u64) -> Self {
        SampledF2 {
            graph,
            est: SampleEstimator::new(l, r, seed),
        }
    }
}

impl Objective for SampledF2<'_> {
    fn eval(&self, set: &NodeSet) -> f64 {
        self.est.estimate(self.graph, set).f2
    }
    fn universe(&self) -> usize {
        self.graph.n()
    }
    fn name(&self) -> String {
        "SampledF2".into()
    }
}

/// Positive combination `w_a·A + w_b·B` of two objectives — submodular and
/// monotone whenever both parts are (the paper's first future-work
/// direction).
#[derive(Clone, Copy, Debug)]
pub struct Combined<A, B> {
    /// First component.
    pub a: A,
    /// Second component.
    pub b: B,
    /// Weight of the first component (must be ≥ 0).
    pub wa: f64,
    /// Weight of the second component (must be ≥ 0).
    pub wb: f64,
}

impl<A: Objective, B: Objective> Combined<A, B> {
    /// Creates a weighted combination; weights must be non-negative to
    /// preserve submodularity.
    pub fn new(a: A, b: B, wa: f64, wb: f64) -> Self {
        assert!(
            wa >= 0.0 && wb >= 0.0,
            "negative weights break submodularity"
        );
        Combined { a, b, wa, wb }
    }
}

/// The normalized `λ`-blend of exact `F1` and `F2` used in the examples and
/// the ablation bench: `λ·F1/(nL) + (1−λ)·F2/n`, so both terms live in
/// `[0, 1]` and `λ` interpolates meaningfully.
pub fn combined_f1_f2_exact(
    graph: &CsrGraph,
    l: u32,
    lambda: f64,
) -> Combined<ExactF1<'_>, ExactF2<'_>> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    let n = graph.n().max(1) as f64;
    Combined::new(
        ExactF1::new(graph, l),
        ExactF2::new(graph, l),
        lambda / (n * l.max(1) as f64),
        (1.0 - lambda) / n,
    )
}

impl<A: Objective, B: Objective> Objective for Combined<A, B> {
    fn eval(&self, set: &NodeSet) -> f64 {
        self.wa * self.a.eval(set) + self.wb * self.b.eval(set)
    }
    fn gain(&self, set: &NodeSet, u: NodeId, _base: f64) -> f64 {
        // Component gains are computed against component bases; the blended
        // base passed by the driver cannot be decomposed, so re-evaluate.
        let mut s = set.clone();
        s.insert(u);
        self.wa * (self.a.eval(&s) - self.a.eval(set))
            + self.wb * (self.b.eval(&s) - self.b.eval(set))
    }
    fn universe(&self) -> usize {
        debug_assert_eq!(self.a.universe(), self.b.universe());
        self.a.universe()
    }
    fn name(&self) -> String {
        format!("Combined({}, {})", self.a.name(), self.b.name())
    }
}

/// Edge-coverage objective — the paper's second future-work direction,
/// formalized here as:
///
/// > `F3(S) = E[ | ⋃_{u : walk(u) hits S} edges(walk(u)) | ]`
///
/// i.e. the expected number of distinct edges traversed by the L-length
/// walks of the *dominated* sources. For any fixed realization of the `R·n`
/// walks this is a coverage function of `S` (each candidate `s` covers the
/// edge sets of all sources whose walk visits `s`), hence monotone
/// submodular; the expectation preserves both properties.
///
/// Evaluation replays materialized walks: `O(Σ_{u hit} L)` per layer.
#[derive(Clone, Debug)]
pub struct EdgeCoverage {
    n: usize,
    r: usize,
    /// `walk_edges[layer][source]` — sorted, deduped edge keys of the walk.
    walk_edges: Vec<Vec<Vec<u64>>>,
    /// `visits[layer][v]` — sources whose walk visits `v`.
    visits: Vec<Vec<Vec<u32>>>,
}

fn edge_key(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    (lo.raw() as u64) << 32 | hi.raw() as u64
}

impl EdgeCoverage {
    /// Materializes `r` walks per node (seeded like every other sampler in
    /// the workspace) and prepares the coverage structures.
    pub fn build(g: &CsrGraph, l: u32, r: usize, seed: u64) -> Self {
        assert!(r > 0);
        let n = g.n();
        let mut walk_edges = Vec::with_capacity(r);
        let mut visits = Vec::with_capacity(r);
        let mut buf = Vec::new();
        for layer in 0..r {
            let mut layer_edges: Vec<Vec<u64>> = Vec::with_capacity(n);
            let mut layer_visits: Vec<Vec<u32>> = vec![Vec::new(); n];
            for w in 0..n {
                let mut rng = WalkRng::for_stream(seed, w as u64, layer as u64);
                walker::record_walk(g, NodeId::new(w), l, &mut rng, &mut buf);
                let mut edges: Vec<u64> = buf
                    .windows(2)
                    .filter(|p| p[0] != p[1]) // stay-put steps traverse nothing
                    .map(|p| edge_key(p[0], p[1]))
                    .collect();
                edges.sort_unstable();
                edges.dedup();
                layer_edges.push(edges);
                let mut seen = Vec::new();
                for &v in buf.iter() {
                    if !seen.contains(&v) {
                        seen.push(v);
                        layer_visits[v.index()].push(w as u32);
                    }
                }
            }
            walk_edges.push(layer_edges);
            visits.push(layer_visits);
        }
        EdgeCoverage {
            n,
            r,
            walk_edges,
            visits,
        }
    }
}

impl Objective for EdgeCoverage {
    fn eval(&self, set: &NodeSet) -> f64 {
        let mut total = 0usize;
        let mut activated = vec![false; self.n];
        let mut covered: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for layer in 0..self.r {
            activated.fill(false);
            covered.clear();
            for s in set.iter() {
                for &w in &self.visits[layer][s.index()] {
                    if !activated[w as usize] {
                        activated[w as usize] = true;
                        covered.extend(self.walk_edges[layer][w as usize].iter().copied());
                    }
                }
            }
            total += covered.len();
        }
        total as f64 / self.r as f64
    }
    fn universe(&self) -> usize {
        self.n
    }
    fn name(&self) -> String {
        "EdgeCoverage".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::paper_example;

    fn set_of(n: usize, nodes: &[u32]) -> NodeSet {
        NodeSet::from_nodes(n, nodes.iter().map(|&u| NodeId(u)))
    }

    #[test]
    fn exact_objectives_evaluate_known_values() {
        let g = paper_example::figure1();
        let f1 = ExactF1::new(&g, 4);
        let f2 = ExactF2::new(&g, 4);
        assert!(f1.eval(&NodeSet::new(8)).abs() < 1e-12);
        assert!(f2.eval(&NodeSet::new(8)).abs() < 1e-12);
        let full = NodeSet::from_nodes(8, g.nodes());
        assert!((f1.eval(&full) - 32.0).abs() < 1e-12);
        assert!((f2.eval(&full) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn gain_default_matches_difference() {
        let g = paper_example::figure1();
        let f2 = ExactF2::new(&g, 4);
        let s = set_of(8, &[1]);
        let base = f2.eval(&s);
        let g6 = f2.gain(&s, NodeId(6), base);
        let mut s2 = s.clone();
        s2.insert(NodeId(6));
        assert!((g6 - (f2.eval(&s2) - base)).abs() < 1e-12);
        assert!(g6 > 0.0);
    }

    #[test]
    fn exact_monotone_and_submodular_on_figure1() {
        let g = paper_example::figure1();
        for l in [2u32, 4] {
            let f1 = ExactF1::new(&g, l);
            let f2 = ExactF2::new(&g, l);
            let s = set_of(8, &[1]);
            let t = set_of(8, &[1, 6]);
            for u in [0u32, 2, 3, 7] {
                let u = NodeId(u);
                let gs1 = f1.gain(&s, u, f1.eval(&s));
                let gt1 = f1.gain(&t, u, f1.eval(&t));
                assert!(gs1 >= gt1 - 1e-9, "F1 submodularity u={u} l={l}");
                assert!(gt1 >= -1e-9, "F1 monotone u={u} l={l}");
                let gs2 = f2.gain(&s, u, f2.eval(&s));
                let gt2 = f2.gain(&t, u, f2.eval(&t));
                assert!(gs2 >= gt2 - 1e-9, "F2 submodularity u={u} l={l}");
                assert!(gt2 >= -1e-9, "F2 monotone u={u} l={l}");
            }
        }
    }

    #[test]
    fn sampled_tracks_exact() {
        let g = paper_example::figure1();
        let s = set_of(8, &[4, 5]);
        let exact = ExactF1::new(&g, 4).eval(&s);
        let sampled = SampledF1::new(&g, 4, 3000, 7).eval(&s);
        assert!(
            (exact - sampled).abs() < 0.5,
            "exact {exact} sampled {sampled}"
        );
        let exact = ExactF2::new(&g, 4).eval(&s);
        let sampled = SampledF2::new(&g, 4, 3000, 7).eval(&s);
        assert!((exact - sampled).abs() < 0.3);
    }

    #[test]
    fn combined_blends_and_normalizes() {
        let g = paper_example::figure1();
        let s = set_of(8, &[1, 6]);
        let pure_f1 = combined_f1_f2_exact(&g, 4, 1.0);
        let pure_f2 = combined_f1_f2_exact(&g, 4, 0.0);
        let blend = combined_f1_f2_exact(&g, 4, 0.5);
        let v1 = pure_f1.eval(&s); // = F1/(nL)
        let v2 = pure_f2.eval(&s); // = F2/n
        assert!((blend.eval(&s) - 0.5 * (v1 + v2)).abs() < 1e-12);
        // Normalized objectives stay in [0, 1].
        assert!((0.0..=1.0).contains(&v1));
        assert!((0.0..=1.0).contains(&v2));
        // λ endpoints reduce to the single normalized objective.
        let f1n = ExactF1::new(&g, 4).eval(&s) / (8.0 * 4.0);
        assert!((v1 - f1n).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn combined_rejects_bad_lambda() {
        let g = paper_example::figure1();
        let _ = combined_f1_f2_exact(&g, 4, 1.5);
    }

    #[test]
    fn edge_coverage_monotone_and_bounded() {
        let g = paper_example::figure1();
        let f3 = EdgeCoverage::build(&g, 3, 8, 5);
        let empty = NodeSet::new(8);
        assert_eq!(f3.eval(&empty), 0.0);
        let s = set_of(8, &[1]);
        let t = set_of(8, &[1, 6]);
        let vs = f3.eval(&s);
        let vt = f3.eval(&t);
        assert!(vs > 0.0, "hub covers something");
        assert!(vt >= vs, "monotone");
        assert!(vt <= g.m() as f64 + 1e-9, "cannot exceed edge count");
    }

    #[test]
    fn edge_coverage_submodular_spot_check() {
        let g = paper_example::figure1();
        let f3 = EdgeCoverage::build(&g, 3, 6, 9);
        let s = set_of(8, &[1]);
        let t = set_of(8, &[1, 4]);
        for u in [0u32, 2, 6, 7] {
            let u = NodeId(u);
            let gs = f3.gain(&s, u, f3.eval(&s));
            let gt = f3.gain(&t, u, f3.eval(&t));
            assert!(gs >= gt - 1e-9, "u = {u}");
        }
    }
}
