//! Partial-cover extension (the paper's third future-work direction).
//!
//! *Given `α ∈ (0, 1]`, find the minimum number of targeted nodes that
//! dominate at least `α·n` nodes in expectation.* Greedy partial cover over
//! the walk index: keep selecting the maximal-coverage-gain node (Problem 2
//! gain rule) until the estimated `F̂2(S)` crosses `α·n`. Because `F2` is
//! monotone submodular, this greedy is the classic `H(n)`-approximate
//! partial-cover algorithm.

use std::time::Instant;

use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::WalkIndex;

use crate::greedy::approx::{GainEngine, GainRule};
use crate::Result;

/// Result of the partial-cover greedy.
#[derive(Clone, Debug)]
pub struct CoverageResult {
    /// Selected nodes in pick order.
    pub nodes: Vec<NodeId>,
    /// Estimated `F̂2(S)` after each pick.
    pub coverage_trace: Vec<f64>,
    /// The coverage target `α·n` that was requested.
    pub target: f64,
    /// Whether the target was reached within `max_k` picks.
    pub reached: bool,
    /// Wall-clock time including index construction.
    pub elapsed: std::time::Duration,
}

impl CoverageResult {
    /// Number of nodes the greedy needed.
    pub fn k(&self) -> usize {
        self.nodes.len()
    }

    /// Final estimated expected number of dominated nodes.
    pub fn achieved(&self) -> f64 {
        self.coverage_trace.last().copied().unwrap_or(0.0)
    }
}

/// Parameters for [`min_nodes_for_coverage`].
#[derive(Clone, Copy, Debug)]
pub struct CoverageParams {
    /// Fraction of nodes to dominate in expectation (`0 < α ≤ 1`).
    pub alpha: f64,
    /// Walk-length bound `L`.
    pub l: u32,
    /// Walks per node `R`.
    pub r: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard cap on the number of selections (`0` = up to `n`).
    pub max_k: usize,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
}

impl Default for CoverageParams {
    fn default() -> Self {
        CoverageParams {
            alpha: 0.9,
            l: 6,
            r: 100,
            seed: 0,
            max_k: 0,
            threads: 0,
        }
    }
}

/// Greedy partial cover: minimum (greedy) node set whose estimated expected
/// domination reaches `α·n`.
pub fn min_nodes_for_coverage(g: &CsrGraph, p: CoverageParams) -> Result<CoverageResult> {
    if !(p.alpha > 0.0 && p.alpha <= 1.0) {
        return Err(crate::CoreError::InvalidParams(format!(
            "alpha = {} outside (0, 1]",
            p.alpha
        )));
    }
    if p.r == 0 {
        return Err(crate::CoreError::InvalidParams("r must be >= 1".into()));
    }
    let start = Instant::now();
    let n = g.n();
    let target = p.alpha * n as f64;
    let cap = if p.max_k == 0 { n } else { p.max_k.min(n) };

    let idx = WalkIndex::build_with_threads(g, p.l, p.r, p.seed, p.threads);
    let mut engine = GainEngine::with_threads(&idx, GainRule::Coverage, p.threads);
    let mut nodes = Vec::new();
    let mut coverage_trace = Vec::new();

    while engine.est_f2() < target && nodes.len() < cap {
        let gains = engine.gains_all();
        let mut best: Option<(NodeId, f64)> = None;
        for (u, &gain) in gains.iter().enumerate() {
            let u = NodeId::new(u);
            if engine.selected().contains(u) {
                continue;
            }
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((u, gain));
            }
        }
        let Some((pick, _)) = best else { break };
        engine.update(pick);
        nodes.push(pick);
        coverage_trace.push(engine.est_f2());
    }

    let reached = engine.est_f2() >= target;
    Ok(CoverageResult {
        nodes,
        coverage_trace,
        target,
        reached,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::{barabasi_albert, classic};

    #[test]
    fn star_needs_one_node() {
        let g = classic::star(50).unwrap();
        let p = CoverageParams {
            alpha: 0.9,
            l: 4,
            r: 64,
            seed: 3,
            ..Default::default()
        };
        let res = min_nodes_for_coverage(&g, p).unwrap();
        assert!(res.reached);
        assert_eq!(res.k(), 1, "the hub dominates everything");
        assert_eq!(res.nodes[0], NodeId(0));
        assert!(res.achieved() >= res.target);
    }

    #[test]
    fn coverage_trace_is_monotone() {
        let g = barabasi_albert(300, 3, 5).unwrap();
        let p = CoverageParams {
            alpha: 0.95,
            l: 5,
            r: 50,
            seed: 1,
            ..Default::default()
        };
        let res = min_nodes_for_coverage(&g, p).unwrap();
        assert!(res.reached);
        for w in res.coverage_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "coverage must not shrink");
        }
    }

    #[test]
    fn higher_alpha_needs_no_fewer_nodes() {
        let g = barabasi_albert(300, 3, 5).unwrap();
        let mk = |alpha| {
            let p = CoverageParams {
                alpha,
                l: 5,
                r: 50,
                seed: 1,
                ..Default::default()
            };
            min_nodes_for_coverage(&g, p).unwrap().k()
        };
        assert!(mk(0.5) <= mk(0.9));
    }

    #[test]
    fn max_k_caps_selection() {
        let g = classic::path(40).unwrap();
        let p = CoverageParams {
            alpha: 1.0,
            l: 2,
            r: 32,
            seed: 2,
            max_k: 3,
            ..Default::default()
        };
        let res = min_nodes_for_coverage(&g, p).unwrap();
        assert_eq!(res.k(), 3);
        assert!(
            !res.reached,
            "a 40-path cannot be 100%-dominated by 3 nodes at L=2"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let g = classic::path(5).unwrap();
        let bad_alpha = CoverageParams {
            alpha: 0.0,
            ..Default::default()
        };
        assert!(min_nodes_for_coverage(&g, bad_alpha).is_err());
        let bad_r = CoverageParams {
            r: 0,
            ..Default::default()
        };
        assert!(min_nodes_for_coverage(&g, bad_r).is_err());
    }
}
