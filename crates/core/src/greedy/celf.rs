//! The shared CELF heap entry.
//!
//! Both lazy-greedy drivers — [`crate::greedy::driver::greedy_lazy`] over
//! arbitrary [`crate::objective::Objective`]s and the Algorithm-6 lazy loop
//! in [`crate::algo`] over the gain engine — push the same `(gain, node,
//! round)` records into a [`std::collections::BinaryHeap`]. The ordering is
//! gain-descending with ties broken toward the **smaller** node id, so a
//! CELF pop sequence resolves ties exactly like a plain ascending-id scan
//! and the two strategies select identical nodes.

use std::cmp::Ordering;

/// One CELF heap record: a cached marginal gain for `node`, valid as of
/// `round` (a stale `round` means the gain is an upper bound under
/// submodularity and the candidate needs re-evaluation, not the heap).
#[derive(Clone, Copy, Debug)]
pub struct CelfEntry {
    /// Cached marginal gain.
    pub gain: f64,
    /// Candidate node id.
    pub node: u32,
    /// Selection round the gain was computed in.
    pub round: usize,
}

impl PartialEq for CelfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for CelfEntry {}
impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_by_gain_then_smaller_node() {
        let mut heap = BinaryHeap::new();
        for (gain, node) in [(1.0, 4u32), (2.0, 9), (2.0, 3), (0.5, 0)] {
            heap.push(CelfEntry {
                gain,
                node,
                round: 0,
            });
        }
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop().map(|e| e.node)).collect();
        assert_eq!(order, vec![3, 9, 4, 0], "gain desc, node asc on ties");
    }
}
