//! The Algorithm 4/5 gain engine over the inverted walk index.
//!
//! The engine owns the `D[1:R][1:n]` table of the paper: given the current
//! target set `S`, `D[i][u]` is the first-hit time of walk `i` from `u` into
//! `S` for Problem 1 (`L` while unhit), and the 0/1 hit indicator for
//! Problem 2. Three operations:
//!
//! * [`GainEngine::gain_single`] — Algorithm 4 verbatim for one candidate,
//! * [`GainEngine::gains_all`] — all candidate gains in **one sweep** of the
//!   index (the form Algorithm 6 actually needs each round; parallel over
//!   walk layers, same arithmetic, same results),
//! * [`GainEngine::update`] — Algorithm 5 after a selection.
//!
//! Gain semantics: for Problem 1 the estimated marginal gain of `u` is
//! `σ̂_u = mean_i [ D[i][u] + Σ_{v ∈ I[i][u], w_v < D[i][v]} (D[i][v] − w_v) ]`,
//! which equals the exact marginal `F1(S∪{u}) − F1(S)` under the Eq. (6)
//! normalization `F1(S) = nL − Σ_{u∈V\S} h_uS` (no `−L` shift needed — the
//! paper drops that constant for argmax purposes; with Eq. (6) it is zero).
//! A [`GainRule::Combined`] rule evaluates both tables in the same sweep and
//! blends normalized gains — the paper's first future-work direction.

use rwd_graph::NodeId;
use rwd_walks::{NodeSet, WalkIndex};

/// Which marginal-gain rule the engine applies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GainRule {
    /// Problem 1: hitting-time gains (true hop weights).
    HittingTime,
    /// Problem 2: coverage gains (postings as hit indicators).
    Coverage,
    /// Extension: `λ·gainF1/(nL) + (1−λ)·gainF2/n` (λ ∈ [0, 1]).
    Combined {
        /// Blend weight toward the hitting-time component.
        lambda: f64,
    },
}

impl GainRule {
    pub(crate) fn needs_f1(self) -> bool {
        !matches!(self, GainRule::Coverage)
    }
    pub(crate) fn needs_f2(self) -> bool {
        !matches!(self, GainRule::HittingTime)
    }

    /// Validates rule parameters; every engine constructor calls this so
    /// the rules are enforced identically across strategies.
    pub(crate) fn validate(self) {
        if let GainRule::Combined { lambda } = self {
            assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        }
    }

    /// Allocates the flattened `[layer][node]` `D` tables this rule needs,
    /// initialized for `S = ∅` (Algorithm 6 line 3: `L` for Problem 1, `0`
    /// for Problem 2); tables the rule does not use stay empty. Shared by
    /// the sweep-based and delta-maintained engines so their state can
    /// never diverge structurally.
    pub(crate) fn alloc_tables(self, n: usize, r: usize, l: u32) -> (Vec<u32>, Vec<u8>) {
        let d1 = if self.needs_f1() {
            vec![l; r * n]
        } else {
            Vec::new()
        };
        let d2 = if self.needs_f2() {
            vec![0u8; r * n]
        } else {
            Vec::new()
        };
        (d1, d2)
    }

    /// Blends per-problem mean gains into the rule's scalar gain. Every
    /// engine (sweep-based and delta-maintained) routes through this one
    /// function with the same operation order, so equal integer totals
    /// yield bit-identical blended gains.
    pub(crate) fn blend(self, g1: f64, g2: f64, n: usize, l: u32) -> f64 {
        match self {
            GainRule::HittingTime => g1,
            GainRule::Coverage => g2,
            GainRule::Combined { lambda } => {
                let n = n.max(1) as f64;
                lambda * g1 / (n * l.max(1) as f64) + (1.0 - lambda) * g2 / n
            }
        }
    }
}

/// Below this many touched postings, [`GainEngine::update`] and
/// [`GainEngine::gains_all`] run serially — thread spawn/join costs more
/// than the whole pass. Shared with the layer-parallel index estimators.
const MIN_PARALLEL_UPDATE_WORK: usize = rwd_walks::parallel::MIN_PARALLEL_SWEEP_WORK;

/// Incremental marginal-gain evaluation over a [`WalkIndex`].
pub struct GainEngine<'a> {
    idx: &'a WalkIndex,
    rule: GainRule,
    n: usize,
    r: usize,
    l: u32,
    /// Problem-1 table, flattened `[layer][node]`; empty if unused.
    d1: Vec<u32>,
    /// Problem-2 indicator table, flattened `[layer][node]`; empty if unused.
    d2: Vec<u8>,
    selected: NodeSet,
    /// Running `Σ_{i,u} D1[i][u]` (for `F̂1 = nL − d1_total/R`).
    d1_total: u64,
    /// Running `Σ_{i,u} D2[i][u]` (for `F̂2 = d2_total/R`).
    d2_total: u64,
    threads: usize,
}

impl<'a> GainEngine<'a> {
    /// Creates the engine with `D` initialized for `S = ∅`
    /// (Algorithm 6 line 3: `L` for Problem 1, `0` for Problem 2).
    pub fn new(idx: &'a WalkIndex, rule: GainRule) -> Self {
        Self::with_threads(idx, rule, 0)
    }

    /// [`GainEngine::new`] with an explicit worker count (`0` = all cores).
    pub fn with_threads(idx: &'a WalkIndex, rule: GainRule, threads: usize) -> Self {
        rule.validate();
        let n = idx.n();
        let r = idx.r();
        let l = idx.l();
        let (d1, d2) = rule.alloc_tables(n, r, l);
        let d1_total = (r * n) as u64 * l as u64;
        GainEngine {
            idx,
            rule,
            n,
            r,
            l,
            d1,
            d2,
            selected: NodeSet::new(n),
            d1_total,
            d2_total: 0,
            threads,
        }
    }

    /// The current target set `S`.
    pub fn selected(&self) -> &NodeSet {
        &self.selected
    }

    /// Current `F̂1(S) = nL − (Σ D1)/R` (Problem-1 rules only).
    pub fn est_f1(&self) -> f64 {
        assert!(self.rule.needs_f1(), "engine has no F1 table");
        self.n as f64 * self.l as f64 - self.d1_total as f64 / self.r as f64
    }

    /// Current `F̂2(S) = (Σ D2)/R` — members count 1 (Problem-2 rules only).
    pub fn est_f2(&self) -> f64 {
        assert!(self.rule.needs_f2(), "engine has no F2 table");
        self.d2_total as f64 / self.r as f64
    }

    /// Per-node mean first-hit times `mean_i D1[i][u]` — must equal
    /// [`WalkIndex::estimate_hit_times`] of the current set (tested).
    pub fn hit_times(&self) -> Vec<f64> {
        assert!(self.rule.needs_f1());
        let mut acc = vec![0.0f64; self.n];
        for i in 0..self.r {
            let layer = &self.d1[i * self.n..(i + 1) * self.n];
            for (a, &v) in acc.iter_mut().zip(layer) {
                *a += v as f64;
            }
        }
        acc.iter_mut().for_each(|a| *a /= self.r as f64);
        acc
    }

    /// Per-node hit fractions `mean_i D2[i][u]`.
    pub fn hit_probs(&self) -> Vec<f64> {
        assert!(self.rule.needs_f2());
        let mut acc = vec![0.0f64; self.n];
        for i in 0..self.r {
            let layer = &self.d2[i * self.n..(i + 1) * self.n];
            for (a, &v) in acc.iter_mut().zip(layer) {
                *a += v as f64;
            }
        }
        acc.iter_mut().for_each(|a| *a /= self.r as f64);
        acc
    }

    /// Algorithm 4 for a single candidate (used by the lazy variant and as
    /// the reference implementation for [`GainEngine::gains_all`]).
    pub fn gain_single(&self, u: NodeId) -> f64 {
        let (mut g1, mut g2) = (0.0f64, 0.0f64);
        for i in 0..self.r {
            let pr = self.idx.postings(i, u);
            if self.rule.needs_f1() {
                let d = &self.d1[i * self.n..(i + 1) * self.n];
                g1 += d[u.index()] as f64;
                for (&id, &w) in pr.ids().iter().zip(pr.weights()) {
                    let dv = d[id as usize];
                    if (w as u32) < dv {
                        g1 += (dv - w as u32) as f64;
                    }
                }
            }
            if self.rule.needs_f2() {
                let d = &self.d2[i * self.n..(i + 1) * self.n];
                g2 += (1 - d[u.index()]) as f64;
                // Coverage ignores hop weights — stream only the id column.
                for &id in pr.ids() {
                    if d[id as usize] == 0 {
                        g2 += 1.0;
                    }
                }
            }
        }
        self.blend(g1 / self.r as f64, g2 / self.r as f64)
    }

    /// Computes estimated marginal gains for **all** nodes in one sweep of
    /// the index (`O(nR + postings)` work, parallel over layers). Entries
    /// for already-selected nodes are meaningless; callers skip them.
    ///
    /// Small instances (by the same work measure that gates
    /// [`GainEngine::update`]: table slots plus streamed postings) run
    /// serially — thread spawn/join would dominate. Both paths accumulate
    /// exact integer-valued sums, so gains are bit-identical either way.
    pub fn gains_all(&self) -> Vec<f64> {
        let work = self.r * self.n + self.idx.total_postings();
        let workers = if work < MIN_PARALLEL_UPDATE_WORK {
            1
        } else {
            self.effective_threads()
        };
        let alloc = |needed: bool| {
            if needed {
                vec![0.0f64; self.n]
            } else {
                Vec::new()
            }
        };

        let (g1, g2) = if workers == 1 {
            let mut g1 = alloc(self.rule.needs_f1());
            let mut g2 = alloc(self.rule.needs_f2());
            for i in 0..self.r {
                self.accumulate_layer(i, &mut g1, &mut g2);
            }
            (g1, g2)
        } else {
            let chunk = self.r.div_ceil(workers);
            let layer_range: Vec<usize> = (0..self.r).collect();
            let mut partials: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(workers);
            // Scoped fan-out over layer chunks; the reduction below sums the
            // per-worker partials in chunk order, so gains are identical for
            // any worker count.
            std::thread::scope(|scope| {
                let handles: Vec<_> = layer_range
                    .chunks(chunk)
                    .map(|layers| {
                        scope.spawn(move || {
                            let mut g1 = alloc(self.rule.needs_f1());
                            let mut g2 = alloc(self.rule.needs_f2());
                            for &i in layers {
                                self.accumulate_layer(i, &mut g1, &mut g2);
                            }
                            (g1, g2)
                        })
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("gain worker panicked"));
                }
            });
            let mut g1 = alloc(self.rule.needs_f1());
            let mut g2 = alloc(self.rule.needs_f2());
            for (p1, p2) in partials {
                for (a, b) in g1.iter_mut().zip(p1) {
                    *a += b;
                }
                for (a, b) in g2.iter_mut().zip(p2) {
                    *a += b;
                }
            }
            (g1, g2)
        };

        let r = self.r as f64;
        (0..self.n)
            .map(|u| {
                self.blend(
                    g1.get(u).copied().unwrap_or(0.0) / r,
                    g2.get(u).copied().unwrap_or(0.0) / r,
                )
            })
            .collect()
    }

    /// Adds layer `i`'s Algorithm-4 contributions for every candidate.
    fn accumulate_layer(&self, i: usize, g1: &mut [f64], g2: &mut [f64]) {
        if self.rule.needs_f1() {
            let d = &self.d1[i * self.n..(i + 1) * self.n];
            for u in 0..self.n {
                g1[u] += d[u] as f64;
                let pr = self.idx.postings(i, NodeId::new(u));
                for (&id, &w) in pr.ids().iter().zip(pr.weights()) {
                    let dv = d[id as usize];
                    if (w as u32) < dv {
                        g1[u] += (dv - w as u32) as f64;
                    }
                }
            }
        }
        if self.rule.needs_f2() {
            let d = &self.d2[i * self.n..(i + 1) * self.n];
            for u in 0..self.n {
                g2[u] += (1 - d[u]) as f64;
                for &id in self.idx.postings(i, NodeId::new(u)).ids() {
                    if d[id as usize] == 0 {
                        g2[u] += 1.0;
                    }
                }
            }
        }
    }

    /// Applies layer `i`'s Algorithm-5 refresh for the new member `u` to the
    /// layer-local `D` slices, returning `(Σ D1 decrease, Σ D2 increase)`.
    fn update_layer(
        idx: &WalkIndex,
        u: NodeId,
        i: usize,
        d1: Option<&mut [u32]>,
        d2: Option<&mut [u8]>,
    ) -> (u64, u64) {
        let (mut dec1, mut inc2) = (0u64, 0u64);
        let pr = idx.postings(i, u);
        if let Some(d) = d1 {
            dec1 += d[u.index()] as u64;
            d[u.index()] = 0;
            for (&id, &w) in pr.ids().iter().zip(pr.weights()) {
                let slot = &mut d[id as usize];
                if (w as u32) < *slot {
                    dec1 += (*slot - w as u32) as u64;
                    *slot = w as u32;
                }
            }
        }
        if let Some(d) = d2 {
            if d[u.index()] == 0 {
                d[u.index()] = 1;
                inc2 += 1;
            }
            for &id in pr.ids() {
                let slot = &mut d[id as usize];
                if *slot == 0 {
                    *slot = 1;
                    inc2 += 1;
                }
            }
        }
        (dec1, inc2)
    }

    /// Algorithm 5: commits `u` to the target set and refreshes `D`,
    /// parallel over walk layers. Each layer owns a disjoint slice of the
    /// `D` tables; the per-layer `Σ D1`/`Σ D2` deltas are exact integer
    /// sums, reduced in layer order, so totals are bit-identical at any
    /// worker count.
    pub fn update(&mut self, u: NodeId) {
        assert!(self.selected.insert(u), "node {u} selected twice");
        // An update touches only u's inverted lists — often a few hundred
        // entries. Fan out only when the postings work dwarfs thread
        // spawn/join cost; below the threshold the serial path is faster at
        // any requested worker count, and both paths are bit-identical.
        let work: usize = (0..self.r).map(|i| self.idx.postings(i, u).len()).sum();
        let workers = if work < MIN_PARALLEL_UPDATE_WORK {
            1
        } else {
            self.effective_threads()
        };
        let (n, idx) = (self.n, self.idx);

        if workers == 1 {
            let mut it1 = self.d1.chunks_mut(n);
            let mut it2 = self.d2.chunks_mut(n);
            for i in 0..self.r {
                let (dec1, inc2) = Self::update_layer(idx, u, i, it1.next(), it2.next());
                self.d1_total -= dec1;
                self.d2_total += inc2;
            }
            return;
        }

        /// One layer's update job: its index and its disjoint `D` slices.
        type LayerJob<'s> = (usize, Option<&'s mut [u32]>, Option<&'s mut [u8]>);

        let mut it1 = self.d1.chunks_mut(n);
        let mut it2 = self.d2.chunks_mut(n);
        let mut per_layer: Vec<LayerJob<'_>> =
            (0..self.r).map(|i| (i, it1.next(), it2.next())).collect();
        let chunk = self.r.div_ceil(workers);
        let mut partials: Vec<(u64, u64)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_layer
                .chunks_mut(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        let (mut dec1, mut inc2) = (0u64, 0u64);
                        for (i, d1, d2) in group.iter_mut() {
                            let (a, b) = Self::update_layer(
                                idx,
                                u,
                                *i,
                                d1.as_deref_mut(),
                                d2.as_deref_mut(),
                            );
                            dec1 += a;
                            inc2 += b;
                        }
                        (dec1, inc2)
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("update worker panicked"));
            }
        });
        for (dec1, inc2) in partials {
            self.d1_total -= dec1;
            self.d2_total += inc2;
        }
    }

    fn blend(&self, g1: f64, g2: f64) -> f64 {
        self.rule.blend(g1, g2, self.n, self.l)
    }

    fn effective_threads(&self) -> usize {
        rwd_walks::parallel::resolve_threads(self.threads).min(self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::paper_example;
    use rwd_walks::WalkIndex;

    /// The Example 3.1 index: R = 1, L = 2, fixed walks.
    fn example31_index() -> WalkIndex {
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        WalkIndex::from_walks(8, 2, &walks)
    }

    #[test]
    fn example_3_1_first_round_gains() {
        // Paper: σ(∅) = (2, 5, 3, 2, 3, 2, 5, 2) for v1..v8.
        let idx = example31_index();
        let engine = GainEngine::new(&idx, GainRule::HittingTime);
        let gains = engine.gains_all();
        assert_eq!(gains, vec![2.0, 5.0, 3.0, 2.0, 3.0, 2.0, 5.0, 2.0]);
        for u in 0..8 {
            assert_eq!(
                engine.gain_single(NodeId(u)),
                gains[u as usize],
                "v{}",
                u + 1
            );
        }
    }

    #[test]
    fn example_3_1_update_then_second_round() {
        let idx = example31_index();
        let mut engine = GainEngine::new(&idx, GainRule::HittingTime);
        // Paper breaks the v2/v7 tie toward v2.
        engine.update(NodeId(1)); // v2
                                  // Paper: after the update D[v2]=0, D[v1]=1, D[v3]=1, D[v5]=1, rest 2.
        let h = engine.hit_times();
        assert_eq!(h, vec![1.0, 0.0, 1.0, 2.0, 1.0, 2.0, 2.0, 2.0]);
        // Second round must select v7.
        let gains = engine.gains_all();
        let best = (0..8u32)
            .filter(|&u| !engine.selected().contains(NodeId(u)))
            .max_by(|&a, &b| {
                gains[a as usize]
                    .total_cmp(&gains[b as usize])
                    .then(b.cmp(&a))
            })
            .unwrap();
        assert_eq!(NodeId(best), NodeId(6), "v7 is the paper's second pick");
    }

    #[test]
    fn engine_hit_times_match_index_replay() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 16, 3);
        let mut engine = GainEngine::new(&idx, GainRule::HittingTime);
        for pick in [NodeId(1), NodeId(6), NodeId(3)] {
            engine.update(pick);
            let incremental = engine.hit_times();
            let replay = idx.estimate_hit_times(engine.selected());
            assert_eq!(incremental, replay, "after inserting {pick}");
        }
    }

    #[test]
    fn engine_hit_probs_match_index_replay() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 16, 3);
        let mut engine = GainEngine::new(&idx, GainRule::Coverage);
        for pick in [NodeId(6), NodeId(0)] {
            engine.update(pick);
            assert_eq!(
                engine.hit_probs(),
                idx.estimate_hit_probs(engine.selected())
            );
        }
    }

    #[test]
    fn gain_equals_estimate_difference() {
        // σ̂_u must equal F̂(S ∪ {u}) − F̂(S) computed from the same index.
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 3, 8, 11);
        for rule in [GainRule::HittingTime, GainRule::Coverage] {
            let mut engine = GainEngine::new(&idx, rule);
            engine.update(NodeId(4));
            let base = match rule {
                GainRule::HittingTime => engine.est_f1(),
                _ => engine.est_f2(),
            };
            for u in [0u32, 2, 6] {
                let predicted = engine.gain_single(NodeId(u));
                let mut probe = GainEngine::new(&idx, rule);
                probe.update(NodeId(4));
                probe.update(NodeId(u));
                let after = match rule {
                    GainRule::HittingTime => probe.est_f1(),
                    _ => probe.est_f2(),
                };
                assert!(
                    (predicted - (after - base)).abs() < 1e-9,
                    "rule {rule:?} u {u}: predicted {predicted} actual {}",
                    after - base
                );
            }
        }
    }

    #[test]
    fn gains_all_matches_gain_single_on_built_index() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 5, 12, 21);
        for rule in [
            GainRule::HittingTime,
            GainRule::Coverage,
            GainRule::Combined { lambda: 0.3 },
        ] {
            let mut engine = GainEngine::with_threads(&idx, rule, 3);
            engine.update(NodeId(2));
            let all = engine.gains_all();
            for u in 0..8u32 {
                let single = engine.gain_single(NodeId(u));
                assert!(
                    (all[u as usize] - single).abs() < 1e-12,
                    "rule {rule:?} u {u}"
                );
            }
        }
    }

    #[test]
    fn combined_endpoints_match_pure_rules() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 8, 2);
        let pure1 = GainEngine::new(&idx, GainRule::HittingTime).gains_all();
        let pure2 = GainEngine::new(&idx, GainRule::Coverage).gains_all();
        let c1 = GainEngine::new(&idx, GainRule::Combined { lambda: 1.0 }).gains_all();
        let c0 = GainEngine::new(&idx, GainRule::Combined { lambda: 0.0 }).gains_all();
        let nl = 8.0 * 4.0;
        for u in 0..8 {
            assert!((c1[u] - pure1[u] / nl).abs() < 1e-12);
            assert!((c0[u] - pure2[u] / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn est_f2_counts_members() {
        let idx = example31_index();
        let mut engine = GainEngine::new(&idx, GainRule::Coverage);
        assert_eq!(engine.est_f2(), 0.0);
        engine.update(NodeId(1)); // v2: hit by v1, v3, v5 plus itself
        assert_eq!(engine.est_f2(), 4.0);
    }

    #[test]
    fn parallel_update_path_is_thread_invariant_above_threshold() {
        // A star hub's inverted lists hold ~every leaf in every layer, so
        // r = 32 layers on a 2000-node star puts update(hub) well past
        // MIN_PARALLEL_UPDATE_WORK — the multi-worker branch must produce
        // bit-identical tables and totals at any worker count.
        let g = rwd_graph::generators::classic::star(2_000).unwrap();
        let idx = WalkIndex::build(&g, 3, 32, 17);
        let hub = NodeId(0);
        let work: usize = (0..idx.r()).map(|i| idx.postings(i, hub).len()).sum();
        assert!(
            work >= super::MIN_PARALLEL_UPDATE_WORK,
            "fixture must cross the parallel threshold (work = {work})"
        );
        for rule in [GainRule::HittingTime, GainRule::Coverage] {
            let mut serial = GainEngine::with_threads(&idx, rule, 1);
            serial.update(hub);
            for threads in [2, 8] {
                let mut engine = GainEngine::with_threads(&idx, rule, threads);
                engine.update(hub);
                match rule {
                    GainRule::HittingTime => {
                        assert_eq!(engine.est_f1().to_bits(), serial.est_f1().to_bits());
                        assert_eq!(engine.hit_times(), serial.hit_times());
                    }
                    _ => {
                        assert_eq!(engine.est_f2().to_bits(), serial.est_f2().to_bits());
                        assert_eq!(engine.hit_probs(), serial.hit_probs());
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_gains_all_path_is_thread_invariant_above_threshold() {
        // The same star fixture as the update test: its work measure
        // (r·n + postings) is far past the gate, so multi-thread engines
        // take the layer-parallel branch and must reproduce the serial
        // sweep bit for bit.
        let g = rwd_graph::generators::classic::star(2_000).unwrap();
        let idx = WalkIndex::build(&g, 3, 32, 17);
        assert!(
            idx.r() * idx.n() + idx.total_postings() >= super::MIN_PARALLEL_UPDATE_WORK,
            "fixture must cross the sweep gate"
        );
        for rule in [
            GainRule::HittingTime,
            GainRule::Coverage,
            GainRule::Combined { lambda: 0.6 },
        ] {
            let mut serial = GainEngine::with_threads(&idx, rule, 1);
            serial.update(NodeId(0));
            let expected = serial.gains_all();
            for threads in [2, 8] {
                let mut engine = GainEngine::with_threads(&idx, rule, threads);
                engine.update(NodeId(0));
                let gains = engine.gains_all();
                for (u, (a, b)) in gains.iter().zip(&expected).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "rule {rule:?} node {u}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn double_update_panics() {
        let idx = example31_index();
        let mut engine = GainEngine::new(&idx, GainRule::Coverage);
        engine.update(NodeId(0));
        engine.update(NodeId(0));
    }
}
