//! Output-sensitive greedy: exact delta-maintained gains over the
//! dual-view walk index.
//!
//! The sweep-based [`GainEngine`](crate::greedy::approx::GainEngine)
//! re-derives candidate gains from the `D` tables every time it is asked —
//! a full `gains_all` resweep streams every posting of the index, and a
//! CELF `gain_single` re-streams every posting of the candidate even when
//! almost nothing changed since the last round. This engine turns the
//! dependency around: it keeps the **exact** Algorithm-4 gain of every
//! candidate in a table and repairs only the entries Algorithm 5 actually
//! invalidates.
//!
//! The repair rule falls out of the gain formula. For Problem 1, layer `i`
//! contributes to candidate `v`'s gain the terms
//! `D1[i][v] + Σ_{(src,w) ∈ I[i][v]} max(0, D1[i][src] − w)`, so the gain
//! of `v` depends on slot `src` exactly when `src`'s walk `i` visits `v` —
//! that is, when `v ∈ forward(i, src)` ([`rwd_walks::WalkIndex::forward`],
//! the transpose of the inverted lists). When committing a seed lowers
//! `D1[i][src]` from `d` to `d'`:
//!
//! * `gain1[src] −= d − d'` (the candidate's own first-hit term), and
//! * for each `(v, w) ∈ forward(i, src)` with `w < d`:
//!   `gain1[v] −= max(0, d − w) − max(0, d' − w) = d − max(w, d')`.
//!
//! For Problem 2 a slot flip `D2[i][src]: 0 → 1` decrements `gain2[src]`
//! and `gain2[v]` for every `v ∈ forward(i, src)` by one. All accumulators
//! are integers (`u64` totals over layers), and the blended gain is
//! produced by the same [`GainRule::blend`] expression the sweep engines
//! use, so every maintained gain is **bit-identical** to what a fresh
//! `gains_all` sweep would compute (tests assert this after every round).
//!
//! A greedy round is then an argmax over the gain table — `O(n)` compares —
//! plus a repair pass that touches `O(Σ_changed |forward(i, src)|)` entries
//! instead of the whole index: each forward list holds at most `L` nodes,
//! and the number of changed slots shrinks every round as the `D` tables
//! tighten, so per-round work is *output-sensitive* — it scales with how
//! much the last commit actually changed. Initialization exploits the
//! `S = ∅` closed form (`D1 ≡ L`, `D2 ≡ 0`): `gain1[u] = R·L + Σ (L − w)`
//! over `u`'s postings and `gain2[u] = R + |I[·][u]|` — both available in
//! `O(1)` per node from the index's precomputed posting aggregates, so
//! startup is `O(n)` and touches no posting list at all.

use std::collections::BinaryHeap;

use rwd_graph::NodeId;
use rwd_walks::parallel::{resolve_threads, MIN_PARALLEL_SWEEP_WORK};
use rwd_walks::{NodeSet, WalkIndex};

use crate::greedy::approx::GainRule;
use crate::greedy::celf::CelfEntry;

/// Incremental exact-gain maintenance over a dual-view [`WalkIndex`] — or
/// over a **set of layer-range shards** that together cover `[0, R)`
/// ([`DeltaGainEngine::over_shards`]): every per-layer quantity is an
/// integer, so walking the shards' layers in absolute order reproduces the
/// monolithic engine's tables, picks and gain traces bit for bit.
///
/// The greedy loop is: [`DeltaGainEngine::best_candidate`] →
/// [`DeltaGainEngine::update`] → repeat. Gain entries of already-selected
/// nodes keep being maintained (they are the hypothetical gain of
/// re-adding the node) but are skipped by the argmax.
pub struct DeltaGainEngine<'a> {
    shards: Vec<&'a WalkIndex>,
    /// Global layer → `(shard, local layer)`, in absolute layer order — the
    /// order every table slice, staged decrement and reduction follows.
    layer_map: Vec<(usize, usize)>,
    rule: GainRule,
    n: usize,
    r: usize,
    l: u32,
    /// Problem-1 table, flattened `[layer][node]`; empty if unused.
    d1: Vec<u32>,
    /// Problem-2 indicator table, flattened `[layer][node]`; empty if unused.
    d2: Vec<u8>,
    /// `Σ_i` of each candidate's layer-`i` Problem-1 gain, exact integers.
    gain1: Vec<u64>,
    /// `Σ_i` of each candidate's layer-`i` Problem-2 gain, exact integers.
    gain2: Vec<u64>,
    selected: NodeSet,
    /// Lazy argmax heap: entries cache blended gains; because maintained
    /// gains only ever decrease, a popped top whose cached value still
    /// equals the exact table value is the true argmax — no per-round scan.
    heap: BinaryHeap<CelfEntry>,
    /// Running `Σ_{i,u} D1[i][u]` (for `F̂1 = nL − d1_total/R`).
    d1_total: u64,
    /// Running `Σ_{i,u} D2[i][u]` (for `F̂2 = d2_total/R`).
    d2_total: u64,
    threads: usize,
    /// Postings streamed by the most recent [`DeltaGainEngine::update`]
    /// (inverted postings of the seed plus forward postings of every
    /// changed slot) — the output-sensitivity measure the perf harness
    /// records per round.
    touched_last: usize,
}

/// One staged gain repair: `(candidate, integer decrement)`.
type Dec1 = (u32, u32);

impl<'a> DeltaGainEngine<'a> {
    /// Creates the engine for `S = ∅` with every candidate's exact gain
    /// precomputed from the closed form. Uses all cores; see
    /// [`DeltaGainEngine::with_threads`].
    pub fn new(idx: &'a WalkIndex, rule: GainRule) -> Self {
        Self::with_threads(idx, rule, 0)
    }

    /// [`DeltaGainEngine::new`] with an explicit worker count (`0` = all
    /// cores), used by the layer-parallel branch of
    /// [`DeltaGainEngine::update`]. All tables are exact integers, so
    /// results are bit-identical at any worker count.
    pub fn with_threads(idx: &'a WalkIndex, rule: GainRule, threads: usize) -> Self {
        Self::over_shards(std::slice::from_ref(&idx), rule, threads)
    }

    /// Builds the engine over a set of layer-range shards whose
    /// [`WalkIndex::layer_range`]s tile `[0, R)` contiguously in order —
    /// the scatter-gather form of [`DeltaGainEngine::with_threads`]. With
    /// one shard this *is* the monolithic engine; with many, the global
    /// layer order concatenates the shards' layers, so all tables, argmax
    /// picks and estimates are bit-identical to a monolithic engine over
    /// the same `R` layers.
    ///
    /// # Panics
    /// Panics when `shards` is empty, the shards disagree on `n`/`l`, or
    /// their layer ranges do not tile `[0, R)` in order.
    pub fn over_shards(shards: &[&'a WalkIndex], rule: GainRule, threads: usize) -> Self {
        rule.validate();
        assert!(!shards.is_empty(), "engine needs at least one shard");
        let n = shards[0].n();
        let l = shards[0].l();
        let mut layer_map = Vec::new();
        let mut next_base = 0usize;
        for (s, shard) in shards.iter().enumerate() {
            assert_eq!(shard.n(), n, "shard {s} disagrees on the node universe");
            assert_eq!(shard.l(), l, "shard {s} disagrees on the walk length");
            assert_eq!(
                shard.layer_base(),
                next_base,
                "shard {s} breaks the contiguous layer tiling"
            );
            for local in 0..shard.r() {
                layer_map.push((s, local));
            }
            next_base += shard.r();
        }
        let r = layer_map.len();
        let (d1, d2) = rule.alloc_tables(n, r, l);
        let (gain1, gain2) = Self::init_gains(shards, r, rule);
        let mut engine = DeltaGainEngine {
            shards: shards.to_vec(),
            layer_map,
            rule,
            n,
            r,
            l,
            d1,
            d2,
            gain1,
            gain2,
            selected: NodeSet::new(n),
            heap: BinaryHeap::new(),
            d1_total: (r * n) as u64 * l as u64,
            d2_total: 0,
            threads,
            touched_last: 0,
        };
        engine.heap = (0..n)
            .map(|u| CelfEntry {
                gain: engine.gain(NodeId::new(u)),
                node: u as u32,
                round: 0,
            })
            .collect();
        engine
    }

    /// Closed-form empty-set gains, `O(n)`: with `D1 ≡ L` every posting
    /// `(src, w) ∈ I[i][u]` contributes `L − w` and the own-slot term
    /// contributes `L` per layer, so
    /// `gain1[u] = R·L + L·count(u) − hopsum(u)`; with `D2 ≡ 0` every
    /// posting counts 1, so `gain2[u] = R + count(u)`. The per-node posting
    /// aggregates are precomputed by the index at construction, so this
    /// touches **no** posting list at all — which is what lets the delta
    /// path undercut even a single `gains_all` sweep. With many shards the
    /// aggregates sum across shards; the sums are the monolith's integers,
    /// so the closed form is unchanged.
    fn init_gains(shards: &[&WalkIndex], r: usize, rule: GainRule) -> (Vec<u64>, Vec<u64>) {
        let n = shards[0].n();
        let r = r as u64;
        let l = shards[0].l() as u64;
        let g1 = if rule.needs_f1() {
            (0..n)
                .map(|u| {
                    let u = NodeId::new(u);
                    let count: u64 = shards.iter().map(|s| s.posting_count(u)).sum();
                    let hopsum: u64 = shards.iter().map(|s| s.posting_hop_sum(u)).sum();
                    r * l + l * count - hopsum
                })
                .collect()
        } else {
            Vec::new()
        };
        let g2 = if rule.needs_f2() {
            (0..n)
                .map(|u| {
                    let u = NodeId::new(u);
                    let count: u64 = shards.iter().map(|s| s.posting_count(u)).sum();
                    r + count
                })
                .collect()
        } else {
            Vec::new()
        };
        (g1, g2)
    }

    /// The current target set `S`.
    pub fn selected(&self) -> &NodeSet {
        &self.selected
    }

    /// Current `F̂1(S) = nL − (Σ D1)/R` (Problem-1 rules only).
    pub fn est_f1(&self) -> f64 {
        assert!(self.rule.needs_f1(), "engine has no F1 table");
        self.n as f64 * self.l as f64 - self.d1_total as f64 / self.r as f64
    }

    /// Current `F̂2(S) = (Σ D2)/R` — members count 1 (Problem-2 rules only).
    pub fn est_f2(&self) -> f64 {
        assert!(self.rule.needs_f2(), "engine has no F2 table");
        self.d2_total as f64 / self.r as f64
    }

    /// Postings streamed by the most recent [`DeltaGainEngine::update`] —
    /// the per-round output-sensitivity measure (0 before any update).
    pub fn last_update_touched(&self) -> usize {
        self.touched_last
    }

    /// The maintained blended gain of one candidate — bit-identical to what
    /// [`GainEngine::gain_single`](crate::greedy::approx::GainEngine)
    /// would recompute from scratch for the same target set.
    #[inline]
    pub fn gain(&self, u: NodeId) -> f64 {
        let r = self.r as f64;
        let g1 = self.gain1.get(u.index()).map_or(0.0, |&g| g as f64);
        let g2 = self.gain2.get(u.index()).map_or(0.0, |&g| g as f64);
        self.rule.blend(g1 / r, g2 / r, self.n, self.l)
    }

    /// All maintained blended gains (selected entries are the hypothetical
    /// re-add gain; callers skip them) — matches a fresh
    /// [`GainEngine::gains_all`](crate::greedy::approx::GainEngine) bit for
    /// bit.
    pub fn gains(&self) -> Vec<f64> {
        (0..self.n).map(|u| self.gain(NodeId::new(u))).collect()
    }

    /// Argmax over the maintained gain table, skipping selected nodes; ties
    /// break toward the smaller id, matching the sweep and CELF drivers
    /// exactly (the heap orders like [`CelfEntry`]: gain descending, id
    /// ascending on ties — the pop sequence of equal exact values is the
    /// ascending-id scan order). `None` once everything is selected.
    ///
    /// Runs in `O(stale pops · log n)` instead of `O(n)`: maintained gains
    /// only decrease, so every cached heap entry is an upper bound on its
    /// candidate's current gain, and a popped top whose cached value still
    /// equals the exact table value is the global argmax — the CELF
    /// argument, but with `O(1)` table lookups in place of Algorithm-4
    /// re-evaluations. Stale tops are re-pushed with their exact value.
    pub fn best_candidate(&mut self) -> Option<(NodeId, f64)> {
        while let Some(top) = self.heap.pop() {
            let node = NodeId(top.node);
            if self.selected.contains(node) {
                continue; // dropped for good; selected nodes never return
            }
            let current = self.gain(node);
            if current == top.gain {
                // Re-push so a caller that does not commit this pick (or
                // asks again before updating) still sees a complete heap.
                self.heap.push(top);
                return Some((node, current));
            }
            self.heap.push(CelfEntry {
                gain: current,
                node: top.node,
                round: 0,
            });
        }
        None
    }

    /// Commits `u` to the target set: applies the Algorithm-5 table refresh
    /// *and* repairs the gain table via the forward view — only candidates
    /// reachable from a changed slot are touched.
    ///
    /// Layers fan out over workers above the shared work gate; each layer
    /// owns a disjoint slice of the `D` tables and stages its gain
    /// decrements, which are applied in layer-chunk order on the calling
    /// thread. Decrements are integers, so the tables are bit-identical at
    /// any worker count.
    pub fn update(&mut self, u: NodeId) {
        assert!(self.selected.insert(u), "node {u} selected twice");
        // Each improved slot streams its forward list (≤ L entries), so the
        // repair work is up to (1 + L)× the seed's inverted postings — gate
        // on that estimate, not the posting count alone.
        let postings: usize = self
            .layer_map
            .iter()
            .map(|&(s, li)| self.shards[s].postings(li, u).len())
            .sum();
        let work = postings * (1 + self.l as usize);
        let workers = if work < MIN_PARALLEL_SWEEP_WORK {
            1
        } else {
            resolve_threads(self.threads).min(self.r)
        };
        let n = self.n;
        let shards = &self.shards;
        self.touched_last = 0;

        if workers == 1 {
            let gain1 = &mut self.gain1;
            let gain2 = &mut self.gain2;
            let mut it1 = self.d1.chunks_mut(n);
            let mut it2 = self.d2.chunks_mut(n);
            let (mut dec1_sum, mut inc2_sum, mut touched_sum) = (0u64, 0u64, 0usize);
            for &(s, li) in &self.layer_map {
                let (dec1, inc2, touched) = Self::update_layer(
                    shards[s],
                    u,
                    li,
                    it1.next(),
                    it2.next(),
                    &mut |v, dec| gain1[v as usize] -= dec as u64,
                    &mut |v| gain2[v as usize] -= 1,
                );
                dec1_sum += dec1;
                inc2_sum += inc2;
                touched_sum += touched;
            }
            self.d1_total -= dec1_sum;
            self.d2_total += inc2_sum;
            self.touched_last = touched_sum;
            return;
        }

        /// One layer's update job: its owning index, its local layer index
        /// and its disjoint `D` slices.
        type LayerJob<'s, 'i> = (
            &'i WalkIndex,
            usize,
            Option<&'s mut [u32]>,
            Option<&'s mut [u8]>,
        );

        let mut it1 = self.d1.chunks_mut(n);
        let mut it2 = self.d2.chunks_mut(n);
        let mut per_layer: Vec<LayerJob<'_, 'a>> = self
            .layer_map
            .iter()
            .map(|&(s, li)| (shards[s], li, it1.next(), it2.next()))
            .collect();
        let chunk = self.r.div_ceil(workers);
        /// Per-worker staged output: `(Σ dec1, Σ inc2, touched, gain1
        /// decrements, gain2 decrement targets)`.
        type Staged = (u64, u64, usize, Vec<Dec1>, Vec<u32>);
        let mut partials: Vec<Staged> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_layer
                .chunks_mut(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        let (mut dec1, mut inc2, mut touched) = (0u64, 0u64, 0usize);
                        let mut decs1: Vec<Dec1> = Vec::new();
                        let mut decs2: Vec<u32> = Vec::new();
                        for (idx, li, d1, d2) in group.iter_mut() {
                            let (a, b, t) = Self::update_layer(
                                idx,
                                u,
                                *li,
                                d1.as_deref_mut(),
                                d2.as_deref_mut(),
                                &mut |v, dec| decs1.push((v, dec)),
                                &mut |v| decs2.push(v),
                            );
                            dec1 += a;
                            inc2 += b;
                            touched += t;
                        }
                        (dec1, inc2, touched, decs1, decs2)
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("delta update worker panicked"));
            }
        });
        for (dec1, inc2, touched, decs1, decs2) in partials {
            self.d1_total -= dec1;
            self.d2_total += inc2;
            self.touched_last += touched;
            for (v, dec) in decs1 {
                self.gain1[v as usize] -= dec as u64;
            }
            for v in decs2 {
                self.gain2[v as usize] -= 1;
            }
        }
    }

    /// Algorithm 5 for layer `i` plus gain repair: every slot the refresh
    /// lowers (the new member's own slot and each improved posting source)
    /// streams its forward list once, emitting the closed-form decrement
    /// for each affected candidate into `sink1`/`sink2`. Forward lists are
    /// hop-ascending, so the Problem-1 streams stop at the first hop `≥`
    /// the slot's old value — entries past it contribute `max(0, d − w) =
    /// 0` before *and* after the drop. Returns `(Σ D1 decrease, Σ D2
    /// increase, postings streamed)`.
    fn update_layer(
        idx: &WalkIndex,
        u: NodeId,
        i: usize,
        d1: Option<&mut [u32]>,
        d2: Option<&mut [u8]>,
        sink1: &mut impl FnMut(u32, u32),
        sink2: &mut impl FnMut(u32),
    ) -> (u64, u64, usize) {
        let (mut dec1, mut inc2, mut touched) = (0u64, 0u64, 0usize);
        let pr = idx.postings(i, u);
        touched += pr.len();
        if let Some(d) = d1 {
            // The seed's own slot: D1[i][u] → 0. Affected candidates are
            // forward(i, u); with d' = 0 ≤ w the decrement is `old − w`.
            let old = d[u.index()];
            if old > 0 {
                d[u.index()] = 0;
                dec1 += old as u64;
                sink1(u.raw(), old);
                let fwd = idx.forward(i, u);
                for (&v, &w) in fwd.ids().iter().zip(fwd.weights()) {
                    let w = w as u32;
                    if w >= old {
                        break;
                    }
                    touched += 1;
                    sink1(v, old - w);
                }
            }
            // Each posting source whose first-hit improves: D1[i][src]
            // drops `old → new`; candidates in forward(i, src) lose
            // `max(0, old − w) − max(0, new − w) = old − max(w, new)`.
            for (&src, &w) in pr.ids().iter().zip(pr.weights()) {
                let new = w as u32;
                let old = d[src as usize];
                if new < old {
                    d[src as usize] = new;
                    dec1 += (old - new) as u64;
                    sink1(src, old - new);
                    let fwd = idx.forward(i, NodeId(src));
                    for (&v, &hw) in fwd.ids().iter().zip(fwd.weights()) {
                        let hw = hw as u32;
                        if hw >= old {
                            break;
                        }
                        touched += 1;
                        sink1(v, old - hw.max(new));
                    }
                }
            }
        }
        if let Some(d) = d2 {
            // Coverage: a slot flip 0 → 1 costs every candidate the slot's
            // walk visits (and the slot's own-term) exactly one unit.
            if d[u.index()] == 0 {
                d[u.index()] = 1;
                inc2 += 1;
                sink2(u.raw());
                let fwd = idx.forward(i, u);
                touched += fwd.len();
                for &v in fwd.ids() {
                    sink2(v);
                }
            }
            for &src in pr.ids() {
                if d[src as usize] == 0 {
                    d[src as usize] = 1;
                    inc2 += 1;
                    sink2(src);
                    let fwd = idx.forward(i, NodeId(src));
                    touched += fwd.len();
                    for &v in fwd.ids() {
                        sink2(v);
                    }
                }
            }
        }
        (dec1, inc2, touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::approx::GainEngine;
    use rwd_graph::generators::{barabasi_albert, paper_example};

    /// The Example 3.1 index: R = 1, L = 2, fixed walks.
    fn example31_index() -> WalkIndex {
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        WalkIndex::from_walks(8, 2, &walks)
    }

    const ALL_RULES: [GainRule; 3] = [
        GainRule::HittingTime,
        GainRule::Coverage,
        GainRule::Combined { lambda: 0.3 },
    ];

    #[test]
    fn initial_gains_match_sweep_engine_bitwise() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 5, 12, 21);
        for rule in ALL_RULES {
            let sweep = GainEngine::new(&idx, rule).gains_all();
            let delta = DeltaGainEngine::new(&idx, rule).gains();
            for (u, (a, b)) in delta.iter().zip(&sweep).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "rule {rule:?} node {u}");
            }
        }
    }

    #[test]
    fn example_3_1_first_round_gains_and_picks() {
        // Paper: σ(∅) = (2, 5, 3, 2, 3, 2, 5, 2) for v1..v8; v2 wins the
        // v2/v7 tie, then v7 is the second pick.
        let idx = example31_index();
        let mut engine = DeltaGainEngine::new(&idx, GainRule::HittingTime);
        assert_eq!(engine.gains(), vec![2.0, 5.0, 3.0, 2.0, 3.0, 2.0, 5.0, 2.0]);
        let (first, gain) = engine.best_candidate().unwrap();
        assert_eq!((first, gain), (NodeId(1), 5.0));
        engine.update(first);
        let (second, _) = engine.best_candidate().unwrap();
        assert_eq!(second, NodeId(6), "v7 is the paper's second pick");
    }

    #[test]
    fn maintained_gains_track_sweep_engine_across_rounds() {
        // After every commit, the delta-maintained table must equal a
        // sweep engine's fresh gains_all bit for bit — on non-selected
        // candidates (selected entries are maintained but unused).
        let g = barabasi_albert(200, 3, 11).unwrap();
        let idx = WalkIndex::build(&g, 6, 8, 5);
        for rule in ALL_RULES {
            let mut delta = DeltaGainEngine::new(&idx, rule);
            let mut sweep = GainEngine::new(&idx, rule);
            for round in 0..6 {
                let (pick, gain) = delta.best_candidate().unwrap();
                assert_eq!(
                    gain.to_bits(),
                    sweep.gain_single(pick).to_bits(),
                    "rule {rule:?} round {round}"
                );
                delta.update(pick);
                sweep.update(pick);
                let fresh = sweep.gains_all();
                let maintained = delta.gains();
                for u in 0..idx.n() {
                    if delta.selected().contains(NodeId::new(u)) {
                        continue;
                    }
                    assert_eq!(
                        maintained[u].to_bits(),
                        fresh[u].to_bits(),
                        "rule {rule:?} round {round} node {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn estimates_match_sweep_engine() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 16, 3);
        let mut delta = DeltaGainEngine::new(&idx, GainRule::HittingTime);
        let mut sweep = GainEngine::new(&idx, GainRule::HittingTime);
        for pick in [NodeId(1), NodeId(6), NodeId(3)] {
            delta.update(pick);
            sweep.update(pick);
            assert_eq!(delta.est_f1().to_bits(), sweep.est_f1().to_bits());
        }
        let mut delta = DeltaGainEngine::new(&idx, GainRule::Coverage);
        let mut sweep = GainEngine::new(&idx, GainRule::Coverage);
        for pick in [NodeId(6), NodeId(0)] {
            delta.update(pick);
            sweep.update(pick);
            assert_eq!(delta.est_f2().to_bits(), sweep.est_f2().to_bits());
        }
    }

    #[test]
    fn update_is_thread_invariant_above_threshold() {
        // Star hub: r = 32 layers on a 2000-node star puts update(hub)
        // past the parallel gate; staged gain decrements must reproduce the
        // serial tables exactly.
        let g = rwd_graph::generators::classic::star(2_000).unwrap();
        let idx = WalkIndex::build(&g, 3, 32, 17);
        let hub = NodeId(0);
        let work: usize = (0..idx.r()).map(|i| idx.postings(i, hub).len()).sum();
        assert!(
            work >= MIN_PARALLEL_SWEEP_WORK,
            "fixture must cross the parallel threshold (work = {work})"
        );
        for rule in ALL_RULES {
            let mut serial = DeltaGainEngine::with_threads(&idx, rule, 1);
            serial.update(hub);
            for threads in [2, 8] {
                let mut engine = DeltaGainEngine::with_threads(&idx, rule, threads);
                engine.update(hub);
                assert_eq!(engine.touched_last, serial.touched_last);
                for u in 0..idx.n() {
                    let u = NodeId::new(u);
                    assert_eq!(
                        engine.gain(u).to_bits(),
                        serial.gain(u).to_bits(),
                        "rule {rule:?} node {u} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn touched_postings_shrink_after_first_round() {
        // Output sensitivity: once the D tables tighten, later commits
        // change fewer slots, so the repair pass touches fewer postings
        // than a full sweep would.
        let g = barabasi_albert(300, 4, 9).unwrap();
        let idx = WalkIndex::build(&g, 6, 16, 2);
        let mut engine = DeltaGainEngine::new(&idx, GainRule::HittingTime);
        let mut touched = Vec::new();
        for _ in 0..8 {
            let (pick, _) = engine.best_candidate().unwrap();
            engine.update(pick);
            touched.push(engine.last_update_touched());
        }
        let total = idx.total_postings();
        assert!(
            touched[1..].iter().all(|&t| t < total),
            "later rounds must touch fewer postings than one full sweep \
             ({touched:?} vs {total})"
        );
    }

    #[test]
    fn sharded_engine_matches_monolith_bitwise() {
        // Shard the index's layers contiguously; the over_shards engine
        // must reproduce the monolithic picks, gains and estimates bit for
        // bit at every shard and thread count.
        use rwd_walks::LayerRange;
        let g = barabasi_albert(180, 3, 13).unwrap();
        let (l, r, seed) = (5u32, 8usize, 27u64);
        let idx = WalkIndex::build(&g, l, r, seed);
        for rule in ALL_RULES {
            let mut mono = DeltaGainEngine::with_threads(&idx, rule, 1);
            let mut mono_trace = Vec::new();
            for _ in 0..5 {
                let (pick, gain) = mono.best_candidate().unwrap();
                mono.update(pick);
                mono_trace.push((pick, gain.to_bits(), mono.last_update_touched()));
            }
            for shards in [1usize, 2, 4, 8] {
                let parts: Vec<WalkIndex> = LayerRange::partition(r, shards)
                    .into_iter()
                    .map(|rg| WalkIndex::build_layer_range(&g, l, rg, seed, 0))
                    .collect();
                let refs: Vec<&WalkIndex> = parts.iter().collect();
                for threads in [1usize, 2, 8] {
                    let mut engine = DeltaGainEngine::over_shards(&refs, rule, threads);
                    for (round, &(pick, gain_bits, touched)) in mono_trace.iter().enumerate() {
                        let (p, gain) = engine.best_candidate().unwrap();
                        assert_eq!(p, pick, "rule {rule:?} shards {shards} round {round}");
                        assert_eq!(gain.to_bits(), gain_bits);
                        engine.update(p);
                        assert_eq!(engine.last_update_touched(), touched);
                    }
                    for u in 0..idx.n() {
                        let u = NodeId::new(u);
                        assert_eq!(
                            engine.gain(u).to_bits(),
                            mono.gain(u).to_bits(),
                            "rule {rule:?} shards {shards} threads {threads} node {u}"
                        );
                    }
                    if rule.needs_f1() {
                        assert_eq!(engine.est_f1().to_bits(), mono.est_f1().to_bits());
                    }
                    if rule.needs_f2() {
                        assert_eq!(engine.est_f2().to_bits(), mono.est_f2().to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "contiguous layer tiling")]
    fn over_shards_rejects_gapped_ranges() {
        use rwd_walks::LayerRange;
        let g = paper_example::figure1();
        let a = WalkIndex::build_layer_range(&g, 3, LayerRange::new(0, 2), 5, 0);
        let b = WalkIndex::build_layer_range(&g, 3, LayerRange::new(3, 4), 5, 0);
        let _ = DeltaGainEngine::over_shards(&[&a, &b], GainRule::Coverage, 0);
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn double_update_panics() {
        let idx = example31_index();
        let mut engine = DeltaGainEngine::new(&idx, GainRule::Coverage);
        engine.update(NodeId(0));
        engine.update(NodeId(0));
    }
}
