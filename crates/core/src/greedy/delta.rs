//! Output-sensitive greedy: exact delta-maintained gains over the
//! dual-view walk index.
//!
//! The sweep-based [`GainEngine`](crate::greedy::approx::GainEngine)
//! re-derives candidate gains from the `D` tables every time it is asked —
//! a full `gains_all` resweep streams every posting of the index, and a
//! CELF `gain_single` re-streams every posting of the candidate even when
//! almost nothing changed since the last round. This engine turns the
//! dependency around: it keeps the **exact** Algorithm-4 gain of every
//! candidate in a table and repairs only the entries Algorithm 5 actually
//! invalidates.
//!
//! The repair rule falls out of the gain formula. For Problem 1, layer `i`
//! contributes to candidate `v`'s gain the terms
//! `D1[i][v] + Σ_{(src,w) ∈ I[i][v]} max(0, D1[i][src] − w)`, so the gain
//! of `v` depends on slot `src` exactly when `src`'s walk `i` visits `v` —
//! that is, when `v ∈ forward(i, src)` ([`rwd_walks::WalkIndex::forward`],
//! the transpose of the inverted lists). When committing a seed lowers
//! `D1[i][src]` from `d` to `d'`:
//!
//! * `gain1[src] −= d − d'` (the candidate's own first-hit term), and
//! * for each `(v, w) ∈ forward(i, src)` with `w < d`:
//!   `gain1[v] −= max(0, d − w) − max(0, d' − w) = d − max(w, d')`.
//!
//! For Problem 2 a slot flip `D2[i][src]: 0 → 1` decrements `gain2[src]`
//! and `gain2[v]` for every `v ∈ forward(i, src)` by one. All accumulators
//! are integers (`u64` totals over layers), and the blended gain is
//! produced by the same [`GainRule::blend`] expression the sweep engines
//! use, so every maintained gain is **bit-identical** to what a fresh
//! `gains_all` sweep would compute (tests assert this after every round).
//!
//! A greedy round is then an argmax over the gain table — `O(n)` compares —
//! plus a repair pass that touches `O(Σ_changed |forward(i, src)|)` entries
//! instead of the whole index: each forward list holds at most `L` nodes,
//! and the number of changed slots shrinks every round as the `D` tables
//! tighten, so per-round work is *output-sensitive* — it scales with how
//! much the last commit actually changed. Initialization exploits the
//! `S = ∅` closed form (`D1 ≡ L`, `D2 ≡ 0`): `gain1[u] = R·L + Σ (L − w)`
//! over `u`'s postings and `gain2[u] = R + |I[·][u]|` — both available in
//! `O(1)` per node from the index's precomputed posting aggregates, so
//! startup is `O(n)` and touches no posting list at all.
//!
//! # Cross-epoch warm starts
//!
//! The engine's state can outlive the index epoch it was built on. With
//! round logging enabled ([`DeltaGainEngine::enable_round_logging`]) every
//! committed round records its exact mutations — the `D`-slot drops and
//! the integer gain decrements. When an incremental refresh later rewrites
//! part of the index and emits its [`PostingDelta`] edit script,
//! [`DeltaGainEngine::absorb`] patches the engine back to the **new**
//! index's `S = ∅` state in `O(|delta| + changed slots)`:
//!
//! * the recorded slot drops are undone (back to `L` / `0` — the `S = ∅`
//!   closed form), touching only slots a round actually changed;
//! * each removed posting `(owner, src, w)` subtracts its closed-form
//!   `S = ∅` contribution from `owner`'s baseline (`L − w` from `gain1`,
//!   `1` from `gain2`) and each added posting adds it back — the same
//!   per-posting algebra the `d − max(w, d')` update rule specializes to
//!   at `D ≡ L`;
//! * the gain tables are restored from the patched baselines and the CELF
//!   heap is rebuilt in place — every allocation (tables, heap storage,
//!   logs) is recycled. The per-posting terms also accumulate into dense
//!   signed **patch vectors**, the additive bridge that carries the old
//!   epoch's recorded gain snapshots onto the new index.
//!
//! The previous epoch's round logs then become **replayable at slot
//! grain** ([`DeltaGainEngine::try_replay_recorded`]). A replayed round
//! restores the gain tables from the recorded post-round snapshot rebased
//! by the patch vectors, then walks the round's per-layer logs: slots
//! whose walk group the delta left alone re-apply their logged drop
//! verbatim (their reads on the new index would be byte-identical to the
//! old epoch's), while *resampled* slots have their recorded decrements
//! un-applied and their group's slot decision redone live against the
//! fresh index — one scan of the pick's inverted row per dirty layer,
//! testing each entry against the resampled bitset in `O(1)`. Per-group
//! `D` evolution is independent and gain
//! decrements are commutative integer adds, so a batch that resamples 1%
//! of the walk groups costs 1% live work, never a whole layer or round. A
//! round whose argmax moved ends the fast path and the caller recomputes
//! the remaining rounds cold. Either way the engine state after every
//! round is bit-identical to a freshly built engine on the refreshed
//! index committing the same picks — at any thread or shard count.

use std::collections::BinaryHeap;

use rwd_graph::NodeId;
use rwd_walks::parallel::{resolve_threads, MIN_PARALLEL_SWEEP_WORK};
use rwd_walks::{NodeSet, PostingDelta, WalkIndex};

use crate::greedy::approx::GainRule;
use crate::greedy::celf::CelfEntry;

/// One staged gain repair: `(candidate, integer decrement)`.
type Dec1 = (u32, u32);

/// Tombstone slot id inside a recorded [`LayerLog`]: warm replay retires a
/// resampled slot entry *in place* (its decrement range stays behind as
/// inert garbage, delimited by the untouched offset array) instead of
/// compacting the log — `u32::MAX` is never a valid node id.
const DEAD_SLOT: u32 = u32::MAX;

/// The exact mutations one committed greedy round applied to **one**
/// layer — enough to re-apply that layer's share of the round without
/// touching the index (warm replay) and to rewind its `D`-slot drops
/// (absorb). Recorded only when round logging is enabled.
///
/// The offset arrays attribute every gain decrement to the slot whose
/// forward stream emitted it, which is what makes replay work at **slot
/// grain**: a group's slot is only ever written by that group's postings
/// and gain decrements are commutative integer adds, so each recorded
/// slot re-validates independently — a batch that resamples 1% of the
/// walk groups invalidates only those slots' ranges, not whole layers or
/// rounds. During replay the log doubles as an overlay: retired entries
/// are tombstoned ([`DEAD_SLOT`]) and live recomputations append, so the
/// merged log is this round's fresh record for the *next* epoch.
#[derive(Clone, Debug, Default)]
struct LayerLog {
    /// Global (absolute) layer index.
    gl: u32,
    /// Postings this layer's share of the round streamed — a replayed
    /// layer re-accounts the same count it would stream cold.
    touched: usize,
    /// `D1` drops: `(slot, new value)`. The pre-drop value is implicit
    /// (the table's current entry).
    slot1: Vec<(u32, u32)>,
    /// Start offset into `dec1` of each `slot1` entry's decrement range
    /// (ending at the next entry's offset, or `dec1.len()`); the slot-grain
    /// attribution that lets a replay un-apply exactly the decrements of a
    /// resampled group.
    off1: Vec<u32>,
    /// `D2` flips `0 → 1`.
    slot2: Vec<u32>,
    /// Start offset into `dec2` of each `slot2` entry's decrement range.
    off2: Vec<u32>,
    /// Problem-1 gain decrements `(candidate, amount)`.
    dec1: Vec<Dec1>,
    /// Problem-2 gain decrements (always by one).
    dec2: Vec<u32>,
}

/// One committed greedy round's mutations, layer by layer in global layer
/// order.
#[derive(Clone, Debug, Default)]
struct RoundLog {
    /// The committed seed.
    pick: u32,
    /// Per-layer mutations, one entry per global layer (possibly empty —
    /// a layer in which the pick has no postings and no slot improved).
    layers: Vec<LayerLog>,
}

/// The owned, index-independent state of a [`DeltaGainEngine`]: gain and
/// `D` tables, CELF heap, selection set, baselines and round logs.
///
/// Detaching the core ([`DeltaGainEngine::into_core`]) and re-binding it
/// to the next epoch's shards ([`DeltaGainEngine::resume`]) is what makes
/// the engine persistent across index epochs without borrowing trouble:
/// the core holds no index reference, so the index is free to be refreshed
/// (or copy-on-write cloned) between epochs while the tables survive.
#[derive(Clone, Debug)]
pub struct EngineCore {
    rule: GainRule,
    n: usize,
    r: usize,
    l: u32,
    threads: usize,
    /// Problem-1 table, flattened `[layer][node]`; empty if unused.
    d1: Vec<u32>,
    /// Problem-2 indicator table, flattened `[layer][node]`; empty if unused.
    d2: Vec<u8>,
    /// `Σ_i` of each candidate's layer-`i` Problem-1 gain, exact integers.
    gain1: Vec<u64>,
    /// `Σ_i` of each candidate's layer-`i` Problem-2 gain, exact integers.
    gain2: Vec<u64>,
    /// The `S = ∅` closed-form gains of the engine's current index epoch —
    /// the rewind target of [`DeltaGainEngine::absorb`]. Maintained only
    /// with round logging on (empty otherwise).
    base1: Vec<u64>,
    base2: Vec<u64>,
    selected: NodeSet,
    /// Lazy argmax heap: entries cache blended gains; because maintained
    /// gains only ever decrease, a popped top whose cached value still
    /// equals the exact table value is the true argmax — no per-round scan.
    heap: BinaryHeap<CelfEntry>,
    /// Running `Σ_{i,u} D1[i][u]` (for `F̂1 = nL − d1_total/R`).
    d1_total: u64,
    /// Running `Σ_{i,u} D2[i][u]` (for `F̂2 = d2_total/R`).
    d2_total: u64,
    /// Postings streamed (or, for a replayed round, re-accounted) by the
    /// most recent commit.
    touched_last: usize,
    /// Whether commits record [`RoundLog`]s (the warm-start prerequisite).
    log_rounds: bool,
    /// Logs of the rounds committed since the last absorb/construction.
    rounds: Vec<RoundLog>,
    /// Post-round gain-table snapshots, flattened `[round][node]`, one
    /// frame per entry of `rounds` (empty for a table the rule does not
    /// use). A snapshot replay restores a whole round's gains with one
    /// `memcpy` instead of re-applying its logged decrements — the
    /// decrement volume is what makes per-mutation replay cost as much as
    /// a live round. `O(k·n)` memory, the same order as the `D` tables.
    snaps1: Vec<u64>,
    snaps2: Vec<u64>,
    /// Bitset over `global layer · n + src`: walk groups the last absorbed
    /// delta net-changed. A replay takes a resampled group's slot work
    /// from a live recomputation instead of the log — the group's walk
    /// (and so its forward list and row postings) is not the one the log
    /// was recorded against. A bitset (not a hash set) because a replay
    /// probes it once per logged slot and once per fresh row posting.
    resampled: Vec<u64>,
}

impl EngineCore {
    /// Whether this core's shape (node universe, walk length, total layer
    /// count) matches a shard tiling — the precondition of
    /// [`DeltaGainEngine::resume`].
    pub fn matches(&self, shards: &[&WalkIndex]) -> bool {
        !shards.is_empty()
            && shards[0].n() == self.n
            && shards[0].l() == self.l
            && shards.iter().map(|s| s.r()).sum::<usize>() == self.r
    }

    /// Rounds committed (and logged) since the last absorb/construction.
    pub fn rounds_recorded(&self) -> usize {
        self.rounds.len()
    }

    /// Total logged mutations `(slot drops, gain decrements)` across the
    /// recorded rounds — the volume a full warm replay re-applies.
    pub fn mutations_recorded(&self) -> (usize, usize) {
        self.rounds.iter().fold((0, 0), |(s, d), log| {
            let (ls, ld) = log.layers.iter().fold((0, 0), |(s, d), l| {
                (
                    s + l.slot1.len() + l.slot2.len(),
                    d + l.dec1.len() + l.dec2.len(),
                )
            });
            (s + ls, d + ld)
        })
    }
}

/// Incremental exact-gain maintenance over a dual-view [`WalkIndex`] — or
/// over a **set of layer-range shards** that together cover `[0, R)`
/// ([`DeltaGainEngine::over_shards`]): every per-layer quantity is an
/// integer, so walking the shards' layers in absolute order reproduces the
/// monolithic engine's tables, picks and gain traces bit for bit.
///
/// The greedy loop is: [`DeltaGainEngine::best_candidate`] →
/// [`DeltaGainEngine::update`] → repeat. Gain entries of already-selected
/// nodes keep being maintained (they are the hypothetical gain of
/// re-adding the node) but are skipped by the argmax.
///
/// The engine borrows its shards only for the duration of one binding; the
/// owned state ([`EngineCore`]) can be detached and re-bound to the next
/// index epoch — see the module docs on cross-epoch warm starts.
pub struct DeltaGainEngine<'a> {
    shards: Vec<&'a WalkIndex>,
    /// Global layer → `(shard, local layer)`, in absolute layer order — the
    /// order every table slice, staged decrement and reduction follows.
    layer_map: Vec<(usize, usize)>,
    core: EngineCore,
    /// The previous epoch's round logs, re-validated front to back during
    /// a warm replay; populated by [`DeltaGainEngine::absorb`].
    pending: Vec<RoundLog>,
    /// The previous epoch's post-round gain snapshots, aligned with
    /// `pending` frame by frame.
    pending_snaps1: Vec<u64>,
    pending_snaps2: Vec<u64>,
    /// Next pending log to validate.
    replay_cursor: usize,
    /// The last absorbed delta's net baseline patches, dense per node
    /// (`Δgain1` / `Δgain2`), re-added on top of each restored snapshot
    /// (snapshots predate the delta). Dense because every replayed round
    /// rebases the full gain vector anyway — one fused sequential pass
    /// beats a sparse chain of random-index adds.
    patch1: Vec<i64>,
    patch2: Vec<i64>,
    /// The replayed rounds of this epoch fold their fixups into the same
    /// patch vectors: for every resampled slot the replay un-applies the
    /// recorded decrements (`+dec`) and applies the live ones (`−dec`).
    /// Snapshots record the *previous* epoch's gain evolution, so the
    /// cold-equivalent gains of round `t` are `snapshot(t) + patch`, where
    /// `patch` has accumulated the fixups of all rounds before `t`.
    /// Whether each global layer holds any resampled group at all — a
    /// clean layer replays its recorded log verbatim, skipping both the
    /// per-slot bit tests and the live row scan.
    layer_dirty: Vec<bool>,
}

impl<'a> DeltaGainEngine<'a> {
    /// Creates the engine for `S = ∅` with every candidate's exact gain
    /// precomputed from the closed form. Uses all cores; see
    /// [`DeltaGainEngine::with_threads`].
    pub fn new(idx: &'a WalkIndex, rule: GainRule) -> Self {
        Self::with_threads(idx, rule, 0)
    }

    /// [`DeltaGainEngine::new`] with an explicit worker count (`0` = all
    /// cores), used by the layer-parallel branch of
    /// [`DeltaGainEngine::update`]. All tables are exact integers, so
    /// results are bit-identical at any worker count.
    pub fn with_threads(idx: &'a WalkIndex, rule: GainRule, threads: usize) -> Self {
        Self::over_shards(std::slice::from_ref(&idx), rule, threads)
    }

    /// Builds the engine over a set of layer-range shards whose
    /// [`WalkIndex::layer_range`]s tile `[0, R)` contiguously in order —
    /// the scatter-gather form of [`DeltaGainEngine::with_threads`]. With
    /// one shard this *is* the monolithic engine; with many, the global
    /// layer order concatenates the shards' layers, so all tables, argmax
    /// picks and estimates are bit-identical to a monolithic engine over
    /// the same `R` layers.
    ///
    /// # Panics
    /// Panics when `shards` is empty, the shards disagree on `n`/`l`, or
    /// their layer ranges do not tile `[0, R)` in order.
    pub fn over_shards(shards: &[&'a WalkIndex], rule: GainRule, threads: usize) -> Self {
        rule.validate();
        let (layer_map, n, l) = Self::tile(shards);
        let r = layer_map.len();
        let (d1, d2) = rule.alloc_tables(n, r, l);
        let (gain1, gain2) = Self::init_gains(shards, r, rule);
        let core = EngineCore {
            rule,
            n,
            r,
            l,
            threads,
            d1,
            d2,
            gain1,
            gain2,
            base1: Vec::new(),
            base2: Vec::new(),
            selected: NodeSet::new(n),
            heap: BinaryHeap::new(),
            d1_total: (r * n) as u64 * l as u64,
            d2_total: 0,
            touched_last: 0,
            log_rounds: false,
            rounds: Vec::new(),
            snaps1: Vec::new(),
            snaps2: Vec::new(),
            resampled: Vec::new(),
        };
        let mut engine = DeltaGainEngine {
            shards: shards.to_vec(),
            layer_map,
            core,
            pending: Vec::new(),
            pending_snaps1: Vec::new(),
            pending_snaps2: Vec::new(),
            replay_cursor: 0,
            patch1: Vec::new(),
            patch2: Vec::new(),
            layer_dirty: Vec::new(),
        };
        engine.rebuild_heap();
        engine
    }

    /// Validates a shard tiling and produces the global layer map plus the
    /// agreed `(n, l)`.
    fn tile(shards: &[&WalkIndex]) -> (Vec<(usize, usize)>, usize, u32) {
        assert!(!shards.is_empty(), "engine needs at least one shard");
        let n = shards[0].n();
        let l = shards[0].l();
        let mut layer_map = Vec::new();
        let mut next_base = 0usize;
        for (s, shard) in shards.iter().enumerate() {
            assert_eq!(shard.n(), n, "shard {s} disagrees on the node universe");
            assert_eq!(shard.l(), l, "shard {s} disagrees on the walk length");
            assert_eq!(
                shard.layer_base(),
                next_base,
                "shard {s} breaks the contiguous layer tiling"
            );
            for local in 0..shard.r() {
                layer_map.push((s, local));
            }
            next_base += shard.r();
        }
        (layer_map, n, l)
    }

    /// Detaches the engine's owned state so it can outlive this binding's
    /// index borrow — the cross-epoch handoff. Re-bind with
    /// [`DeltaGainEngine::resume`].
    pub fn into_core(self) -> EngineCore {
        self.core
    }

    /// A view of the engine's owned state (for introspection — e.g. log
    /// volume accounting) without detaching it.
    pub fn core_ref(&self) -> &EngineCore {
        &self.core
    }

    /// Re-binds a detached [`EngineCore`] to (the next epoch of) its shard
    /// tiling. The core's tables are taken as-is — callers follow up with
    /// [`DeltaGainEngine::absorb`] to reconcile them with whatever the
    /// refresh changed.
    ///
    /// # Panics
    /// Panics when the tiling is invalid or its shape does not match the
    /// core (use [`EngineCore::matches`] to pre-check).
    pub fn resume(shards: &[&'a WalkIndex], core: EngineCore) -> Self {
        let (layer_map, n, l) = Self::tile(shards);
        assert_eq!(n, core.n, "resumed core disagrees on the node universe");
        assert_eq!(l, core.l, "resumed core disagrees on the walk length");
        assert_eq!(
            layer_map.len(),
            core.r,
            "resumed core disagrees on the layer count"
        );
        DeltaGainEngine {
            shards: shards.to_vec(),
            layer_map,
            core,
            pending: Vec::new(),
            pending_snaps1: Vec::new(),
            pending_snaps2: Vec::new(),
            replay_cursor: 0,
            patch1: Vec::new(),
            patch2: Vec::new(),
            layer_dirty: Vec::new(),
        }
    }

    /// Turns on round logging: from now on every [`DeltaGainEngine::update`]
    /// records its exact mutations, and the `S = ∅` baselines are kept — the
    /// prerequisites for [`DeltaGainEngine::absorb`] /
    /// [`DeltaGainEngine::try_replay_recorded`]. Must be called before the
    /// first commit.
    pub fn enable_round_logging(&mut self) {
        assert!(
            self.core.selected.is_empty(),
            "round logging must be enabled before the first commit"
        );
        self.core.log_rounds = true;
        self.core.base1 = self.core.gain1.clone();
        self.core.base2 = self.core.gain2.clone();
    }

    /// Closed-form empty-set gains, `O(n)`: with `D1 ≡ L` every posting
    /// `(src, w) ∈ I[i][u]` contributes `L − w` and the own-slot term
    /// contributes `L` per layer, so
    /// `gain1[u] = R·L + L·count(u) − hopsum(u)`; with `D2 ≡ 0` every
    /// posting counts 1, so `gain2[u] = R + count(u)`. The per-node posting
    /// aggregates are precomputed by the index at construction, so this
    /// touches **no** posting list at all — which is what lets the delta
    /// path undercut even a single `gains_all` sweep. With many shards the
    /// aggregates sum across shards; the sums are the monolith's integers,
    /// so the closed form is unchanged.
    fn init_gains(shards: &[&WalkIndex], r: usize, rule: GainRule) -> (Vec<u64>, Vec<u64>) {
        let n = shards[0].n();
        let r = r as u64;
        let l = shards[0].l() as u64;
        let g1 = if rule.needs_f1() {
            (0..n)
                .map(|u| {
                    let u = NodeId::new(u);
                    let count: u64 = shards.iter().map(|s| s.posting_count(u)).sum();
                    let hopsum: u64 = shards.iter().map(|s| s.posting_hop_sum(u)).sum();
                    r * l + l * count - hopsum
                })
                .collect()
        } else {
            Vec::new()
        };
        let g2 = if rule.needs_f2() {
            (0..n)
                .map(|u| {
                    let u = NodeId::new(u);
                    let count: u64 = shards.iter().map(|s| s.posting_count(u)).sum();
                    r + count
                })
                .collect()
        } else {
            Vec::new()
        };
        (g1, g2)
    }

    /// Re-heapifies every candidate at its current exact gain, recycling
    /// the heap's storage.
    fn rebuild_heap(&mut self) {
        let mut entries = std::mem::take(&mut self.core.heap).into_vec();
        entries.clear();
        entries.extend((0..self.core.n).map(|u| CelfEntry {
            gain: self.gain(NodeId::new(u)),
            node: u as u32,
            round: 0,
        }));
        self.core.heap = BinaryHeap::from(entries);
    }

    /// The current target set `S`.
    pub fn selected(&self) -> &NodeSet {
        &self.core.selected
    }

    /// Current `F̂1(S) = nL − (Σ D1)/R` (Problem-1 rules only).
    pub fn est_f1(&self) -> f64 {
        assert!(self.core.rule.needs_f1(), "engine has no F1 table");
        self.core.n as f64 * self.core.l as f64 - self.core.d1_total as f64 / self.core.r as f64
    }

    /// Current `F̂2(S) = (Σ D2)/R` — members count 1 (Problem-2 rules only).
    pub fn est_f2(&self) -> f64 {
        assert!(self.core.rule.needs_f2(), "engine has no F2 table");
        self.core.d2_total as f64 / self.core.r as f64
    }

    /// Postings streamed by the most recent [`DeltaGainEngine::update`] —
    /// the per-round output-sensitivity measure (0 before any update). A
    /// replayed recorded round reports the count it would stream cold.
    pub fn last_update_touched(&self) -> usize {
        self.core.touched_last
    }

    /// The maintained blended gain of one candidate — bit-identical to what
    /// [`GainEngine::gain_single`](crate::greedy::approx::GainEngine)
    /// would recompute from scratch for the same target set.
    #[inline]
    pub fn gain(&self, u: NodeId) -> f64 {
        let r = self.core.r as f64;
        let g1 = self.core.gain1.get(u.index()).map_or(0.0, |&g| g as f64);
        let g2 = self.core.gain2.get(u.index()).map_or(0.0, |&g| g as f64);
        self.core
            .rule
            .blend(g1 / r, g2 / r, self.core.n, self.core.l)
    }

    /// All maintained blended gains (selected entries are the hypothetical
    /// re-add gain; callers skip them) — matches a fresh
    /// [`GainEngine::gains_all`](crate::greedy::approx::GainEngine) bit for
    /// bit.
    pub fn gains(&self) -> Vec<f64> {
        (0..self.core.n)
            .map(|u| self.gain(NodeId::new(u)))
            .collect()
    }

    /// Argmax over the maintained gain table, skipping selected nodes; ties
    /// break toward the smaller id, matching the sweep and CELF drivers
    /// exactly (the heap orders like [`CelfEntry`]: gain descending, id
    /// ascending on ties — the pop sequence of equal exact values is the
    /// ascending-id scan order). `None` once everything is selected.
    ///
    /// Runs in `O(stale pops · log n)` instead of `O(n)`: maintained gains
    /// only decrease, so every cached heap entry is an upper bound on its
    /// candidate's current gain, and a popped top whose cached value still
    /// equals the exact table value is the global argmax — the CELF
    /// argument, but with `O(1)` table lookups in place of Algorithm-4
    /// re-evaluations. Stale tops are re-pushed with their exact value.
    pub fn best_candidate(&mut self) -> Option<(NodeId, f64)> {
        while let Some(top) = self.core.heap.pop() {
            let node = NodeId(top.node);
            if self.core.selected.contains(node) {
                continue; // dropped for good; selected nodes never return
            }
            let current = self.gain(node);
            if current == top.gain {
                // Re-push so a caller that does not commit this pick (or
                // asks again before updating) still sees a complete heap.
                self.core.heap.push(top);
                return Some((node, current));
            }
            self.core.heap.push(CelfEntry {
                gain: current,
                node: top.node,
                round: 0,
            });
        }
        None
    }

    /// Patches the engine from its current post-selection state back to the
    /// **refreshed** index's `S = ∅` state, in time proportional to the
    /// delta plus the slots the logged rounds changed — never `O(k ·
    /// postings)` and never a table reallocation:
    ///
    /// 1. every logged `D`-slot drop is undone (the `S = ∅` values are the
    ///    closed-form constants `L` / `0`), and the selection set cleared;
    /// 2. the `S = ∅` gain baselines are patched posting-by-posting from
    ///    the delta (`±(L − hop)` on `gain1`, `±1` on `gain2` per edit —
    ///    exactly the closed form [`Self::init_gains`] evaluates, one term
    ///    at a time);
    /// 3. the gain tables are restored from the patched baselines and the
    ///    heap re-heapified in place.
    ///
    /// The previous rounds' logs become the pending replay sequence for
    /// [`DeltaGainEngine::try_replay_recorded`]. Returns the number of
    /// **net** posting edits absorbed — postings a resampled group
    /// reproduced identically cancel before they can patch a baseline or
    /// poison a replay.
    ///
    /// The caller must have re-bound the engine to the refreshed shards
    /// ([`DeltaGainEngine::resume`]) and `deltas` must be exactly the edit
    /// scripts of the refreshes that took the shards from the engine's
    /// previous epoch to the current one (any order; layers are absolute).
    ///
    /// # Panics
    /// Panics when round logging is off — the engine has no baselines to
    /// rewind to.
    pub fn absorb(&mut self, deltas: &[PostingDelta]) -> usize {
        let core = &mut self.core;
        assert!(
            core.log_rounds,
            "absorb requires round logging (enable_round_logging)"
        );
        let n = core.n;
        // 1. Rewind: at `S = ∅` every `D` slot is its closed-form constant
        // (`L` / `0` — Algorithm 6 line 3), so the rewind is two sequential
        // fills, cheaper than re-walking the logged drops slot by slot.
        core.d1.fill(core.l);
        core.d2.fill(0);
        core.d1_total = (core.r * n) as u64 * core.l as u64;
        core.d2_total = 0;
        core.selected.clear();
        core.touched_last = 0;

        // 2. Patch the S = ∅ baselines by the edit script and mark the
        // owners/groups the delta touched for the replay validity checks.
        //
        // Identical removed/added pairs cancel first: a resampled walk that
        // diverges late (or not at all) reproduces most of its postings
        // verbatim, and a posting that is removed and re-added with the
        // same `(owner, src, hop)` leaves both the inverted row and the
        // group's forward list byte-identical (both views are canonically
        // ordered). Only *net* edits patch baselines or poison replays —
        // without the cancellation nearly every hub would come out dirty
        // and the recorded rounds would never replay.
        let words = (core.r * n).div_ceil(64);
        core.resampled.clear();
        core.resampled.resize(words, 0);
        let needs_f1 = core.rule.needs_f1();
        let needs_f2 = core.rule.needs_f2();
        let l = core.l as i64;
        let mut absorbed = 0usize;
        self.patch1.clear();
        self.patch2.clear();
        self.patch1.resize(if needs_f1 { n } else { 0 }, 0);
        self.patch2.resize(if needs_f2 { n } else { 0 }, 0);
        let (patch1, patch2) = (&mut self.patch1, &mut self.patch2);
        self.layer_dirty.clear();
        self.layer_dirty.resize(core.r, false);
        let layer_dirty = &mut self.layer_dirty;
        // One net edit: the closed-form S = ∅ contribution of the posting,
        // signed. `c` is ±1 — a posting names its group's unique first
        // visit of `owner`, so it appears at most once per side. The raw
        // terms also accumulate into the dense patch vectors, the additive
        // bridge that carries recorded gain snapshots across the epoch
        // boundary.
        let mut patch =
            |core: &mut EngineCore, base: usize, (owner, src, hop): (u32, u32, u16), c: i64| {
                absorbed += 1;
                let grp = base + src as usize;
                core.resampled[grp >> 6] |= 1 << (grp & 63);
                layer_dirty[base / n] = true;
                let p1 = if needs_f1 { c * (l - hop as i64) } else { 0 };
                let p2 = if needs_f2 { c } else { 0 };
                if needs_f1 {
                    patch1[owner as usize] += p1;
                }
                if needs_f2 {
                    patch2[owner as usize] += p2;
                }
                if needs_f1 {
                    let b = &mut core.base1[owner as usize];
                    *b = (*b as i64 + p1) as u64;
                }
                if needs_f2 {
                    let b = &mut core.base2[owner as usize];
                    *b = (*b as i64 + p2) as u64;
                }
            };
        for delta in deltas {
            for layer in &delta.layers {
                let base = layer.layer * n;
                // Both edit lists are grouped by ascending source, and a
                // group's entries are its first-visit postings in walk
                // order — hop-ascending with distinct hops. `(src, hop)`
                // is therefore a strictly increasing key on each side, and
                // identical reproductions cancel in one ordered merge.
                let (rem, add) = (&layer.removed, &layer.added);
                let key = |e: &(u32, u32, u16)| (e.1, e.2, e.0);
                debug_assert!(rem.windows(2).all(|w| key(&w[0]) < key(&w[1])));
                debug_assert!(add.windows(2).all(|w| key(&w[0]) < key(&w[1])));
                let (mut i, mut j) = (0usize, 0usize);
                loop {
                    match (rem.get(i), add.get(j)) {
                        (Some(r), Some(a)) if r == a => {
                            i += 1; // reproduced verbatim: not an edit
                            j += 1;
                        }
                        (Some(&r), Some(&a)) if key(&r) < key(&a) => {
                            patch(core, base, r, -1);
                            i += 1;
                        }
                        (Some(_), Some(&a)) => {
                            patch(core, base, a, 1);
                            j += 1;
                        }
                        (Some(&r), None) => {
                            patch(core, base, r, -1);
                            i += 1;
                        }
                        (None, Some(&a)) => {
                            patch(core, base, a, 1);
                            j += 1;
                        }
                        (None, None) => break,
                    }
                }
            }
        }

        // 3. Restore the gain tables from the patched baselines and
        // re-heapify — both recycle their allocations.
        core.gain1.copy_from_slice(&core.base1);
        core.gain2.copy_from_slice(&core.base2);
        self.pending = std::mem::take(&mut core.rounds);
        std::mem::swap(&mut self.pending_snaps1, &mut core.snaps1);
        std::mem::swap(&mut self.pending_snaps2, &mut core.snaps2);
        core.snaps1.clear();
        core.snaps2.clear();
        // The epoch will snapshot about as many rounds as the last one —
        // reserve up front so per-round appends never reallocate.
        core.snaps1.reserve(self.pending_snaps1.len());
        core.snaps2.reserve(self.pending_snaps2.len());
        self.replay_cursor = 0;
        self.rebuild_heap();
        absorbed
    }

    /// Attempts to commit the next pending recorded round, taking as much
    /// of it as possible from the log instead of streaming the index.
    /// Applies only when a pending log exists and its pick equals `pick`
    /// (the argmax the caller just obtained — computed over exact current
    /// gains, so a mismatch means the delta genuinely moved this round's
    /// argmax); returns `false`, leaving the engine untouched, otherwise.
    ///
    /// The round commits at **slot grain**, in three strokes:
    ///
    /// 1. **Gains** restore from the recorded post-round snapshot — one
    ///    `memcpy` instead of re-applying the round's decrement log, which
    ///    costs as much as a live round — re-based onto this epoch by the
    ///    absorbed baseline patches plus the fixups accumulated by earlier
    ///    replayed rounds.
    /// 2. **Clean recorded slots** (walk group not resampled by the delta)
    ///    apply their logged `D` drop directly; their gain decrements are
    ///    already inside the snapshot. A *resampled* slot's decrement
    ///    range is instead un-applied from the gains — the log streamed a
    ///    forward list that no longer exists.
    /// 3. A **live pass** scans the pick's fresh inverted row once per
    ///    dirty layer, bit-testing each entry against the resampled set,
    ///    and redoes, exactly as a cold update would, the slot decision
    ///    and forward walk of every *resampled* group it finds — work
    ///    bounded by the row length, independent of how many groups the
    ///    batch resampled elsewhere.
    ///
    /// Per-group `D` evolution is independent (a group's slot is only
    /// ever written by that group's postings) and gain decrements are
    /// commutative integer adds, so the post-round state is bit-identical
    /// to a cold commit on the refreshed index — there is no validity
    /// cliff: a batch that touches 1% of the walk groups costs 1% live
    /// work, never a whole layer or round. The merged round is logged
    /// afresh (and snapshotted) for the *next* epoch.
    pub fn try_replay_recorded(&mut self, pick: NodeId) -> bool {
        let cursor = self.replay_cursor;
        let Some(log) = self.pending.get(cursor) else {
            return false;
        };
        if log.pick != pick.raw() {
            return false;
        }
        let log = std::mem::take(&mut self.pending[cursor]);
        self.replay_cursor = cursor + 1;
        let core = &mut self.core;
        assert!(core.selected.insert(pick), "node {pick} selected twice");
        let n = core.n;

        // 1. Gains ← recorded post-round snapshot, re-based onto this
        // epoch: + the absorbed S = ∅ baseline patches, + the fixups of
        // previously replayed rounds (both additive, both signed).
        // All gain arithmetic below is wrapping: the rebase and the
        // slot-by-slot fixups are exact in ℤ/2⁶⁴ but individual partial
        // sums may transit below zero (e.g. a round's recorded decrements
        // exceeding a delta-shrunken gain) before later terms restore
        // them. The final per-node values are the cold engine's exact
        // non-negative integers.
        let start = cursor * n;
        if !core.gain1.is_empty() {
            let snap = &self.pending_snaps1[start..start + n];
            for (g, (&s, &p)) in core.gain1.iter_mut().zip(snap.iter().zip(&self.patch1)) {
                *g = s.wrapping_add(p as u64);
            }
        }
        if !core.gain2.is_empty() {
            let snap = &self.pending_snaps2[start..start + n];
            for (g, (&s, &p)) in core.gain2.iter_mut().zip(snap.iter().zip(&self.patch2)) {
                *g = s.wrapping_add(p as u64);
            }
        }

        let EngineCore {
            d1,
            d2,
            gain1,
            gain2,
            d1_total,
            d2_total,
            resampled,
            ..
        } = core;
        let (patch1, patch2) = (&mut self.patch1, &mut self.patch2);
        let layer_dirty = &self.layer_dirty;
        let shards = &self.shards;
        let layer_map = &self.layer_map;
        let bit =
            |bits: &[u64], idx: usize| bits.get(idx >> 6).is_some_and(|w| w >> (idx & 63) & 1 != 0);
        let mut touched_sum = 0usize;
        let mut layers: Vec<LayerLog> = Vec::with_capacity(log.layers.len());
        for mut rec in log.layers {
            let gl = rec.gl;
            let base = gl as usize * n;
            let (sh, li) = layer_map[gl as usize];
            let idx = shards[sh];
            if !layer_dirty[gl as usize] {
                // The delta left this layer alone, so the recorded log IS
                // this round's cold log: apply its slot drops (the gain
                // decrements are already inside the snapshot) and re-log
                // it verbatim — no row scan, no decrement copies. The
                // pick's row is unchanged too (a row edit implies a
                // resampled group here), so `touched` carries over.
                for &(g, v) in &rec.slot1 {
                    if g == DEAD_SLOT {
                        continue;
                    }
                    let slot = &mut d1[base + g as usize];
                    debug_assert!(v < *slot, "replayed drop must lower the slot");
                    *d1_total -= (*slot - v) as u64;
                    *slot = v;
                }
                for &g in &rec.slot2 {
                    if g == DEAD_SLOT {
                        continue;
                    }
                    let slot = &mut d2[base + g as usize];
                    debug_assert_eq!(*slot, 0, "replayed flip must set a clear slot");
                    *slot = 1;
                    *d2_total += 1;
                }
                touched_sum += rec.touched;
                layers.push(rec);
                continue;
            }
            let mut touched = 0usize;

            // 2. Recorded slots. A clean slot replays byte-for-byte: the
            // logged drop lowers the same current value a cold commit
            // would read (clean groups' slots evolve only through these
            // logs), and its decrement count re-accounts the forward
            // postings a cold commit would stream (every decrement past
            // the slot's self-term is one streamed posting). A resampled
            // slot's recorded work is rolled back out of the snapshot.
            let dec1_end = rec.dec1.len();
            for k in 0..rec.slot1.len() {
                let (g, v) = rec.slot1[k];
                if g == DEAD_SLOT {
                    continue;
                }
                if bit(resampled, base + g as usize) {
                    let lo = rec.off1[k] as usize;
                    let hi = rec.off1.get(k + 1).map_or(dec1_end, |&x| x as usize);
                    for &(node, dec) in &rec.dec1[lo..hi] {
                        gain1[node as usize] = gain1[node as usize].wrapping_add(dec as u64);
                        patch1[node as usize] += dec as i64;
                    }
                    rec.slot1[k].0 = DEAD_SLOT;
                } else {
                    let lo = rec.off1[k] as usize;
                    let hi = rec.off1.get(k + 1).map_or(dec1_end, |&x| x as usize);
                    let slot = &mut d1[base + g as usize];
                    debug_assert!(v < *slot, "replayed drop must lower the slot");
                    *d1_total -= (*slot - v) as u64;
                    *slot = v;
                    touched += hi - lo - 1;
                }
            }
            let dec2_end = rec.dec2.len();
            for k in 0..rec.slot2.len() {
                let g = rec.slot2[k];
                if g == DEAD_SLOT {
                    continue;
                }
                if bit(resampled, base + g as usize) {
                    let lo = rec.off2[k] as usize;
                    let hi = rec.off2.get(k + 1).map_or(dec2_end, |&x| x as usize);
                    for &node in &rec.dec2[lo..hi] {
                        gain2[node as usize] = gain2[node as usize].wrapping_add(1);
                        patch2[node as usize] += 1;
                    }
                    rec.slot2[k] = DEAD_SLOT;
                } else {
                    let lo = rec.off2[k] as usize;
                    let hi = rec.off2.get(k + 1).map_or(dec2_end, |&x| x as usize);
                    let slot = &mut d2[base + g as usize];
                    debug_assert_eq!(*slot, 0, "replayed flip must set a clear slot");
                    *slot = 1;
                    *d2_total += 1;
                    touched += hi - lo - 1;
                }
            }

            // 3. Live pass — [`Self::update_layer`] restricted to the
            // resampled groups of the pick's row, against the fresh
            // index. Gain decrements
            // apply directly and fold into the patch vectors (signed
            // opposite to the un-apply above): later snapshots predate
            // them. New log entries append to `rec` — their offsets point
            // past every recorded decrement, so the ranges stay disjoint.
            let pr = idx.postings(li, pick);
            touched += pr.len();
            debug_assert!(
                pr.ids().windows(2).all(|p| p[0] < p[1]),
                "inverted rows must be strictly src-sorted"
            );
            if !d1.is_empty() {
                let d = &mut d1[base..base + n];
                if bit(resampled, base + pick.index()) {
                    let old = d[pick.index()];
                    if old > 0 {
                        d[pick.index()] = 0;
                        *d1_total -= old as u64;
                        rec.off1.push(rec.dec1.len() as u32);
                        rec.slot1.push((pick.raw(), 0));
                        gain1[pick.index()] = gain1[pick.index()].wrapping_sub(old as u64);
                        patch1[pick.index()] += -(old as i64);
                        rec.dec1.push((pick.raw(), old));
                        let fwd = idx.forward(li, pick);
                        for (&v, &w) in fwd.ids().iter().zip(fwd.weights()) {
                            let w = w as u32;
                            if w >= old {
                                break;
                            }
                            touched += 1;
                            let dec = old - w;
                            gain1[v as usize] = gain1[v as usize].wrapping_sub(dec as u64);
                            patch1[v as usize] += -(dec as i64);
                            rec.dec1.push((v, dec));
                        }
                    }
                }
                for (pos, &src) in pr.ids().iter().enumerate() {
                    if !bit(resampled, base + src as usize) {
                        continue;
                    }
                    let new = pr.weights()[pos] as u32;
                    let old = d[src as usize];
                    if new < old {
                        d[src as usize] = new;
                        *d1_total -= (old - new) as u64;
                        rec.off1.push(rec.dec1.len() as u32);
                        rec.slot1.push((src, new));
                        let dec = old - new;
                        gain1[src as usize] = gain1[src as usize].wrapping_sub(dec as u64);
                        patch1[src as usize] += -(dec as i64);
                        rec.dec1.push((src, dec));
                        let fwd = idx.forward(li, NodeId(src));
                        for (&v, &hw) in fwd.ids().iter().zip(fwd.weights()) {
                            let hw = hw as u32;
                            if hw >= old {
                                break;
                            }
                            touched += 1;
                            let dec = old - hw.max(new);
                            gain1[v as usize] = gain1[v as usize].wrapping_sub(dec as u64);
                            patch1[v as usize] += -(dec as i64);
                            rec.dec1.push((v, dec));
                        }
                    }
                }
            }
            if !d2.is_empty() {
                let d = &mut d2[base..base + n];
                if bit(resampled, base + pick.index()) && d[pick.index()] == 0 {
                    d[pick.index()] = 1;
                    *d2_total += 1;
                    rec.off2.push(rec.dec2.len() as u32);
                    rec.slot2.push(pick.raw());
                    gain2[pick.index()] = gain2[pick.index()].wrapping_sub(1);
                    patch2[pick.index()] -= 1;
                    rec.dec2.push(pick.raw());
                    let fwd = idx.forward(li, pick);
                    touched += fwd.len();
                    for &v in fwd.ids() {
                        gain2[v as usize] = gain2[v as usize].wrapping_sub(1);
                        patch2[v as usize] -= 1;
                        rec.dec2.push(v);
                    }
                }
                for &src in pr.ids() {
                    if !bit(resampled, base + src as usize) {
                        continue;
                    }
                    if d[src as usize] == 0 {
                        d[src as usize] = 1;
                        *d2_total += 1;
                        rec.off2.push(rec.dec2.len() as u32);
                        rec.slot2.push(src);
                        gain2[src as usize] = gain2[src as usize].wrapping_sub(1);
                        patch2[src as usize] -= 1;
                        rec.dec2.push(src);
                        let fwd = idx.forward(li, NodeId(src));
                        touched += fwd.len();
                        for &v in fwd.ids() {
                            gain2[v as usize] = gain2[v as usize].wrapping_sub(1);
                            patch2[v as usize] -= 1;
                            rec.dec2.push(v);
                        }
                    }
                }
            }

            rec.touched = touched;
            touched_sum += touched;
            layers.push(rec);
        }
        core.touched_last = touched_sum;
        core.rounds.push(RoundLog {
            pick: pick.raw(),
            layers,
        });
        core.snaps1.extend_from_slice(&core.gain1);
        core.snaps2.extend_from_slice(&core.gain2);
        true
    }

    /// Commits `u` to the target set: applies the Algorithm-5 table refresh
    /// *and* repairs the gain table via the forward view — only candidates
    /// reachable from a changed slot are touched.
    ///
    /// Layers fan out over workers above the shared work gate; each layer
    /// owns a disjoint slice of the `D` tables and stages its gain
    /// decrements, which are applied in layer-chunk order on the calling
    /// thread. Decrements are integers, so the tables are bit-identical at
    /// any worker count.
    pub fn update(&mut self, u: NodeId) {
        // A cold commit invalidates any recorded rounds not yet replayed:
        // their logs presumed the recorded history, which this commit now
        // departs from.
        self.pending.clear();
        self.pending_snaps1.clear();
        self.pending_snaps2.clear();
        self.replay_cursor = 0;
        let core = &mut self.core;
        assert!(core.selected.insert(u), "node {u} selected twice");
        // Each improved slot streams its forward list (≤ L entries), so the
        // repair work is up to (1 + L)× the seed's inverted postings — gate
        // on that estimate, not the posting count alone.
        let postings: usize = self
            .layer_map
            .iter()
            .map(|&(s, li)| self.shards[s].postings(li, u).len())
            .sum();
        let work = postings * (1 + core.l as usize);
        let workers = if work < MIN_PARALLEL_SWEEP_WORK {
            1
        } else {
            resolve_threads(core.threads).min(core.r)
        };
        let n = core.n;
        let shards = &self.shards;
        let log_on = core.log_rounds;
        core.touched_last = 0;
        let mut log = RoundLog {
            pick: u.raw(),
            ..RoundLog::default()
        };

        if workers == 1 {
            let gain1 = &mut core.gain1;
            let gain2 = &mut core.gain2;
            let mut it1 = core.d1.chunks_mut(n);
            let mut it2 = core.d2.chunks_mut(n);
            let (mut dec1_sum, mut inc2_sum, mut touched_sum) = (0u64, 0u64, 0usize);
            for (gl, &(s, li)) in self.layer_map.iter().enumerate() {
                let mut ll = LayerLog {
                    gl: gl as u32,
                    ..LayerLog::default()
                };
                let LayerLog {
                    slot1: ls1,
                    off1: lo1,
                    slot2: ls2,
                    off2: lo2,
                    dec1: ld1,
                    dec2: ld2,
                    ..
                } = &mut ll;
                // The slot sinks need each slot's decrement start offset,
                // but the dec sinks own the log vectors — shared counters
                // bridge the two closures.
                let (c1, c2) = (std::cell::Cell::new(0u32), std::cell::Cell::new(0u32));
                let (dec1, inc2, touched) = Self::update_layer(
                    shards[s],
                    u,
                    li,
                    it1.next(),
                    it2.next(),
                    &mut |v, dec| {
                        gain1[v as usize] -= dec as u64;
                        if log_on {
                            ld1.push((v, dec));
                            c1.set(c1.get() + 1);
                        }
                    },
                    &mut |v| {
                        gain2[v as usize] -= 1;
                        if log_on {
                            ld2.push(v);
                            c2.set(c2.get() + 1);
                        }
                    },
                    &mut |node, value| {
                        if log_on {
                            lo1.push(c1.get());
                            ls1.push((node, value));
                        }
                    },
                    &mut |node| {
                        if log_on {
                            lo2.push(c2.get());
                            ls2.push(node);
                        }
                    },
                );
                dec1_sum += dec1;
                inc2_sum += inc2;
                touched_sum += touched;
                if log_on {
                    ll.touched = touched;
                    log.layers.push(ll);
                }
            }
            core.d1_total -= dec1_sum;
            core.d2_total += inc2_sum;
            core.touched_last = touched_sum;
            if log_on {
                core.rounds.push(log);
                core.snaps1.extend_from_slice(&core.gain1);
                core.snaps2.extend_from_slice(&core.gain2);
            }
            return;
        }

        /// One layer's update job: its owning index, its global and local
        /// layer indices and its disjoint `D` slices.
        type LayerJob<'s, 'i> = (
            &'i WalkIndex,
            u32,
            usize,
            Option<&'s mut [u32]>,
            Option<&'s mut [u8]>,
        );

        let mut it1 = core.d1.chunks_mut(n);
        let mut it2 = core.d2.chunks_mut(n);
        let mut per_layer: Vec<LayerJob<'_, 'a>> = self
            .layer_map
            .iter()
            .enumerate()
            .map(|(gl, &(s, li))| (shards[s], gl as u32, li, it1.next(), it2.next()))
            .collect();
        let chunk = core.r.div_ceil(workers);
        /// Per-worker staged output: `(Σ dec1, Σ inc2, touched, per-layer
        /// logs)`. The gain decrements ride inside the layer logs — they
        /// double as the staging buffers — and are applied in layer-chunk
        /// order after the join (integer adds commute, so the tables are
        /// bit-identical to the serial path).
        type Staged = (u64, u64, usize, Vec<LayerLog>);
        let mut partials: Vec<Staged> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_layer
                .chunks_mut(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        let (mut dec1, mut inc2, mut touched) = (0u64, 0u64, 0usize);
                        let mut layers: Vec<LayerLog> = Vec::with_capacity(group.len());
                        for (idx, gl, li, d1, d2) in group.iter_mut() {
                            let mut ll = LayerLog {
                                gl: *gl,
                                ..LayerLog::default()
                            };
                            let LayerLog {
                                slot1: ls1,
                                off1: lo1,
                                slot2: ls2,
                                off2: lo2,
                                dec1: ld1,
                                dec2: ld2,
                                ..
                            } = &mut ll;
                            let (c1, c2) = (std::cell::Cell::new(0u32), std::cell::Cell::new(0u32));
                            let (a, b, t) = Self::update_layer(
                                idx,
                                u,
                                *li,
                                d1.as_deref_mut(),
                                d2.as_deref_mut(),
                                &mut |v, dec| {
                                    ld1.push((v, dec));
                                    c1.set(c1.get() + 1);
                                },
                                &mut |v| {
                                    ld2.push(v);
                                    c2.set(c2.get() + 1);
                                },
                                &mut |node, value| {
                                    if log_on {
                                        lo1.push(c1.get());
                                        ls1.push((node, value));
                                    }
                                },
                                &mut |node| {
                                    if log_on {
                                        lo2.push(c2.get());
                                        ls2.push(node);
                                    }
                                },
                            );
                            ll.touched = t;
                            dec1 += a;
                            inc2 += b;
                            touched += t;
                            layers.push(ll);
                        }
                        (dec1, inc2, touched, layers)
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("delta update worker panicked"));
            }
        });
        for (dec1, inc2, touched, layers) in partials {
            core.d1_total -= dec1;
            core.d2_total += inc2;
            core.touched_last += touched;
            for ll in layers {
                for &(v, dec) in &ll.dec1 {
                    core.gain1[v as usize] -= dec as u64;
                }
                for &v in &ll.dec2 {
                    core.gain2[v as usize] -= 1;
                }
                if log_on {
                    log.layers.push(ll);
                }
            }
        }
        if log_on {
            core.rounds.push(log);
            core.snaps1.extend_from_slice(&core.gain1);
            core.snaps2.extend_from_slice(&core.gain2);
        }
    }

    /// Algorithm 5 for layer `i` plus gain repair: every slot the refresh
    /// lowers (the new member's own slot and each improved posting source)
    /// streams its forward list once, emitting the closed-form decrement
    /// for each affected candidate into `sink1`/`sink2`. Forward lists are
    /// hop-ascending, so the Problem-1 streams stop at the first hop `≥`
    /// the slot's old value — entries past it contribute `max(0, d − w) =
    /// 0` before *and* after the drop. Every slot drop/flip is also
    /// reported to `slot1`/`slot2` (for round logs). Returns `(Σ D1
    /// decrease, Σ D2 increase, postings streamed)`.
    #[allow(clippy::too_many_arguments)]
    fn update_layer(
        idx: &WalkIndex,
        u: NodeId,
        i: usize,
        d1: Option<&mut [u32]>,
        d2: Option<&mut [u8]>,
        sink1: &mut impl FnMut(u32, u32),
        sink2: &mut impl FnMut(u32),
        slot1: &mut impl FnMut(u32, u32),
        slot2: &mut impl FnMut(u32),
    ) -> (u64, u64, usize) {
        let (mut dec1, mut inc2, mut touched) = (0u64, 0u64, 0usize);
        let pr = idx.postings(i, u);
        touched += pr.len();
        if let Some(d) = d1 {
            // The seed's own slot: D1[i][u] → 0. Affected candidates are
            // forward(i, u); with d' = 0 ≤ w the decrement is `old − w`.
            let old = d[u.index()];
            if old > 0 {
                d[u.index()] = 0;
                slot1(u.raw(), 0);
                dec1 += old as u64;
                sink1(u.raw(), old);
                let fwd = idx.forward(i, u);
                for (&v, &w) in fwd.ids().iter().zip(fwd.weights()) {
                    let w = w as u32;
                    if w >= old {
                        break;
                    }
                    touched += 1;
                    sink1(v, old - w);
                }
            }
            // Each posting source whose first-hit improves: D1[i][src]
            // drops `old → new`; candidates in forward(i, src) lose
            // `max(0, old − w) − max(0, new − w) = old − max(w, new)`.
            for (&src, &w) in pr.ids().iter().zip(pr.weights()) {
                let new = w as u32;
                let old = d[src as usize];
                if new < old {
                    d[src as usize] = new;
                    slot1(src, new);
                    dec1 += (old - new) as u64;
                    sink1(src, old - new);
                    let fwd = idx.forward(i, NodeId(src));
                    for (&v, &hw) in fwd.ids().iter().zip(fwd.weights()) {
                        let hw = hw as u32;
                        if hw >= old {
                            break;
                        }
                        touched += 1;
                        sink1(v, old - hw.max(new));
                    }
                }
            }
        }
        if let Some(d) = d2 {
            // Coverage: a slot flip 0 → 1 costs every candidate the slot's
            // walk visits (and the slot's own-term) exactly one unit.
            if d[u.index()] == 0 {
                d[u.index()] = 1;
                slot2(u.raw());
                inc2 += 1;
                sink2(u.raw());
                let fwd = idx.forward(i, u);
                touched += fwd.len();
                for &v in fwd.ids() {
                    sink2(v);
                }
            }
            for &src in pr.ids() {
                if d[src as usize] == 0 {
                    d[src as usize] = 1;
                    slot2(src);
                    inc2 += 1;
                    sink2(src);
                    let fwd = idx.forward(i, NodeId(src));
                    touched += fwd.len();
                    for &v in fwd.ids() {
                        sink2(v);
                    }
                }
            }
        }
        (dec1, inc2, touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::approx::GainEngine;
    use rwd_graph::generators::{barabasi_albert, paper_example};

    /// The Example 3.1 index: R = 1, L = 2, fixed walks.
    fn example31_index() -> WalkIndex {
        let v = |i: usize| NodeId::new(i - 1);
        let walks: Vec<Vec<NodeId>> = [
            [1, 2, 3],
            [2, 3, 5],
            [3, 2, 5],
            [4, 7, 5],
            [5, 2, 6],
            [6, 7, 5],
            [7, 5, 7],
            [8, 7, 4],
        ]
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
        WalkIndex::from_walks(8, 2, &walks)
    }

    const ALL_RULES: [GainRule; 3] = [
        GainRule::HittingTime,
        GainRule::Coverage,
        GainRule::Combined { lambda: 0.3 },
    ];

    #[test]
    fn initial_gains_match_sweep_engine_bitwise() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 5, 12, 21);
        for rule in ALL_RULES {
            let sweep = GainEngine::new(&idx, rule).gains_all();
            let delta = DeltaGainEngine::new(&idx, rule).gains();
            for (u, (a, b)) in delta.iter().zip(&sweep).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "rule {rule:?} node {u}");
            }
        }
    }

    #[test]
    fn example_3_1_first_round_gains_and_picks() {
        // Paper: σ(∅) = (2, 5, 3, 2, 3, 2, 5, 2) for v1..v8; v2 wins the
        // v2/v7 tie, then v7 is the second pick.
        let idx = example31_index();
        let mut engine = DeltaGainEngine::new(&idx, GainRule::HittingTime);
        assert_eq!(engine.gains(), vec![2.0, 5.0, 3.0, 2.0, 3.0, 2.0, 5.0, 2.0]);
        let (first, gain) = engine.best_candidate().unwrap();
        assert_eq!((first, gain), (NodeId(1), 5.0));
        engine.update(first);
        let (second, _) = engine.best_candidate().unwrap();
        assert_eq!(second, NodeId(6), "v7 is the paper's second pick");
    }

    #[test]
    fn maintained_gains_track_sweep_engine_across_rounds() {
        // After every commit, the delta-maintained table must equal a
        // sweep engine's fresh gains_all bit for bit — on non-selected
        // candidates (selected entries are maintained but unused).
        let g = barabasi_albert(200, 3, 11).unwrap();
        let idx = WalkIndex::build(&g, 6, 8, 5);
        for rule in ALL_RULES {
            let mut delta = DeltaGainEngine::new(&idx, rule);
            let mut sweep = GainEngine::new(&idx, rule);
            for round in 0..6 {
                let (pick, gain) = delta.best_candidate().unwrap();
                assert_eq!(
                    gain.to_bits(),
                    sweep.gain_single(pick).to_bits(),
                    "rule {rule:?} round {round}"
                );
                delta.update(pick);
                sweep.update(pick);
                let fresh = sweep.gains_all();
                let maintained = delta.gains();
                for u in 0..idx.n() {
                    if delta.selected().contains(NodeId::new(u)) {
                        continue;
                    }
                    assert_eq!(
                        maintained[u].to_bits(),
                        fresh[u].to_bits(),
                        "rule {rule:?} round {round} node {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn estimates_match_sweep_engine() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 16, 3);
        let mut delta = DeltaGainEngine::new(&idx, GainRule::HittingTime);
        let mut sweep = GainEngine::new(&idx, GainRule::HittingTime);
        for pick in [NodeId(1), NodeId(6), NodeId(3)] {
            delta.update(pick);
            sweep.update(pick);
            assert_eq!(delta.est_f1().to_bits(), sweep.est_f1().to_bits());
        }
        let mut delta = DeltaGainEngine::new(&idx, GainRule::Coverage);
        let mut sweep = GainEngine::new(&idx, GainRule::Coverage);
        for pick in [NodeId(6), NodeId(0)] {
            delta.update(pick);
            sweep.update(pick);
            assert_eq!(delta.est_f2().to_bits(), sweep.est_f2().to_bits());
        }
    }

    #[test]
    fn update_is_thread_invariant_above_threshold() {
        // Star hub: r = 32 layers on a 2000-node star puts update(hub)
        // past the parallel gate; staged gain decrements must reproduce the
        // serial tables exactly.
        let g = rwd_graph::generators::classic::star(2_000).unwrap();
        let idx = WalkIndex::build(&g, 3, 32, 17);
        let hub = NodeId(0);
        let work: usize = (0..idx.r()).map(|i| idx.postings(i, hub).len()).sum();
        assert!(
            work >= MIN_PARALLEL_SWEEP_WORK,
            "fixture must cross the parallel threshold (work = {work})"
        );
        for rule in ALL_RULES {
            let mut serial = DeltaGainEngine::with_threads(&idx, rule, 1);
            serial.update(hub);
            for threads in [2, 8] {
                let mut engine = DeltaGainEngine::with_threads(&idx, rule, threads);
                engine.update(hub);
                assert_eq!(engine.last_update_touched(), serial.last_update_touched());
                for u in 0..idx.n() {
                    let u = NodeId::new(u);
                    assert_eq!(
                        engine.gain(u).to_bits(),
                        serial.gain(u).to_bits(),
                        "rule {rule:?} node {u} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn touched_postings_shrink_after_first_round() {
        // Output sensitivity: once the D tables tighten, later commits
        // change fewer slots, so the repair pass touches fewer postings
        // than a full sweep would.
        let g = barabasi_albert(300, 4, 9).unwrap();
        let idx = WalkIndex::build(&g, 6, 16, 2);
        let mut engine = DeltaGainEngine::new(&idx, GainRule::HittingTime);
        let mut touched = Vec::new();
        for _ in 0..8 {
            let (pick, _) = engine.best_candidate().unwrap();
            engine.update(pick);
            touched.push(engine.last_update_touched());
        }
        let total = idx.total_postings();
        assert!(
            touched[1..].iter().all(|&t| t < total),
            "later rounds must touch fewer postings than one full sweep \
             ({touched:?} vs {total})"
        );
    }

    #[test]
    fn sharded_engine_matches_monolith_bitwise() {
        // Shard the index's layers contiguously; the over_shards engine
        // must reproduce the monolithic picks, gains and estimates bit for
        // bit at every shard and thread count.
        use rwd_walks::LayerRange;
        let g = barabasi_albert(180, 3, 13).unwrap();
        let (l, r, seed) = (5u32, 8usize, 27u64);
        let idx = WalkIndex::build(&g, l, r, seed);
        for rule in ALL_RULES {
            let mut mono = DeltaGainEngine::with_threads(&idx, rule, 1);
            let mut mono_trace = Vec::new();
            for _ in 0..5 {
                let (pick, gain) = mono.best_candidate().unwrap();
                mono.update(pick);
                mono_trace.push((pick, gain.to_bits(), mono.last_update_touched()));
            }
            for shards in [1usize, 2, 4, 8] {
                let parts: Vec<WalkIndex> = LayerRange::partition(r, shards)
                    .into_iter()
                    .map(|rg| WalkIndex::build_layer_range(&g, l, rg, seed, 0))
                    .collect();
                let refs: Vec<&WalkIndex> = parts.iter().collect();
                for threads in [1usize, 2, 8] {
                    let mut engine = DeltaGainEngine::over_shards(&refs, rule, threads);
                    for (round, &(pick, gain_bits, touched)) in mono_trace.iter().enumerate() {
                        let (p, gain) = engine.best_candidate().unwrap();
                        assert_eq!(p, pick, "rule {rule:?} shards {shards} round {round}");
                        assert_eq!(gain.to_bits(), gain_bits);
                        engine.update(p);
                        assert_eq!(engine.last_update_touched(), touched);
                    }
                    for u in 0..idx.n() {
                        let u = NodeId::new(u);
                        assert_eq!(
                            engine.gain(u).to_bits(),
                            mono.gain(u).to_bits(),
                            "rule {rule:?} shards {shards} threads {threads} node {u}"
                        );
                    }
                    if rule.needs_f1() {
                        assert_eq!(engine.est_f1().to_bits(), mono.est_f1().to_bits());
                    }
                    if rule.needs_f2() {
                        assert_eq!(engine.est_f2().to_bits(), mono.est_f2().to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "contiguous layer tiling")]
    fn over_shards_rejects_gapped_ranges() {
        use rwd_walks::LayerRange;
        let g = paper_example::figure1();
        let a = WalkIndex::build_layer_range(&g, 3, LayerRange::new(0, 2), 5, 0);
        let b = WalkIndex::build_layer_range(&g, 3, LayerRange::new(3, 4), 5, 0);
        let _ = DeltaGainEngine::over_shards(&[&a, &b], GainRule::Coverage, 0);
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn double_update_panics() {
        let idx = example31_index();
        let mut engine = DeltaGainEngine::new(&idx, GainRule::Coverage);
        engine.update(NodeId(0));
        engine.update(NodeId(0));
    }

    /// Removes one deterministic edge from `g` and refreshes `idx`
    /// incrementally, returning the post-churn graph plus the refresh's
    /// edit script.
    fn churned(
        idx: &mut WalkIndex,
        g: &rwd_graph::CsrGraph,
        (u, v): (u32, u32),
    ) -> (rwd_graph::CsrGraph, PostingDelta) {
        let (g2, touched) = g.with_edits(&[], &[(u, v)]).expect("edge exists");
        let touched = NodeSet::from_nodes(g2.n(), touched);
        let (_, delta) = idx.refresh_collecting(&g2, &touched, 1);
        (g2, delta)
    }

    /// A BA core (ids `0..core_n`) plus a disjoint cycle (ids
    /// `core_n..core_n + tail`): walks never cross components, so churning
    /// a cycle edge provably leaves every core candidate's postings — and
    /// therefore the greedy rounds picked from the core — untouched.
    fn two_component_graph(core_n: usize, tail: usize, seed: u64) -> rwd_graph::CsrGraph {
        let core = barabasi_albert(core_n, 3, seed).unwrap();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for a in 0..core_n {
            for &b in core.neighbors(NodeId::new(a)) {
                if (a as u32) < b.raw() {
                    edges.push((a as u32, b.raw()));
                }
            }
        }
        let base = core_n as u32;
        for i in 0..tail as u32 {
            edges.push((base + i, base + (i + 1) % tail as u32));
        }
        rwd_graph::CsrGraph::from_edges(core_n + tail, &edges).unwrap()
    }

    #[test]
    fn absorb_rewinds_to_the_fresh_engine_state_bitwise() {
        // Select a few rounds, churn the index, absorb the delta: the
        // engine must equal a freshly constructed engine on the refreshed
        // index — gains, estimates, and argmax alike.
        let g = barabasi_albert(160, 3, 31).unwrap();
        let edge = (7u32, *g.neighbors(NodeId(7)).first().unwrap());
        let edge = (edge.0, edge.1.raw());
        for rule in ALL_RULES {
            let mut idx = WalkIndex::build(&g, 5, 6, 19);
            let mut engine = DeltaGainEngine::with_threads(&idx, rule, 1);
            engine.enable_round_logging();
            for _ in 0..4 {
                let (pick, _) = engine.best_candidate().unwrap();
                engine.update(pick);
            }
            let core = engine.into_core();
            let (_, delta) = churned(&mut idx, &g, edge);
            assert!(!delta.is_empty(), "churn must touch the index");
            let mut warm = DeltaGainEngine::resume(&[&idx], core);
            let absorbed = warm.absorb(std::slice::from_ref(&delta));
            // Net edits: identically reproduced postings cancel out.
            assert!(absorbed <= delta.postings_changed());
            let cold = DeltaGainEngine::with_threads(&idx, rule, 1);
            for u in 0..idx.n() {
                let u = NodeId::new(u);
                assert_eq!(
                    warm.gain(u).to_bits(),
                    cold.gain(u).to_bits(),
                    "rule {rule:?} node {u}"
                );
            }
            if rule.needs_f1() {
                assert_eq!(warm.est_f1().to_bits(), cold.est_f1().to_bits());
            }
            if rule.needs_f2() {
                assert_eq!(warm.est_f2().to_bits(), cold.est_f2().to_bits());
            }
            assert!(warm.selected().is_empty());
        }
    }

    #[test]
    fn warm_replay_reproduces_cold_rounds_bitwise() {
        // After absorb, drive the warm engine with the cold engine's picks:
        // replayed or not, every round's gains and tables must match the
        // cold engine exactly. The churn lives in a disjoint component, so
        // the recorded rounds (picked from the dense core) must all replay.
        let g = two_component_graph(160, 40, 3);
        let edge = (160u32, 161u32);
        for rule in ALL_RULES {
            let mut idx = WalkIndex::build(&g, 5, 6, 23);
            let mut engine = DeltaGainEngine::with_threads(&idx, rule, 1);
            engine.enable_round_logging();
            for _ in 0..5 {
                let (pick, _) = engine.best_candidate().unwrap();
                engine.update(pick);
            }
            let core = engine.into_core();
            let (_, delta) = churned(&mut idx, &g, edge);
            let mut warm = DeltaGainEngine::resume(&[&idx], core);
            warm.absorb(std::slice::from_ref(&delta));
            let mut cold = DeltaGainEngine::with_threads(&idx, rule, 1);
            let mut replayed_any = false;
            for round in 0..5 {
                let (wp, wg) = warm.best_candidate().unwrap();
                let (cp, cg) = cold.best_candidate().unwrap();
                assert_eq!(wp, cp, "rule {rule:?} round {round}");
                assert_eq!(wg.to_bits(), cg.to_bits());
                cold.update(cp);
                if warm.try_replay_recorded(wp) {
                    replayed_any = true;
                } else {
                    warm.update(wp);
                }
                assert_eq!(
                    warm.last_update_touched(),
                    cold.last_update_touched(),
                    "rule {rule:?} round {round}"
                );
                for u in 0..idx.n() {
                    let u = NodeId::new(u);
                    assert_eq!(
                        warm.gain(u).to_bits(),
                        cold.gain(u).to_bits(),
                        "rule {rule:?} round {round} node {u}"
                    );
                }
            }
            // The single-edge churn leaves most rounds' reads untouched;
            // the fast path must actually fire for the test to mean much.
            assert!(replayed_any, "rule {rule:?}: no round replayed warm");
        }
    }

    #[test]
    fn replay_refuses_after_a_cold_commit() {
        // Once any round goes cold, the remaining recorded rounds are
        // discarded — their logs presumed the recorded history.
        let idx = example31_index();
        let mut engine = DeltaGainEngine::new(&idx, GainRule::Coverage);
        engine.enable_round_logging();
        for _ in 0..3 {
            let (pick, _) = engine.best_candidate().unwrap();
            engine.update(pick);
        }
        let core = engine.into_core();
        let mut warm = DeltaGainEngine::resume(&[&idx], core);
        warm.absorb(&[]); // empty delta: everything replayable
        let (first, _) = warm.best_candidate().unwrap();
        warm.update(first); // cold commit instead of replay
        let (second, _) = warm.best_candidate().unwrap();
        assert!(
            !warm.try_replay_recorded(second),
            "pending logs must be invalidated by the cold commit"
        );
    }
}
