//! Greedy selection machinery.
//!
//! * [`driver`] — the paper's Algorithm 1: generic greedy over any
//!   [`crate::objective::Objective`], in plain (full rescan) and lazy (CELF,
//!   the `[19]` acceleration the paper recommends) forms,
//! * [`approx`] — the Algorithm 4/5 gain engine over the inverted walk
//!   index, powering the approximate greedy of Algorithm 6,
//! * [`delta`] — the output-sensitive engine: exact gains maintained
//!   incrementally through the index's forward view, so a round costs an
//!   argmax plus repairs proportional to what the last commit changed,
//! * [`celf`] — the CELF heap entry shared by both lazy drivers.
//!
//! All strategies select **identical** seed sets (asserted across the test
//! suites); they differ only in how much work each round performs.

pub mod approx;
pub mod celf;
pub mod delta;
pub mod driver;

pub use approx::{GainEngine, GainRule};
pub use celf::CelfEntry;
pub use delta::{DeltaGainEngine, EngineCore};
pub use driver::{greedy, greedy_lazy, greedy_plain, GreedyOutcome};

/// How greedy rounds evaluate marginal gains. Every strategy returns the
/// same selection (ties break toward the smaller node id everywhere); they
/// trade per-round work differently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Re-evaluate every candidate each round — the literal Algorithm 1 /
    /// paper-faithful Algorithm 6 (one full gain sweep per round).
    Sweep,
    /// CELF lazy evaluation (Leskovec et al., the paper's \[19\]): cached
    /// gains are upper bounds under submodularity, so only stale heap tops
    /// are re-evaluated.
    #[default]
    Celf,
    /// Delta-maintained exact gains over the walk index's forward view
    /// ([`DeltaGainEngine`]): rounds are an argmax over a maintained table
    /// plus output-sensitive repairs. Index-based solvers only; the
    /// [`crate::objective::Objective`]-driven solvers (`DpGreedy`,
    /// `SamplingGreedy`) have no index to maintain and treat this as
    /// [`Strategy::Celf`] (identical selections either way).
    Delta,
}

impl Strategy {
    /// Whether the strategy avoids full per-round rescans — the `lazy` bit
    /// understood by the [`driver`]'s Objective-based greedy.
    pub fn lazy(self) -> bool {
        !matches!(self, Strategy::Sweep)
    }
}

#[cfg(test)]
mod tests {
    use super::Strategy;

    #[test]
    fn default_is_celf_and_lazy_bit_maps() {
        assert_eq!(Strategy::default(), Strategy::Celf);
        assert!(!Strategy::Sweep.lazy());
        assert!(Strategy::Celf.lazy());
        assert!(Strategy::Delta.lazy());
    }
}
