//! Greedy selection machinery.
//!
//! * [`driver`] — the paper's Algorithm 1: generic greedy over any
//!   [`crate::objective::Objective`], in plain (full rescan) and lazy (CELF,
//!   the `[19]` acceleration the paper recommends) forms,
//! * [`approx`] — the Algorithm 4/5 gain engine over the inverted walk
//!   index, powering the approximate greedy of Algorithm 6,
//! * [`celf`] — the CELF heap entry shared by both lazy drivers.

pub mod approx;
pub mod celf;
pub mod driver;

pub use approx::{GainEngine, GainRule};
pub use celf::CelfEntry;
pub use driver::{greedy, greedy_lazy, greedy_plain, GreedyOutcome};
