//! Generic greedy maximization (the paper's Algorithm 1).
//!
//! `greedy_plain` re-evaluates every candidate each round — the literal
//! Algorithm 1. `greedy_lazy` is the CELF accelerration of Leskovec et al.
//! (the paper's \[19\], recommended in §3.1): cached gains are upper bounds
//! under submodularity, so a candidate whose cached gain tops the heap only
//! needs re-evaluation, not the whole population. Both produce identical
//! selections for deterministic objectives (asserted in tests) because ties
//! break identically (smaller node id wins).

use std::collections::BinaryHeap;

use rwd_graph::NodeId;
use rwd_walks::NodeSet;

use crate::greedy::celf::CelfEntry;
use crate::objective::Objective;

/// Result of a greedy run (solver-agnostic part of
/// [`crate::problem::Selection`]).
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Selected nodes in pick order.
    pub nodes: Vec<NodeId>,
    /// Marginal gain of each pick.
    pub gain_trace: Vec<f64>,
    /// Objective value after each pick.
    pub objective_trace: Vec<f64>,
    /// Number of marginal-gain evaluations performed.
    pub evaluations: usize,
}

/// Runs greedy with either strategy.
pub fn greedy(obj: &impl Objective, k: usize, lazy: bool) -> GreedyOutcome {
    if lazy {
        greedy_lazy(obj, k)
    } else {
        greedy_plain(obj, k)
    }
}

/// Algorithm 1 verbatim: `k` rounds, each scanning every remaining
/// candidate for the maximal marginal gain.
pub fn greedy_plain(obj: &impl Objective, k: usize) -> GreedyOutcome {
    let n = obj.universe();
    assert!(k <= n, "budget exceeds universe");
    let mut set = NodeSet::new(n);
    let mut base = obj.eval(&set);
    let mut out = GreedyOutcome {
        nodes: Vec::with_capacity(k),
        gain_trace: Vec::with_capacity(k),
        objective_trace: Vec::with_capacity(k),
        evaluations: 0,
    };

    for _round in 0..k {
        let mut best: Option<(NodeId, f64)> = None;
        for u in 0..n {
            let u = NodeId::new(u);
            if set.contains(u) {
                continue;
            }
            let gain = obj.gain(&set, u, base);
            out.evaluations += 1;
            // Strict `>` keeps the smallest id on ties (ids scan upward).
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((u, gain));
            }
        }
        let (pick, gain) = best.expect("k <= n guarantees a candidate");
        set.insert(pick);
        base += gain;
        out.nodes.push(pick);
        out.gain_trace.push(gain);
        out.objective_trace.push(base);
    }
    out
}

/// CELF lazy greedy: re-evaluates only heap tops whose cached gain is stale.
/// Heap ordering comes from the shared [`CelfEntry`].
pub fn greedy_lazy(obj: &impl Objective, k: usize) -> GreedyOutcome {
    let n = obj.universe();
    assert!(k <= n, "budget exceeds universe");
    let mut set = NodeSet::new(n);
    let mut base = obj.eval(&set);
    let mut out = GreedyOutcome {
        nodes: Vec::with_capacity(k),
        gain_trace: Vec::with_capacity(k),
        objective_trace: Vec::with_capacity(k),
        evaluations: 0,
    };

    let mut heap = BinaryHeap::with_capacity(n);
    for u in 0..n {
        let u_id = NodeId::new(u);
        let gain = obj.gain(&set, u_id, base);
        out.evaluations += 1;
        heap.push(CelfEntry {
            gain,
            node: u as u32,
            round: 0,
        });
    }

    for round in 1..=k {
        loop {
            let top = heap.pop().expect("heap holds all unselected candidates");
            if top.round == round {
                let pick = NodeId(top.node);
                set.insert(pick);
                base += top.gain;
                out.nodes.push(pick);
                out.gain_trace.push(top.gain);
                out.objective_trace.push(base);
                break;
            }
            let gain = obj.gain(&set, NodeId(top.node), base);
            out.evaluations += 1;
            heap.push(CelfEntry {
                gain,
                node: top.node,
                round,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{ExactF1, ExactF2};
    use rwd_graph::generators::{classic, paper_example};

    /// Deterministic toy coverage objective: F(S) = |⋃_{u∈S} cover(u)|.
    struct Cover {
        sets: Vec<Vec<u32>>,
    }
    impl Objective for Cover {
        fn eval(&self, set: &NodeSet) -> f64 {
            let mut covered = std::collections::HashSet::new();
            for u in set.iter() {
                covered.extend(self.sets[u.index()].iter().copied());
            }
            covered.len() as f64
        }
        fn universe(&self) -> usize {
            self.sets.len()
        }
        fn name(&self) -> String {
            "Cover".into()
        }
    }

    fn toy() -> Cover {
        Cover {
            sets: vec![
                vec![0, 1, 2, 3], // node 0 covers 4
                vec![3, 4, 5],    // node 1 covers 3 (1 overlaps 0)
                vec![6, 7],       // node 2 covers 2
                vec![0, 1],       // node 3 subsumed by 0
            ],
        }
    }

    #[test]
    fn plain_picks_greedy_order() {
        let out = greedy_plain(&toy(), 3);
        assert_eq!(
            out.nodes,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            "coverage greedy order"
        );
        assert_eq!(out.gain_trace, vec![4.0, 2.0, 2.0]);
        assert_eq!(out.objective_trace, vec![4.0, 6.0, 8.0]);
        assert_eq!(out.evaluations, 4 + 3 + 2);
    }

    #[test]
    fn lazy_matches_plain_selection() {
        let plain = greedy_plain(&toy(), 4);
        let lazy = greedy_lazy(&toy(), 4);
        assert_eq!(plain.nodes, lazy.nodes);
        assert_eq!(plain.gain_trace, lazy.gain_trace);
        assert!(lazy.evaluations <= plain.evaluations);
    }

    #[test]
    fn lazy_matches_plain_on_exact_objectives() {
        let g = paper_example::figure1();
        for l in [2u32, 5] {
            let f1 = ExactF1::new(&g, l);
            assert_eq!(
                greedy_plain(&f1, 3).nodes,
                greedy_lazy(&f1, 3).nodes,
                "F1 l={l}"
            );
            let f2 = ExactF2::new(&g, l);
            assert_eq!(
                greedy_plain(&f2, 3).nodes,
                greedy_lazy(&f2, 3).nodes,
                "F2 l={l}"
            );
        }
    }

    #[test]
    fn lazy_saves_evaluations_on_larger_instances() {
        let g = rwd_graph::generators::barabasi_albert(150, 3, 5).unwrap();
        let f2 = ExactF2::new(&g, 4);
        let plain = greedy_plain(&f2, 8);
        let lazy = greedy_lazy(&f2, 8);
        assert_eq!(plain.nodes, lazy.nodes);
        assert!(
            lazy.evaluations * 2 < plain.evaluations,
            "lazy {} vs plain {}",
            lazy.evaluations,
            plain.evaluations
        );
    }

    #[test]
    fn star_hub_selected_first() {
        let g = classic::star(10).unwrap();
        let f2 = ExactF2::new(&g, 2);
        let out = greedy(&f2, 1, true);
        assert_eq!(out.nodes, vec![NodeId(0)], "hub dominates everything");
    }

    #[test]
    fn ties_break_to_smaller_id() {
        // Two disjoint equal-size covers: plain and lazy must both pick 0.
        let obj = Cover {
            sets: vec![vec![0, 1], vec![2, 3], vec![9]],
        };
        assert_eq!(greedy_plain(&obj, 1).nodes, vec![NodeId(0)]);
        assert_eq!(greedy_lazy(&obj, 1).nodes, vec![NodeId(0)]);
    }

    #[test]
    fn gain_traces_are_non_increasing_for_submodular_objectives() {
        let g = paper_example::figure1();
        let f2 = ExactF2::new(&g, 4);
        let out = greedy_plain(&f2, 6);
        for w in out.gain_trace.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-9,
                "greedy gains must shrink: {:?}",
                out.gain_trace
            );
        }
    }

    #[test]
    #[should_panic(expected = "budget exceeds universe")]
    fn oversized_budget_panics() {
        let _ = greedy_plain(&toy(), 5);
    }
}
