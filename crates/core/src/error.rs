//! Error types for the algorithm layer.

use std::fmt;

use rwd_graph::GraphError;

/// Errors produced by solvers and metrics.
#[derive(Debug)]
pub enum CoreError {
    /// Parameters are structurally invalid (k = 0, k > n, r = 0, …).
    InvalidParams(String),
    /// An underlying graph error.
    Graph(GraphError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::InvalidParams("k = 0".into())
            .to_string()
            .contains("k = 0"));
        let e: CoreError = GraphError::InvalidInput("bad".into()).into();
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e: CoreError = GraphError::InvalidInput("x".into()).into();
        assert!(e.source().is_some());
        assert!(CoreError::InvalidParams("y".into()).source().is_none());
    }
}
