//! Problem definitions and shared parameter/result types.

use std::time::Duration;

use rwd_graph::NodeId;

use crate::greedy::Strategy;

/// The two random-walk domination problems of the paper (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Problem {
    /// **Problem 1** (Eq. 6): choose `|S| ≤ k` maximizing
    /// `F1(S) = nL − Σ_{u∈V\S} h^L_uS` — equivalently, minimizing the total
    /// expected truncated hitting time from the remaining nodes to `S`.
    MinHittingTime,
    /// **Problem 2** (Eq. 7): choose `|S| ≤ k` maximizing
    /// `F2(S) = E[Σ_u X^L_uS]` — the expected number of nodes whose
    /// L-length random walk hits `S`.
    MaxCoverage,
}

impl Problem {
    /// Short display name matching the paper's algorithm naming
    /// (`…F1` / `…F2`).
    pub fn suffix(self) -> &'static str {
        match self {
            Problem::MinHittingTime => "F1",
            Problem::MaxCoverage => "F2",
        }
    }
}

/// Shared solver parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of nodes to select (cardinality budget `k`).
    pub k: usize,
    /// Walk-length bound `L`.
    pub l: u32,
    /// Walks per node `R` (sampling-based solvers only).
    pub r: usize,
    /// Base RNG seed; selections are pure functions of
    /// `(graph, problem, params)`.
    pub seed: u64,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
    /// How greedy rounds evaluate marginal gains (selection-invariant; see
    /// [`Strategy`]). Defaults to CELF.
    pub strategy: Strategy,
}

impl Default for Params {
    fn default() -> Self {
        // L = 6 and R = 100 are the paper's defaults for the real-data
        // experiments (Figs. 6–9).
        Params {
            k: 10,
            l: 6,
            r: 100,
            seed: 0,
            threads: 0,
            strategy: Strategy::Celf,
        }
    }
}

impl Params {
    /// Validates the budget against a graph of `n` nodes.
    pub fn validate(&self, n: usize) -> crate::Result<()> {
        if self.k == 0 {
            return Err(crate::CoreError::InvalidParams("k must be >= 1".into()));
        }
        if self.k > n {
            return Err(crate::CoreError::InvalidParams(format!(
                "k = {} exceeds n = {n}",
                self.k
            )));
        }
        if self.r == 0 {
            return Err(crate::CoreError::InvalidParams("r must be >= 1".into()));
        }
        Ok(())
    }
}

/// Result of a selection algorithm.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Chosen nodes in selection order.
    pub nodes: Vec<NodeId>,
    /// Marginal gain recorded at each pick (objective units of the solver).
    pub gain_trace: Vec<f64>,
    /// Objective value after each pick (when the solver tracks it).
    pub objective_trace: Vec<f64>,
    /// Number of marginal-gain evaluations performed (lazy-evaluation
    /// ablations compare this across drivers).
    pub evaluations: usize,
    /// Wall-clock time of the selection (excluding graph construction).
    pub elapsed: Duration,
    /// Human-readable algorithm label, e.g. `"ApproxF2"`.
    pub algorithm: String,
}

impl Selection {
    /// The selected set as a bitset over `n` nodes.
    pub fn to_set(&self, n: usize) -> rwd_walks::NodeSet {
        rwd_walks::NodeSet::from_nodes(n, self.nodes.iter().copied())
    }

    /// Final objective value, if tracked.
    pub fn objective(&self) -> Option<f64> {
        self.objective_trace.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        let p = Params {
            k: 5,
            ..Params::default()
        };
        assert!(p.validate(10).is_ok());
        assert!(p.validate(4).is_err());
        assert!(Params {
            k: 0,
            ..Params::default()
        }
        .validate(10)
        .is_err());
        assert!(Params {
            r: 0,
            k: 1,
            ..Params::default()
        }
        .validate(10)
        .is_err());
    }

    #[test]
    fn problem_suffixes() {
        assert_eq!(Problem::MinHittingTime.suffix(), "F1");
        assert_eq!(Problem::MaxCoverage.suffix(), "F2");
    }

    #[test]
    fn selection_helpers() {
        let sel = Selection {
            nodes: vec![NodeId(3), NodeId(1)],
            gain_trace: vec![2.0, 1.0],
            objective_trace: vec![2.0, 3.0],
            evaluations: 10,
            elapsed: Duration::from_millis(1),
            algorithm: "test".into(),
        };
        let set = sel.to_set(5);
        assert!(set.contains(NodeId(1)));
        assert!(set.contains(NodeId(3)));
        assert_eq!(set.len(), 2);
        assert_eq!(sel.objective(), Some(3.0));
    }

    #[test]
    fn default_params_match_paper() {
        let p = Params::default();
        assert_eq!(p.l, 6);
        assert_eq!(p.r, 100);
    }
}
