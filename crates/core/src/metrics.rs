//! Evaluation metrics: AHT (`M1`) and EHN (`M2`).
//!
//! The paper evaluates every algorithm with two metrics (§4.1):
//!
//! * **AHT** — average hitting time `M1(S) = Σ_{u∈V\S} h^L_uS / |V\S|`
//!   (lower is better),
//! * **EHN** — expected number of hitting nodes `M2(S) = Σ_u E[X^L_uS]`
//!   (higher is better),
//!
//! both estimated with Algorithm 2 at `R = 500` — the default of
//! [`MetricParams`]. Exact DP variants are provided for small graphs and
//! for validating the estimates.

use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::estimate::SampleEstimator;
use rwd_walks::{hitting, NodeSet};

/// Parameters for metric estimation.
#[derive(Clone, Copy, Debug)]
pub struct MetricParams {
    /// Walk-length bound `L`.
    pub l: u32,
    /// Walks per node (paper: 500 for metric evaluation).
    pub r: usize,
    /// Seed for the evaluation walks (kept distinct from solver seeds so
    /// algorithms are never graded on their own training walks).
    pub seed: u64,
}

impl Default for MetricParams {
    fn default() -> Self {
        MetricParams {
            l: 6,
            r: 500,
            seed: 0xE7A1_5EED,
        }
    }
}

/// Both metrics for one selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Average hitting time (lower better).
    pub aht: f64,
    /// Expected number of hitting nodes (higher better).
    pub ehn: f64,
}

/// Estimates AHT and EHN with one Algorithm 2 run (shared walks).
///
/// ```
/// use rwd_core::metrics::{evaluate, MetricParams};
/// use rwd_graph::generators::classic::star;
/// use rwd_graph::NodeId;
///
/// let g = star(20).unwrap();
/// let m = evaluate(&g, &[NodeId(0)], MetricParams { l: 4, r: 100, seed: 1 });
/// assert_eq!(m.aht, 1.0);  // every leaf hits the hub in one hop
/// assert_eq!(m.ehn, 20.0); // and everyone is dominated
/// ```
pub fn evaluate(g: &CsrGraph, nodes: &[NodeId], p: MetricParams) -> Metrics {
    let set = NodeSet::from_nodes(g.n(), nodes.iter().copied());
    let est = SampleEstimator::new(p.l, p.r, p.seed).estimate(g, &set);
    Metrics {
        aht: est.aht(&set, p.l),
        ehn: est.ehn(),
    }
}

/// Estimated AHT only.
pub fn aht(g: &CsrGraph, nodes: &[NodeId], p: MetricParams) -> f64 {
    evaluate(g, nodes, p).aht
}

/// Estimated EHN only.
pub fn ehn(g: &CsrGraph, nodes: &[NodeId], p: MetricParams) -> f64 {
    evaluate(g, nodes, p).ehn
}

/// Exact AHT via the Eq. (4) DP (`O(mL)`).
pub fn aht_exact(g: &CsrGraph, nodes: &[NodeId], l: u32) -> f64 {
    let set = NodeSet::from_nodes(g.n(), nodes.iter().copied());
    let outside = g.n() - set.len();
    if outside == 0 {
        return l as f64;
    }
    let h = hitting::hitting_time_to_set(g, &set, l);
    h.iter().sum::<f64>() / outside as f64
}

/// Exact EHN via the Eq. (8) DP.
pub fn ehn_exact(g: &CsrGraph, nodes: &[NodeId], l: u32) -> f64 {
    let set = NodeSet::from_nodes(g.n(), nodes.iter().copied());
    hitting::exact_f2(g, &set, l)
}

/// Exact metrics pair.
pub fn evaluate_exact(g: &CsrGraph, nodes: &[NodeId], l: u32) -> Metrics {
    Metrics {
        aht: aht_exact(g, nodes, l),
        ehn: ehn_exact(g, nodes, l),
    }
}

/// Exact metrics on a weighted graph (the paper's weighted extension).
pub fn evaluate_exact_weighted(
    g: &rwd_graph::weighted::WeightedCsrGraph,
    nodes: &[NodeId],
    l: u32,
) -> Metrics {
    let set = NodeSet::from_nodes(g.n(), nodes.iter().copied());
    let outside = g.n() - set.len();
    let aht = if outside == 0 {
        l as f64
    } else {
        hitting::hitting_time_to_set_weighted(g, &set, l)
            .iter()
            .sum::<f64>()
            / outside as f64
    };
    let ehn = hitting::hit_probability_to_set_weighted(g, &set, l)
        .iter()
        .sum::<f64>();
    Metrics { aht, ehn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::{classic, paper_example};

    #[test]
    fn estimated_tracks_exact() {
        let g = paper_example::figure1();
        let nodes = [NodeId(1), NodeId(6)];
        let p = MetricParams {
            l: 4,
            r: 4000,
            seed: 9,
        };
        let est = evaluate(&g, &nodes, p);
        let exact = evaluate_exact(&g, &nodes, 4);
        assert!((est.aht - exact.aht).abs() < 0.1, "{est:?} vs {exact:?}");
        assert!((est.ehn - exact.ehn).abs() < 0.2);
    }

    #[test]
    fn exact_values_on_star() {
        let g = classic::star(11).unwrap();
        // Target = hub: every leaf hits at time 1 ⇒ AHT = 1, EHN = 11.
        let m = evaluate_exact(&g, &[NodeId(0)], 5);
        assert!((m.aht - 1.0).abs() < 1e-12);
        assert!((m.ehn - 11.0).abs() < 1e-12);
    }

    #[test]
    fn better_selections_score_better() {
        let g = paper_example::figure1();
        // Hubs (v2, v7) vs leaves (v1, v8).
        let hubs = evaluate_exact(&g, &[NodeId(1), NodeId(6)], 4);
        let leaves = evaluate_exact(&g, &[NodeId(0), NodeId(7)], 4);
        assert!(hubs.aht < leaves.aht);
        assert!(hubs.ehn > leaves.ehn);
    }

    #[test]
    fn full_coverage_edge_cases() {
        let g = classic::path(3).unwrap();
        let all = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(aht_exact(&g, &all, 7), 7.0);
        assert_eq!(ehn_exact(&g, &all, 7), 3.0);
    }

    #[test]
    fn default_params_match_paper() {
        let p = MetricParams::default();
        assert_eq!(p.r, 500);
        assert_eq!(p.l, 6);
    }

    #[test]
    fn aht_is_in_hop_units() {
        let g = paper_example::figure1();
        let m = evaluate(
            &g,
            &[NodeId(1)],
            MetricParams {
                l: 4,
                r: 200,
                seed: 1,
            },
        );
        assert!(m.aht > 0.0 && m.aht <= 4.0);
        assert!(m.ehn >= 1.0 && m.ehn <= 8.0);
    }
}
