//! Baseline selection algorithms from the paper's experimental setup.
//!
//! * [`degree_top_k`] — the `Degree` baseline: the `k` highest-degree nodes,
//! * [`dominate_greedy`] — the `Dominate` baseline: greedy k-max-coverage
//!   over one-hop neighborhoods (classic dominating-set greedy under a
//!   cardinality budget),
//! * [`random_k`] — uniform random selection (sanity floor),
//! * [`pagerank_top_k`] — an extra centrality baseline (power iteration),
//!   not in the paper but a natural competitor.
//!
//! All baselines return the same [`Selection`] shape as the greedy solvers
//! so the harness can evaluate every algorithm identically.

use std::time::Instant;

use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::rng::WalkRng;
use rwd_walks::NodeSet;

use crate::problem::Selection;
use crate::Result;

fn check_k(k: usize, n: usize) -> Result<()> {
    if k == 0 || k > n {
        return Err(crate::CoreError::InvalidParams(format!(
            "k = {k} outside [1, n = {n}]"
        )));
    }
    Ok(())
}

fn selection(nodes: Vec<NodeId>, start: Instant, algorithm: &str) -> Selection {
    Selection {
        nodes,
        gain_trace: Vec::new(),
        objective_trace: Vec::new(),
        evaluations: 0,
        elapsed: start.elapsed(),
        algorithm: algorithm.to_string(),
    }
}

/// `Degree`: top-`k` nodes by degree, ties broken toward smaller ids
/// (deterministic).
///
/// ```
/// use rwd_core::baselines::degree_top_k;
/// use rwd_graph::generators::classic::star;
/// use rwd_graph::NodeId;
///
/// let g = star(6).unwrap();
/// let sel = degree_top_k(&g, 1).unwrap();
/// assert_eq!(sel.nodes, vec![NodeId(0)]); // the hub
/// ```
pub fn degree_top_k(g: &CsrGraph, k: usize) -> Result<Selection> {
    check_k(k, g.n())?;
    let start = Instant::now();
    let mut order: Vec<NodeId> = g.nodes().collect();
    // Sort by (degree desc, id asc); a full sort keeps the code simple and
    // is far from the bottleneck at the paper's scales.
    order.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    order.truncate(k);
    Ok(selection(order, start, "Degree"))
}

/// `Dominate`: `k` rounds of max-coverage over closed one-hop neighborhoods
/// `N[u] = {u} ∪ N(u)` — each round picks the node covering the most
/// not-yet-covered nodes (lazy evaluation inside, selections identical to
/// the naive rescan).
pub fn dominate_greedy(g: &CsrGraph, k: usize) -> Result<Selection> {
    check_k(k, g.n())?;
    let start = Instant::now();
    let n = g.n();
    let mut covered = NodeSet::new(n);
    let mut nodes = Vec::with_capacity(k);

    // CELF over the coverage gains: cached values only shrink as coverage
    // grows, so stale-top re-evaluation is exact.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let gain = |u: NodeId, covered: &NodeSet| -> usize {
        usize::from(!covered.contains(u))
            + g.neighbors(u)
                .iter()
                .filter(|&&v| !covered.contains(v))
                .count()
    };
    let mut heap: BinaryHeap<(usize, Reverse<u32>, usize)> = g
        .nodes()
        .map(|u| (g.degree(u) + 1, Reverse(u.raw()), 0usize))
        .collect();
    let mut selected = NodeSet::new(n);

    for round in 1..=k {
        loop {
            let (_cached, Reverse(u), at) = heap.pop().expect("candidates remain");
            let u = NodeId(u);
            if selected.contains(u) {
                continue;
            }
            if at == round {
                selected.insert(u);
                covered.insert(u);
                for &v in g.neighbors(u) {
                    covered.insert(v);
                }
                nodes.push(u);
                break;
            }
            heap.push((gain(u, &covered), Reverse(u.raw()), round));
        }
    }
    Ok(selection(nodes, start, "Dominate"))
}

/// Uniform random selection of `k` distinct nodes (deterministic per seed).
pub fn random_k(g: &CsrGraph, k: usize, seed: u64) -> Result<Selection> {
    check_k(k, g.n())?;
    let start = Instant::now();
    let n = g.n();
    // Partial Fisher–Yates over the id range.
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut rng = WalkRng::from_seed(seed ^ 0x5EED_BA5E);
    for i in 0..k {
        let j = i + rng.gen_index(n - i);
        ids.swap(i, j);
    }
    let nodes = ids[..k].iter().map(|&u| NodeId(u)).collect();
    Ok(selection(nodes, start, "Random"))
}

/// PageRank scores by power iteration with uniform teleport.
///
/// Isolated nodes redistribute their mass uniformly (standard dangling-node
/// handling). Returns per-node scores summing to 1.
pub fn pagerank_scores(g: &CsrGraph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let mut dangling = 0.0;
        next.fill(0.0);
        for u in g.nodes() {
            let share = rank[u.index()];
            let nbrs = g.neighbors(u);
            if nbrs.is_empty() {
                dangling += share;
            } else {
                let out = share / nbrs.len() as f64;
                for &v in nbrs {
                    next[v.index()] += out;
                }
            }
        }
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        for x in next.iter_mut() {
            *x = damping * *x + base;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// PageRank baseline: top-`k` nodes by PageRank score (damping 0.85, 50
/// iterations), ties toward smaller ids.
pub fn pagerank_top_k(g: &CsrGraph, k: usize) -> Result<Selection> {
    check_k(k, g.n())?;
    let start = Instant::now();
    let scores = pagerank_scores(g, 0.85, 50);
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by(|&a, &b| {
        scores[b.index()]
            .total_cmp(&scores[a.index()])
            .then(a.cmp(&b))
    });
    order.truncate(k);
    Ok(selection(order, start, "PageRank"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::{barabasi_albert, classic, paper_example};

    #[test]
    fn degree_picks_hubs() {
        let g = paper_example::figure1();
        let sel = degree_top_k(&g, 2).unwrap();
        // v2 and v7 (ids 1, 6) have degree 4.
        assert_eq!(sel.nodes, vec![NodeId(1), NodeId(6)]);
        assert_eq!(sel.algorithm, "Degree");
    }

    #[test]
    fn degree_tie_break_is_id_order() {
        let g = classic::cycle(5).unwrap();
        let sel = degree_top_k(&g, 3).unwrap();
        assert_eq!(sel.nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn dominate_covers_star_with_hub() {
        let g = classic::star(9).unwrap();
        let sel = dominate_greedy(&g, 1).unwrap();
        assert_eq!(sel.nodes, vec![NodeId(0)]);
    }

    #[test]
    fn dominate_prefers_fresh_coverage() {
        // Two stars joined by an edge between hubs 0 and 5.
        let g = CsrGraph::from_edges(
            10,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (5, 6),
                (5, 7),
                (5, 8),
                (5, 9),
                (0, 5),
            ],
        )
        .unwrap();
        let sel = dominate_greedy(&g, 2).unwrap();
        assert_eq!(sel.nodes, vec![NodeId(0), NodeId(5)]);
    }

    #[test]
    fn dominate_matches_naive_rescan() {
        let g = barabasi_albert(200, 3, 4).unwrap();
        let lazy = dominate_greedy(&g, 10).unwrap();
        // Naive reference implementation.
        let mut covered = NodeSet::new(g.n());
        let mut picked = NodeSet::new(g.n());
        let mut reference = Vec::new();
        for _ in 0..10 {
            let mut best = (0usize, NodeId(0));
            let mut best_set = false;
            for u in g.nodes() {
                if picked.contains(u) {
                    continue;
                }
                let mut gain = usize::from(!covered.contains(u));
                gain += g
                    .neighbors(u)
                    .iter()
                    .filter(|&&v| !covered.contains(v))
                    .count();
                if !best_set || gain > best.0 {
                    best = (gain, u);
                    best_set = true;
                }
            }
            picked.insert(best.1);
            covered.insert(best.1);
            for &v in g.neighbors(best.1) {
                covered.insert(v);
            }
            reference.push(best.1);
        }
        assert_eq!(lazy.nodes, reference);
    }

    #[test]
    fn random_is_deterministic_and_distinct() {
        let g = barabasi_albert(100, 2, 0).unwrap();
        let a = random_k(&g, 20, 5).unwrap();
        let b = random_k(&g, 20, 5).unwrap();
        let c = random_k(&g, 20, 6).unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_ne!(a.nodes, c.nodes);
        let set: std::collections::HashSet<_> = a.nodes.iter().collect();
        assert_eq!(set.len(), 20, "no duplicates");
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_first() {
        let g = classic::star(20).unwrap();
        let scores = pagerank_scores(&g, 0.85, 50);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        let sel = pagerank_top_k(&g, 1).unwrap();
        assert_eq!(sel.nodes, vec![NodeId(0)]);
    }

    #[test]
    fn pagerank_handles_isolated_nodes() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]).unwrap();
        let scores = pagerank_scores(&g, 0.85, 30);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn bad_k_rejected() {
        let g = classic::path(3).unwrap();
        assert!(degree_top_k(&g, 0).is_err());
        assert!(degree_top_k(&g, 4).is_err());
        assert!(dominate_greedy(&g, 0).is_err());
        assert!(random_k(&g, 9, 0).is_err());
        assert!(pagerank_top_k(&g, 0).is_err());
    }
}
