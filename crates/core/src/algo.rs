//! User-facing solvers.
//!
//! | Solver | Paper name | Gain evaluation | Complexity |
//! |---|---|---|---|
//! | [`DpGreedy`] | `DPF1` / `DPF2` | exact DP (Eq. 4/8) | `O(k·n·mL)` plain, far less with CELF |
//! | [`SamplingGreedy`] | §3.1 sampling greedy | Algorithm 2 per candidate | `O(k·n²·RL)` plain |
//! | [`ApproxGreedy`] | `ApproxF1` / `ApproxF2` (Algorithm 6) | Algorithm 4/5 over the walk index | `O(kRLn)` time, `O(nRL + m)` space |
//!
//! Every solver returns a [`Selection`] and is a deterministic function of
//! `(graph, problem, params)`.

use std::time::Instant;

use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::WalkIndex;

use crate::greedy::approx::{GainEngine, GainRule};
use crate::greedy::delta::DeltaGainEngine;
use crate::greedy::{driver, Strategy};
use crate::objective::{ExactF1, ExactF2, SampledF1, SampledF2};
use crate::problem::{Params, Problem, Selection};
use crate::Result;

/// Exact greedy: marginal gains from the Eq. (4)/(8) dynamic programs.
///
/// The paper's `DPF1`/`DPF2`. Any non-[`Strategy::Sweep`] strategy runs
/// CELF, which the paper recommends via \[19\]; selections are identical
/// either way.
#[derive(Clone, Copy, Debug)]
pub struct DpGreedy {
    problem: Problem,
    params: Params,
}

impl DpGreedy {
    /// Creates the solver.
    pub fn new(problem: Problem, params: Params) -> Self {
        DpGreedy { problem, params }
    }

    /// Runs the selection.
    pub fn run(&self, g: &CsrGraph) -> Result<Selection> {
        self.params.validate(g.n())?;
        let start = Instant::now();
        let outcome = match self.problem {
            Problem::MinHittingTime => driver::greedy(
                &ExactF1::new(g, self.params.l),
                self.params.k,
                self.params.strategy.lazy(),
            ),
            Problem::MaxCoverage => driver::greedy(
                &ExactF2::new(g, self.params.l),
                self.params.k,
                self.params.strategy.lazy(),
            ),
        };
        Ok(finish(
            outcome,
            start,
            format!("DP{}", self.problem.suffix()),
        ))
    }
}

/// Sampling-based greedy (§3.1): marginal gains estimated per candidate by
/// Algorithm 2. Dominated by [`ApproxGreedy`] in practice (the paper says as
/// much) but included for completeness and as a cross-check.
#[derive(Clone, Copy, Debug)]
pub struct SamplingGreedy {
    problem: Problem,
    params: Params,
}

impl SamplingGreedy {
    /// Creates the solver.
    pub fn new(problem: Problem, params: Params) -> Self {
        SamplingGreedy { problem, params }
    }

    /// Runs the selection.
    pub fn run(&self, g: &CsrGraph) -> Result<Selection> {
        self.params.validate(g.n())?;
        let Params {
            k,
            l,
            r,
            seed,
            strategy,
            ..
        } = self.params;
        let start = Instant::now();
        let lazy = strategy.lazy();
        let outcome = match self.problem {
            Problem::MinHittingTime => driver::greedy(&SampledF1::new(g, l, r, seed), k, lazy),
            Problem::MaxCoverage => driver::greedy(&SampledF2::new(g, l, r, seed), k, lazy),
        };
        Ok(finish(
            outcome,
            start,
            format!("Sampling{}", self.problem.suffix()),
        ))
    }
}

/// The approximate greedy algorithm (Algorithm 6): builds the dual-view
/// walk index once, then selects `k` nodes with Algorithm 4/5 gain
/// evaluation under the configured [`Strategy`]:
///
/// * [`Strategy::Sweep`] reproduces the paper exactly — one full index
///   sweep per round,
/// * [`Strategy::Celf`] (default) runs one initial sweep and then CELF
///   with per-candidate Algorithm 4,
/// * [`Strategy::Delta`] maintains every candidate's exact gain
///   incrementally through the index's forward view
///   ([`DeltaGainEngine`]) — per-round work proportional to what the last
///   commit changed, no resweeps at all.
///
/// Selections are identical under every strategy (the index is fixed, so
/// gains are deterministic); the ablation bench and the perf binary
/// quantify the speed differences.
#[derive(Clone, Copy, Debug)]
pub struct ApproxGreedy {
    problem: Problem,
    params: Params,
}

impl ApproxGreedy {
    /// Creates the solver.
    pub fn new(problem: Problem, params: Params) -> Self {
        ApproxGreedy { problem, params }
    }

    /// Builds the index and runs the selection.
    pub fn run(&self, g: &CsrGraph) -> Result<Selection> {
        self.params.validate(g.n())?;
        let start = Instant::now();
        let idx = WalkIndex::build_with_threads(
            g,
            self.params.l,
            self.params.r,
            self.params.seed,
            self.params.threads,
        );
        let rule = match self.problem {
            Problem::MinHittingTime => GainRule::HittingTime,
            Problem::MaxCoverage => GainRule::Coverage,
        };
        let mut sel = select_from_index(
            &idx,
            rule,
            self.params.k,
            self.params.strategy,
            self.params.threads,
        )?;
        sel.elapsed = start.elapsed();
        sel.algorithm = format!("Approx{}", self.problem.suffix());
        Ok(sel)
    }

    /// Runs the selection against a prebuilt index (parameter sweeps reuse
    /// one index across many `k`/`λ` settings).
    pub fn run_with_index(&self, idx: &WalkIndex) -> Result<Selection> {
        self.params.validate(idx.n())?;
        let rule = match self.problem {
            Problem::MinHittingTime => GainRule::HittingTime,
            Problem::MaxCoverage => GainRule::Coverage,
        };
        let start = Instant::now();
        let mut sel = select_from_index(
            idx,
            rule,
            self.params.k,
            self.params.strategy,
            self.params.threads,
        )?;
        sel.elapsed = start.elapsed();
        sel.algorithm = format!("Approx{}", self.problem.suffix());
        Ok(sel)
    }
}

/// Approximate greedy on a **weighted** graph (the paper's weighted
/// extension): walk steps follow edge weights; Algorithms 4–6 run unchanged
/// on the weighted walk index.
pub fn approx_greedy_weighted(
    g: &rwd_graph::weighted::WeightedCsrGraph,
    problem: Problem,
    params: Params,
) -> Result<Selection> {
    if params.k == 0 || params.k > g.n() {
        return Err(crate::CoreError::InvalidParams(format!(
            "k = {} outside [1, n = {}]",
            params.k,
            g.n()
        )));
    }
    if params.r == 0 {
        return Err(crate::CoreError::InvalidParams("r must be >= 1".into()));
    }
    let start = Instant::now();
    let idx =
        WalkIndex::build_weighted_with_threads(g, params.l, params.r, params.seed, params.threads);
    let rule = match problem {
        Problem::MinHittingTime => GainRule::HittingTime,
        Problem::MaxCoverage => GainRule::Coverage,
    };
    let mut sel = select_from_index(&idx, rule, params.k, params.strategy, params.threads)?;
    sel.elapsed = start.elapsed();
    sel.algorithm = format!("WeightedApprox{}", problem.suffix());
    Ok(sel)
}

/// Approximate greedy under the combined `λ`-objective (extension; see
/// [`GainRule::Combined`]).
pub fn approx_combined(g: &CsrGraph, lambda: f64, params: Params) -> Result<Selection> {
    params.validate(g.n())?;
    let start = Instant::now();
    let idx = WalkIndex::build_with_threads(g, params.l, params.r, params.seed, params.threads);
    let mut sel = select_from_index(
        &idx,
        GainRule::Combined { lambda },
        params.k,
        params.strategy,
        params.threads,
    )?;
    sel.elapsed = start.elapsed();
    sel.algorithm = format!("ApproxCombined(λ={lambda})");
    Ok(sel)
}

/// Core of Algorithm 6 given a built index, a gain rule and an evaluation
/// [`Strategy`]. All strategies return identical selections; see
/// [`ApproxGreedy`] for the trade-offs.
pub fn select_from_index(
    idx: &WalkIndex,
    rule: GainRule,
    k: usize,
    strategy: Strategy,
    threads: usize,
) -> Result<Selection> {
    if strategy == Strategy::Delta {
        return delta_greedy_with_stats(idx, rule, k, threads).map(|(sel, _)| sel);
    }
    if k == 0 || k > idx.n() {
        return Err(crate::CoreError::InvalidParams(format!(
            "k = {k} outside [1, n = {}]",
            idx.n()
        )));
    }
    let start = Instant::now();
    let mut engine = GainEngine::with_threads(idx, rule, threads);
    let mut nodes = Vec::with_capacity(k);
    let mut gain_trace = Vec::with_capacity(k);
    let mut evaluations = 0usize;

    if strategy.lazy() {
        run_lazy(
            &mut engine,
            k,
            &mut nodes,
            &mut gain_trace,
            &mut evaluations,
        );
    } else {
        run_sweep(
            &mut engine,
            k,
            &mut nodes,
            &mut gain_trace,
            &mut evaluations,
        );
    }

    Ok(assemble_selection(
        nodes,
        gain_trace,
        evaluations,
        start.elapsed(),
    ))
}

/// [`Strategy::Delta`] greedy with per-round output-sensitivity stats: the
/// second return value is, for each round, the number of postings the
/// delta repair actually streamed (the perf harness records it next to the
/// CELF evaluation counts; after round 1 it is typically far below one
/// full index sweep).
pub fn delta_greedy_with_stats(
    idx: &WalkIndex,
    rule: GainRule,
    k: usize,
    threads: usize,
) -> Result<(Selection, Vec<usize>)> {
    if k == 0 || k > idx.n() {
        return Err(crate::CoreError::InvalidParams(format!(
            "k = {k} outside [1, n = {}]",
            idx.n()
        )));
    }
    let start = Instant::now();
    let mut engine = DeltaGainEngine::with_threads(idx, rule, threads);
    let mut nodes = Vec::with_capacity(k);
    let mut gain_trace = Vec::with_capacity(k);
    let mut touched = Vec::with_capacity(k);
    // The closed-form initialization evaluates every candidate once; the
    // rounds themselves re-evaluate nothing.
    let evaluations = idx.n();
    for _round in 0..k {
        let (pick, gain) = engine.best_candidate().expect("k <= n leaves candidates");
        engine.update(pick);
        nodes.push(pick);
        gain_trace.push(gain);
        touched.push(engine.last_update_touched());
    }
    Ok((
        assemble_selection(nodes, gain_trace, evaluations, start.elapsed()),
        touched,
    ))
}

/// Objective of an **arbitrary** seed sequence at query time: replays the
/// seeds in order through a [`DeltaGainEngine`] and telescopes the exact
/// marginals (`F(∅) = 0`), so the result is the same sampled objective
/// `F̂(S)` every solver reports — without running any greedy search.
///
/// When `seeds` is the sequence a greedy pass selected on this index, the
/// returned value is **bit-identical** to that pass's gain-trace sum (the
/// serving layer uses this to audit a snapshot's cached objective). For
/// any other order of the same set the value can differ only by
/// floating-point reassociation.
///
/// Cost: `O(n)` closed-form startup plus the seeds' forward-repair streams
/// — output-sensitive, not `k` full sweeps.
pub fn objective_from_index(
    idx: &WalkIndex,
    seeds: &[NodeId],
    rule: GainRule,
    threads: usize,
) -> Result<f64> {
    let n = idx.n();
    if seeds.len() > n {
        return Err(crate::CoreError::InvalidParams(format!(
            "{} seeds exceed the node universe {n}",
            seeds.len()
        )));
    }
    let mut seen = rwd_walks::NodeSet::new(n);
    for &s in seeds {
        if s.index() >= n {
            return Err(crate::CoreError::InvalidParams(format!(
                "seed {s} outside the node universe {n}"
            )));
        }
        if !seen.insert(s) {
            return Err(crate::CoreError::InvalidParams(format!(
                "seed {s} listed twice"
            )));
        }
    }
    let mut engine = DeltaGainEngine::with_threads(idx, rule, threads);
    let mut objective = 0.0f64;
    for &s in seeds {
        objective += engine.gain(s);
        engine.update(s);
    }
    Ok(objective)
}

/// Builds a [`Selection`], recovering the objective trace from the gain
/// trace (`F(∅) = 0` for every rule, and gains are exact marginals of the
/// sampled objective).
fn assemble_selection(
    nodes: Vec<NodeId>,
    gain_trace: Vec<f64>,
    evaluations: usize,
    elapsed: std::time::Duration,
) -> Selection {
    let mut objective_trace = Vec::with_capacity(gain_trace.len());
    let mut acc = 0.0;
    for &g in &gain_trace {
        acc += g;
        objective_trace.push(acc);
    }
    Selection {
        nodes,
        gain_trace,
        objective_trace,
        evaluations,
        elapsed,
        algorithm: String::new(),
    }
}

/// Paper-faithful mode: one full gain sweep per round.
fn run_sweep(
    engine: &mut GainEngine<'_>,
    k: usize,
    nodes: &mut Vec<NodeId>,
    gain_trace: &mut Vec<f64>,
    evaluations: &mut usize,
) {
    let n = engine.selected().capacity();
    for _round in 0..k {
        let gains = engine.gains_all();
        *evaluations += n - nodes.len();
        let mut best: Option<(NodeId, f64)> = None;
        for (u, &gain) in gains.iter().enumerate() {
            let u = NodeId::new(u);
            if engine.selected().contains(u) {
                continue;
            }
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((u, gain));
            }
        }
        let (pick, gain) = best.expect("k <= n leaves candidates");
        engine.update(pick);
        nodes.push(pick);
        gain_trace.push(gain);
    }
}

/// Lazy mode: one initial sweep, then CELF with per-candidate Algorithm 4.
fn run_lazy(
    engine: &mut GainEngine<'_>,
    k: usize,
    nodes: &mut Vec<NodeId>,
    gain_trace: &mut Vec<f64>,
    evaluations: &mut usize,
) {
    use std::collections::BinaryHeap;

    use crate::greedy::celf::CelfEntry;

    let n = engine.selected().capacity();
    let initial = engine.gains_all();
    *evaluations += n;
    let mut heap: BinaryHeap<CelfEntry> = initial
        .iter()
        .enumerate()
        .map(|(u, &gain)| CelfEntry {
            gain,
            node: u as u32,
            round: 0,
        })
        .collect();

    for round in 1..=k {
        loop {
            let top = heap.pop().expect("candidates remain while k <= n");
            if engine.selected().contains(NodeId(top.node)) {
                continue;
            }
            if top.round == round {
                engine.update(NodeId(top.node));
                nodes.push(NodeId(top.node));
                gain_trace.push(top.gain);
                break;
            }
            let gain = engine.gain_single(NodeId(top.node));
            *evaluations += 1;
            heap.push(CelfEntry {
                gain,
                node: top.node,
                round,
            });
        }
    }
}

fn finish(outcome: driver::GreedyOutcome, start: Instant, algorithm: String) -> Selection {
    Selection {
        nodes: outcome.nodes,
        gain_trace: outcome.gain_trace,
        objective_trace: outcome.objective_trace,
        evaluations: outcome.evaluations,
        elapsed: start.elapsed(),
        algorithm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::generators::{barabasi_albert, classic, paper_example};
    use rwd_walks::hitting;

    fn params(k: usize, l: u32, r: usize) -> Params {
        Params {
            k,
            l,
            r,
            seed: 7,
            threads: 0,
            strategy: Strategy::Celf,
        }
    }

    #[test]
    fn objective_from_index_matches_greedy_trace_sum() {
        let g = barabasi_albert(150, 3, 4).unwrap();
        let idx = WalkIndex::build(&g, 5, 6, 9);
        for rule in [
            GainRule::HittingTime,
            GainRule::Coverage,
            GainRule::Combined { lambda: 0.4 },
        ] {
            let sel = select_from_index(&idx, rule, 5, Strategy::Delta, 0).unwrap();
            let trace_sum: f64 = sel.gain_trace.iter().sum();
            let replayed = objective_from_index(&idx, &sel.nodes, rule, 0).unwrap();
            assert_eq!(
                replayed.to_bits(),
                trace_sum.to_bits(),
                "replay diverged for {rule:?}"
            );
            // Any permutation telescopes to the same objective up to
            // floating-point reassociation.
            let mut reversed = sel.nodes.clone();
            reversed.reverse();
            let alt = objective_from_index(&idx, &reversed, rule, 0).unwrap();
            assert!((alt - trace_sum).abs() < 1e-9 * trace_sum.abs().max(1.0));
        }
        // Degenerate and invalid inputs.
        assert_eq!(
            objective_from_index(&idx, &[], GainRule::Coverage, 0).unwrap(),
            0.0
        );
        assert!(
            objective_from_index(&idx, &[NodeId(0), NodeId(0)], GainRule::Coverage, 0).is_err()
        );
        assert!(objective_from_index(&idx, &[NodeId(150)], GainRule::Coverage, 0).is_err());
    }

    #[test]
    fn dp_greedy_selects_hub_on_star() {
        let g = classic::star(12).unwrap();
        for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
            let sel = DpGreedy::new(problem, params(1, 4, 10)).run(&g).unwrap();
            assert_eq!(sel.nodes, vec![NodeId(0)], "{problem:?}");
        }
    }

    #[test]
    fn dp_greedy_lazy_equals_plain() {
        let g = paper_example::figure1();
        for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
            let lazy = DpGreedy::new(problem, params(4, 4, 10)).run(&g).unwrap();
            let mut p = params(4, 4, 10);
            p.strategy = Strategy::Sweep;
            let plain = DpGreedy::new(problem, p).run(&g).unwrap();
            assert_eq!(lazy.nodes, plain.nodes);
            assert!(lazy.evaluations <= plain.evaluations);
        }
    }

    #[test]
    fn all_strategies_select_identically() {
        let g = barabasi_albert(200, 3, 3).unwrap();
        for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
            let mut p = params(10, 5, 32);
            p.strategy = Strategy::Sweep;
            let sweep = ApproxGreedy::new(problem, p).run(&g).unwrap();
            for strategy in [Strategy::Celf, Strategy::Delta] {
                p.strategy = strategy;
                let other = ApproxGreedy::new(problem, p).run(&g).unwrap();
                assert_eq!(sweep.nodes, other.nodes, "{problem:?} {strategy:?}");
                assert_eq!(
                    sweep.gain_trace, other.gain_trace,
                    "{problem:?} {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn delta_stats_report_output_sensitive_rounds() {
        let g = barabasi_albert(300, 4, 5).unwrap();
        let idx = WalkIndex::build(&g, 6, 16, 9);
        let (sel, touched) = delta_greedy_with_stats(&idx, GainRule::Coverage, 10, 0).unwrap();
        assert_eq!(sel.nodes.len(), 10);
        assert_eq!(touched.len(), 10);
        // Every round's repair must stay below one full index resweep.
        assert!(touched[1..].iter().all(|&t| t < idx.total_postings()));
    }

    #[test]
    fn approx_tracks_dp_objective_closely() {
        // The headline claim (Figs. 2–3): ApproxF* ≈ DPF* in objective value.
        let g = barabasi_albert(150, 3, 1).unwrap();
        let l = 5;
        let k = 8;
        let dp1 = DpGreedy::new(Problem::MinHittingTime, params(k, l, 1))
            .run(&g)
            .unwrap();
        let ap1 = ApproxGreedy::new(Problem::MinHittingTime, params(k, l, 200))
            .run(&g)
            .unwrap();
        let exact_of = |sel: &Selection| hitting::exact_f1(&g, &sel.to_set(g.n()), l);
        let (d, a) = (exact_of(&dp1), exact_of(&ap1));
        assert!(a >= 0.93 * d, "approx F1 {a} vs dp {d}");

        let dp2 = DpGreedy::new(Problem::MaxCoverage, params(k, l, 1))
            .run(&g)
            .unwrap();
        let ap2 = ApproxGreedy::new(Problem::MaxCoverage, params(k, l, 200))
            .run(&g)
            .unwrap();
        let exact2 = |sel: &Selection| hitting::exact_f2(&g, &sel.to_set(g.n()), l);
        let (d, a) = (exact2(&dp2), exact2(&ap2));
        assert!(a >= 0.93 * d, "approx F2 {a} vs dp {d}");
    }

    #[test]
    fn sampling_greedy_matches_dp_on_small_graph() {
        let g = paper_example::figure1();
        let dp = DpGreedy::new(Problem::MaxCoverage, params(2, 4, 1))
            .run(&g)
            .unwrap();
        let sg = SamplingGreedy::new(Problem::MaxCoverage, params(2, 4, 800))
            .run(&g)
            .unwrap();
        let f = |sel: &Selection| hitting::exact_f2(&g, &sel.to_set(8), 4);
        assert!(f(&sg) >= 0.95 * f(&dp), "sampling {} dp {}", f(&sg), f(&dp));
    }

    #[test]
    fn selection_is_deterministic() {
        let g = barabasi_albert(120, 3, 9).unwrap();
        let a = ApproxGreedy::new(Problem::MaxCoverage, params(6, 5, 40))
            .run(&g)
            .unwrap();
        let b = ApproxGreedy::new(Problem::MaxCoverage, params(6, 5, 40))
            .run(&g)
            .unwrap();
        assert_eq!(a.nodes, b.nodes);
        let mut p = params(6, 5, 40);
        p.threads = 2;
        let c = ApproxGreedy::new(Problem::MaxCoverage, p).run(&g).unwrap();
        assert_eq!(a.nodes, c.nodes, "thread count must not change selection");
    }

    #[test]
    fn run_with_index_reuses_walks() {
        let g = paper_example::figure1();
        let idx = WalkIndex::build(&g, 4, 16, 5);
        let p = params(3, 4, 16);
        let via_index = ApproxGreedy::new(Problem::MaxCoverage, p)
            .run_with_index(&idx)
            .unwrap();
        let mut p2 = p;
        p2.seed = 5;
        let direct = ApproxGreedy::new(Problem::MaxCoverage, p2).run(&g).unwrap();
        assert_eq!(via_index.nodes, direct.nodes);
    }

    #[test]
    fn combined_interpolates_between_problems() {
        let g = barabasi_albert(150, 3, 2).unwrap();
        let p = params(6, 5, 64);
        let f1_side = approx_combined(&g, 1.0, p).unwrap();
        let pure1 = ApproxGreedy::new(Problem::MinHittingTime, p)
            .run(&g)
            .unwrap();
        assert_eq!(f1_side.nodes, pure1.nodes, "λ=1 reduces to Problem 1");
        let f2_side = approx_combined(&g, 0.0, p).unwrap();
        let pure2 = ApproxGreedy::new(Problem::MaxCoverage, p).run(&g).unwrap();
        assert_eq!(f2_side.nodes, pure2.nodes, "λ=0 reduces to Problem 2");
    }

    #[test]
    fn objective_trace_is_cumulative_gains() {
        let g = paper_example::figure1();
        let sel = ApproxGreedy::new(Problem::MaxCoverage, params(3, 3, 16))
            .run(&g)
            .unwrap();
        let mut acc = 0.0;
        for (g, o) in sel.gain_trace.iter().zip(&sel.objective_trace) {
            acc += g;
            assert!((acc - o).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let g = paper_example::figure1();
        assert!(DpGreedy::new(Problem::MaxCoverage, params(0, 3, 10))
            .run(&g)
            .is_err());
        assert!(DpGreedy::new(Problem::MaxCoverage, params(9, 3, 10))
            .run(&g)
            .is_err());
        assert!(ApproxGreedy::new(Problem::MaxCoverage, params(3, 3, 0))
            .run(&g)
            .is_err());
    }
}
