//! Text-table and TSV formatting shared by the harness, CLI and examples.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[c]);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders as TSV (headers first).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes the TSV form to a file, creating parent directories.
    pub fn write_tsv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_tsv())
    }
}

/// Formats a float with fixed precision, trimming noise digits — the shape
/// the paper's plots report.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a `Duration` as fractional seconds.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["k", "AHT"]);
        t.row(["20", "5.41"]);
        t.row(["100", "5.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('k') && lines[0].contains("AHT"));
        assert!(lines[2].trim_start().starts_with("20"));
    }

    #[test]
    fn tsv_round_trip_shape() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn write_tsv_creates_dirs() {
        let dir = std::env::temp_dir().join("rwd_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.tsv");
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        t.write_tsv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(2.71875, 2), "2.72");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
