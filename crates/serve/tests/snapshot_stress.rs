//! Snapshot-consistency stress test — the serving acceptance criterion.
//!
//! Reader threads pin snapshots and fire point queries **while** churn
//! batches apply concurrently through the same server. Every answer must
//! be coherent: stamped with a single epoch `e`, and bit-identical to the
//! full-sweep static estimators run on a from-scratch rebuild of epoch
//! `e`'s index with epoch `e`'s statically selected seeds. A torn read —
//! an index from one epoch paired with seeds from another, or a
//! mid-refresh index — would mismatch every reference.
//!
//! The same race runs twice: once against the single-shard engine, once
//! against the sharded scatter-gather coordinator — every gathered answer
//! must still bit-match the per-epoch **monolithic** rebuild, and a torn
//! cross-shard read (one shard at epoch `e`, another at `e+1`) would
//! break the bit-match just like a torn single-shard read.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rwd_core::algo::select_from_index;
use rwd_core::greedy::approx::GainRule;
use rwd_core::Strategy;
use rwd_datasets::temporal::{temporal_trace, TemporalTraceSpec, TraceModel};
use rwd_graph::{CsrGraph, NodeId};
use rwd_serve::{Query, QueryValue, ServeEngine, Server};
use rwd_stream::{EdgeBatch, StreamConfig};
use rwd_walks::{NodeSet, WalkIndex};

const N: usize = 120;
const L: u32 = 5;
const R: usize = 6;
const K: usize = 4;
const WALK_SEED: u64 = 0x5EED;
const RULE: GainRule = GainRule::HittingTime;

/// Everything a static rebuild of one epoch knows.
struct EpochRef {
    hit_times: Vec<f64>,
    hit_probs: Vec<f64>,
    seeds: Vec<NodeId>,
    objective: f64,
    coverage: f64,
    ranked: Vec<(NodeId, f64)>,
}

fn build_reference(g: &CsrGraph) -> EpochRef {
    let idx = WalkIndex::build(g, L, R, WALK_SEED);
    let sel = select_from_index(&idx, RULE, K, Strategy::Delta, 0).unwrap();
    let set = NodeSet::from_nodes(g.n(), sel.nodes.iter().copied());
    let hit_times = idx.estimate_hit_times(&set);
    let hit_probs = idx.estimate_hit_probs(&set);
    // Independent integer-exact coverage: per layer, |set ∪ hit sources|.
    let mut total = 0u64;
    for layer in 0..idx.r() {
        let mut covered = NodeSet::new(g.n());
        for &s in &sel.nodes {
            covered.insert(s);
            for &id in idx.postings(layer, s).ids() {
                covered.insert(NodeId(id));
            }
        }
        total += covered.len() as u64;
    }
    let coverage = total as f64 / idx.r() as f64;
    let mut ranked: Vec<(NodeId, f64)> = g.nodes().map(|v| (v, hit_probs[v.index()])).collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let objective: f64 = sel.gain_trace.iter().sum();
    EpochRef {
        hit_times,
        hit_probs,
        seeds: sel.nodes,
        objective,
        coverage,
        ranked,
    }
}

fn check(refs: &[EpochRef], epoch: u64, query: &Query, value: &QueryValue) {
    let re = &refs[epoch as usize];
    match (query, value) {
        (Query::HitTime(v), QueryValue::Scalar(x)) => {
            assert_eq!(
                x.to_bits(),
                re.hit_times[v.index()].to_bits(),
                "hit_time({v}) torn at epoch {epoch}"
            );
        }
        (Query::HitProb(v), QueryValue::Scalar(x)) => {
            assert_eq!(
                x.to_bits(),
                re.hit_probs[v.index()].to_bits(),
                "hit_prob({v}) torn at epoch {epoch}"
            );
        }
        (Query::Coverage, QueryValue::Scalar(x)) => {
            assert_eq!(
                x.to_bits(),
                re.coverage.to_bits(),
                "coverage torn at {epoch}"
            );
        }
        (Query::TopUncovered(m), QueryValue::Ranked(got)) => {
            let want = &re.ranked[..(*m).min(re.ranked.len())];
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.0, w.0, "ranking torn at epoch {epoch}");
                assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }
        (Query::Seeds, QueryValue::Seeds { seeds, objective }) => {
            assert_eq!(&seeds[..], &re.seeds[..], "seeds torn at epoch {epoch}");
            assert_eq!(
                objective.to_bits(),
                re.objective.to_bits(),
                "objective torn at epoch {epoch}"
            );
        }
        (q, v) => panic!("answer shape mismatch: {q:?} -> {v:?}"),
    }
}

fn query_mix(i: usize) -> Query {
    match i % 5 {
        0 => Query::HitTime(NodeId((i * 17 % N) as u32)),
        1 => Query::HitProb(NodeId((i * 31 % N) as u32)),
        2 => Query::Coverage,
        3 => Query::TopUncovered(1 + i % 7),
        _ => Query::Seeds,
    }
}

fn run_stress(shards: usize) {
    // A deterministic churn trace, valid-by-construction batch by batch.
    let spec = TemporalTraceSpec {
        model: TraceModel::ErdosRenyi { mean_degree: 8.0 },
        nodes: N,
        batches: 5,
        batch_edits: 8,
        delete_fraction: 0.5,
        seed: 42,
    };
    let trace = temporal_trace(&spec).unwrap();

    // Static references for every epoch (0 = cold start).
    let mut graphs = vec![trace.base.clone()];
    for batch in &trace.batches {
        let next = batch.apply(graphs.last().unwrap()).unwrap().graph;
        graphs.push(next);
    }
    let refs: Arc<Vec<EpochRef>> = Arc::new(graphs.iter().map(build_reference).collect());
    let total_epochs = trace.batches.len() as u64;

    let cfg = StreamConfig {
        l: L,
        r: R,
        k: K,
        seed: WALK_SEED,
        rule: RULE,
        threads: 0,
    };
    let engine = ServeEngine::with_shards(trace.base.clone(), cfg, shards).unwrap();
    let server = Server::start(engine, 3);
    let handle = server.handle();

    // A long-lived pin taken at epoch 0: it must keep answering from epoch
    // 0 no matter how much churn applies underneath.
    let pinned = handle.snapshot();
    assert_eq!(pinned.epoch(), 0);

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|rid: usize| {
            let handle = handle.clone();
            let refs = Arc::clone(&refs);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut issued = 0usize;
                let mut i = rid * 97;
                while !done.load(Ordering::Relaxed) || issued < 40 {
                    i += 1;
                    issued += 1;
                    let query = query_mix(i);
                    let answer = handle.query(query.clone()).unwrap().wait();
                    assert!(
                        answer.epoch <= total_epochs,
                        "epoch {} past the final batch",
                        answer.epoch
                    );
                    check(&refs, answer.epoch, &query, &answer.value);
                    if issued > 400 {
                        break; // safety valve; plenty of interleaving by now
                    }
                }
                issued
            })
        })
        .collect();

    // Writer: stream the batches through the server while readers hammer
    // it. Each outcome resolves only after its epoch is published.
    for (i, batch) in trace.batches.iter().enumerate() {
        let outcome = handle.apply(batch.clone()).unwrap().wait();
        let report = outcome.report.expect("trace batches are valid");
        assert_eq!(report.epoch, i as u64 + 1);
        // Interleaved no-op batch: must not advance the published epoch.
        let noop = handle.apply(EdgeBatch::new(999)).unwrap().wait();
        assert_eq!(noop.report.expect("no-op is valid").epoch, i as u64 + 1);
        std::thread::yield_now();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        let issued = r.join().expect("reader panicked");
        assert!(issued >= 40, "reader exited early ({issued} queries)");
    }

    // Queries submitted after the last publication observe the final epoch.
    let final_answer = handle.query(Query::Seeds).unwrap().wait();
    assert_eq!(final_answer.epoch, total_epochs);

    // The epoch-0 pin never moved: full bit-identity against the epoch-0
    // rebuild, after all the churn.
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(pinned.m(), graphs[0].m());
    for v in 0..N as u32 {
        let v = NodeId(v);
        assert_eq!(
            pinned.hit_time(v).to_bits(),
            refs[0].hit_times[v.index()].to_bits(),
            "pinned hit_time({v}) drifted"
        );
        assert_eq!(
            pinned.hit_prob(v).to_bits(),
            refs[0].hit_probs[v.index()].to_bits(),
            "pinned hit_prob({v}) drifted"
        );
    }
    assert_eq!(pinned.seeds(), &refs[0].seeds[..]);

    server.shutdown();
    // The final engine state equals the final static rebuild (reachable
    // through any still-held snapshot handle): every shard's maintained
    // index bit-matches a from-scratch build of its layer range.
    let last = handle.snapshot();
    assert_eq!(last.epoch(), total_epochs);
    assert_eq!(last.shard_count(), shards);
    for shard in last.shards() {
        let fresh = WalkIndex::build_layer_range(
            graphs.last().unwrap(),
            L,
            shard.layer_range(),
            WALK_SEED,
            0,
        );
        assert!(**shard == fresh, "served shard index drifted from rebuild");
    }
    if shards == 1 {
        let fresh = WalkIndex::build(graphs.last().unwrap(), L, R, WALK_SEED);
        assert!(*last.index() == fresh, "served index drifted from rebuild");
    }
}

#[test]
fn concurrent_readers_always_observe_one_coherent_epoch() {
    run_stress(1);
}

/// The same reader/writer race against a 4-shard coordinator (uneven
/// tiling of the 6 walk layers): scattered point queries gathered across
/// shards must bit-match the monolithic per-epoch rebuild throughout, and
/// no reader may ever observe a half-published epoch.
#[test]
fn concurrent_readers_race_the_sharded_coordinator() {
    run_stress(4);
}
