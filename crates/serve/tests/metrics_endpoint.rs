//! Metrics-endpoint acceptance test — the observability criterion.
//!
//! A server answers point queries from several client threads **while**
//! churn batches apply concurrently through the same server. Afterwards a
//! single `Query::Metrics` must return a parseable Prometheus-text
//! snapshot whose per-endpoint histogram counts equal the number of
//! requests actually served on each endpoint — no sample lost to the
//! concurrency, no sample invented.

use rwd_core::greedy::approx::GainRule;
use rwd_graph::{generators::erdos_renyi_gnp, NodeId};
use rwd_obs::text;
use rwd_serve::{Query, QueryValue, ServeEngine, Server};
use rwd_stream::{EdgeBatch, StreamConfig};

const N: usize = 80;
const CLIENTS: usize = 4;
const PER_CLIENT: u64 = 25;
const BATCHES: u64 = 12;

/// Count recorded in the exposition for one endpoint's service histogram.
fn served(samples: &[text::Sample], endpoint: &str) -> u64 {
    let snap = text::histogram_snapshot(samples, "rwd_serve_service_ns", &[("endpoint", endpoint)])
        .unwrap_or_else(|| panic!("no service histogram for endpoint {endpoint}"));
    snap.count()
}

#[test]
fn metrics_under_concurrent_churn_count_every_request() {
    let g = erdos_renyi_gnp(N, 0.08, 0xC0FFEE).unwrap();
    let missing: Vec<(u32, u32)> = (0..N as u32)
        .flat_map(|u| ((u + 1)..N as u32).map(move |v| (u, v)))
        .filter(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
        .take(BATCHES as usize)
        .collect();
    assert_eq!(missing.len() as u64, BATCHES);
    let engine = ServeEngine::new(
        g,
        StreamConfig {
            l: 4,
            r: 5,
            k: 3,
            seed: 11,
            rule: GainRule::HittingTime,
            threads: 1,
        },
    )
    .unwrap();
    let server = Server::start(engine, CLIENTS);
    let handle = server.handle();

    // Churn applies concurrently with the query clients below.
    let churn = {
        let h = handle.clone();
        std::thread::spawn(move || {
            for (t, (u, v)) in missing.into_iter().enumerate() {
                let mut batch = EdgeBatch::new(t as u64 + 1);
                batch.insertions.push((u, v, 1.0));
                let outcome = h.apply(batch).unwrap().wait();
                outcome.report.expect("valid churn batch");
            }
        })
    };
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let h = handle.clone();
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let v = NodeId(((c as u64 * PER_CLIENT + i) % N as u64) as u32);
                    let q = match i % 5 {
                        0 => Query::HitTime(v),
                        1 => Query::HitProb(v),
                        2 => Query::Coverage,
                        3 => Query::TopUncovered(4),
                        _ => Query::Seeds,
                    };
                    let ans = h.query(q).unwrap().wait();
                    // Satellite: queue wait and service time are split out
                    // and bounded by the end-to-end latency.
                    assert!(ans.queue <= ans.latency);
                    assert!(ans.service <= ans.latency);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    churn.join().expect("churn thread");

    let ans = handle.query(Query::Metrics).unwrap().wait();
    let rendered = match ans.value {
        QueryValue::Metrics(text) => text,
        other => panic!("expected metrics answer, got {other:?}"),
    };
    let samples = text::parse(&rendered).expect("parseable Prometheus exposition");

    // Per-endpoint totals equal the requests actually served. Each of the
    // five point endpoints got PER_CLIENT/5 queries from each client; the
    // writer served every churn batch; the metrics endpoint has served
    // zero requests at the instant its own answer was rendered.
    let per_endpoint = CLIENTS as u64 * PER_CLIENT / 5;
    for endpoint in ["hit_time", "hit_prob", "coverage", "top", "seeds"] {
        assert_eq!(served(&samples, endpoint), per_endpoint, "{endpoint}");
    }
    assert_eq!(served(&samples, "batch"), BATCHES);
    assert_eq!(served(&samples, "metrics"), 0);
    // Queue histograms carry the same totals as service histograms.
    for endpoint in ["hit_time", "batch"] {
        let q = text::histogram_snapshot(&samples, "rwd_serve_queue_ns", &[("endpoint", endpoint)])
            .unwrap();
        assert_eq!(q.count(), served(&samples, endpoint), "{endpoint}");
    }
    // Scheduling gauges: queues drained; the published epoch advanced to
    // the last churn batch; only the in-flight metrics request may still
    // pin a snapshot.
    let gauge = |name: &str, label: Option<(&str, &str)>| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
            .unwrap_or_else(|| panic!("missing {name}"))
            .value
    };
    assert_eq!(
        gauge("rwd_serve_queue_depth", Some(("queue", "query"))),
        0.0
    );
    assert_eq!(
        gauge("rwd_serve_queue_depth", Some(("queue", "apply"))),
        0.0
    );
    assert_eq!(gauge("rwd_serve_published_epoch", None), BATCHES as f64);
    assert!(gauge("rwd_serve_pinned_snapshots", None) >= 1.0);

    // The same snapshot also carries the process-wide engine metrics.
    assert!(rendered.contains("rwd_stream_batches_total"));

    server.shutdown();
}
