//! The serving writer: applies churn and publishes epoch snapshots.

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::CsrGraph;
use rwd_stream::{BatchReport, EdgeBatch, StreamConfig, StreamEngine};

use crate::snapshot::Snapshot;
use crate::Result;

/// A [`StreamEngine`] with snapshot publication.
///
/// The contract readers rely on:
///
/// 1. [`ServeEngine::snapshot`] hands out the **currently published**
///    epoch; the handle stays coherent forever (pinning semantics — see
///    [`Snapshot`]).
/// 2. [`ServeEngine::apply`] runs the full batch pipeline (graph edit →
///    incremental index refresh → seed repair) and only *then* publishes
///    the next epoch. A failed batch publishes nothing. An empty batch is
///    the documented engine no-op: same epoch, same snapshot.
/// 3. Writers never mutate state a published snapshot can observe: the
///    graph epoch is swapped functionally and the index copy-on-writes
///    beneath outstanding pins. With **no** outstanding snapshot (direct
///    `ServeEngine` use between pins) the refresh mutates in place;
///    under a [`crate::Server`], the published snapshot itself is a
///    standing pin, so each batch first clones the index (one bulk
///    memcpy, cheap next to the re-walk work and far below a rebuild)
///    before the output-sensitive refresh patches it. Pushing the COW
///    boundary down to per-layer granularity — so a standing pin only
///    copies touched layers — is the noted ROADMAP follow-up.
#[derive(Debug)]
pub struct ServeEngine {
    stream: StreamEngine,
    /// The published epoch. Re-captured after every effective batch; kept
    /// outside `stream` so `snapshot()` is an O(1) clone, not a rebuild.
    /// `None` only transiently inside [`ServeEngine::apply`], where the
    /// engine's own handle must not count as a pin.
    current: Option<Snapshot>,
}

impl ServeEngine {
    /// Cold-starts serving over an unweighted graph and publishes epoch 0.
    pub fn new(graph: CsrGraph, cfg: StreamConfig) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::new(graph, cfg)?))
    }

    /// Cold-starts serving over a weighted graph and publishes epoch 0.
    pub fn new_weighted(graph: WeightedCsrGraph, cfg: StreamConfig) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::new_weighted(graph, cfg)?))
    }

    /// Cold-starts serving over a sharded engine (`shards` per-shard
    /// engines behind the scatter-gather coordinator) and publishes
    /// epoch 0. Published snapshots gather point queries across the
    /// shards; every answer is bit-identical to the single-shard engine.
    /// The epoch advances — and the next snapshot is published — only
    /// after **every** shard has landed the batch (the coordinator's
    /// all-or-nothing commit).
    pub fn with_shards(graph: CsrGraph, cfg: StreamConfig, shards: usize) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::with_shards(
            graph, cfg, shards,
        )?))
    }

    /// Weighted twin of [`ServeEngine::with_shards`].
    pub fn with_shards_weighted(
        graph: WeightedCsrGraph,
        cfg: StreamConfig,
        shards: usize,
    ) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::with_shards_weighted(
            graph, cfg, shards,
        )?))
    }

    /// Wraps an already-running evolving engine (publishes its current
    /// state as-is).
    pub fn from_stream(stream: StreamEngine) -> Self {
        let current = Some(Snapshot::capture(&stream));
        ServeEngine { stream, current }
    }

    /// The currently published snapshot (O(1) clone; holding it pins the
    /// epoch).
    pub fn snapshot(&self) -> Snapshot {
        self.current
            .clone()
            .expect("a snapshot is always published")
    }

    /// Applies one churn batch and publishes the next epoch. Readers keep
    /// answering from their pinned snapshots throughout; the new epoch
    /// becomes visible only to snapshots taken after this returns.
    pub fn apply(&mut self, batch: &EdgeBatch) -> Result<BatchReport> {
        // Drop the engine's own handle first: with no other pin
        // outstanding the refresh then mutates the index in place; with
        // one outstanding (any reader, or the snapshot a `Server` keeps
        // published), `Arc::make_mut` inside the stream layer clones
        // before touching anything the pin can observe. Either way a new
        // snapshot is published afterwards — on error the engine state is
        // unchanged, so republishing it is correct.
        self.current = None;
        let result = self.stream.apply(batch);
        self.current = Some(Snapshot::capture(&self.stream));
        result.map_err(Into::into)
    }

    /// The wrapped evolving engine (read access).
    pub fn stream(&self) -> &StreamEngine {
        &self.stream
    }

    /// The engine configuration.
    pub fn config(&self) -> &StreamConfig {
        self.stream.config()
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.stream.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::greedy::approx::GainRule;
    use rwd_graph::generators::erdos_renyi_gnp;
    use rwd_graph::NodeId;

    fn cfg() -> StreamConfig {
        StreamConfig {
            l: 4,
            r: 5,
            k: 3,
            seed: 11,
            rule: GainRule::Coverage,
            threads: 0,
        }
    }

    fn absent_edge(g: &CsrGraph) -> (u32, u32) {
        let n = g.n() as u32;
        (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
            .expect("graph is not complete")
    }

    #[test]
    fn apply_publishes_after_the_batch_lands() {
        let g0 = erdos_renyi_gnp(60, 0.08, 21).unwrap();
        let mut serve = ServeEngine::new(g0.clone(), cfg()).unwrap();
        let pinned = serve.snapshot();
        assert_eq!(pinned.epoch(), 0);

        let (u, v) = absent_edge(&g0);
        let mut batch = EdgeBatch::new(5);
        batch.insertions.push((u, v, 1.0));
        let report = serve.apply(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(serve.epoch(), 1);
        assert_eq!(serve.snapshot().epoch(), 1);
        // The pre-batch pin still observes epoch 0 in full.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.m(), g0.m());

        // A failed batch publishes nothing and changes nothing.
        let mut bad = EdgeBatch::new(6);
        bad.deletions.push((0, 0));
        assert!(serve.apply(&bad).is_err());
        assert_eq!(serve.epoch(), 1);
        assert_eq!(serve.snapshot().epoch(), 1);

        // An empty batch keeps the same published epoch (engine no-op).
        let report = serve.apply(&EdgeBatch::new(7)).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(serve.snapshot().epoch(), 1);
    }

    #[test]
    fn snapshots_match_static_selection_each_epoch() {
        use rwd_core::algo::select_from_index;
        use rwd_core::Strategy;

        let g0 = erdos_renyi_gnp(50, 0.1, 9).unwrap();
        let mut serve = ServeEngine::new(g0.clone(), cfg()).unwrap();
        let mut g = g0;
        for t in 0..3u64 {
            let (u, v) = absent_edge(&g);
            let mut batch = EdgeBatch::new(t);
            batch.insertions.push((u, v, 1.0));
            serve.apply(&batch).unwrap();
            g = serve.stream().graph().unwrap().clone();
            let snap = serve.snapshot();
            let sel =
                select_from_index(snap.index(), GainRule::Coverage, 3, Strategy::Delta, 0).unwrap();
            assert_eq!(snap.seeds(), &sel.nodes[..], "epoch {}", snap.epoch());
            let sum: f64 = sel.gain_trace.iter().sum();
            assert_eq!(snap.objective().to_bits(), sum.to_bits());
        }
    }
}
