//! The serving writer: applies churn and publishes epoch snapshots.

use std::path::Path;

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::CsrGraph;
use rwd_stream::{
    BatchReport, DurabilityConfig, DurableEngine, EdgeBatch, OpenMode, RecoveryReport,
    StreamConfig, StreamEngine,
};

use crate::snapshot::Snapshot;
use crate::Result;

/// A [`StreamEngine`] with snapshot publication.
///
/// The contract readers rely on:
///
/// 1. [`ServeEngine::snapshot`] hands out the **currently published**
///    epoch; the handle stays coherent forever (pinning semantics — see
///    [`Snapshot`]).
/// 2. [`ServeEngine::apply`] runs the full batch pipeline (graph edit →
///    incremental index refresh → seed repair) and only *then* publishes
///    the next epoch. A failed batch publishes nothing. An empty batch is
///    the documented engine no-op: same epoch, same snapshot.
/// 3. Writers never mutate state a published snapshot can observe: the
///    graph epoch is swapped functionally and the index copy-on-writes
///    beneath outstanding pins. With **no** outstanding snapshot (direct
///    `ServeEngine` use between pins) the refresh mutates in place;
///    under a [`crate::Server`], the published snapshot itself is a
///    standing pin, so each batch first clones the index (one bulk
///    memcpy, cheap next to the re-walk work and far below a rebuild)
///    before the output-sensitive refresh patches it. Pushing the COW
///    boundary down to per-layer granularity — so a standing pin only
///    copies touched layers — is the noted ROADMAP follow-up.
#[derive(Debug)]
pub struct ServeEngine {
    backend: Backend,
    /// The published epoch. Re-captured after every effective batch; kept
    /// outside the backend so `snapshot()` is an O(1) clone, not a rebuild.
    /// `None` only transiently inside [`ServeEngine::apply`], where the
    /// engine's own handle must not count as a pin.
    current: Option<Snapshot>,
}

/// What the writer actually drives: a bare in-memory engine, or one wrapped
/// in a durability data directory (write-ahead journal + snapshots). The
/// serving contract is identical either way — a durable batch just fsyncs
/// its journal record before any shard commits.
#[derive(Debug)]
enum Backend {
    Plain(Box<StreamEngine>),
    Durable(Box<DurableEngine>),
}

impl Backend {
    fn stream(&self) -> &StreamEngine {
        match self {
            Backend::Plain(s) => s,
            Backend::Durable(d) => d.engine(),
        }
    }
}

impl ServeEngine {
    /// Cold-starts serving over an unweighted graph and publishes epoch 0.
    pub fn new(graph: CsrGraph, cfg: StreamConfig) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::new(graph, cfg)?))
    }

    /// Cold-starts serving over a weighted graph and publishes epoch 0.
    pub fn new_weighted(graph: WeightedCsrGraph, cfg: StreamConfig) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::new_weighted(graph, cfg)?))
    }

    /// Cold-starts serving over a sharded engine (`shards` per-shard
    /// engines behind the scatter-gather coordinator) and publishes
    /// epoch 0. Published snapshots gather point queries across the
    /// shards; every answer is bit-identical to the single-shard engine.
    /// The epoch advances — and the next snapshot is published — only
    /// after **every** shard has landed the batch (the coordinator's
    /// all-or-nothing commit).
    pub fn with_shards(graph: CsrGraph, cfg: StreamConfig, shards: usize) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::with_shards(
            graph, cfg, shards,
        )?))
    }

    /// Weighted twin of [`ServeEngine::with_shards`].
    pub fn with_shards_weighted(
        graph: WeightedCsrGraph,
        cfg: StreamConfig,
        shards: usize,
    ) -> Result<Self> {
        Ok(Self::from_stream(StreamEngine::with_shards_weighted(
            graph, cfg, shards,
        )?))
    }

    /// Wraps an already-running evolving engine (publishes its current
    /// state as-is).
    pub fn from_stream(stream: StreamEngine) -> Self {
        let current = Some(Snapshot::capture(&stream));
        ServeEngine {
            backend: Backend::Plain(Box::new(stream)),
            current,
        }
    }

    /// Wraps a durable engine (publishes its current state as-is). Every
    /// subsequent [`ServeEngine::apply`] journals the batch — fsync'd —
    /// before any shard commits, and snapshots at the durable engine's
    /// configured cadence.
    pub fn from_durable(durable: DurableEngine) -> Self {
        let current = Some(Snapshot::capture(durable.engine()));
        ServeEngine {
            backend: Backend::Durable(Box::new(durable)),
            current,
        }
    }

    /// Attaches a fresh data directory to `stream` and serves durably from
    /// it: the engine's current state becomes the base snapshot and a new
    /// journal opens at its epoch.
    pub fn create_durable(
        stream: StreamEngine,
        dir: impl AsRef<Path>,
        dcfg: DurabilityConfig,
    ) -> Result<Self> {
        Ok(Self::from_durable(DurableEngine::create(
            stream, dir, dcfg,
        )?))
    }

    /// Recovers the engine from a durability data directory (latest valid
    /// snapshot + journal replay, torn tail truncated) and serves from the
    /// recovered state — bit-identical to the engine that wrote the
    /// surviving prefix. Returns the recovery report alongside.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        dcfg: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let (durable, report) = DurableEngine::open(dir, dcfg)?;
        Ok((Self::from_durable(durable), report))
    }

    /// [`ServeEngine::open_durable`] with an explicit shard-index
    /// [`OpenMode`]: [`OpenMode::Mapped`] serves point queries straight
    /// from `mmap`'d RWDIDX4 snapshot columns (published snapshots pin
    /// the mapping alongside the epoch — unchanged pinning semantics),
    /// [`OpenMode::Deserialize`] parses everything onto the heap first.
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        dcfg: DurabilityConfig,
        mode: OpenMode,
    ) -> Result<(Self, RecoveryReport)> {
        let (durable, report) = DurableEngine::open_with(dir, dcfg, mode)?;
        Ok((Self::from_durable(durable), report))
    }

    /// The currently published snapshot (O(1) clone; holding it pins the
    /// epoch).
    pub fn snapshot(&self) -> Snapshot {
        self.current
            .clone()
            .expect("a snapshot is always published")
    }

    /// Applies one churn batch and publishes the next epoch. Readers keep
    /// answering from their pinned snapshots throughout; the new epoch
    /// becomes visible only to snapshots taken after this returns.
    pub fn apply(&mut self, batch: &EdgeBatch) -> Result<BatchReport> {
        // Drop the engine's own handle first: with no other pin
        // outstanding the refresh then mutates the index in place; with
        // one outstanding (any reader, or the snapshot a `Server` keeps
        // published), `Arc::make_mut` inside the stream layer clones
        // before touching anything the pin can observe. Either way a new
        // snapshot is published afterwards — on error the engine state is
        // unchanged, so republishing it is correct.
        self.current = None;
        let result = match &mut self.backend {
            Backend::Plain(s) => s.apply(batch),
            Backend::Durable(d) => d.apply(batch),
        };
        self.current = Some(Snapshot::capture(self.backend.stream()));
        result.map_err(Into::into)
    }

    /// The wrapped evolving engine (read access).
    pub fn stream(&self) -> &StreamEngine {
        self.backend.stream()
    }

    /// The wrapped durable engine, when serving from a data directory.
    pub fn durable(&self) -> Option<&DurableEngine> {
        match &self.backend {
            Backend::Plain(_) => None,
            Backend::Durable(d) => Some(d),
        }
    }

    /// Forces a snapshot + journal compaction now (durable backend only;
    /// a no-op `Ok(epoch)` otherwise is deliberately *not* offered — the
    /// caller should know whether it is serving durably).
    pub fn snapshot_to_disk(&mut self) -> Result<u64> {
        match &mut self.backend {
            Backend::Plain(_) => Err(rwd_stream::StreamError::InvalidConfig(
                "snapshot_to_disk requires a durable backend (no data dir attached)".into(),
            )
            .into()),
            Backend::Durable(d) => d.snapshot_now().map_err(Into::into),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &StreamConfig {
        self.backend.stream().config()
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.backend.stream().epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::greedy::approx::GainRule;
    use rwd_graph::generators::erdos_renyi_gnp;
    use rwd_graph::NodeId;

    fn cfg() -> StreamConfig {
        StreamConfig {
            l: 4,
            r: 5,
            k: 3,
            seed: 11,
            rule: GainRule::Coverage,
            threads: 0,
        }
    }

    fn absent_edge(g: &CsrGraph) -> (u32, u32) {
        let n = g.n() as u32;
        (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
            .expect("graph is not complete")
    }

    #[test]
    fn apply_publishes_after_the_batch_lands() {
        let g0 = erdos_renyi_gnp(60, 0.08, 21).unwrap();
        let mut serve = ServeEngine::new(g0.clone(), cfg()).unwrap();
        let pinned = serve.snapshot();
        assert_eq!(pinned.epoch(), 0);

        let (u, v) = absent_edge(&g0);
        let mut batch = EdgeBatch::new(5);
        batch.insertions.push((u, v, 1.0));
        let report = serve.apply(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(serve.epoch(), 1);
        assert_eq!(serve.snapshot().epoch(), 1);
        // The pre-batch pin still observes epoch 0 in full.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.m(), g0.m());

        // A failed batch publishes nothing and changes nothing.
        let mut bad = EdgeBatch::new(6);
        bad.deletions.push((0, 0));
        assert!(serve.apply(&bad).is_err());
        assert_eq!(serve.epoch(), 1);
        assert_eq!(serve.snapshot().epoch(), 1);

        // An empty batch keeps the same published epoch (engine no-op).
        let report = serve.apply(&EdgeBatch::new(7)).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(serve.snapshot().epoch(), 1);
    }

    #[test]
    fn durable_backend_round_trips_through_recovery() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rwd-serve-durable-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));

        let g0 = erdos_renyi_gnp(50, 0.1, 33).unwrap();
        let stream = rwd_stream::StreamEngine::new(g0.clone(), cfg()).unwrap();
        let mut durable = ServeEngine::create_durable(
            stream,
            &dir,
            rwd_stream::DurabilityConfig { snapshot_every: 2 },
        )
        .unwrap();
        assert!(durable.durable().is_some());
        let mut plain = ServeEngine::new(g0, cfg()).unwrap();
        assert!(plain.durable().is_none());
        assert!(plain.snapshot_to_disk().is_err());

        // Drive both engines through the same churn; the durable one
        // additionally journals (and snapshots at cadence 2).
        for t in 0..3u64 {
            let (u, v) = absent_edge(durable.stream().graph().unwrap());
            let mut batch = EdgeBatch::new(t);
            batch.insertions.push((u, v, 1.0));
            let a = durable.apply(&batch).unwrap();
            let b = plain.apply(&batch).unwrap();
            assert_eq!(a.epoch, b.epoch);
        }

        // Recover into a fresh serving engine: published snapshot must be
        // bit-identical to the live one it shadows.
        let live = durable.snapshot();
        drop(durable);
        let (recovered, report) =
            ServeEngine::open_durable(&dir, rwd_stream::DurabilityConfig { snapshot_every: 2 })
                .unwrap();
        assert_eq!(report.recovered_epoch, 3);
        let snap = recovered.snapshot();
        assert_eq!(snap.epoch(), live.epoch());
        assert_eq!(snap.seeds(), live.seeds());
        assert_eq!(snap.objective().to_bits(), live.objective().to_bits());
        for v in 0..50u32 {
            assert_eq!(
                snap.hit_time(NodeId(v)).to_bits(),
                live.hit_time(NodeId(v)).to_bits(),
                "hit_time diverged at node {v}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshots_match_static_selection_each_epoch() {
        use rwd_core::algo::select_from_index;
        use rwd_core::Strategy;

        let g0 = erdos_renyi_gnp(50, 0.1, 9).unwrap();
        let mut serve = ServeEngine::new(g0.clone(), cfg()).unwrap();
        let mut g = g0;
        for t in 0..3u64 {
            let (u, v) = absent_edge(&g);
            let mut batch = EdgeBatch::new(t);
            batch.insertions.push((u, v, 1.0));
            serve.apply(&batch).unwrap();
            g = serve.stream().graph().unwrap().clone();
            let snap = serve.snapshot();
            let sel =
                select_from_index(snap.index(), GainRule::Coverage, 3, Strategy::Delta, 0).unwrap();
            assert_eq!(snap.seeds(), &sel.nodes[..], "epoch {}", snap.epoch());
            let sum: f64 = sel.gain_trace.iter().sum();
            assert_eq!(snap.objective().to_bits(), sum.to_bits());
        }
    }
}
