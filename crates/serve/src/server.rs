//! The thread-pooled request loop: `mpsc` batch/query multiplexing over a
//! published snapshot, std-only (no external runtime).
//!
//! Shape: queries fan out over a pool of worker threads, each answering
//! against the snapshot published at the moment it picks the job up —
//! every answer is coherent (one epoch) because the worker pins exactly
//! one snapshot per request. Churn batches funnel through a single writer
//! thread that owns the [`ServeEngine`]; it publishes the next epoch only
//! after a batch fully lands, so queries racing a batch see epoch `e` or
//! `e + 1`, never a mix.
//!
//! Submission is async-shaped without a runtime: [`ServerHandle::query`]
//! and [`ServerHandle::apply`] return immediately with a [`Ticket`] — a
//! one-shot handle the caller can `poll` (non-blocking) or `wait` on.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use rwd_graph::NodeId;
use rwd_stream::{BatchReport, EdgeBatch};

use crate::engine::ServeEngine;
use crate::metrics::{ServerMetrics, BATCH_ENDPOINT};
use crate::snapshot::Snapshot;
use crate::{Result, ServeError};

/// A point query against the published snapshot.
#[derive(Clone, Debug)]
pub enum Query {
    /// Estimated `L`-truncated hitting time of a node into the seed set.
    HitTime(NodeId),
    /// Estimated probability that a node's walk reaches the seed set.
    HitProb(NodeId),
    /// Expected number of nodes the seed set dominates (`F̂2`).
    Coverage,
    /// The `m` least-covered nodes with their hit probabilities.
    TopUncovered(usize),
    /// The maintained seed set and its objective.
    Seeds,
    /// A point-in-time metrics snapshot in the Prometheus text exposition
    /// format: this server's per-endpoint request metrics followed by the
    /// process-wide engine metrics. Answered from atomic reads only — the
    /// writer thread is never involved.
    Metrics,
}

/// The payload of a [`QueryAnswer`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryValue {
    /// A scalar estimate (hit time, hit probability, coverage).
    Scalar(f64),
    /// A ranked node list (least-covered first).
    Ranked(Vec<(NodeId, f64)>),
    /// The seed set in selection order plus its objective.
    Seeds {
        /// Maintained seeds, selection order.
        seeds: Vec<NodeId>,
        /// Gain-trace-sum objective of the maintained set.
        objective: f64,
    },
    /// A rendered metrics snapshot (Prometheus text exposition format).
    Metrics(String),
    /// The query was invalid against the answering snapshot (e.g. a node
    /// id outside the universe). The request still resolves — an invalid
    /// query must never take down a pool worker or strand its ticket.
    Invalid(String),
}

/// One answered query, stamped with its epoch provenance.
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    /// Epoch of the snapshot that answered the query.
    pub epoch: u64,
    /// Submission-to-answer latency (`queue` + `service`, measured
    /// end-to-end).
    pub latency: Duration,
    /// Time the request sat in the queue before a worker dequeued it.
    pub queue: Duration,
    /// Time the worker spent answering (dequeue to answer).
    pub service: Duration,
    /// The answer payload.
    pub value: QueryValue,
}

/// One applied batch, as seen by the serving layer.
#[derive(Clone, Debug)]
pub struct ApplyOutcome {
    /// The engine's churn report (`report.epoch` is the published epoch).
    pub report: std::result::Result<BatchReport, String>,
    /// Submission-to-publication latency (`queue` + `service`, measured
    /// end-to-end).
    pub latency: Duration,
    /// Time the batch sat in the queue before the writer dequeued it.
    pub queue: Duration,
    /// Time the writer spent applying and publishing (dequeue to
    /// publication).
    pub service: Duration,
}

/// A one-shot result handle: async-shaped without a runtime.
///
/// Cloning is cheap and every clone resolves: the fulfilled value stays in
/// the cell (reads clone it out), so two threads waiting on clones of the
/// same ticket both observe the answer — neither can strand the other.
#[derive(Debug)]
pub struct Ticket<T> {
    cell: Arc<(Mutex<Option<T>>, Condvar)>,
}

impl<T> Clone for Ticket<T> {
    fn clone(&self) -> Self {
        Ticket {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T: Clone> Ticket<T> {
    fn new() -> Self {
        Ticket {
            cell: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    fn fulfill(&self, value: T) {
        let (lock, cv) = &*self.cell;
        *lock.lock().expect("ticket lock poisoned") = Some(value);
        cv.notify_all();
    }

    /// Non-blocking poll: clones the value out if it has arrived (the
    /// cell keeps it, so later polls — and other clones — see it too).
    pub fn poll(&self) -> Option<T> {
        self.cell.0.lock().expect("ticket lock poisoned").clone()
    }

    /// Blocks until the value arrives.
    pub fn wait(self) -> T {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().expect("ticket lock poisoned");
        loop {
            if let Some(v) = slot.as_ref() {
                return v.clone();
            }
            slot = cv.wait(slot).expect("ticket lock poisoned");
        }
    }
}

struct QueryJob {
    query: Query,
    submitted: Instant,
    ticket: Ticket<QueryAnswer>,
}

struct ApplyJob {
    batch: EdgeBatch,
    submitted: Instant,
    ticket: Ticket<ApplyOutcome>,
}

struct Shared {
    current: RwLock<Snapshot>,
    metrics: ServerMetrics,
}

impl Shared {
    fn pin(&self) -> Snapshot {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    fn publish(&self, snap: Snapshot) {
        *self.current.write().expect("snapshot lock poisoned") = snap;
    }
}

fn answer(snap: &Snapshot, query: &Query, metrics: &ServerMetrics) -> QueryValue {
    // Validate node ids against the answering snapshot's universe here,
    // where the error can resolve the ticket: a panic inside a pool worker
    // would kill the worker and strand the submitter's `wait` forever.
    let check = |v: NodeId| -> Option<QueryValue> {
        if v.index() >= snap.n() {
            Some(QueryValue::Invalid(format!(
                "node {v} outside the universe {}",
                snap.n()
            )))
        } else {
            None
        }
    };
    match *query {
        Query::HitTime(v) => check(v).unwrap_or_else(|| QueryValue::Scalar(snap.hit_time(v))),
        Query::HitProb(v) => check(v).unwrap_or_else(|| QueryValue::Scalar(snap.hit_prob(v))),
        Query::Coverage => QueryValue::Scalar(snap.coverage()),
        Query::TopUncovered(m) => QueryValue::Ranked(snap.top_m_uncovered(m)),
        Query::Seeds => QueryValue::Seeds {
            seeds: snap.seeds().to_vec(),
            objective: snap.objective(),
        },
        // Rendered here, before this request's own record() — the snapshot
        // reflects every request answered strictly before it.
        Query::Metrics => QueryValue::Metrics(metrics.render()),
    }
}

/// The live submission side of a server: dropped (as a whole) on shutdown,
/// which closes both channels once in-flight sends finish.
struct Submitters {
    query_tx: Sender<QueryJob>,
    apply_tx: Sender<ApplyJob>,
}

/// A running serving instance: one writer thread (owns the engine), a pool
/// of query workers, and a published-snapshot slot they multiplex over.
///
/// Shutdown contract: [`Server::shutdown`] revokes the submitters (later
/// submissions — from *any* cloned handle — fail with
/// [`ServeError::Closed`]), lets the threads drain every request already
/// accepted, and joins them. A ticket obtained from a successful
/// submission therefore always resolves.
pub struct Server {
    handle: ServerHandle,
    workers: Vec<std::thread::JoinHandle<()>>,
    writer: Option<std::thread::JoinHandle<()>>,
}

/// A cloneable submission handle onto a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    subs: Arc<RwLock<Option<Submitters>>>,
}

impl ServerHandle {
    /// Submits a point query; returns immediately with a [`Ticket`].
    pub fn query(&self, query: Query) -> Result<Ticket<QueryAnswer>> {
        let ticket = Ticket::new();
        let job = QueryJob {
            query,
            submitted: Instant::now(),
            ticket: ticket.clone(),
        };
        let subs = self.subs.read().expect("submitter lock poisoned");
        match subs.as_ref() {
            Some(s) => {
                self.shared.metrics.query_depth.inc();
                s.query_tx.send(job).map_err(|_| {
                    self.shared.metrics.query_depth.dec();
                    ServeError::Closed
                })?;
            }
            None => return Err(ServeError::Closed),
        }
        Ok(ticket)
    }

    /// Submits a churn batch; returns immediately with a [`Ticket`]. The
    /// outcome resolves once the next epoch is published (or the batch is
    /// rejected).
    pub fn apply(&self, batch: EdgeBatch) -> Result<Ticket<ApplyOutcome>> {
        let ticket = Ticket::new();
        let job = ApplyJob {
            batch,
            submitted: Instant::now(),
            ticket: ticket.clone(),
        };
        let subs = self.subs.read().expect("submitter lock poisoned");
        match subs.as_ref() {
            Some(s) => {
                self.shared.metrics.apply_depth.inc();
                s.apply_tx.send(job).map_err(|_| {
                    self.shared.metrics.apply_depth.dec();
                    ServeError::Closed
                })?;
            }
            None => return Err(ServeError::Closed),
        }
        Ok(ticket)
    }

    /// Pins the currently published snapshot directly (bypasses the queue
    /// — for callers that want to run many point queries against one
    /// coherent epoch themselves).
    pub fn snapshot(&self) -> Snapshot {
        self.shared.pin()
    }
}

/// Test-only writer-fault injector: runs just before each batch is applied
/// and may panic to simulate an engine crash mid-batch.
type FaultHook = Box<dyn FnMut(&EdgeBatch) + Send>;

impl Server {
    /// Starts the request loop over `engine` with `query_workers` pool
    /// threads (clamped to ≥ 1) plus one writer thread.
    pub fn start(engine: ServeEngine, query_workers: usize) -> Server {
        Self::start_inner(engine, query_workers, None)
    }

    /// Test-only entry point that threads a fault injector into the writer
    /// loop: `fault` runs just before each batch is applied and may panic,
    /// simulating an engine panic mid-batch. Exists so the poisoned-writer
    /// contract (tickets resolve, queries survive, shutdown joins) is
    /// testable without contriving a genuine engine panic.
    #[doc(hidden)]
    pub fn start_with_fault(engine: ServeEngine, query_workers: usize, fault: FaultHook) -> Server {
        Self::start_inner(engine, query_workers, Some(fault))
    }

    fn start_inner(engine: ServeEngine, query_workers: usize, fault: Option<FaultHook>) -> Server {
        let metrics = ServerMetrics::new();
        let initial = engine.snapshot();
        metrics.published_epoch.set(initial.epoch() as i64);
        let shared = Arc::new(Shared {
            current: RwLock::new(initial),
            metrics,
        });
        let (query_tx, query_rx) = channel::<QueryJob>();
        let (apply_tx, apply_rx) = channel::<ApplyJob>();
        let query_rx = Arc::new(Mutex::new(query_rx));

        let workers: Vec<_> = (0..query_workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&query_rx);
                std::thread::spawn(move || query_worker(&shared, &rx))
            })
            .collect();
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || write_loop(engine, &shared, &apply_rx, fault))
        };

        Server {
            handle: ServerHandle {
                shared,
                subs: Arc::new(RwLock::new(Some(Submitters { query_tx, apply_tx }))),
            },
            workers,
            writer: Some(writer),
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Revokes submission, drains every accepted request and joins all
    /// threads. Cloned handles outlive the server but report
    /// [`ServeError::Closed`] afterwards.
    pub fn shutdown(self) {
        let Server {
            handle,
            workers,
            writer,
        } = self;
        // Closing the channels (threads exit after draining) — cloned
        // handles only hold the revocation slot, never a sender, so this
        // is the last reference to both senders.
        *handle.subs.write().expect("submitter lock poisoned") = None;
        // Joins swallow a panicked thread instead of re-panicking: shutdown
        // must complete (and drop the remaining threads' channels) even if
        // a worker or the writer died — the failure already surfaced to
        // clients through their resolved tickets.
        for w in workers {
            let _ = w.join();
        }
        if let Some(w) = writer {
            let _ = w.join();
        }
    }
}

fn query_worker(shared: &Shared, rx: &Mutex<Receiver<QueryJob>>) {
    let metrics = &shared.metrics;
    loop {
        // Hold the receiver lock only for the dequeue, not the answer.
        let job = match rx.lock().expect("query queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: shutdown
        };
        let dequeued = Instant::now();
        metrics.query_depth.dec();
        let queue = dequeued.duration_since(job.submitted);
        // Pin exactly one snapshot for the whole request — the coherence
        // contract (index, seeds, objective all from one epoch).
        metrics.pinned_snapshots.inc();
        let snap = shared.pin();
        let lag = metrics.published_epoch.get() - snap.epoch() as i64;
        if lag > 0 {
            metrics.epoch_lag.add(lag as u64);
        }
        let value = answer(&snap, &job.query, metrics);
        // One end timestamp serves both durations, so latency is exactly
        // queue + service and the split costs no extra clock read.
        let end = Instant::now();
        let service = end.duration_since(dequeued);
        // Record before fulfilling: a waiter released by the fulfill must
        // find its own request already counted in the next snapshot.
        metrics.record(ServerMetrics::endpoint(&job.query), queue, service);
        job.ticket.fulfill(QueryAnswer {
            epoch: snap.epoch(),
            latency: end.duration_since(job.submitted),
            queue,
            service,
            value,
        });
        metrics.pinned_snapshots.dec();
    }
}

fn write_loop(
    mut engine: ServeEngine,
    shared: &Shared,
    rx: &Receiver<ApplyJob>,
    mut fault: Option<FaultHook>,
) {
    let metrics = &shared.metrics;
    while let Ok(job) = rx.recv() {
        let dequeued = Instant::now();
        metrics.apply_depth.dec();
        let queue = dequeued.duration_since(job.submitted);
        // The engine is not unwind-safe in the type-system sense (interior
        // &mut), but a panic poisons the loop permanently below — the
        // possibly-inconsistent engine is never applied to or published
        // again, so catching the unwind cannot leak broken state.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(f) = fault.as_mut() {
                f(&job.batch);
            }
            engine.apply(&job.batch).map_err(|e| e.to_string())
        }));
        match caught {
            Ok(report) => {
                let snap = engine.snapshot();
                metrics.published_epoch.set(snap.epoch() as i64);
                shared.publish(snap);
                let end = Instant::now();
                let service = end.duration_since(dequeued);
                // Record before fulfilling (see `query_worker`).
                metrics.record(BATCH_ENDPOINT, queue, service);
                job.ticket.fulfill(ApplyOutcome {
                    report,
                    latency: end.duration_since(job.submitted),
                    queue,
                    service,
                });
            }
            Err(panic) => {
                let msg = panic_message(panic.as_ref());
                let end = Instant::now();
                let service = end.duration_since(dequeued);
                metrics.record(BATCH_ENDPOINT, queue, service);
                job.ticket.fulfill(ApplyOutcome {
                    report: Err(format!("writer poisoned: engine panicked mid-batch: {msg}")),
                    latency: end.duration_since(job.submitted),
                    queue,
                    service,
                });
                // Poisoned: the engine may be mid-mutation, so it must never
                // apply or publish again. Queries keep answering from the
                // last snapshot published *before* the panic; every apply
                // ticket already queued or submitted later resolves with
                // the closed error instead of hanging its `wait`.
                let closed = ServeError::Closed.to_string();
                while let Ok(job) = rx.recv() {
                    metrics.apply_depth.dec();
                    let dequeued = Instant::now();
                    job.ticket.fulfill(ApplyOutcome {
                        report: Err(closed.clone()),
                        latency: job.submitted.elapsed(),
                        queue: dequeued.duration_since(job.submitted),
                        service: Duration::ZERO,
                    });
                }
                return;
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message (the common `&str`
/// and `String` payloads; anything else gets a placeholder).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::greedy::approx::GainRule;
    use rwd_graph::generators::erdos_renyi_gnp;
    use rwd_stream::StreamConfig;

    fn engine(n: usize, seed: u64) -> ServeEngine {
        let g = erdos_renyi_gnp(n, 0.1, seed).unwrap();
        ServeEngine::new(
            g,
            StreamConfig {
                l: 4,
                r: 5,
                k: 3,
                seed: 7,
                rule: GainRule::HittingTime,
                threads: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn queries_round_trip_with_epoch_provenance() {
        let serve = engine(40, 3);
        let reference = serve.snapshot();
        let server = Server::start(serve, 2);
        let handle = server.handle();

        let t1 = handle.query(Query::HitTime(NodeId(5))).unwrap();
        let t2 = handle.query(Query::Seeds).unwrap();
        let a1 = t1.wait();
        assert_eq!(a1.epoch, 0);
        assert_eq!(a1.value, QueryValue::Scalar(reference.hit_time(NodeId(5))));
        let a2 = t2.wait();
        match a2.value {
            QueryValue::Seeds {
                ref seeds,
                objective,
            } => {
                assert_eq!(&seeds[..], reference.seeds());
                assert_eq!(objective.to_bits(), reference.objective().to_bits());
            }
            ref other => panic!("unexpected answer {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn applies_publish_new_epochs_for_queries() {
        let serve = engine(40, 5);
        let g = serve.stream().graph().unwrap().clone();
        let server = Server::start(serve, 1);
        let handle = server.handle();

        let (u, v) = (0..40u32)
            .flat_map(|u| ((u + 1)..40).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((u, v, 1.0));
        let outcome = handle.apply(batch).unwrap().wait();
        let report = outcome.report.expect("valid batch");
        assert_eq!(report.epoch, 1);

        // Queries submitted after the publication see epoch 1.
        let ans = handle.query(Query::Coverage).unwrap().wait();
        assert_eq!(ans.epoch, 1);
        // Invalid batches resolve with an error outcome, not a hang.
        let mut bad = EdgeBatch::new(2);
        bad.deletions.push((0, 0));
        let outcome = handle.apply(bad).unwrap().wait();
        assert!(outcome.report.is_err());
        server.shutdown();
    }

    #[test]
    fn out_of_range_query_resolves_instead_of_killing_the_worker() {
        // Regression: an out-of-range node id used to panic the pool
        // worker (NodeSet::contains indexes out of bounds), stranding the
        // ticket forever and losing the worker for the server's lifetime.
        let serve = engine(30, 7);
        let server = Server::start(serve, 1);
        let handle = server.handle();
        let bad = handle.query(Query::HitTime(NodeId(999))).unwrap().wait();
        assert_eq!(bad.epoch, 0);
        match bad.value {
            QueryValue::Invalid(ref msg) => assert!(msg.contains("999"), "{msg}"),
            ref other => panic!("expected Invalid, got {other:?}"),
        }
        let bad = handle.query(Query::HitProb(NodeId(30))).unwrap().wait();
        assert!(matches!(bad.value, QueryValue::Invalid(_)));
        // The (single) worker survived and keeps answering.
        let ok = handle.query(Query::HitTime(NodeId(29))).unwrap().wait();
        assert!(matches!(ok.value, QueryValue::Scalar(_)));
        server.shutdown();
    }

    #[test]
    fn cloned_tickets_all_resolve() {
        // Regression: `wait`/`poll` used to take() the value, so the
        // second waiter on a cloned ticket blocked forever.
        let serve = engine(30, 11);
        let server = Server::start(serve, 1);
        let handle = server.handle();
        let t1 = handle.query(Query::Coverage).unwrap();
        let t2 = t1.clone();
        let waiter = std::thread::spawn(move || t2.wait());
        let a = t1.wait();
        let b = waiter.join().expect("cloned waiter resolved");
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.value, b.value);
        server.shutdown();
    }

    #[test]
    fn writer_panic_resolves_all_tickets_and_keeps_queries_alive() {
        // Regression: a panic inside `engine.apply` used to kill the writer
        // thread outright — every pending `wait()` hung forever and
        // `shutdown()` itself panicked on the join. The contract now: the
        // poisoning batch's ticket resolves with the panic message, every
        // queued and later apply ticket resolves with Closed, queries keep
        // serving the last published snapshot, and shutdown joins cleanly.
        let serve = engine(40, 13);
        let g = serve.stream().graph().unwrap().clone();
        let server = Server::start_with_fault(
            serve,
            2,
            Box::new(|batch: &EdgeBatch| {
                if batch.timestamp == 666 {
                    panic!("injected engine fault at t={}", batch.timestamp);
                }
            }),
        );
        let handle = server.handle();

        // One good batch lands first, so the published snapshot is epoch 1.
        let (u, v) = (0..40u32)
            .flat_map(|u| ((u + 1)..40).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        let mut good = EdgeBatch::new(1);
        good.insertions.push((u, v, 1.0));
        let outcome = handle.apply(good).unwrap().wait();
        assert_eq!(outcome.report.expect("valid batch").epoch, 1);

        // Poison the writer, with more applies already queued behind the
        // poisoning batch from several client threads.
        let poison_ticket = handle.apply(EdgeBatch::new(666)).unwrap();
        let waiters: Vec<_> = (0..3)
            .map(|i| {
                let h = handle.clone();
                std::thread::spawn(move || h.apply(EdgeBatch::new(1000 + i)).unwrap().wait())
            })
            .collect();

        let poisoned = poison_ticket.wait();
        let msg = poisoned.report.expect_err("poisoning batch must fail");
        assert!(msg.contains("writer poisoned"), "{msg}");
        assert!(msg.contains("injected engine fault"), "{msg}");
        for w in waiters {
            let outcome = w.join().expect("client thread resolved");
            let msg = outcome.report.expect_err("queued apply must fail");
            assert!(msg.contains("shut down"), "{msg}");
        }
        // A fresh apply after the poisoning also resolves (no hang).
        let late = handle.apply(EdgeBatch::new(2000)).unwrap().wait();
        assert!(late.report.is_err());

        // Queries still answer, from the last snapshot published before
        // the panic.
        let ans = handle.query(Query::Coverage).unwrap().wait();
        assert_eq!(ans.epoch, 1);
        assert!(matches!(ans.value, QueryValue::Scalar(_)));

        server.shutdown();
        assert!(matches!(
            handle.apply(EdgeBatch::new(3000)),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn poll_is_nonblocking_and_handles_survive_shutdown_errors() {
        let serve = engine(30, 9);
        let server = Server::start(serve, 1);
        let handle = server.handle();
        let ticket = handle.query(Query::TopUncovered(4)).unwrap();
        // Eventually resolves via polling.
        let mut answer = None;
        for _ in 0..10_000 {
            if let Some(a) = ticket.poll() {
                answer = Some(a);
                break;
            }
            std::thread::yield_now();
        }
        let answer = answer.expect("query resolved");
        match answer.value {
            QueryValue::Ranked(ranked) => assert_eq!(ranked.len(), 4),
            other => panic!("unexpected answer {other:?}"),
        }
        server.shutdown();
        // After shutdown the handle reports Closed instead of panicking.
        assert!(matches!(
            handle.query(Query::Coverage),
            Err(ServeError::Closed)
        ));
    }
}
