//! Per-server request metrics: endpoint-labelled service/queue histograms
//! and the scheduling gauges, all on a registry owned by the [`Server`]
//! (so one server's totals are exactly its own request counts), rendered
//! together with the process-wide engine registry for the `metrics`
//! endpoint.
//!
//! [`Server`]: crate::Server

use std::time::Duration;

use rwd_obs::{Counter, Gauge, Histogram, Registry};

use crate::server::Query;

/// Endpoint labels, indexed by [`ServerMetrics::endpoint`] (and
/// [`BATCH_ENDPOINT`] for the writer path).
pub(crate) const ENDPOINTS: [&str; 7] = [
    "hit_time", "hit_prob", "coverage", "top", "seeds", "metrics", "batch",
];

/// The write path's slot in [`ENDPOINTS`].
pub(crate) const BATCH_ENDPOINT: usize = 6;

/// Handles pre-registered at server start; the request hot path only does
/// relaxed atomic updates through them.
pub(crate) struct ServerMetrics {
    registry: Registry,
    service_ns: Vec<Histogram>,
    queue_ns: Vec<Histogram>,
    /// Jobs submitted but not yet dequeued, per queue.
    pub query_depth: Gauge,
    /// Batches submitted but not yet picked up by the writer.
    pub apply_depth: Gauge,
    /// Snapshots currently pinned by pool workers.
    pub pinned_snapshots: Gauge,
    /// Epoch of the most recently published snapshot.
    pub published_epoch: Gauge,
    /// Cumulative epochs answered snapshots lagged the published epoch.
    pub epoch_lag: Counter,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        let service_ns = ENDPOINTS
            .iter()
            .map(|&e| {
                registry.histogram_with(
                    "rwd_serve_service_ns",
                    "Service time per request, dequeue to answer (nanoseconds)",
                    &[("endpoint", e)],
                )
            })
            .collect();
        let queue_ns = ENDPOINTS
            .iter()
            .map(|&e| {
                registry.histogram_with(
                    "rwd_serve_queue_ns",
                    "Queue wait per request, submission to dequeue (nanoseconds)",
                    &[("endpoint", e)],
                )
            })
            .collect();
        let depth_help = "Requests submitted but not yet dequeued";
        ServerMetrics {
            query_depth: registry.gauge_with(
                "rwd_serve_queue_depth",
                depth_help,
                &[("queue", "query")],
            ),
            apply_depth: registry.gauge_with(
                "rwd_serve_queue_depth",
                depth_help,
                &[("queue", "apply")],
            ),
            pinned_snapshots: registry.gauge(
                "rwd_serve_pinned_snapshots",
                "Snapshots currently pinned by pool workers",
            ),
            published_epoch: registry.gauge(
                "rwd_serve_published_epoch",
                "Epoch of the most recently published snapshot",
            ),
            epoch_lag: registry.counter(
                "rwd_serve_epoch_lag_total",
                "Cumulative epochs answered snapshots lagged the published epoch",
            ),
            registry,
            service_ns,
            queue_ns,
        }
    }

    /// The [`ENDPOINTS`] slot a query records under.
    pub(crate) fn endpoint(query: &Query) -> usize {
        match query {
            Query::HitTime(_) => 0,
            Query::HitProb(_) => 1,
            Query::Coverage => 2,
            Query::TopUncovered(_) => 3,
            Query::Seeds => 4,
            Query::Metrics => 5,
        }
    }

    /// Records one served request's queue wait and service time.
    pub(crate) fn record(&self, endpoint: usize, queue: Duration, service: Duration) {
        self.queue_ns[endpoint].record_duration(queue);
        self.service_ns[endpoint].record_duration(service);
    }

    /// A point-in-time Prometheus-text snapshot: this server's registry
    /// followed by the process-wide engine registry. Pure atomic reads —
    /// no writer involvement.
    pub(crate) fn render(&self) -> String {
        let mut out = self.registry.render();
        out.push_str(&rwd_obs::global().render());
        out
    }
}
