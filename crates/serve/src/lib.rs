//! # rwd-serve
//!
//! The serving path: an online query API over the evolving
//! [`rwd_stream::StreamEngine`] with **snapshot-consistent epochs**.
//!
//! * [`snapshot`] — [`Snapshot`]: an epoch-stamped, cheaply-cloneable view
//!   of one engine state (Arc'd graph + walk index + seed set). Readers
//!   *pin* a snapshot and query it for as long as they like; a batch
//!   applying concurrently never mutates pinned state (the engine
//!   copies-on-write instead), so every answer is coherent — index, seeds
//!   and objective all from the same epoch,
//! * [`engine`] — [`ServeEngine`]: the writer. Wraps a [`StreamEngine`],
//!   applies churn batches, and *publishes* the next epoch's snapshot only
//!   after the batch fully lands — readers see epoch `e` or `e+1`, never a
//!   mix,
//! * [`server`] — [`Server`]: a thread-pooled request loop (std `mpsc`
//!   multiplexing, no external runtime — the same std-only discipline as
//!   the rest of the workspace). Queries fan out over a worker pool
//!   against the currently published snapshot; batches funnel through a
//!   single writer thread. Submissions return a [`Ticket`] — an
//!   async-shaped one-shot handle (`poll`/`wait`).
//!
//! Point queries ([`Snapshot::hit_time`], [`Snapshot::hit_prob`],
//! [`Snapshot::coverage`], [`Snapshot::top_m_uncovered`]) are answered
//! from the index's dual-view columns in `O(postings)` per query — never a
//! full `estimate_*` sweep — and are **bit-identical** to the sweeps on
//! the same epoch's index (`rwd_walks::point`). Every answer carries its
//! epoch, so callers can reason about answer stability across churn.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub(crate) mod metrics;
pub mod server;
pub mod snapshot;

pub use engine::ServeEngine;
pub use server::{ApplyOutcome, Query, QueryAnswer, QueryValue, Server, ServerHandle, Ticket};
pub use snapshot::Snapshot;

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying evolving engine rejected a batch or configuration.
    Stream(rwd_stream::StreamError),
    /// The server is shutting down and no longer accepts requests.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Stream(e) => write!(f, "{e}"),
            ServeError::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Stream(e) => Some(e),
            ServeError::Closed => None,
        }
    }
}

impl From<rwd_stream::StreamError> for ServeError {
    fn from(e: rwd_stream::StreamError) -> Self {
        ServeError::Stream(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
