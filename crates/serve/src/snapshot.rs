//! Epoch-stamped, cheaply-cloneable views of one engine state.

use std::sync::Arc;

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, NodeId};
use rwd_stream::StreamEngine;
use rwd_walks::{NodeSet, WalkIndex};

/// The graph of one epoch, shared with the engine that published it.
#[derive(Clone, Debug)]
pub enum SnapshotGraph {
    /// Unweighted pipeline.
    Unweighted(Arc<CsrGraph>),
    /// Weighted pipeline.
    Weighted(Arc<WeightedCsrGraph>),
}

impl SnapshotGraph {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        match self {
            SnapshotGraph::Unweighted(g) => g.n(),
            SnapshotGraph::Weighted(g) => g.n(),
        }
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        match self {
            SnapshotGraph::Unweighted(g) => g.m(),
            SnapshotGraph::Weighted(g) => g.m(),
        }
    }
}

/// One coherent engine state: graph, walk index, seed set and objective,
/// all from the same epoch, all behind `Arc`s.
///
/// Cloning is O(1) (a handful of reference-count bumps); holding any clone
/// **pins** the epoch — the writer publishes later epochs as *new*
/// snapshots and copy-on-writes the index instead of mutating pinned
/// state, so a reader that interleaves queries with concurrent churn still
/// sees one frozen world.
///
/// Point queries are answered from the index's dual-view columns in
/// `O(postings)` and are bit-identical to the full-sweep
/// `estimate_hit_times` / `estimate_hit_probs` on this epoch's index (the
/// contract `rwd_walks::point` pins with property tests).
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: u64,
    graph: SnapshotGraph,
    index: Arc<WalkIndex>,
    seeds: Arc<Vec<NodeId>>,
    seed_set: Arc<NodeSet>,
    objective: f64,
}

impl Snapshot {
    /// Captures the engine's current state. (Used by the serving engine on
    /// publication; cheap relative to a batch, O(k + n/64) for the seed
    /// bitset.)
    pub fn capture(engine: &StreamEngine) -> Snapshot {
        let graph = match engine.graph_shared() {
            Some(g) => SnapshotGraph::Unweighted(g),
            None => SnapshotGraph::Weighted(
                engine
                    .weighted_graph_shared()
                    .expect("engine is unweighted or weighted"),
            ),
        };
        let index = engine.index_shared();
        let seeds: Vec<NodeId> = engine.seeds().to_vec();
        let seed_set = NodeSet::from_nodes(index.n(), seeds.iter().copied());
        Snapshot {
            epoch: engine.epoch(),
            graph,
            index,
            seeds: Arc::new(seeds),
            seed_set: Arc::new(seed_set),
            objective: engine.objective(),
        }
    }

    /// The epoch this snapshot observes (0 = cold start; +1 per non-empty
    /// batch — no-op batches do not advance it).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch's graph.
    pub fn graph(&self) -> &SnapshotGraph {
        &self.graph
    }

    /// The epoch's walk index.
    pub fn index(&self) -> &WalkIndex {
        &self.index
    }

    /// The maintained seed set, in selection order.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The maintained seed set as a membership bitset.
    pub fn seed_set(&self) -> &NodeSet {
        &self.seed_set
    }

    /// Estimated objective `F̂` of the maintained seed set (the greedy
    /// gain-trace sum; auditable via
    /// `rwd_core::algo::objective_from_index`).
    #[inline]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of edges at this epoch.
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// Estimated `L`-truncated hitting time of `v` into the maintained seed
    /// set — `estimate_hit_times(seeds)[v]` bit for bit, in
    /// `O(Σ_i |forward(i, v)|)`.
    pub fn hit_time(&self, v: NodeId) -> f64 {
        self.index.point_hit_time(v, &self.seed_set)
    }

    /// Estimated probability that `v`'s `L`-walk reaches the maintained
    /// seed set — `estimate_hit_probs(seeds)[v]` bit for bit.
    pub fn hit_prob(&self, v: NodeId) -> f64 {
        self.index.point_hit_prob(v, &self.seed_set)
    }

    /// Expected number of nodes the maintained seed set dominates
    /// (`F̂2(seeds)`), streamed from the seeds' inverted lists only.
    pub fn coverage(&self) -> f64 {
        self.index.coverage(&self.seed_set)
    }

    /// Expected number of nodes an **arbitrary** set dominates at this
    /// epoch.
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn coverage_of(&self, set: &NodeSet) -> f64 {
        self.index.coverage(set)
    }

    /// The `m` nodes least covered by the maintained seed set (lowest hit
    /// probability first, ties toward the smaller id), each with its
    /// sweep-identical probability.
    pub fn top_m_uncovered(&self, m: usize) -> Vec<(NodeId, f64)> {
        self.index.top_m_uncovered(m, &self.seed_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::greedy::approx::GainRule;
    use rwd_graph::generators::erdos_renyi_gnp;
    use rwd_stream::{EdgeBatch, StreamConfig};

    fn cfg() -> StreamConfig {
        StreamConfig {
            l: 5,
            r: 6,
            k: 4,
            seed: 3,
            rule: GainRule::HittingTime,
            threads: 0,
        }
    }

    #[test]
    fn capture_reflects_engine_state_and_pins_it() {
        let g0 = erdos_renyi_gnp(80, 0.06, 17).unwrap();
        let mut engine = StreamEngine::new(g0.clone(), cfg()).unwrap();
        let snap = Snapshot::capture(&engine);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.n(), 80);
        assert_eq!(snap.m(), g0.m());
        assert_eq!(snap.seeds(), engine.seeds());
        assert_eq!(snap.objective().to_bits(), engine.objective().to_bits());
        assert_eq!(snap.seed_set().len(), 4);

        // Full-sweep references on the pinned epoch.
        let ht = snap.index().estimate_hit_times(snap.seed_set());
        let hp = snap.index().estimate_hit_probs(snap.seed_set());

        // Churn the engine; the pinned snapshot must not move.
        let (u, v) = (0..80u32)
            .flat_map(|u| ((u + 1)..80).map(move |v| (u, v)))
            .find(|&(u, v)| !g0.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((u, v, 1.0));
        engine.apply(&batch).unwrap();

        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.m(), g0.m(), "pinned graph gained an edge");
        for w in 0..80u32 {
            let w = NodeId(w);
            assert_eq!(snap.hit_time(w).to_bits(), ht[w.index()].to_bits());
            assert_eq!(snap.hit_prob(w).to_bits(), hp[w.index()].to_bits());
        }

        // A fresh capture observes the new epoch.
        let snap2 = Snapshot::capture(&engine);
        assert_eq!(snap2.epoch(), 1);
        assert_eq!(snap2.m(), g0.m() + 1);
    }

    #[test]
    fn weighted_capture_works() {
        let g0 = erdos_renyi_gnp(40, 0.12, 2).unwrap();
        let w0 = rwd_graph::weighted::weighted_twin(&g0, 5).unwrap();
        let engine = StreamEngine::new_weighted(w0, cfg()).unwrap();
        let snap = Snapshot::capture(&engine);
        assert!(matches!(snap.graph(), SnapshotGraph::Weighted(_)));
        assert_eq!(snap.n(), 40);
        // coverage_of on an arbitrary set agrees with the point query sum.
        let probe = NodeSet::from_nodes(40, [NodeId(1), NodeId(3)]);
        let total: f64 = (0..40)
            .map(|v| snap.index().point_hit_prob(NodeId(v), &probe))
            .sum();
        assert!((snap.coverage_of(&probe) - total).abs() < 1e-9);
    }
}
