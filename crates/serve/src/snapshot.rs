//! Epoch-stamped, cheaply-cloneable views of one engine state.

use std::sync::Arc;

use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::{CsrGraph, NodeId};
use rwd_stream::StreamEngine;
use rwd_walks::{top_m_from_counts, NodeSet, PartialContribution, WalkIndex};

/// The graph of one epoch, shared with the engine that published it.
#[derive(Clone, Debug)]
pub enum SnapshotGraph {
    /// Unweighted pipeline.
    Unweighted(Arc<CsrGraph>),
    /// Weighted pipeline.
    Weighted(Arc<WeightedCsrGraph>),
}

impl SnapshotGraph {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        match self {
            SnapshotGraph::Unweighted(g) => g.n(),
            SnapshotGraph::Weighted(g) => g.n(),
        }
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        match self {
            SnapshotGraph::Unweighted(g) => g.m(),
            SnapshotGraph::Weighted(g) => g.m(),
        }
    }
}

/// One coherent engine state: graph, walk index (one partial index per
/// shard), seed set and objective, all from the same epoch, all behind
/// `Arc`s.
///
/// Cloning is O(1) (a handful of reference-count bumps); holding any clone
/// **pins** the epoch — the writer publishes later epochs as *new*
/// snapshots and copy-on-writes each shard's index instead of mutating
/// pinned state, so a reader that interleaves queries with concurrent churn
/// still sees one frozen world. Because the coordinator advances the epoch
/// only after **every** shard has committed a batch (all-or-nothing
/// publish), the per-shard handles captured here always describe the same
/// epoch.
///
/// Point queries **scatter** to the shards — each returns its exact integer
/// contribution over its layer range ([`PartialContribution`], per-node
/// covered-layer counts) — and the snapshot **gathers** them with integer
/// addition before the single final division by `R`. Per-layer
/// contributions are small integers (exactly representable in `f64`), so
/// the merged answers are bit-identical to the monolithic point queries,
/// which are themselves bit-identical to the full-sweep
/// `estimate_hit_times` / `estimate_hit_probs` on this epoch's index (the
/// contract `rwd_walks::point` pins with property tests).
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: u64,
    graph: SnapshotGraph,
    /// Per-shard partial indexes in layer order (length 1 for the
    /// single-shard engine — the historical monolith).
    shards: Vec<Arc<WalkIndex>>,
    /// Total walk layers `R` across all shards — the one divisor every
    /// gathered query applies.
    r_total: usize,
    seeds: Arc<Vec<NodeId>>,
    seed_set: Arc<NodeSet>,
    objective: f64,
}

impl Snapshot {
    /// Captures the engine's current state. (Used by the serving engine on
    /// publication; cheap relative to a batch, O(k + n/64 + shards) for the
    /// seed bitset and the per-shard handles.)
    pub fn capture(engine: &StreamEngine) -> Snapshot {
        let graph = match engine.graph_shared() {
            Some(g) => SnapshotGraph::Unweighted(g),
            None => SnapshotGraph::Weighted(
                engine
                    .weighted_graph_shared()
                    .expect("engine is unweighted or weighted"),
            ),
        };
        let shards = engine.shard_indexes_shared();
        let n = shards[0].n();
        let seeds: Vec<NodeId> = engine.seeds().to_vec();
        let seed_set = NodeSet::from_nodes(n, seeds.iter().copied());
        Snapshot {
            epoch: engine.epoch(),
            graph,
            shards,
            r_total: engine.config().r,
            seeds: Arc::new(seeds),
            seed_set: Arc::new(seed_set),
            objective: engine.objective(),
        }
    }

    /// The epoch this snapshot observes (0 = cold start; +1 per non-empty
    /// batch — no-op batches do not advance it).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch's graph.
    pub fn graph(&self) -> &SnapshotGraph {
        &self.graph
    }

    /// The epoch's walk index.
    ///
    /// # Panics
    /// Panics on a sharded snapshot — there is no single monolithic index
    /// there; use [`Snapshot::shards`].
    pub fn index(&self) -> &WalkIndex {
        assert_eq!(
            self.shards.len(),
            1,
            "index() needs a single-shard snapshot; a sharded snapshot exposes shards()"
        );
        &self.shards[0]
    }

    /// The per-shard partial indexes, in layer order (length 1 on a
    /// single-shard engine).
    pub fn shards(&self) -> &[Arc<WalkIndex>] {
        &self.shards
    }

    /// Number of shards this snapshot gathers over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total walk layers `R` across all shards.
    pub fn r(&self) -> usize {
        self.r_total
    }

    /// The maintained seed set, in selection order.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The maintained seed set as a membership bitset.
    pub fn seed_set(&self) -> &NodeSet {
        &self.seed_set
    }

    /// Estimated objective `F̂` of the maintained seed set (the greedy
    /// gain-trace sum; auditable via
    /// `rwd_core::algo::objective_from_index`).
    #[inline]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of edges at this epoch.
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// Gathers the integer point contributions for `v` across every shard.
    fn contribution(&self, v: NodeId, set: &NodeSet) -> PartialContribution {
        let mut c = PartialContribution::default();
        for shard in &self.shards {
            c.merge(&shard.point_contribution(v, set));
        }
        c
    }

    /// Gathers per-node covered-layer counts across every shard (integer
    /// elementwise sums — each layer contributes the same count the
    /// monolith would).
    fn merged_counts(&self, set: &NodeSet) -> Vec<u32> {
        let mut iter = self.shards.iter();
        let first = iter.next().expect("a snapshot always has >= 1 shard");
        let mut cnt = first.covered_layer_counts(set);
        for shard in iter {
            for (acc, c) in cnt.iter_mut().zip(shard.covered_layer_counts(set)) {
                *acc += c;
            }
        }
        cnt
    }

    /// Estimated `L`-truncated hitting time of `v` into the maintained seed
    /// set — `estimate_hit_times(seeds)[v]` bit for bit, in
    /// `O(Σ_i |forward(i, v)|)`: per-shard integer hop sums, one final
    /// division by `R`. (A seed contributes hop 0 on every layer, so the
    /// gathered sum divides to exactly `0.0`, matching the monolith's
    /// member short-circuit.)
    pub fn hit_time(&self, v: NodeId) -> f64 {
        let c = self.contribution(v, &self.seed_set);
        c.hop_sum as f64 / self.r_total as f64
    }

    /// Estimated probability that `v`'s `L`-walk reaches the maintained
    /// seed set — `estimate_hit_probs(seeds)[v]` bit for bit (gathered hit
    /// counts over `R`; a member hits on all `R` layers, dividing to
    /// exactly `1.0`).
    pub fn hit_prob(&self, v: NodeId) -> f64 {
        let c = self.contribution(v, &self.seed_set);
        c.hits as f64 / self.r_total as f64
    }

    /// Expected number of nodes the maintained seed set dominates
    /// (`F̂2(seeds)`), streamed from the seeds' inverted lists only —
    /// per-shard integer counts, summed, one division.
    pub fn coverage(&self) -> f64 {
        let cnt = self.merged_counts(&self.seed_set);
        let total: u64 = cnt.iter().map(|&c| c as u64).sum();
        total as f64 / self.r_total as f64
    }

    /// Expected number of nodes an **arbitrary** set dominates at this
    /// epoch.
    ///
    /// # Panics
    /// Panics if `set` was built over a different node universe.
    pub fn coverage_of(&self, set: &NodeSet) -> f64 {
        let cnt = self.merged_counts(set);
        let total: u64 = cnt.iter().map(|&c| c as u64).sum();
        total as f64 / self.r_total as f64
    }

    /// The `m` nodes least covered by the maintained seed set (lowest hit
    /// probability first, ties toward the smaller id), each with its
    /// sweep-identical probability — the selection runs once over the
    /// gathered counts.
    pub fn top_m_uncovered(&self, m: usize) -> Vec<(NodeId, f64)> {
        let cnt = self.merged_counts(&self.seed_set);
        top_m_from_counts(&cnt, self.r_total, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_core::greedy::approx::GainRule;
    use rwd_graph::generators::erdos_renyi_gnp;
    use rwd_stream::{EdgeBatch, StreamConfig};

    fn cfg() -> StreamConfig {
        StreamConfig {
            l: 5,
            r: 6,
            k: 4,
            seed: 3,
            rule: GainRule::HittingTime,
            threads: 0,
        }
    }

    #[test]
    fn capture_reflects_engine_state_and_pins_it() {
        let g0 = erdos_renyi_gnp(80, 0.06, 17).unwrap();
        let mut engine = StreamEngine::new(g0.clone(), cfg()).unwrap();
        let snap = Snapshot::capture(&engine);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.n(), 80);
        assert_eq!(snap.m(), g0.m());
        assert_eq!(snap.shard_count(), 1);
        assert_eq!(snap.r(), 6);
        assert_eq!(snap.seeds(), engine.seeds());
        assert_eq!(snap.objective().to_bits(), engine.objective().to_bits());
        assert_eq!(snap.seed_set().len(), 4);

        // Full-sweep references on the pinned epoch.
        let ht = snap.index().estimate_hit_times(snap.seed_set());
        let hp = snap.index().estimate_hit_probs(snap.seed_set());

        // Churn the engine; the pinned snapshot must not move.
        let (u, v) = (0..80u32)
            .flat_map(|u| ((u + 1)..80).map(move |v| (u, v)))
            .find(|&(u, v)| !g0.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((u, v, 1.0));
        engine.apply(&batch).unwrap();

        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.m(), g0.m(), "pinned graph gained an edge");
        for w in 0..80u32 {
            let w = NodeId(w);
            assert_eq!(snap.hit_time(w).to_bits(), ht[w.index()].to_bits());
            assert_eq!(snap.hit_prob(w).to_bits(), hp[w.index()].to_bits());
        }

        // A fresh capture observes the new epoch.
        let snap2 = Snapshot::capture(&engine);
        assert_eq!(snap2.epoch(), 1);
        assert_eq!(snap2.m(), g0.m() + 1);
    }

    #[test]
    fn weighted_capture_works() {
        let g0 = erdos_renyi_gnp(40, 0.12, 2).unwrap();
        let w0 = rwd_graph::weighted::weighted_twin(&g0, 5).unwrap();
        let engine = StreamEngine::new_weighted(w0, cfg()).unwrap();
        let snap = Snapshot::capture(&engine);
        assert!(matches!(snap.graph(), SnapshotGraph::Weighted(_)));
        assert_eq!(snap.n(), 40);
        // coverage_of on an arbitrary set agrees with the point query sum.
        let probe = NodeSet::from_nodes(40, [NodeId(1), NodeId(3)]);
        let total: f64 = (0..40)
            .map(|v| snap.index().point_hit_prob(NodeId(v), &probe))
            .sum();
        assert!((snap.coverage_of(&probe) - total).abs() < 1e-9);
    }

    #[test]
    fn sharded_snapshot_answers_bit_match_the_monolith() {
        let g0 = erdos_renyi_gnp(70, 0.08, 23).unwrap();
        let mut mono = StreamEngine::new(g0.clone(), cfg()).unwrap();
        let mut sharded = StreamEngine::with_shards(g0.clone(), cfg(), 4).unwrap();
        // Same trace through both engines.
        let (u, v) = (0..70u32)
            .flat_map(|u| ((u + 1)..70).map(move |v| (u, v)))
            .find(|&(u, v)| !g0.has_edge(NodeId(u), NodeId(v)))
            .unwrap();
        let mut batch = EdgeBatch::new(1);
        batch.insertions.push((u, v, 1.0));
        mono.apply(&batch).unwrap();
        sharded.apply(&batch).unwrap();

        let ms = Snapshot::capture(&mono);
        let ss = Snapshot::capture(&sharded);
        assert_eq!(ss.shard_count(), 4);
        assert_eq!(ss.epoch(), ms.epoch());
        assert_eq!(ss.seeds(), ms.seeds());
        assert_eq!(ss.objective().to_bits(), ms.objective().to_bits());
        for w in 0..70u32 {
            let w = NodeId(w);
            assert_eq!(ss.hit_time(w).to_bits(), ms.hit_time(w).to_bits());
            assert_eq!(ss.hit_prob(w).to_bits(), ms.hit_prob(w).to_bits());
        }
        assert_eq!(ss.coverage().to_bits(), ms.coverage().to_bits());
        assert_eq!(ss.top_m_uncovered(9), ms.top_m_uncovered(9));
        let probe = NodeSet::from_nodes(70, [NodeId(2), NodeId(5), NodeId(7)]);
        assert_eq!(
            ss.coverage_of(&probe).to_bits(),
            ms.coverage_of(&probe).to_bits()
        );
    }
}
