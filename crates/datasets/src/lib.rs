//! # rwd-datasets
//!
//! Dataset registry for the experiments.
//!
//! The paper evaluates on four SNAP graphs (its Table 2):
//!
//! | Name | Nodes | Edges |
//! |---|---|---|
//! | CAGrQc | 5,242 | 28,968 |
//! | CAHepPh | 12,008 | 236,978 |
//! | Brightkite | 58,228 | 428,156 |
//! | Epinions | 75,872 | 396,026 |
//!
//! Those raw files are not redistributable here, so each dataset has a
//! deterministic **synthetic stand-in**: a Chung–Lu-style power-law graph
//! ([`rwd_graph::generators::power_law_cl`]) with the same `(n, m)` and a
//! heavy-tailed degree profile. Every quantity the paper measures (hitting
//! times, coverage, greedy rankings) is driven by scale and degree
//! distribution, which the stand-ins match; see DESIGN.md §2.
//!
//! If the genuine SNAP edge lists are available locally, set
//! `RWD_DATA_DIR=/path/to/snap` and [`Dataset::load`] will parse the real
//! file (`ca-GrQc.txt`, `ca-HepPh.txt`, `loc-brightkite_edges.txt`,
//! `soc-Epinions1.txt`) instead.
//!
//! [`scalability_graph`] builds the paper's ten-graph Barabási–Albert series
//! `G_1 … G_10` (Fig. 9) at an arbitrary scale factor.
//!
//! The [`temporal`] module generates deterministic **edge-churn traces**
//! (timestamped insert/delete batches over a BA or Erdős–Rényi base graph)
//! for the evolving-graph subsystem — the shared workload of the
//! `rwdom stream` CLI, the perf harness's `stream` block, and the
//! incremental-vs-rebuild equivalence tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod temporal;

pub use temporal::{temporal_trace, TemporalTrace, TemporalTraceSpec, TraceModel};

use std::path::PathBuf;

use rwd_graph::generators::{barabasi_albert, power_law_cl};
use rwd_graph::traversal::largest_component;
use rwd_graph::{CsrGraph, GraphError};

/// Environment variable pointing at a directory with the real SNAP files.
pub const DATA_DIR_ENV: &str = "RWD_DATA_DIR";

/// The four evaluation datasets of the paper (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// General-relativity co-authorship network.
    CaGrQc,
    /// High-energy-physics co-authorship network.
    CaHepPh,
    /// Brightkite location-based social network.
    Brightkite,
    /// Epinions trust network.
    Epinions,
}

/// Static facts about a dataset (the paper's Table 2 row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Paper display name.
    pub name: &'static str,
    /// Node count reported in Table 2.
    pub nodes: usize,
    /// Edge count reported in Table 2.
    pub edges: usize,
    /// SNAP file name honored under [`DATA_DIR_ENV`].
    pub file: &'static str,
    /// Power-law exponent used for the synthetic stand-in.
    pub gamma: f64,
    /// Deterministic generation seed for the stand-in.
    pub seed: u64,
}

impl Dataset {
    /// All four datasets in Table 2 order.
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::CaGrQc,
            Dataset::CaHepPh,
            Dataset::Brightkite,
            Dataset::Epinions,
        ]
    }

    /// The Table 2 row for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::CaGrQc => DatasetSpec {
                name: "CAGrQc",
                nodes: 5_242,
                edges: 28_968,
                file: "ca-GrQc.txt",
                gamma: 2.4,
                seed: 0xCA_64C,
            },
            Dataset::CaHepPh => DatasetSpec {
                name: "CAHepPh",
                nodes: 12_008,
                edges: 236_978,
                file: "ca-HepPh.txt",
                gamma: 2.2,
                seed: 0xCA_4E9,
            },
            Dataset::Brightkite => DatasetSpec {
                name: "Brightkite",
                nodes: 58_228,
                edges: 428_156,
                file: "loc-brightkite_edges.txt",
                gamma: 2.4,
                seed: 0x0B51_647E,
            },
            Dataset::Epinions => DatasetSpec {
                name: "Epinions",
                nodes: 75_872,
                edges: 396_026,
                file: "soc-Epinions1.txt",
                gamma: 2.2,
                seed: 0x0E41_4104,
            },
        }
    }

    /// Loads the dataset: the real SNAP file when `RWD_DATA_DIR` provides
    /// it, otherwise the full-scale synthetic stand-in.
    pub fn load(self) -> Result<CsrGraph, GraphError> {
        if let Some(path) = self.local_file() {
            let loaded = rwd_graph::edgelist::read_edge_list(path)?;
            return Ok(loaded.graph);
        }
        self.synthetic(1.0)
    }

    /// Path of the real file if present under `RWD_DATA_DIR`.
    pub fn local_file(self) -> Option<PathBuf> {
        let dir = std::env::var_os(DATA_DIR_ENV)?;
        let path = PathBuf::from(dir).join(self.spec().file);
        path.exists().then_some(path)
    }

    /// Deterministic synthetic stand-in at a linear `scale ∈ (0, 1]` of the
    /// published `(n, m)` (scale 1.0 = full size). Edge density is
    /// preserved per scale step.
    pub fn synthetic(self, scale: f64) -> Result<CsrGraph, GraphError> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(GraphError::InvalidInput(format!(
                "scale = {scale} outside (0, 1]"
            )));
        }
        let spec = self.spec();
        let n = ((spec.nodes as f64 * scale) as usize).max(64);
        let m = ((spec.edges as f64 * scale) as usize).max(n);
        let m = m.min(n * (n - 1) / 2);
        power_law_cl(n, m, spec.gamma, spec.seed)
    }

    /// Like [`Dataset::synthetic`] but restricted to the largest connected
    /// component — the natural domain for random-walk experiments.
    pub fn synthetic_connected(self, scale: f64) -> Result<CsrGraph, GraphError> {
        let g = self.synthetic(scale)?;
        Ok(largest_component(&g).0)
    }
}

/// The paper's scalability series (Fig. 9): graph `G_i` has `i·0.1M` nodes
/// and `i·1M` edges for `i = 1..=10`, generated with the same power-law
/// model the paper cites. `scale` shrinks the whole series linearly
/// (`scale = 1.0` is paper-sized; the repro harness defaults to 0.1).
pub fn scalability_graph(i: usize, scale: f64) -> Result<CsrGraph, GraphError> {
    if !(1..=10).contains(&i) {
        return Err(GraphError::InvalidInput(format!("i = {i} outside 1..=10")));
    }
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(GraphError::InvalidInput(format!(
            "scale = {scale} outside (0, 1]"
        )));
    }
    let n = ((i as f64 * 100_000.0 * scale) as usize).max(128);
    // BA with m_attach = 10 yields ≈ 10·n edges = the paper's i million.
    barabasi_albert(n, 10, 0x5CA1E + i as u64)
}

/// One row of Table 2: `(name, published n, published m, generated n, generated m)`.
pub type Table2Row = (String, usize, usize, usize, usize);

/// Table 2 rows `(name, published n, published m, generated n, generated m)`
pub fn table2(scale: f64) -> Result<Vec<Table2Row>, GraphError> {
    Dataset::all()
        .into_iter()
        .map(|d| {
            let spec = d.spec();
            let g = d.synthetic(scale)?;
            Ok((spec.name.to_string(), spec.nodes, spec.edges, g.n(), g.m()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwd_graph::stats::degree_stats;

    #[test]
    fn specs_match_paper_table_2() {
        let specs: Vec<_> = Dataset::all().iter().map(|d| d.spec()).collect();
        assert_eq!(specs[0].nodes, 5_242);
        assert_eq!(specs[0].edges, 28_968);
        assert_eq!(specs[1].nodes, 12_008);
        assert_eq!(specs[1].edges, 236_978);
        assert_eq!(specs[2].nodes, 58_228);
        assert_eq!(specs[2].edges, 428_156);
        assert_eq!(specs[3].nodes, 75_872);
        assert_eq!(specs[3].edges, 396_026);
    }

    #[test]
    fn synthetic_scaled_counts() {
        let g = Dataset::CaGrQc.synthetic(0.1).unwrap();
        assert_eq!(g.n(), 524);
        assert_eq!(g.m(), 2_896);
    }

    #[test]
    fn synthetic_full_scale_epinions_shape() {
        // Full-size generation must be fast and exact in (n, m).
        let g = Dataset::Epinions.synthetic(1.0).unwrap();
        assert_eq!(g.n(), 75_872);
        assert_eq!(g.m(), 396_026);
        let s = degree_stats(&g);
        assert!(s.max as f64 > 10.0 * s.mean, "heavy tail expected");
    }

    #[test]
    fn synthetic_deterministic() {
        let a = Dataset::Brightkite.synthetic(0.05).unwrap();
        let b = Dataset::Brightkite.synthetic(0.05).unwrap();
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn connected_variant_is_connected() {
        let g = Dataset::CaGrQc.synthetic_connected(0.1).unwrap();
        assert!(rwd_graph::traversal::connected_components(&g).is_connected());
        assert!(g.n() > 400, "LCC should retain most nodes");
    }

    #[test]
    fn scalability_series_is_linear() {
        let g1 = scalability_graph(1, 0.02).unwrap();
        let g2 = scalability_graph(2, 0.02).unwrap();
        assert_eq!(g1.n(), 2_000);
        assert_eq!(g2.n(), 4_000);
        // ≈10 edges per node.
        assert!((g1.m() as f64 / g1.n() as f64 - 10.0).abs() < 0.5);
        assert!(scalability_graph(0, 0.1).is_err());
        assert!(scalability_graph(11, 0.1).is_err());
    }

    #[test]
    fn bad_scale_rejected() {
        assert!(Dataset::CaGrQc.synthetic(0.0).is_err());
        assert!(Dataset::CaGrQc.synthetic(1.5).is_err());
        assert!(scalability_graph(3, 0.0).is_err());
    }

    #[test]
    fn table2_reports_both_published_and_generated() {
        let rows = table2(0.05).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, "CAGrQc");
        assert_eq!(rows[0].1, 5_242);
        assert!(rows[0].3 >= 64);
    }

    #[test]
    fn standins_carry_heavy_tails() {
        // The whole point of the substitution: the stand-ins must look like
        // power-law social networks. Check the Hill tail exponent lands in
        // the social-network range on a mid-sized sample of each.
        for d in Dataset::all() {
            let g = d.synthetic(0.3).unwrap();
            let gamma = rwd_graph::stats::degree_tail_exponent(&g, 0.1)
                .unwrap_or_else(|| panic!("{}: no measurable tail", d.spec().name));
            assert!(
                (1.8..5.0).contains(&gamma),
                "{}: tail exponent {gamma} outside the social-network range",
                d.spec().name
            );
        }
    }

    #[test]
    fn load_falls_back_to_synthetic_without_env() {
        // The test environment has no RWD_DATA_DIR; ensure fallback works on
        // the smallest dataset.
        if std::env::var_os(DATA_DIR_ENV).is_none() {
            let g = Dataset::CaGrQc.load().unwrap();
            assert_eq!(g.n(), 5_242);
            assert_eq!(g.m(), 28_968);
        }
    }
}
