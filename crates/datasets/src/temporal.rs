//! Deterministic temporal edge traces — the churn workload generator.
//!
//! Real temporal network datasets (contact networks, social streams) are
//! not redistributable here, so the evolving-graph subsystem is exercised
//! by a synthetic trace: a base graph from one of the repo's generators
//! plus a sequence of timestamped [`EdgeBatch`]es that insert fresh edges
//! and delete existing ones. The trace is **valid by construction** (every
//! deletion names a live edge, every insertion a currently absent pair, no
//! pair is edited twice within a batch) and a pure function of its spec —
//! the same spec always produces byte-identical batches, which is what
//! lets the CLI, the perf harness and the equivalence tests share one
//! workload definition.
//!
//! Insertion weights are mixed deterministically from `(seed, u, v)` into
//! `(0, 2]` — the same scheme as
//! [`rwd_graph::weighted::weighted_twin`] — so a weighted run of the trace
//! is structurally identical to the unweighted run.

use rwd_graph::generators::{barabasi_albert, erdos_renyi_gnp};
use rwd_graph::{CsrGraph, GraphError};
use rwd_stream::EdgeBatch;

/// Base-graph model of a temporal trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceModel {
    /// Barabási–Albert with `mdeg` attachments per node (heavy-tailed —
    /// batches that touch a hub resample many groups).
    BarabasiAlbert {
        /// Attachments per arriving node.
        mdeg: usize,
    },
    /// Erdős–Rényi `G(n, p)` with `p = mean_degree / n` (homogeneous —
    /// per-batch churn stays near its expectation).
    ErdosRenyi {
        /// Expected mean degree.
        mean_degree: f64,
    },
}

/// Specification of a deterministic temporal trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TemporalTraceSpec {
    /// Base-graph model.
    pub model: TraceModel,
    /// Node count (fixed across the trace; churn is edge-only).
    pub nodes: usize,
    /// Number of update batches.
    pub batches: usize,
    /// Edits per batch (insertions + deletions).
    pub batch_edits: usize,
    /// Fraction of each batch's edits that are deletions (`0..=1`); the
    /// rest are insertions.
    pub delete_fraction: f64,
    /// Seed driving the base graph, the edit choices and the weights.
    pub seed: u64,
}

impl Default for TemporalTraceSpec {
    fn default() -> Self {
        TemporalTraceSpec {
            model: TraceModel::BarabasiAlbert { mdeg: 4 },
            nodes: 1_000,
            batches: 10,
            batch_edits: 20,
            delete_fraction: 0.5,
            seed: 0x7EA1,
        }
    }
}

/// A generated trace: the epoch-0 graph and its timestamped batches
/// (timestamps are `1..=batches`).
#[derive(Clone, Debug)]
pub struct TemporalTrace {
    /// The base graph the batches evolve.
    pub base: CsrGraph,
    /// Update batches in application order.
    pub batches: Vec<EdgeBatch>,
}

/// splitmix64 step (local copy; the graph crate keeps its RNG private).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic edge weight in `(0, 2]` mixed from `(seed, u, v)` —
/// exactly [`rwd_graph::weighted::twin_weight`], so trace insertions and a
/// [`rwd_graph::weighted::weighted_twin`] base share one weight universe
/// per seed.
pub fn trace_weight(seed: u64, u: u32, v: u32) -> f64 {
    rwd_graph::weighted::twin_weight(seed, u, v)
}

/// Generates the base graph and a valid, deterministic batch sequence.
///
/// Within a batch every edit touches a distinct node pair; across batches
/// the evolving edge set is tracked so deletions always name live edges
/// and insertions absent pairs. Errors on an unsatisfiable spec (e.g. more
/// deletions per batch than edges, or an overfull graph).
pub fn temporal_trace(spec: &TemporalTraceSpec) -> Result<TemporalTrace, GraphError> {
    if !(0.0..=1.0).contains(&spec.delete_fraction) {
        return Err(GraphError::InvalidInput(format!(
            "delete_fraction = {} outside [0, 1]",
            spec.delete_fraction
        )));
    }
    if spec.nodes < 2 {
        return Err(GraphError::InvalidInput(
            "temporal trace needs at least 2 nodes".into(),
        ));
    }
    let base = match spec.model {
        TraceModel::BarabasiAlbert { mdeg } => barabasi_albert(spec.nodes, mdeg, spec.seed)?,
        TraceModel::ErdosRenyi { mean_degree } => {
            let p = (mean_degree / spec.nodes as f64).clamp(0.0, 1.0);
            erdos_renyi_gnp(spec.nodes, p, spec.seed)?
        }
    };

    // The evolving edge set: a vector for O(1) uniform picks plus a sorted
    // membership check via binary search after each batch would be O(m);
    // instead keep a HashSet alongside the pick vector.
    let mut live: Vec<(u32, u32)> = base.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let mut member: std::collections::HashSet<(u32, u32)> = live.iter().copied().collect();

    let deletes_per_batch = ((spec.batch_edits as f64) * spec.delete_fraction).round() as usize;
    let inserts_per_batch = spec.batch_edits - deletes_per_batch;
    let n = spec.nodes as u64;
    let max_edges = spec.nodes * (spec.nodes - 1) / 2;
    let mut rng = spec.seed ^ 0x7E3A_90AB_CD12_3456;
    let mut batches = Vec::with_capacity(spec.batches);

    for t in 1..=spec.batches as u64 {
        if live.len() < deletes_per_batch {
            return Err(GraphError::InvalidInput(format!(
                "batch {t}: only {} live edges for {deletes_per_batch} deletions",
                live.len()
            )));
        }
        // Feasibility: a batch's deleted pairs cannot be reinserted within
        // the same batch, so it needs `live + inserts` distinct pairs (the
        // post-deletion members, the deleted pairs, and the fresh inserts).
        if live.len() + inserts_per_batch > max_edges {
            return Err(GraphError::InvalidInput(format!(
                "batch {t}: graph too dense for {inserts_per_batch} insertions \
                 ({} of {max_edges} pairs are edges)",
                live.len()
            )));
        }
        let mut batch = EdgeBatch::new(t);
        // Pairs already edited in this batch (either direction canonical).
        let mut edited: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();

        for _ in 0..deletes_per_batch {
            // Uniform pick from the live list; swap-remove makes
            // within-batch collisions impossible.
            let i = (mix(&mut rng) % live.len() as u64) as usize;
            let e = live.swap_remove(i);
            member.remove(&e);
            edited.insert(e);
            batch.deletions.push(e);
        }
        for _ in 0..inserts_per_batch {
            // Rejection-sample an absent, unedited pair. The feasibility
            // guard above proves one exists, but near-complete graphs make
            // uniform probing slow, so the attempt budget keeps generation
            // total (deterministically erroring instead of spinning).
            let mut e = None;
            for _ in 0..(4096 + 64 * spec.nodes as u64) {
                let a = (mix(&mut rng) % n) as u32;
                let b = (mix(&mut rng) % n) as u32;
                if a == b {
                    continue;
                }
                let cand = if a < b { (a, b) } else { (b, a) };
                if member.contains(&cand) || edited.contains(&cand) {
                    continue;
                }
                e = Some(cand);
                break;
            }
            let Some(e) = e else {
                return Err(GraphError::InvalidInput(format!(
                    "batch {t}: could not sample an absent edge (graph too \
                     dense for the churn spec)"
                )));
            };
            edited.insert(e);
            member.insert(e);
            live.push(e);
            batch
                .insertions
                .push((e.0, e.1, trace_weight(spec.seed, e.0, e.1)));
        }
        batches.push(batch);
    }
    Ok(TemporalTrace { base, batches })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TemporalTraceSpec {
        TemporalTraceSpec {
            model: TraceModel::ErdosRenyi { mean_degree: 8.0 },
            nodes: 200,
            batches: 6,
            batch_edits: 10,
            delete_fraction: 0.4,
            seed: 99,
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = temporal_trace(&small_spec()).unwrap();
        let b = temporal_trace(&small_spec()).unwrap();
        assert_eq!(a.base.targets(), b.base.targets());
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.batches.len(), 6);
    }

    #[test]
    fn batches_apply_cleanly_in_sequence() {
        let trace = temporal_trace(&small_spec()).unwrap();
        let mut g = trace.base.clone();
        for (i, batch) in trace.batches.iter().enumerate() {
            assert_eq!(batch.timestamp, i as u64 + 1);
            assert_eq!(batch.len(), 10);
            assert_eq!(batch.deletions.len(), 4);
            assert_eq!(batch.insertions.len(), 6);
            let delta = batch.apply(&g).expect("trace batches are valid");
            g = delta.graph;
        }
        assert_eq!(g.m(), trace.base.m() + 6 * (6 - 4));
    }

    #[test]
    fn weighted_application_works_with_twin_base() {
        let spec = small_spec();
        let trace = temporal_trace(&spec).unwrap();
        let mut wg = rwd_graph::weighted::weighted_twin(&trace.base, spec.seed).unwrap();
        for batch in &trace.batches {
            wg = batch
                .apply_weighted(&wg)
                .expect("valid weighted batch")
                .graph;
        }
        assert_eq!(wg.m(), trace.base.m() + 6 * 2);
    }

    #[test]
    fn ba_model_and_bad_specs() {
        let mut spec = small_spec();
        spec.model = TraceModel::BarabasiAlbert { mdeg: 3 };
        spec.nodes = 100;
        let trace = temporal_trace(&spec).unwrap();
        assert_eq!(trace.base.n(), 100);

        spec.delete_fraction = 1.5;
        assert!(temporal_trace(&spec).is_err());
        let mut spec = small_spec();
        spec.nodes = 1;
        assert!(temporal_trace(&spec).is_err());
        // More deletions than the base graph has edges.
        let mut spec = small_spec();
        spec.model = TraceModel::ErdosRenyi { mean_degree: 0.0 };
        spec.delete_fraction = 1.0;
        assert!(temporal_trace(&spec).is_err());
    }

    #[test]
    fn dense_specs_error_instead_of_spinning() {
        // Regression: a complete base graph once made the insertion
        // rejection-sampling loop spin forever (every absent pair was the
        // batch's own deletion). Must return InvalidInput, not hang.
        let spec = TemporalTraceSpec {
            model: TraceModel::ErdosRenyi { mean_degree: 1e9 },
            nodes: 4,
            batches: 1,
            batch_edits: 2,
            delete_fraction: 0.5,
            seed: 1,
        };
        assert!(temporal_trace(&spec).is_err());
        // Nearly complete but with one spare pair: still satisfiable.
        let spec = TemporalTraceSpec {
            model: TraceModel::ErdosRenyi { mean_degree: 1e9 },
            nodes: 4,
            batches: 1,
            batch_edits: 1,
            delete_fraction: 1.0,
            seed: 1,
        };
        assert!(temporal_trace(&spec).is_ok(), "pure deletions stay legal");
    }

    #[test]
    fn trace_weights_match_twin_scheme() {
        // An edge inserted by the trace and the same edge in a weighted
        // twin get the same weight — one weight universe per seed.
        let g = CsrGraph::from_edges(4, &[(0, 1)]).unwrap();
        let wg = rwd_graph::weighted::weighted_twin(&g, 77).unwrap();
        let (_, w) = wg.neighbors(rwd_graph::NodeId(0)).next().unwrap();
        assert_eq!(w.to_bits(), trace_weight(77, 0, 1).to_bits());
    }
}
