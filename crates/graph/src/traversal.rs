//! Breadth-first search and connected components.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Distance marker for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS hop distances from `source` to every node (`UNREACHABLE` when
/// disconnected). O(n + m).
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected-component labeling of an undirected graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// `labels[u]` = component id of node `u`, ids dense in `[0, count)`.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// `sizes[c]` = node count of component `c`.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Id of the largest component (ties broken by smaller id).
    pub fn largest(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// True when the whole graph is one component (or empty).
    pub fn is_connected(&self) -> bool {
        self.count <= 1
    }
}

/// Labels connected components via repeated BFS. O(n + m).
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.n();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    let mut next = 0u32;
    for s in 0..n {
        if labels[s] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        labels[s] = next;
        queue.push_back(NodeId::new(s));
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if labels[v.index()] == u32::MAX {
                    labels[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
        next += 1;
    }
    Components {
        labels,
        count: next as usize,
        sizes,
    }
}

/// Extracts the largest connected component as a new graph.
///
/// Returns the component graph and `mapping[new] = old` node ids. The paper's
/// experiments implicitly assume connectivity (random walks cannot cross
/// components), so generators route through this when asked for connected
/// output.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    let comps = connected_components(g);
    if comps.is_connected() {
        let mapping = g.nodes().collect();
        return (g.clone(), mapping);
    }
    let keep = comps.largest();
    let nodes: Vec<NodeId> = g
        .nodes()
        .filter(|u| comps.labels[u.index()] == keep)
        .collect();
    crate::subgraph::induced(g, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bfs_distances(&g, NodeId(0)), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, NodeId(2)), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(c.sizes.iter().sum::<usize>(), 6);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert!(!c.is_connected());
        assert_eq!(c.largest(), c.labels[0]);
    }

    #[test]
    fn largest_component_extraction() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.n(), 3);
        assert_eq!(lcc.m(), 3);
        let mut orig: Vec<usize> = mapping.iter().map(|u| u.index()).collect();
        orig.sort_unstable();
        assert_eq!(orig, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.n(), 3);
        assert_eq!(mapping, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_graph_components() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert!(c.is_connected());
    }
}
