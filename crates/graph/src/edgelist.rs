//! Whitespace edge-list I/O.
//!
//! The format matches the SNAP collection the paper draws its datasets from:
//! one `u v` pair per line, `#` or `%` starting a comment line, arbitrary
//! non-negative integer ids. Ids are relabeled into a dense `[0, n)` range
//! on read; the mapping is returned so selections can be reported in the
//! original id space.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Result of reading an edge list: the graph plus the id mapping.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The parsed graph (undirected, simple).
    pub graph: CsrGraph,
    /// `original_ids[dense] = original` — dense id to input id.
    pub original_ids: Vec<u64>,
}

impl LoadedGraph {
    /// Maps a dense node index back to the id used in the input file.
    pub fn original_id(&self, dense: usize) -> u64 {
        self.original_ids[dense]
    }
}

/// Reads an undirected edge list from a file path.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<LoadedGraph> {
    let file = File::open(path.as_ref())?;
    read_edge_list_from(BufReader::new(file))
}

/// Reads a **directed** edge list (each `u v` line is the arc `u→v`) from a
/// file path.
pub fn read_directed_edge_list(path: impl AsRef<Path>) -> Result<LoadedGraph> {
    let file = File::open(path.as_ref())?;
    read_impl(BufReader::new(file), true)
}

/// Reads an undirected edge list from any buffered reader.
pub fn read_edge_list_from(reader: impl BufRead) -> Result<LoadedGraph> {
    read_impl(reader, false)
}

/// Reads a directed edge list from any buffered reader.
pub fn read_directed_edge_list_from(reader: impl BufRead) -> Result<LoadedGraph> {
    read_impl(reader, true)
}

fn read_impl(reader: impl BufRead, directed: bool) -> Result<LoadedGraph> {
    let mut relabel: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut builder = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };

    let mut dense = |raw: u64, original_ids: &mut Vec<u64>| -> u32 {
        *relabel.entry(raw).or_insert_with(|| {
            let id = original_ids.len() as u32;
            original_ids.push(raw);
            id
        })
    };

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, line_no: usize| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: line_no + 1,
                message: "expected two node ids".into(),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: line_no + 1,
                message: format!("invalid node id `{tok}`"),
            })
        };
        let u = parse(it.next(), line_no)?;
        let v = parse(it.next(), line_no)?;
        let du = dense(u, &mut original_ids);
        let dv = dense(v, &mut original_ids);
        builder.add_edge(du, dv);
    }

    let graph = builder.with_nodes(original_ids.len()).build()?;
    Ok(LoadedGraph {
        graph,
        original_ids,
    })
}

/// Writes a graph as a `u v` edge list (dense ids, one edge per line,
/// `u <= v` for undirected graphs), preceded by a summary comment.
pub fn write_edge_list(graph: &CsrGraph, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path.as_ref())?;
    write_edge_list_to(graph, BufWriter::new(file))
}

/// Writes a graph as an edge list to any writer.
pub fn write_edge_list_to(graph: &CsrGraph, mut w: impl Write) -> Result<()> {
    writeln!(w, "# nodes {} edges {}", graph.n(), graph.m())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an edge list from an in-memory string (tests, fixtures).
pub fn parse_edge_list(text: &str) -> Result<LoadedGraph> {
    read_edge_list_from(io::Cursor::new(text.as_bytes()))
}

/// Reads a directed edge list from an in-memory string.
pub fn parse_directed_edge_list(text: &str) -> Result<LoadedGraph> {
    read_directed_edge_list_from(io::Cursor::new(text.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn parses_with_comments_and_blank_lines() {
        let text = "# a comment\n\n10 20\n20 30\n% another\n30 10\n";
        let loaded = parse_edge_list(text).unwrap();
        assert_eq!(loaded.graph.n(), 3);
        assert_eq!(loaded.graph.m(), 3);
        assert_eq!(loaded.original_id(0), 10);
        assert_eq!(loaded.original_id(1), 20);
        assert_eq!(loaded.original_id(2), 30);
    }

    #[test]
    fn relabeling_is_first_appearance_order() {
        let loaded = parse_edge_list("7 3\n3 100\n").unwrap();
        assert_eq!(loaded.original_ids, vec![7, 3, 100]);
        assert!(loaded.graph.has_edge(NodeId(0), NodeId(1)));
        assert!(loaded.graph.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_edge_list("1 x\n").is_err());
        assert!(parse_edge_list("42\n").is_err());
        match parse_edge_list("0 1\nbroken\n") {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_reverse_edges_collapse() {
        let loaded = parse_edge_list("1 2\n2 1\n1 2\n").unwrap();
        assert_eq!(loaded.graph.m(), 1);
    }

    #[test]
    fn write_then_read_round_trips() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list_to(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let reloaded = parse_edge_list(&text).unwrap();
        assert_eq!(reloaded.graph.n(), g.n());
        assert_eq!(reloaded.graph.m(), g.m());
        for (u, v) in g.edges() {
            // Dense ids are assigned in appearance order = edge order here,
            // so membership must be checked via the original-id mapping.
            let du = reloaded
                .original_ids
                .iter()
                .position(|&x| x == u.index() as u64)
                .unwrap();
            let dv = reloaded
                .original_ids
                .iter()
                .position(|&x| x == v.index() as u64)
                .unwrap();
            assert!(reloaded.graph.has_edge(NodeId::new(du), NodeId::new(dv)));
        }
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let loaded = parse_edge_list("# nothing\n").unwrap();
        assert_eq!(loaded.graph.n(), 0);
        assert_eq!(loaded.graph.m(), 0);
    }

    #[test]
    fn directed_parse_keeps_orientation() {
        let loaded = parse_directed_edge_list("0 1\n1 2\n").unwrap();
        let g = &loaded.graph;
        assert_eq!(g.kind(), crate::GraphKind::Directed);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(
            !g.has_edge(NodeId(1), NodeId(0)),
            "reverse arc must be absent"
        );
        assert_eq!(g.degree(NodeId(2)), 0, "sink has out-degree 0");
    }

    #[test]
    fn directed_parse_distinguishes_antiparallel_arcs() {
        let loaded = parse_directed_edge_list("5 9\n9 5\n").unwrap();
        assert_eq!(loaded.graph.m(), 2, "u→v and v→u are distinct arcs");
        let undirected = parse_edge_list("5 9\n9 5\n").unwrap();
        assert_eq!(undirected.graph.m(), 1, "undirected collapses them");
    }
}
