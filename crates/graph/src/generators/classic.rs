//! Deterministic classic topologies.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Result<CsrGraph> {
    let mut b = crate::GraphBuilder::undirected().with_nodes(n);
    for u in 1..n as u32 {
        b.add_edge(u - 1, u);
    }
    b.build()
}

/// Cycle graph on `n >= 3` nodes.
pub fn cycle(n: usize) -> Result<CsrGraph> {
    if n < 3 {
        return Err(GraphError::InvalidInput(format!(
            "cycle needs n >= 3 (got {n})"
        )));
    }
    let mut b = crate::GraphBuilder::undirected().with_nodes(n);
    for u in 0..n as u32 {
        b.add_edge(u, (u + 1) % n as u32);
    }
    b.build()
}

/// Star: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Result<CsrGraph> {
    if n == 0 {
        return Err(GraphError::InvalidInput("star needs n >= 1".into()));
    }
    let mut b = crate::GraphBuilder::undirected().with_nodes(n);
    for u in 1..n as u32 {
        b.add_edge(0, u);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Result<CsrGraph> {
    let mut b = crate::GraphBuilder::undirected().with_nodes(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// 2-D grid of `rows × cols` nodes with 4-neighborhoods; node `(r, c)` has
/// id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Result<CsrGraph> {
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| GraphError::InvalidInput("grid size overflows".into()))?;
    let mut b = crate::GraphBuilder::undirected().with_nodes(n);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                b.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                b.add_edge(id, id + cols as u32);
            }
        }
    }
    b.build()
}

/// Complete `branching`-ary tree of the given `depth` (depth 0 = single
/// root). Node 0 is the root; children are laid out level by level.
pub fn balanced_tree(branching: usize, depth: usize) -> Result<CsrGraph> {
    if branching == 0 {
        return Err(GraphError::InvalidInput("branching must be >= 1".into()));
    }
    // n = (b^(depth+1) - 1) / (b - 1), or depth+1 for b = 1.
    let mut n: usize = 1;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level
            .checked_mul(branching)
            .ok_or_else(|| GraphError::InvalidInput("tree size overflows".into()))?;
        n = n
            .checked_add(level)
            .ok_or_else(|| GraphError::InvalidInput("tree size overflows".into()))?;
    }
    let mut b = crate::GraphBuilder::undirected().with_nodes(n);
    for parent in 0..n {
        for c in 0..branching {
            let child = parent * branching + 1 + c;
            if child < n {
                b.add_edge(parent as u32, child as u32);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::traversal::{bfs_distances, connected_components};

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!((g.n(), g.m()), (5, 4));
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
        assert_eq!(bfs_distances(&g, NodeId(0))[4], 4);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!((g.n(), g.m()), (6, 6));
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
        assert!(cycle(2).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(7).unwrap();
        assert_eq!((g.n(), g.m()), (7, 6));
        assert_eq!(g.degree(NodeId(0)), 6);
        assert_eq!(g.degree(NodeId(3)), 1);
        assert!(star(0).is_err());
        assert_eq!(star(1).unwrap().m(), 0);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6).unwrap();
        assert_eq!(g.m(), 15);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 5);
        }
        assert_eq!(complete(0).unwrap().n(), 0);
        assert_eq!(complete(1).unwrap().m(), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        // Edges: rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17.
        assert_eq!(g.m(), 17);
        assert_eq!(g.degree(NodeId(0)), 2); // corner
        assert_eq!(g.degree(NodeId(5)), 4); // interior (1,1)
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3).unwrap();
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!(connected_components(&g).is_connected());
        // Depth 0 tree is a single node.
        let g = balanced_tree(3, 0).unwrap();
        assert_eq!((g.n(), g.m()), (1, 0));
        assert!(balanced_tree(0, 2).is_err());
    }
}
