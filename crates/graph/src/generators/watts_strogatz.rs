//! Watts–Strogatz small-world graphs.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Watts–Strogatz small-world model.
///
/// Starts from a ring lattice where each node connects to its `k` nearest
/// neighbors (`k` even, `k < n`), then rewires the far endpoint of each
/// lattice edge with probability `beta` to a uniform random node, skipping
/// rewires that would create self-loops or duplicates. `beta = 0` is the
/// pure lattice; `beta = 1` approaches a random graph. A useful P2P-overlay
/// stand-in for the paper's resource-placement scenario.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    if !k.is_multiple_of(2) || k == 0 {
        return Err(GraphError::InvalidInput(format!(
            "k = {k} must be even and positive"
        )));
    }
    if k >= n {
        return Err(GraphError::InvalidInput(format!(
            "k = {k} must be < n = {n}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidInput(format!(
            "beta = {beta} outside [0, 1]"
        )));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let half = k / 2;

    // Edge set keyed canonically so rewires can check duplicates in O(1).
    let key = |u: u32, v: u32| -> u64 {
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        (lo as u64) << 32 | hi as u64
    };
    let mut present: HashSet<u64> = HashSet::with_capacity(n * half * 2);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * half);
    for u in 0..n as u32 {
        for j in 1..=half as u32 {
            let v = (u + j) % n as u32;
            edges.push((u, v));
            present.insert(key(u, v));
        }
    }

    for edge in edges.iter_mut() {
        if rng.gen::<f64>() >= beta {
            continue;
        }
        let (u, old_v) = *edge;
        // Give up after a few tries in pathological densities; the lattice
        // edge is simply kept.
        for _ in 0..32 {
            let new_v = rng.gen_range(0..n as u32);
            if new_v == u || present.contains(&key(u, new_v)) {
                continue;
            }
            present.remove(&key(u, old_v));
            present.insert(key(u, new_v));
            *edge = (u, new_v);
            break;
        }
    }

    let mut builder = crate::GraphBuilder::undirected()
        .with_nodes(n)
        .with_edge_capacity(edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1).unwrap();
        assert_eq!(g.m(), 20 * 2);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let g = watts_strogatz(100, 6, 0.3, 7).unwrap();
        assert_eq!(g.m(), 100 * 3);
    }

    #[test]
    fn rewiring_changes_graph() {
        let lattice = watts_strogatz(100, 4, 0.0, 7).unwrap();
        let rewired = watts_strogatz(100, 4, 0.5, 7).unwrap();
        assert_ne!(lattice.targets(), rewired.targets());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = watts_strogatz(60, 4, 0.2, 3).unwrap();
        let b = watts_strogatz(60, 4, 0.2, 3).unwrap();
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err()); // odd k
        assert!(watts_strogatz(10, 0, 0.1, 0).is_err());
        assert!(watts_strogatz(4, 4, 0.1, 0).is_err()); // k >= n
        assert!(watts_strogatz(10, 2, 1.5, 0).is_err());
    }
}
