//! Erdős–Rényi random graphs.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// G(n, m): a uniform random simple graph with exactly `m` edges.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    let max_edges = if n < 2 { 0 } else { n * (n - 1) / 2 };
    if m > max_edges {
        return Err(GraphError::InvalidInput(format!(
            "m = {m} exceeds C(n,2) = {max_edges}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = crate::GraphBuilder::undirected()
        .with_nodes(n)
        .with_edge_capacity(m);

    if m > max_edges / 2 && max_edges > 0 {
        // Dense regime: sample which edges to *exclude* via a partial
        // Fisher–Yates over the full edge universe.
        let mut universe: Vec<(u32, u32)> = Vec::with_capacity(max_edges);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                universe.push((u, v));
            }
        }
        for i in 0..m {
            let j = rng.gen_range(i..universe.len());
            universe.swap(i, j);
        }
        for &(u, v) in &universe[..m] {
            builder.add_edge(u, v);
        }
        return builder.build();
    }

    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut produced = 0usize;
    while produced < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        let key = (lo as u64) << 32 | hi as u64;
        if seen.insert(key) {
            builder.add_edge(lo, hi);
            produced += 1;
        }
    }
    builder.build()
}

/// G(n, p): each of the `C(n,2)` edges present independently with
/// probability `p`, generated with geometric skipping in O(n + m) expected
/// time.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Result<CsrGraph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidInput(format!("p = {p} outside [0, 1]")));
    }
    let mut builder = crate::GraphBuilder::undirected().with_nodes(n);
    if p == 0.0 || n < 2 {
        return builder.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p == 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                builder.add_edge(u, v);
            }
        }
        return builder.build();
    }

    // Enumerate present edges by jumping over absent ones: skip lengths are
    // geometric with parameter p (Batagelj–Brandes).
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.gen::<f64>();
        let skip = ((1.0 - r).ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            builder.add_edge(w as u32, v as u32);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_count() {
        let g = erdos_renyi_gnm(100, 300, 4).unwrap();
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 300);
    }

    #[test]
    fn gnm_dense_regime() {
        // m > C(n,2)/2 exercises the Fisher–Yates path.
        let g = erdos_renyi_gnm(20, 150, 4).unwrap();
        assert_eq!(g.m(), 150);
        let g = erdos_renyi_gnm(10, 45, 0).unwrap(); // complete
        assert_eq!(g.m(), 45);
    }

    #[test]
    fn gnm_rejects_impossible() {
        assert!(erdos_renyi_gnm(10, 46, 0).is_err());
        assert!(erdos_renyi_gnm(1, 1, 0).is_err());
    }

    #[test]
    fn gnp_expected_count_within_tolerance() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, 9).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.m() as f64 - expected).abs() < 6.0 * sd,
            "m = {} expected {expected}",
            g.m()
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(50, 0.0, 1).unwrap().m(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).unwrap().m(), 45);
        assert!(erdos_renyi_gnp(10, 1.5, 1).is_err());
        assert!(erdos_renyi_gnp(10, -0.1, 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi_gnm(100, 200, 3).unwrap();
        let b = erdos_renyi_gnm(100, 200, 3).unwrap();
        assert_eq!(a.targets(), b.targets());
        let a = erdos_renyi_gnp(100, 0.1, 3).unwrap();
        let b = erdos_renyi_gnp(100, 0.1, 3).unwrap();
        assert_eq!(a.targets(), b.targets());
    }
}
