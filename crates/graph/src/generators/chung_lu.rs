//! Chung–Lu-style power-law graphs with exact edge counts.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Generates a power-law graph with exactly `m` edges over `n` nodes.
///
/// Node `i` receives sampling weight `(i + i0)^(-1/(gamma-1))` (the classic
/// Aiello–Chung–Lu parameterization for a degree exponent `gamma`); edges
/// are drawn endpoint-by-endpoint from the weight distribution and rejected
/// on self-loops/duplicates until `m` distinct edges exist. This is the
/// edge-sampling variant of the Chung–Lu "given expected degrees" model: it
/// reproduces the heavy-tailed degree profile while hitting the requested
/// `(n, m)` exactly, which is what the SNAP stand-ins in `rwd-datasets` need.
///
/// `gamma` must be > 2 (typical social networks: 2.1–2.8). The result may be
/// disconnected; take [`crate::traversal::largest_component`] when the
/// application needs connectivity.
pub fn power_law_cl(n: usize, m: usize, gamma: f64, seed: u64) -> Result<CsrGraph> {
    if n < 2 {
        return Err(GraphError::InvalidInput("need at least 2 nodes".into()));
    }
    if gamma <= 2.0 {
        return Err(GraphError::InvalidInput(format!(
            "gamma must be > 2 (got {gamma})"
        )));
    }
    let max_edges = n * (n - 1) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidInput(format!(
            "m = {m} exceeds C(n,2) = {max_edges}"
        )));
    }

    let alpha = 1.0 / (gamma - 1.0);
    // Offset keeps the maximum weight bounded (avoids a single node adjacent
    // to everything at small n).
    let i0 = (n as f64).powf(0.25);
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += (i as f64 + i0).powf(-alpha);
        cumulative.push(acc);
    }
    let total = acc;

    let mut rng = StdRng::seed_from_u64(seed);
    let pick = |rng: &mut StdRng| -> u32 {
        let x = rng.gen::<f64>() * total;
        cumulative.partition_point(|&c| c <= x).min(n - 1) as u32
    };

    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut builder = crate::GraphBuilder::undirected()
        .with_nodes(n)
        .with_edge_capacity(m);

    let mut produced = 0usize;
    // Expected rejections are modest for sparse graphs; the attempt bound is
    // a safety net against adversarial parameters (dense m with tiny n).
    let max_attempts = 100 * m.max(16) + 10_000;
    let mut attempts = 0usize;
    while produced < m {
        attempts += 1;
        if attempts > max_attempts {
            return Err(GraphError::InvalidInput(format!(
                "could not place {m} distinct edges (placed {produced}); \
                 graph too dense for rejection sampling"
            )));
        }
        let u = pick(&mut rng);
        let v = pick(&mut rng);
        if u == v {
            continue;
        }
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        let key = (lo as u64) << 32 | hi as u64;
        if seen.insert(key) {
            builder.add_edge(lo, hi);
            produced += 1;
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = power_law_cl(1000, 5000, 2.5, 11).unwrap();
        assert_eq!(g.n(), 1000);
        assert_eq!(g.m(), 5000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = power_law_cl(300, 900, 2.3, 5).unwrap();
        let b = power_law_cl(300, 900, 2.3, 5).unwrap();
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn heavy_tail_present() {
        let g = power_law_cl(5000, 25000, 2.2, 1).unwrap();
        let s = crate::stats::degree_stats(&g);
        assert!(s.max as f64 > 5.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn low_weight_nodes_have_low_degree() {
        let g = power_law_cl(2000, 8000, 2.5, 2).unwrap();
        // Weights decay with node id: the top-id decile must have a smaller
        // average degree than the bottom-id decile.
        let head: usize = (0..200).map(|i| g.degree(crate::NodeId(i))).sum();
        let tail: usize = (1800..2000).map(|i| g.degree(crate::NodeId(i))).sum();
        assert!(head > tail * 2, "head {head} tail {tail}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(power_law_cl(1, 0, 2.5, 0).is_err());
        assert!(power_law_cl(10, 100, 2.5, 0).is_err()); // m > C(10,2)
        assert!(power_law_cl(10, 5, 1.5, 0).is_err());
    }

    #[test]
    fn dense_small_graph_still_succeeds() {
        // K5-density request: rejection sampling must still terminate.
        let g = power_law_cl(5, 10, 2.5, 3).unwrap();
        assert_eq!(g.m(), 10);
    }
}
