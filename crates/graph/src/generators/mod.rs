//! Synthetic graph generators.
//!
//! All generators are deterministic given a `seed`, so every experiment in
//! the repository is reproducible bit-for-bit. Models:
//!
//! * [`barabasi_albert`] — the power-law preferential-attachment model the
//!   paper cites as \[1\] and uses for its synthetic graphs (Figs. 2–5, 9),
//! * [`power_law_cl`] — Chung–Lu-style expected-degree sampling used by
//!   `rwd-datasets` to build SNAP stand-ins with an exact edge count,
//! * [`erdos_renyi_gnm`] / [`erdos_renyi_gnp`] — uniform random graphs,
//! * [`watts_strogatz`] — small-world rewiring model,
//! * [`random_regular`] — configuration model with edge-swap repair,
//! * [`classic`] — deterministic topologies (path, cycle, star, …),
//! * [`paper_example::figure1`] — the 8-node running example of the paper.

mod ba;
mod chung_lu;
pub mod classic;
mod erdos_renyi;
pub mod paper_example;
mod random_regular;
mod watts_strogatz;

pub use ba::barabasi_albert;
pub use chung_lu::power_law_cl;
pub use classic::{balanced_tree, complete, cycle, grid, path, star};
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use random_regular::random_regular;
pub use watts_strogatz::watts_strogatz;
