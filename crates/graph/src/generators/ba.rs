//! Barabási–Albert preferential attachment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Generates a Barabási–Albert preferential-attachment graph.
///
/// Starts from a complete graph on `m_attach + 1` seed nodes; every later
/// node attaches to `m_attach` *distinct* existing nodes chosen with
/// probability proportional to their current degree (implemented with the
/// standard repeated-endpoints trick, O(m) memory, O(m) expected time).
///
/// Resulting edge count: `C(m_attach+1, 2) + (n - m_attach - 1) * m_attach`.
/// The paper's synthetic graph (n = 1000, m ≈ 9,956) corresponds to
/// `barabasi_albert(1000, 10, seed)` → m = 9,945.
///
/// The graph is connected by construction.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Result<CsrGraph> {
    if m_attach == 0 {
        return Err(GraphError::InvalidInput("m_attach must be >= 1".into()));
    }
    let m0 = m_attach + 1;
    if n < m0 {
        return Err(GraphError::InvalidInput(format!(
            "n = {n} must be at least m_attach + 1 = {m0}"
        )));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let expected_edges = m0 * (m0 - 1) / 2 + (n - m0) * m_attach;
    let mut builder = crate::GraphBuilder::undirected()
        .with_nodes(n)
        .with_edge_capacity(expected_edges);

    // Each edge pushes both endpoints; sampling an entry uniformly samples a
    // node with probability proportional to its degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(expected_edges * 2);

    for u in 0..m0 as u32 {
        for v in (u + 1)..m0 as u32 {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut picks: Vec<u32> = Vec::with_capacity(m_attach);
    for u in m0 as u32..n as u32 {
        picks.clear();
        while picks.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !picks.contains(&t) {
                picks.push(t);
            }
        }
        for &v in &picks {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn edge_count_formula() {
        let g = barabasi_albert(100, 3, 7).unwrap();
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 4 * 3 / 2 + 96 * 3);
    }

    #[test]
    fn paper_scale_graph() {
        let g = barabasi_albert(1000, 10, 42).unwrap();
        assert_eq!(g.n(), 1000);
        assert_eq!(g.m(), 55 + 989 * 10); // 9,945 ≈ paper's 9,956
    }

    #[test]
    fn connected_by_construction() {
        let g = barabasi_albert(500, 2, 1).unwrap();
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(200, 4, 9).unwrap();
        let b = barabasi_albert(200, 4, 9).unwrap();
        let c = barabasi_albert(200, 4, 10).unwrap();
        assert_eq!(a.targets(), b.targets());
        assert_ne!(a.targets(), c.targets());
    }

    #[test]
    fn heavy_tail_present() {
        // Preferential attachment must produce hubs: max degree far above mean.
        let g = barabasi_albert(2000, 5, 3).unwrap();
        let stats = crate::stats::degree_stats(&g);
        assert!(
            stats.max as f64 > 4.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(barabasi_albert(5, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }

    #[test]
    fn minimum_size_is_seed_clique() {
        let g = barabasi_albert(4, 3, 0).unwrap();
        assert_eq!(g.m(), 6); // K4
    }
}
