//! Random d-regular graphs (configuration model with repair).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Generates a random `d`-regular simple graph on `n` nodes.
///
/// Pairs degree stubs uniformly (configuration model), then repairs
/// self-loops and duplicate edges with random double-edge swaps, which keeps
/// the distribution close to uniform and terminates fast in the sparse
/// regimes used here. Requires `n·d` even and `d < n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<CsrGraph> {
    if d >= n {
        return Err(GraphError::InvalidInput(format!(
            "d = {d} must be < n = {n}"
        )));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidInput(format!(
            "n*d = {} must be even",
            n * d
        )));
    }
    if d == 0 {
        return crate::GraphBuilder::undirected().with_nodes(n).build();
    }

    let mut rng = StdRng::seed_from_u64(seed);

    // Stubs: node u appears d times; a uniform shuffle then pairs 2i, 2i+1.
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for u in 0..n as u32 {
        stubs.extend(std::iter::repeat_n(u, d));
    }
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }

    let key = |u: u32, v: u32| -> u64 {
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        (lo as u64) << 32 | hi as u64
    };

    let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();

    let mut present: HashSet<u64> = HashSet::with_capacity(edges.len() * 2);
    let mut bad: Vec<usize> = Vec::new();
    for (i, &(u, v)) in edges.iter().enumerate() {
        if u == v || !present.insert(key(u, v)) {
            bad.push(i);
        }
    }

    // Repair: swap a bad pair's endpoint with a random other edge when the
    // two resulting edges are both simple and new.
    let mut guard = 0usize;
    let max_guard = 200 * edges.len().max(64);
    while let Some(&i) = bad.last() {
        guard += 1;
        if guard > max_guard {
            return Err(GraphError::InvalidInput(format!(
                "random_regular({n}, {d}) repair did not converge"
            )));
        }
        let j = rng.gen_range(0..edges.len());
        if j == i {
            continue;
        }
        let (a, b) = edges[i];
        let (c, dd) = edges[j];
        // Proposed rewiring: (a, c) and (b, dd).
        if a == c || b == dd {
            continue;
        }
        let k1 = key(a, c);
        let k2 = key(b, dd);
        if k1 == k2 || present.contains(&k1) || present.contains(&k2) {
            continue;
        }
        // The j edge is currently valid (present) unless it is itself bad.
        let j_was_bad = c == dd || !present.contains(&key(c, dd));
        if !j_was_bad {
            present.remove(&key(c, dd));
        }
        present.insert(k1);
        present.insert(k2);
        edges[i] = (a, c);
        edges[j] = (b, dd);
        bad.pop();
        if j_was_bad {
            // j happened to also be in the bad list; it is fixed now.
            bad.retain(|&x| x != j);
        }
    }

    let mut builder = crate::GraphBuilder::undirected()
        .with_nodes(n)
        .with_edge_capacity(edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    let g = builder.build()?;
    debug_assert_eq!(g.m(), n * d / 2);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn every_node_has_degree_d() {
        let g = random_regular(100, 4, 5).unwrap();
        assert_eq!(g.m(), 200);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4, "node {u}");
        }
    }

    #[test]
    fn large_instance_converges() {
        let g = random_regular(2000, 6, 1).unwrap();
        for u in g.nodes() {
            assert_eq!(g.degree(u), 6);
        }
        // d >= 3 random regular graphs are connected w.h.p.
        assert!(connected_components(&g).is_connected());
    }

    #[test]
    fn degree_zero_graph() {
        let g = random_regular(5, 0, 0).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_regular(60, 4, 2).unwrap();
        let b = random_regular(60, 4, 2).unwrap();
        assert_eq!(a.targets(), b.targets());
    }
}
