//! The running example graph of the paper (Figure 1).

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Number of nodes in the Figure 1 graph.
pub const N: usize = 8;

/// Builds the 8-node, 10-edge graph of the paper's Figure 1.
///
/// The paper labels nodes `v1..v8`; here `v_i` is `NodeId(i - 1)`. The edge
/// set is reconstructed from every walk the paper exhibits:
/// `(v1,v2,v3,v2,v6)`, `(v1,v6,v2,v3,v5)` (Section 2) and the eight walks of
/// Example 3.1 — all of them are valid walks on exactly this edge set, and
/// the resulting inverted index reproduces Table 1 verbatim (asserted in the
/// integration tests).
pub fn figure1() -> CsrGraph {
    // v1-v2, v1-v6, v2-v3, v2-v5, v2-v6, v3-v5, v4-v7, v5-v7, v6-v7, v7-v8
    CsrGraph::from_edges(
        N,
        &[
            (0, 1),
            (0, 5),
            (1, 2),
            (1, 4),
            (1, 5),
            (2, 4),
            (3, 6),
            (4, 6),
            (5, 6),
            (6, 7),
        ],
    )
    .expect("static edge list is valid")
}

/// Converts a paper label `v1..v8` to the dense [`NodeId`] used here.
pub fn v(label: usize) -> NodeId {
    assert!((1..=N).contains(&label), "paper labels run v1..v8");
    NodeId::new(label - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let g = figure1();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 10);
    }

    #[test]
    fn walks_from_the_paper_are_valid() {
        let g = figure1();
        let walks: [&[usize]; 10] = [
            &[1, 2, 3, 2, 6],
            &[1, 6, 2, 3, 5],
            &[1, 2, 3],
            &[2, 3, 5],
            &[3, 2, 5],
            &[4, 7, 5],
            &[5, 2, 6],
            &[6, 7, 5],
            &[7, 5, 7],
            &[8, 7, 4],
        ];
        for walk in walks {
            for pair in walk.windows(2) {
                assert!(
                    g.has_edge(v(pair[0]), v(pair[1])),
                    "edge v{}-v{} missing",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn degrees_match_figure() {
        let g = figure1();
        // v2 and v7 are the two hubs of the figure (degree 4 each).
        assert_eq!(g.degree(v(2)), 4);
        assert_eq!(g.degree(v(7)), 4);
        assert_eq!(g.degree(v(1)), 2);
        assert_eq!(g.degree(v(8)), 1);
    }

    #[test]
    #[should_panic(expected = "paper labels")]
    fn label_zero_panics() {
        let _ = v(0);
    }
}
